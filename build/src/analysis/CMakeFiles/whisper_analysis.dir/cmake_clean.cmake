file(REMOVE_RECURSE
  "CMakeFiles/whisper_analysis.dir/access_mix.cc.o"
  "CMakeFiles/whisper_analysis.dir/access_mix.cc.o.d"
  "CMakeFiles/whisper_analysis.dir/dependency.cc.o"
  "CMakeFiles/whisper_analysis.dir/dependency.cc.o.d"
  "CMakeFiles/whisper_analysis.dir/epoch.cc.o"
  "CMakeFiles/whisper_analysis.dir/epoch.cc.o.d"
  "CMakeFiles/whisper_analysis.dir/epoch_stats.cc.o"
  "CMakeFiles/whisper_analysis.dir/epoch_stats.cc.o.d"
  "libwhisper_analysis.a"
  "libwhisper_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwhisper_analysis.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/access_mix.cc" "src/analysis/CMakeFiles/whisper_analysis.dir/access_mix.cc.o" "gcc" "src/analysis/CMakeFiles/whisper_analysis.dir/access_mix.cc.o.d"
  "/root/repo/src/analysis/dependency.cc" "src/analysis/CMakeFiles/whisper_analysis.dir/dependency.cc.o" "gcc" "src/analysis/CMakeFiles/whisper_analysis.dir/dependency.cc.o.d"
  "/root/repo/src/analysis/epoch.cc" "src/analysis/CMakeFiles/whisper_analysis.dir/epoch.cc.o" "gcc" "src/analysis/CMakeFiles/whisper_analysis.dir/epoch.cc.o.d"
  "/root/repo/src/analysis/epoch_stats.cc" "src/analysis/CMakeFiles/whisper_analysis.dir/epoch_stats.cc.o" "gcc" "src/analysis/CMakeFiles/whisper_analysis.dir/epoch_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for whisper_analysis.
# This may be replaced when dependencies are built.

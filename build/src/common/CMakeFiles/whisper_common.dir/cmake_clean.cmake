file(REMOVE_RECURSE
  "CMakeFiles/whisper_common.dir/histogram.cc.o"
  "CMakeFiles/whisper_common.dir/histogram.cc.o.d"
  "CMakeFiles/whisper_common.dir/logging.cc.o"
  "CMakeFiles/whisper_common.dir/logging.cc.o.d"
  "CMakeFiles/whisper_common.dir/rng.cc.o"
  "CMakeFiles/whisper_common.dir/rng.cc.o.d"
  "CMakeFiles/whisper_common.dir/table.cc.o"
  "CMakeFiles/whisper_common.dir/table.cc.o.d"
  "libwhisper_common.a"
  "libwhisper_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

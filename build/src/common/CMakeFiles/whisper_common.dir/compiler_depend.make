# Empty compiler generated dependencies file for whisper_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/whisper_trace.dir/event.cc.o"
  "CMakeFiles/whisper_trace.dir/event.cc.o.d"
  "CMakeFiles/whisper_trace.dir/trace_buffer.cc.o"
  "CMakeFiles/whisper_trace.dir/trace_buffer.cc.o.d"
  "CMakeFiles/whisper_trace.dir/trace_io.cc.o"
  "CMakeFiles/whisper_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/whisper_trace.dir/trace_set.cc.o"
  "CMakeFiles/whisper_trace.dir/trace_set.cc.o.d"
  "libwhisper_trace.a"
  "libwhisper_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

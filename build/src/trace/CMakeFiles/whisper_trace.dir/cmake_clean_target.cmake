file(REMOVE_RECURSE
  "libwhisper_trace.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/whisper_pm.dir/pm_context.cc.o"
  "CMakeFiles/whisper_pm.dir/pm_context.cc.o.d"
  "CMakeFiles/whisper_pm.dir/pm_pool.cc.o"
  "CMakeFiles/whisper_pm.dir/pm_pool.cc.o.d"
  "libwhisper_pm.a"
  "libwhisper_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

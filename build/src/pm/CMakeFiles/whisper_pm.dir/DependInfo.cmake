
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/pm_context.cc" "src/pm/CMakeFiles/whisper_pm.dir/pm_context.cc.o" "gcc" "src/pm/CMakeFiles/whisper_pm.dir/pm_context.cc.o.d"
  "/root/repo/src/pm/pm_pool.cc" "src/pm/CMakeFiles/whisper_pm.dir/pm_pool.cc.o" "gcc" "src/pm/CMakeFiles/whisper_pm.dir/pm_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for whisper_pm.
# This may be replaced when dependencies are built.

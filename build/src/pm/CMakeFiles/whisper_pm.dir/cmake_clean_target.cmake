file(REMOVE_RECURSE
  "libwhisper_pm.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/whisper_txlib.dir/gc.cc.o"
  "CMakeFiles/whisper_txlib.dir/gc.cc.o.d"
  "CMakeFiles/whisper_txlib.dir/mnemosyne.cc.o"
  "CMakeFiles/whisper_txlib.dir/mnemosyne.cc.o.d"
  "CMakeFiles/whisper_txlib.dir/nvml.cc.o"
  "CMakeFiles/whisper_txlib.dir/nvml.cc.o.d"
  "libwhisper_txlib.a"
  "libwhisper_txlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_txlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

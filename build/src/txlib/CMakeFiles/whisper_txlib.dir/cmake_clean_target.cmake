file(REMOVE_RECURSE
  "libwhisper_txlib.a"
)

# Empty compiler generated dependencies file for whisper_txlib.
# This may be replaced when dependencies are built.

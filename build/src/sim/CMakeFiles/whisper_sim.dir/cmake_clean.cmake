file(REMOVE_RECURSE
  "CMakeFiles/whisper_sim.dir/cache.cc.o"
  "CMakeFiles/whisper_sim.dir/cache.cc.o.d"
  "CMakeFiles/whisper_sim.dir/hops_model.cc.o"
  "CMakeFiles/whisper_sim.dir/hops_model.cc.o.d"
  "CMakeFiles/whisper_sim.dir/simulator.cc.o"
  "CMakeFiles/whisper_sim.dir/simulator.cc.o.d"
  "CMakeFiles/whisper_sim.dir/x86_model.cc.o"
  "CMakeFiles/whisper_sim.dir/x86_model.cc.o.d"
  "libwhisper_sim.a"
  "libwhisper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/whisper_pmfs.dir/block_tree.cc.o"
  "CMakeFiles/whisper_pmfs.dir/block_tree.cc.o.d"
  "CMakeFiles/whisper_pmfs.dir/journal.cc.o"
  "CMakeFiles/whisper_pmfs.dir/journal.cc.o.d"
  "CMakeFiles/whisper_pmfs.dir/pmfs.cc.o"
  "CMakeFiles/whisper_pmfs.dir/pmfs.cc.o.d"
  "libwhisper_pmfs.a"
  "libwhisper_pmfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_pmfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

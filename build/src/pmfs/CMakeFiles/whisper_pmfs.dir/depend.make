# Empty dependencies file for whisper_pmfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwhisper_pmfs.a"
)

file(REMOVE_RECURSE
  "libwhisper_apps.a"
)

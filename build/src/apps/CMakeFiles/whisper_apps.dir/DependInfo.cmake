
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ctree.cc" "src/apps/CMakeFiles/whisper_apps.dir/ctree.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/ctree.cc.o.d"
  "/root/repo/src/apps/echo.cc" "src/apps/CMakeFiles/whisper_apps.dir/echo.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/echo.cc.o.d"
  "/root/repo/src/apps/exim.cc" "src/apps/CMakeFiles/whisper_apps.dir/exim.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/exim.cc.o.d"
  "/root/repo/src/apps/hashmap.cc" "src/apps/CMakeFiles/whisper_apps.dir/hashmap.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/hashmap.cc.o.d"
  "/root/repo/src/apps/memcached.cc" "src/apps/CMakeFiles/whisper_apps.dir/memcached.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/memcached.cc.o.d"
  "/root/repo/src/apps/mysql.cc" "src/apps/CMakeFiles/whisper_apps.dir/mysql.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/mysql.cc.o.d"
  "/root/repo/src/apps/nfs.cc" "src/apps/CMakeFiles/whisper_apps.dir/nfs.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/nfs.cc.o.d"
  "/root/repo/src/apps/nstore.cc" "src/apps/CMakeFiles/whisper_apps.dir/nstore.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/nstore.cc.o.d"
  "/root/repo/src/apps/redis.cc" "src/apps/CMakeFiles/whisper_apps.dir/redis.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/redis.cc.o.d"
  "/root/repo/src/apps/register.cc" "src/apps/CMakeFiles/whisper_apps.dir/register.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/register.cc.o.d"
  "/root/repo/src/apps/vacation.cc" "src/apps/CMakeFiles/whisper_apps.dir/vacation.cc.o" "gcc" "src/apps/CMakeFiles/whisper_apps.dir/vacation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txlib/CMakeFiles/whisper_txlib.dir/DependInfo.cmake"
  "/root/repo/build/src/pmfs/CMakeFiles/whisper_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/whisper_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/whisper_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for whisper_apps.
# This may be replaced when dependencies are built.

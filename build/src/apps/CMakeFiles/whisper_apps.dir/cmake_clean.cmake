file(REMOVE_RECURSE
  "CMakeFiles/whisper_apps.dir/ctree.cc.o"
  "CMakeFiles/whisper_apps.dir/ctree.cc.o.d"
  "CMakeFiles/whisper_apps.dir/echo.cc.o"
  "CMakeFiles/whisper_apps.dir/echo.cc.o.d"
  "CMakeFiles/whisper_apps.dir/exim.cc.o"
  "CMakeFiles/whisper_apps.dir/exim.cc.o.d"
  "CMakeFiles/whisper_apps.dir/hashmap.cc.o"
  "CMakeFiles/whisper_apps.dir/hashmap.cc.o.d"
  "CMakeFiles/whisper_apps.dir/memcached.cc.o"
  "CMakeFiles/whisper_apps.dir/memcached.cc.o.d"
  "CMakeFiles/whisper_apps.dir/mysql.cc.o"
  "CMakeFiles/whisper_apps.dir/mysql.cc.o.d"
  "CMakeFiles/whisper_apps.dir/nfs.cc.o"
  "CMakeFiles/whisper_apps.dir/nfs.cc.o.d"
  "CMakeFiles/whisper_apps.dir/nstore.cc.o"
  "CMakeFiles/whisper_apps.dir/nstore.cc.o.d"
  "CMakeFiles/whisper_apps.dir/redis.cc.o"
  "CMakeFiles/whisper_apps.dir/redis.cc.o.d"
  "CMakeFiles/whisper_apps.dir/register.cc.o"
  "CMakeFiles/whisper_apps.dir/register.cc.o.d"
  "CMakeFiles/whisper_apps.dir/vacation.cc.o"
  "CMakeFiles/whisper_apps.dir/vacation.cc.o.d"
  "libwhisper_apps.a"
  "libwhisper_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

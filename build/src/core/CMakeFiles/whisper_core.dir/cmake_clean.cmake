file(REMOVE_RECURSE
  "CMakeFiles/whisper_core.dir/app.cc.o"
  "CMakeFiles/whisper_core.dir/app.cc.o.d"
  "CMakeFiles/whisper_core.dir/harness.cc.o"
  "CMakeFiles/whisper_core.dir/harness.cc.o.d"
  "CMakeFiles/whisper_core.dir/runtime.cc.o"
  "CMakeFiles/whisper_core.dir/runtime.cc.o.d"
  "libwhisper_core.a"
  "libwhisper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

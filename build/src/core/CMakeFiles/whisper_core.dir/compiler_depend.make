# Empty compiler generated dependencies file for whisper_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwhisper_alloc.a"
)

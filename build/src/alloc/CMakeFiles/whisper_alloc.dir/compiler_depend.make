# Empty compiler generated dependencies file for whisper_alloc.
# This may be replaced when dependencies are built.

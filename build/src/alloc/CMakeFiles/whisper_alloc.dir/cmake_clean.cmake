file(REMOVE_RECURSE
  "CMakeFiles/whisper_alloc.dir/buddy_alloc.cc.o"
  "CMakeFiles/whisper_alloc.dir/buddy_alloc.cc.o.d"
  "CMakeFiles/whisper_alloc.dir/nvml_alloc.cc.o"
  "CMakeFiles/whisper_alloc.dir/nvml_alloc.cc.o.d"
  "CMakeFiles/whisper_alloc.dir/slab_alloc.cc.o"
  "CMakeFiles/whisper_alloc.dir/slab_alloc.cc.o.d"
  "libwhisper_alloc.a"
  "libwhisper_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

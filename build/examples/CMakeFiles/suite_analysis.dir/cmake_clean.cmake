file(REMOVE_RECURSE
  "CMakeFiles/suite_analysis.dir/suite_analysis.cpp.o"
  "CMakeFiles/suite_analysis.dir/suite_analysis.cpp.o.d"
  "suite_analysis"
  "suite_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for suite_analysis.
# This may be replaced when dependencies are built.

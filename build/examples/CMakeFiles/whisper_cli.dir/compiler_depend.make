# Empty compiler generated dependencies file for whisper_cli.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_nti_fraction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_nti_fraction.dir/bench_nti_fraction.cc.o"
  "CMakeFiles/bench_nti_fraction.dir/bench_nti_fraction.cc.o.d"
  "bench_nti_fraction"
  "bench_nti_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nti_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

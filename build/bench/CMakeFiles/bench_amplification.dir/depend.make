# Empty dependencies file for bench_amplification.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_amplification.dir/bench_amplification.cc.o"
  "CMakeFiles/bench_amplification.dir/bench_amplification.cc.o.d"
  "bench_amplification"
  "bench_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

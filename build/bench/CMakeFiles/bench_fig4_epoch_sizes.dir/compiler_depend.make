# Empty compiler generated dependencies file for bench_fig4_epoch_sizes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_table1_epoch_rates.
# This may be replaced when dependencies are built.

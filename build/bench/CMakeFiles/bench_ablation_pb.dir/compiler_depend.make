# Empty compiler generated dependencies file for bench_ablation_pb.
# This may be replaced when dependencies are built.

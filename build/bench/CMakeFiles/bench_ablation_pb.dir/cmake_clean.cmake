file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pb.dir/bench_ablation_pb.cc.o"
  "CMakeFiles/bench_ablation_pb.dir/bench_ablation_pb.cc.o.d"
  "bench_ablation_pb"
  "bench_ablation_pb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

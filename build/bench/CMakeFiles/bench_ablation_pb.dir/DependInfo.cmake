
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_pb.cc" "bench/CMakeFiles/bench_ablation_pb.dir/bench_ablation_pb.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_pb.dir/bench_ablation_pb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/whisper_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/whisper_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whisper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmfs/CMakeFiles/whisper_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/txlib/CMakeFiles/whisper_txlib.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/whisper_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/whisper_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_access_mix.dir/bench_fig6_access_mix.cc.o"
  "CMakeFiles/bench_fig6_access_mix.dir/bench_fig6_access_mix.cc.o.d"
  "bench_fig6_access_mix"
  "bench_fig6_access_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_access_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_access_mix.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig3_tx_sizes.
# This may be replaced when dependencies are built.

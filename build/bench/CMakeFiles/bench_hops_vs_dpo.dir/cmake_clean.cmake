file(REMOVE_RECURSE
  "CMakeFiles/bench_hops_vs_dpo.dir/bench_hops_vs_dpo.cc.o"
  "CMakeFiles/bench_hops_vs_dpo.dir/bench_hops_vs_dpo.cc.o.d"
  "bench_hops_vs_dpo"
  "bench_hops_vs_dpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hops_vs_dpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_hops_vs_dpo.
# This may be replaced when dependencies are built.

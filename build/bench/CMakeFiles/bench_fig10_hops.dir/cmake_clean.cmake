file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hops.dir/bench_fig10_hops.cc.o"
  "CMakeFiles/bench_fig10_hops.dir/bench_fig10_hops.cc.o.d"
  "bench_fig10_hops"
  "bench_fig10_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

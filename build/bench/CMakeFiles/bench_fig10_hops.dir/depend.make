# Empty dependencies file for bench_fig10_hops.
# This may be replaced when dependencies are built.

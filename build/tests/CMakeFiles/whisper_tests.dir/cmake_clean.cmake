file(REMOVE_RECURSE
  "CMakeFiles/whisper_tests.dir/test_alloc.cc.o"
  "CMakeFiles/whisper_tests.dir/test_alloc.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_analysis.cc.o"
  "CMakeFiles/whisper_tests.dir/test_analysis.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_apps.cc.o"
  "CMakeFiles/whisper_tests.dir/test_apps.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_common.cc.o"
  "CMakeFiles/whisper_tests.dir/test_common.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_core.cc.o"
  "CMakeFiles/whisper_tests.dir/test_core.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_differential.cc.o"
  "CMakeFiles/whisper_tests.dir/test_differential.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_extensions.cc.o"
  "CMakeFiles/whisper_tests.dir/test_extensions.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_pm_pool.cc.o"
  "CMakeFiles/whisper_tests.dir/test_pm_pool.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_pmfs.cc.o"
  "CMakeFiles/whisper_tests.dir/test_pmfs.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_sim.cc.o"
  "CMakeFiles/whisper_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_stress.cc.o"
  "CMakeFiles/whisper_tests.dir/test_stress.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_trace.cc.o"
  "CMakeFiles/whisper_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/whisper_tests.dir/test_txlib.cc.o"
  "CMakeFiles/whisper_tests.dir/test_txlib.cc.o.d"
  "whisper_tests"
  "whisper_tests.pdb"
  "whisper_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

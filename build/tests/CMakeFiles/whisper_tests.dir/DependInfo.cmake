
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alloc.cc" "tests/CMakeFiles/whisper_tests.dir/test_alloc.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_alloc.cc.o.d"
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/whisper_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/whisper_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/whisper_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/whisper_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/whisper_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/whisper_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_pm_pool.cc" "tests/CMakeFiles/whisper_tests.dir/test_pm_pool.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_pm_pool.cc.o.d"
  "/root/repo/tests/test_pmfs.cc" "tests/CMakeFiles/whisper_tests.dir/test_pmfs.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_pmfs.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/whisper_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/whisper_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/whisper_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_txlib.cc" "tests/CMakeFiles/whisper_tests.dir/test_txlib.cc.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_txlib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/whisper_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/whisper_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whisper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmfs/CMakeFiles/whisper_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/txlib/CMakeFiles/whisper_txlib.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/whisper_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/whisper_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/whisper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

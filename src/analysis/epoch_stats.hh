/**
 * @file
 * Distribution statistics over reconstructed epochs.
 *
 * Produces the numbers behind the paper's Table 1 (epochs/second),
 * Figure 3 (epochs per transaction), Figure 4 (epoch sizes) and the
 * singleton byte-size observation ("60% of singletons updated fewer
 * than 10 bytes").
 */

#ifndef WHISPER_ANALYSIS_EPOCH_STATS_HH
#define WHISPER_ANALYSIS_EPOCH_STATS_HH

#include "analysis/epoch.hh"
#include "common/histogram.hh"

namespace whisper::analysis
{

/** Summary of one application run's epoch behaviour. */
struct EpochSummary
{
    std::uint64_t totalEpochs = 0;
    std::uint64_t totalTransactions = 0;
    double epochsPerSecond = 0.0;
    Histogram epochSizes;         //!< unique lines per epoch
    Histogram epochsPerTx;        //!< ordering points per transaction
    Histogram singletonBytes;     //!< bytes stored by singleton epochs
    double singletonFraction = 0.0;
    double singletonUnder10B = 0.0; //!< of singletons, stores < 10 bytes
    double durabilityFenceFraction = 0.0;
};

/** Compute the summary for a run. @p traces supplies the wall span. */
EpochSummary summarizeEpochs(const EpochBuilder &builder,
                             const trace::TraceSet &traces);

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_EPOCH_STATS_HH

/**
 * @file
 * Distribution statistics over reconstructed epochs.
 *
 * Produces the numbers behind the paper's Table 1 (epochs/second),
 * Figure 3 (epochs per transaction), Figure 4 (epoch sizes) and the
 * singleton byte-size observation ("60% of singletons updated fewer
 * than 10 bytes").
 *
 * The computation is a commutative fold: EpochStatsAccumulator holds
 * only integer totals and histograms, so any sharding of the epoch
 * list can be accumulated independently, merged, and finalized into a
 * summary bit-identical to the sequential scan.
 */

#ifndef WHISPER_ANALYSIS_EPOCH_STATS_HH
#define WHISPER_ANALYSIS_EPOCH_STATS_HH

#include "analysis/epoch.hh"
#include "common/histogram.hh"

namespace whisper::analysis
{

/** Summary of one application run's epoch behaviour. */
struct EpochSummary
{
    std::uint64_t totalEpochs = 0;
    std::uint64_t totalTransactions = 0;
    double epochsPerSecond = 0.0;
    Histogram epochSizes;         //!< unique lines per epoch
    Histogram epochsPerTx;        //!< ordering points per transaction
    Histogram singletonBytes;     //!< bytes stored by singleton epochs
    double singletonFraction = 0.0;
    double singletonUnder10B = 0.0; //!< of singletons, stores < 10 bytes
    double durabilityFenceFraction = 0.0;
};

/**
 * Mergeable accumulator form of summarizeEpochs(). Epochs and
 * transactions may be split across accumulators in any way; merging
 * in any order and finalizing yields the sequential result exactly
 * (all state is integer counts, and the derived ratios are computed
 * once at finalize time).
 */
class EpochStatsAccumulator
{
  public:
    /** Fold in one epoch. */
    void addEpoch(const Epoch &ep);

    /** Fold in one transaction record. */
    void addTransaction(const TxInfo &tx);

    /** Fold another accumulator's totals into this one. */
    void merge(const EpochStatsAccumulator &other);

    /** Derive the summary; @p firstTick/@p lastTick span the run. */
    EpochSummary finalize(Tick firstTick, Tick lastTick) const;

  private:
    std::uint64_t totalEpochs_ = 0;
    std::uint64_t totalTransactions_ = 0;
    std::uint64_t singletons_ = 0;
    std::uint64_t singletonSmall_ = 0;
    std::uint64_t durabilityFences_ = 0;
    Histogram epochSizes_;
    Histogram epochsPerTx_;
    Histogram singletonBytes_;
};

/** Compute the summary for a run. @p traces supplies the wall span. */
EpochSummary summarizeEpochs(const EpochBuilder &builder,
                             const trace::TraceSet &traces);

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_EPOCH_STATS_HH

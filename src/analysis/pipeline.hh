/**
 * @file
 * Parallel, streaming trace-analysis pipeline.
 *
 * Runs every §5 analysis — epoch statistics (Table 1, Figures 3/4),
 * the 50 µs dependency classification (Figure 5), the PM/DRAM access
 * mix (Figure 6), NTI usage and write amplification (§5.2) — in one
 * pass over a trace, fanning the work out across cores:
 *
 *  1. *Per-thread shards*: each recorded thread's event stream is an
 *     independent unit (epoch reconstruction and access counters are
 *     per-thread folds), so threads shard trivially. File inputs are
 *     streamed chunk-by-chunk (trace_reader.hh) and never
 *     materialized whole.
 *  2. *Join*: per-thread epochs/transactions concatenate in recording
 *     order and sort into the global end-timestamp order; counters
 *     merge in recording order.
 *  3. *Line shards*: the dependency pass shards the line address
 *     space, each shard computing exact per-epoch flags for its lines
 *     (dependency.hh), OR-merged in shard order.
 *
 * Every reduction happens in a deterministic order on the calling
 * thread, so the result is bit-identical to the sequential analysis
 * at any job count — `analyze --jobs 8` and `--jobs 1` print the
 * same bytes.
 */

#ifndef WHISPER_ANALYSIS_PIPELINE_HH
#define WHISPER_ANALYSIS_PIPELINE_HH

#include <string>

#include "analysis/access_mix.hh"
#include "analysis/dependency.hh"
#include "analysis/epoch_stats.hh"

namespace whisper::analysis
{

/** Tuning knobs for one pipeline run. */
struct AnalysisOptions
{
    /** Worker threads; 1 = sequential, 0 = hardware concurrency. */
    unsigned jobs = 1;

    /** Dependency window (the paper's 50 µs bound). */
    Tick window = kDependencyWindow;

    /** Line-space shards for the dependency pass; 0 = one per job. */
    std::size_t dependencyShards = 0;
};

/** Everything the §5 analyses produce for one trace. */
struct AnalysisResult
{
    std::size_t threadCount = 0;
    std::uint64_t totalEvents = 0;
    Tick firstTick = 0;
    Tick lastTick = 0;
    EpochSummary epochs;
    DependencySummary dependencies;
    AccessMix mix;
    NtiUsage nti;
    Amplification amplification;
};

/** Analyze an in-memory trace set. */
AnalysisResult analyzeTraces(const trace::TraceSet &traces,
                             const AnalysisOptions &options = {});

/**
 * Analyze a trace file by streaming its per-thread sections from
 * disk in chunks — peak memory is one chunk per job plus the
 * reconstructed epochs, independent of trace size. Returns false on
 * I/O or format failure. The result is identical to loading the file
 * with readTraceFile() and calling analyzeTraces().
 */
bool analyzeTraceFile(const std::string &path, AnalysisResult &out,
                      const AnalysisOptions &options = {});

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_PIPELINE_HH

/**
 * @file
 * Access-mix and write-amplification analyses.
 *
 * Covers the paper's Figure 6 (PM accesses as a share of all memory
 * accesses), the §5.2 NTI-usage observation (how much of PM write
 * traffic bypasses the cache), and the §5.2 write-amplification
 * question (extra PM bytes per byte of user data).
 */

#ifndef WHISPER_ANALYSIS_ACCESS_MIX_HH
#define WHISPER_ANALYSIS_ACCESS_MIX_HH

#include "trace/trace_set.hh"

namespace whisper::analysis
{

/** PM vs DRAM access proportions (Figure 6). */
struct AccessMix
{
    std::uint64_t pmAccesses = 0;
    std::uint64_t dramAccesses = 0;

    double
    pmFraction() const
    {
        const std::uint64_t total = pmAccesses + dramAccesses;
        return total ? static_cast<double>(pmAccesses) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** NTI usage among PM writes (§5.2 "How is PM written?"). */
struct NtiUsage
{
    std::uint64_t cacheableStores = 0;
    std::uint64_t ntStores = 0;
    std::uint64_t cacheableBytes = 0;
    std::uint64_t ntBytes = 0;

    /**
     * Byte-weighted NTI share. This matches the machine-level count:
     * writing one 4 KB block takes 512 movnti instructions, so byte
     * weighting equals instruction weighting on real hardware.
     */
    double
    ntiFraction() const
    {
        const std::uint64_t total = cacheableBytes + ntBytes;
        return total ? static_cast<double>(ntBytes) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Event-weighted share (one instrumented call == one event). */
    double
    ntiEventFraction() const
    {
        const std::uint64_t total = cacheableStores + ntStores;
        return total ? static_cast<double>(ntStores) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Write amplification (§5.2 "How much write amplification?"). */
struct Amplification
{
    std::uint64_t userBytes = 0;
    std::uint64_t logBytes = 0;
    std::uint64_t allocBytes = 0;
    std::uint64_t txMetaBytes = 0;
    std::uint64_t fsMetaBytes = 0;

    std::uint64_t
    metaBytes() const
    {
        return logBytes + allocBytes + txMetaBytes + fsMetaBytes;
    }

    /** Extra bytes per user byte (1.0 == "100% amplification"). */
    double
    ratio() const
    {
        return userBytes ? static_cast<double>(metaBytes()) /
                               static_cast<double>(userBytes)
                         : 0.0;
    }
};

AccessMix computeAccessMix(const trace::TraceSet &traces);
NtiUsage computeNtiUsage(const trace::TraceSet &traces);
Amplification computeAmplification(const trace::TraceSet &traces);

/**
 * Counter-based forms used by the streaming pipeline: per-shard
 * AccessCounters (built with AccessCounters::add while events stream
 * by) merge associatively, and these overloads turn the merged total
 * into the same figures as the TraceSet overloads.
 */
AccessMix computeAccessMix(const trace::AccessCounters &total);
NtiUsage computeNtiUsage(const trace::AccessCounters &total);
Amplification computeAmplification(const trace::AccessCounters &total);

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_ACCESS_MIX_HH

#include "analysis/epoch_stats.hh"

namespace whisper::analysis
{

void
EpochStatsAccumulator::addEpoch(const Epoch &ep)
{
    totalEpochs_++;
    epochSizes_.add(ep.size());
    if (ep.isSingleton()) {
        singletons_++;
        singletonBytes_.add(ep.storeBytes);
        if (ep.storeBytes < 10)
            singletonSmall_++;
    }
    if (ep.endKind == trace::FenceKind::Durability)
        durabilityFences_++;
}

void
EpochStatsAccumulator::addTransaction(const TxInfo &tx)
{
    if (tx.epochs == 0)
        return;
    totalTransactions_++;
    epochsPerTx_.add(tx.epochs);
}

void
EpochStatsAccumulator::merge(const EpochStatsAccumulator &other)
{
    totalEpochs_ += other.totalEpochs_;
    totalTransactions_ += other.totalTransactions_;
    singletons_ += other.singletons_;
    singletonSmall_ += other.singletonSmall_;
    durabilityFences_ += other.durabilityFences_;
    epochSizes_.merge(other.epochSizes_);
    epochsPerTx_.merge(other.epochsPerTx_);
    singletonBytes_.merge(other.singletonBytes_);
}

EpochSummary
EpochStatsAccumulator::finalize(Tick firstTick, Tick lastTick) const
{
    EpochSummary out;
    out.totalEpochs = totalEpochs_;
    out.totalTransactions = totalTransactions_;
    out.epochSizes = epochSizes_;
    out.epochsPerTx = epochsPerTx_;
    out.singletonBytes = singletonBytes_;

    const Tick span = lastTick - firstTick;
    if (span > 0) {
        out.epochsPerSecond = static_cast<double>(out.totalEpochs) /
                              (static_cast<double>(span) * 1e-9);
    }
    if (out.totalEpochs > 0) {
        out.singletonFraction =
            static_cast<double>(singletons_) /
            static_cast<double>(out.totalEpochs);
        out.durabilityFenceFraction =
            static_cast<double>(durabilityFences_) /
            static_cast<double>(out.totalEpochs);
    }
    if (singletons_ > 0) {
        out.singletonUnder10B =
            static_cast<double>(singletonSmall_) /
            static_cast<double>(singletons_);
    }
    return out;
}

EpochSummary
summarizeEpochs(const EpochBuilder &builder,
                const trace::TraceSet &traces)
{
    EpochStatsAccumulator acc;
    for (const Epoch &ep : builder.epochs())
        acc.addEpoch(ep);
    for (const TxInfo &tx : builder.transactions())
        acc.addTransaction(tx);
    return acc.finalize(traces.firstTick(), traces.lastTick());
}

} // namespace whisper::analysis

#include "analysis/epoch_stats.hh"

namespace whisper::analysis
{

EpochSummary
summarizeEpochs(const EpochBuilder &builder,
                const trace::TraceSet &traces)
{
    EpochSummary out;
    std::uint64_t singletons = 0;
    std::uint64_t singleton_small = 0;
    std::uint64_t durability = 0;

    for (const Epoch &ep : builder.epochs()) {
        out.totalEpochs++;
        out.epochSizes.add(ep.size());
        if (ep.isSingleton()) {
            singletons++;
            out.singletonBytes.add(ep.storeBytes);
            if (ep.storeBytes < 10)
                singleton_small++;
        }
        if (ep.endKind == trace::FenceKind::Durability)
            durability++;
    }
    for (const TxInfo &tx : builder.transactions()) {
        if (tx.epochs == 0)
            continue;
        out.totalTransactions++;
        out.epochsPerTx.add(tx.epochs);
    }

    const Tick span = traces.lastTick() - traces.firstTick();
    if (span > 0) {
        out.epochsPerSecond = static_cast<double>(out.totalEpochs) /
                              (static_cast<double>(span) * 1e-9);
    }
    if (out.totalEpochs > 0) {
        out.singletonFraction =
            static_cast<double>(singletons) /
            static_cast<double>(out.totalEpochs);
        out.durabilityFenceFraction =
            static_cast<double>(durability) /
            static_cast<double>(out.totalEpochs);
    }
    if (singletons > 0) {
        out.singletonUnder10B = static_cast<double>(singleton_small) /
                                static_cast<double>(singletons);
    }
    return out;
}

} // namespace whisper::analysis

#include "analysis/pipeline.hh"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hh"
#include "trace/trace_reader.hh"

namespace whisper::analysis
{

namespace
{

/** Everything one per-thread shard produces before the join. */
struct ThreadShardResult
{
    std::vector<Epoch> epochs;
    std::vector<TxInfo> txs;
    trace::AccessCounters counters;
    Tick firstTick = 0;
    Tick lastTick = 0;
    std::uint64_t eventCount = 0;
};

/**
 * Join per-thread shard results (in recording order) and run the
 * epoch-level passes. All merges fold in fixed order on the calling
 * thread; only the shard bodies run on the pool.
 */
AnalysisResult
joinAndFinish(std::vector<ThreadShardResult> shards,
              const AnalysisOptions &options, ThreadPool &pool)
{
    AnalysisResult out;
    out.threadCount = shards.size();

    std::vector<Epoch> epochs;
    std::vector<TxInfo> txs;
    trace::AccessCounters counters;
    Tick first = ~Tick(0);
    for (auto &shard : shards) {
        out.totalEvents += shard.eventCount;
        if (shard.eventCount > 0) {
            first = std::min(first, shard.firstTick);
            out.lastTick = std::max(out.lastTick, shard.lastTick);
        }
        counters.merge(shard.counters);
        std::move(shard.epochs.begin(), shard.epochs.end(),
                  std::back_inserter(epochs));
        std::move(shard.txs.begin(), shard.txs.end(),
                  std::back_inserter(txs));
    }
    out.firstTick = first == ~Tick(0) ? 0 : first;

    EpochBuilder builder(std::move(epochs), std::move(txs));

    // Epoch statistics: shard the (sorted) epoch list, fold each
    // range independently, merge in range order.
    const auto ranges =
        shardRanges(builder.epochs().size(), pool.workerCount());
    auto statShards =
        pool.map(ranges.size(), [&](std::size_t s) {
            EpochStatsAccumulator acc;
            for (std::size_t i = ranges[s].begin; i < ranges[s].end;
                 i++) {
                acc.addEpoch(builder.epochs()[i]);
            }
            return acc;
        });
    EpochStatsAccumulator stats;
    for (const auto &shard : statShards)
        stats.merge(shard);
    for (const TxInfo &tx : builder.transactions())
        stats.addTransaction(tx);
    out.epochs = stats.finalize(out.firstTick, out.lastTick);

    // Dependencies: shard the line address space; each shard scans
    // the whole epoch list but owns a disjoint line subset, so the
    // OR-join reproduces the sequential flags exactly.
    const std::size_t depShards =
        options.dependencyShards
            ? options.dependencyShards
            : std::max<std::size_t>(1, pool.workerCount());
    auto lineShards = pool.map(depShards, [&](std::size_t s) {
        DependencyShard shard;
        shard.scan(builder.epochs(), options.window, s, depShards);
        return shard;
    });
    DependencyShard merged;
    for (const auto &shard : lineShards)
        merged.merge(shard);
    out.dependencies = merged.summarize();

    out.mix = computeAccessMix(counters);
    out.nti = computeNtiUsage(counters);
    out.amplification = computeAmplification(counters);
    return out;
}

} // namespace

AnalysisResult
analyzeTraces(const trace::TraceSet &traces,
              const AnalysisOptions &options)
{
    ThreadPool pool(options.jobs);
    const auto &buffers = traces.buffers();

    auto shards = pool.map(buffers.size(), [&](std::size_t i) {
        const trace::TraceBuffer &buf = *buffers[i];
        ThreadShardResult r;
        ThreadEpochAccumulator acc(buf.tid());
        acc.addChunk(buf.events().data(), buf.events().size());
        r.epochs = std::move(acc.epochs());
        r.txs = std::move(acc.transactions());
        // In-memory counters come from the buffer: they include
        // bulk-accounted volatile accesses that were never
        // materialized as events.
        r.counters = buf.counters();
        r.eventCount = buf.size();
        if (!buf.empty()) {
            r.firstTick = buf.events().front().ts;
            r.lastTick = buf.events().back().ts;
        }
        return r;
    });
    return joinAndFinish(std::move(shards), options, pool);
}

bool
analyzeTraceFile(const std::string &path, AnalysisResult &out,
                 const AnalysisOptions &options)
{
    trace::TraceFileReader reader;
    if (!reader.open(path))
        return false;

    ThreadPool pool(options.jobs);
    try {
        auto shards =
            pool.map(reader.sections().size(), [&](std::size_t i) {
                ThreadShardResult r;
                ThreadEpochAccumulator acc(
                    reader.sections()[i].tid);
                const bool ok = reader.streamSection(
                    i, [&](const trace::TraceEvent *events,
                           std::size_t count) {
                        if (count == 0)
                            return;
                        if (r.eventCount == 0)
                            r.firstTick = events[0].ts;
                        r.lastTick = events[count - 1].ts;
                        r.eventCount += count;
                        for (std::size_t j = 0; j < count; j++)
                            r.counters.add(events[j]);
                        acc.addChunk(events, count);
                    });
                if (!ok) {
                    throw std::runtime_error(
                        "trace section stream failed");
                }
                r.epochs = std::move(acc.epochs());
                r.txs = std::move(acc.transactions());
                return r;
            });
        out = joinAndFinish(std::move(shards), options, pool);
    } catch (const std::runtime_error &) {
        return false;
    }
    return true;
}

} // namespace whisper::analysis

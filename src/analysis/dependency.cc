#include "analysis/dependency.hh"

#include <unordered_map>

namespace whisper::analysis
{

DependencySummary
analyzeDependencies(const EpochBuilder &builder, Tick window)
{
    DependencySummary out;

    // Last write time of each line, per thread. Thread ids are dense
    // and small in this suite; a flat array per line keeps the scan
    // cache-friendly.
    ThreadId max_tid = 0;
    for (const Epoch &ep : builder.epochs())
        max_tid = std::max(max_tid, ep.tid);
    const std::size_t nthreads = static_cast<std::size_t>(max_tid) + 1;

    std::unordered_map<LineAddr, std::vector<Tick>> last_write;
    last_write.reserve(1 << 16);

    for (const Epoch &ep : builder.epochs()) {
        out.totalEpochs++;
        bool self_dep = false;
        bool cross_dep = false;
        const Tick horizon = ep.endTs > window ? ep.endTs - window : 0;
        for (const LineAddr line : ep.lines) {
            auto it = last_write.find(line);
            if (it != last_write.end()) {
                const auto &times = it->second;
                for (std::size_t t = 0; t < nthreads; t++) {
                    if (times[t] == 0 || times[t] < horizon)
                        continue;
                    // times[t] <= ep.endTs holds because epochs are
                    // processed in end-timestamp order.
                    if (t == ep.tid)
                        self_dep = true;
                    else
                        cross_dep = true;
                }
            }
        }
        // Update after classification so an epoch does not depend on
        // itself.
        for (const LineAddr line : ep.lines) {
            auto &times = last_write[line];
            if (times.empty())
                times.assign(nthreads, 0);
            times[ep.tid] = ep.endTs;
        }
        out.selfDependent += self_dep;
        out.crossDependent += cross_dep;
    }
    return out;
}

} // namespace whisper::analysis

#include "analysis/dependency.hh"

#include <algorithm>
#include <unordered_map>

namespace whisper::analysis
{

void
DependencyShard::scan(const std::vector<Epoch> &epochs, Tick window,
                      std::size_t shardIndex, std::size_t shardCount)
{
    selfFlags_.assign(epochs.size(), 0);
    crossFlags_.assign(epochs.size(), 0);
    if (shardCount == 0)
        shardCount = 1;

    // Last write time of each owned line, per thread. Thread ids are
    // dense and small in this suite; a flat array per line keeps the
    // scan cache-friendly.
    ThreadId max_tid = 0;
    for (const Epoch &ep : epochs)
        max_tid = std::max(max_tid, ep.tid);
    const std::size_t nthreads = static_cast<std::size_t>(max_tid) + 1;

    std::unordered_map<LineAddr, std::vector<Tick>> last_write;
    last_write.reserve(1 << 16);

    for (std::size_t i = 0; i < epochs.size(); i++) {
        const Epoch &ep = epochs[i];
        bool self_dep = false;
        bool cross_dep = false;
        const Tick horizon = ep.endTs > window ? ep.endTs - window : 0;
        for (const LineAddr line : ep.lines) {
            if (line % shardCount != shardIndex)
                continue;
            auto it = last_write.find(line);
            if (it != last_write.end()) {
                const auto &times = it->second;
                for (std::size_t t = 0; t < nthreads; t++) {
                    if (times[t] == 0 || times[t] < horizon)
                        continue;
                    // times[t] <= ep.endTs holds because epochs are
                    // processed in end-timestamp order.
                    if (t == ep.tid)
                        self_dep = true;
                    else
                        cross_dep = true;
                }
            }
        }
        // Update after classification so an epoch does not depend on
        // itself.
        for (const LineAddr line : ep.lines) {
            if (line % shardCount != shardIndex)
                continue;
            auto &times = last_write[line];
            if (times.empty())
                times.assign(nthreads, 0);
            times[ep.tid] = ep.endTs;
        }
        selfFlags_[i] = self_dep;
        crossFlags_[i] = cross_dep;
    }
}

void
DependencyShard::merge(const DependencyShard &other)
{
    if (selfFlags_.size() < other.selfFlags_.size()) {
        selfFlags_.resize(other.selfFlags_.size(), 0);
        crossFlags_.resize(other.crossFlags_.size(), 0);
    }
    for (std::size_t i = 0; i < other.selfFlags_.size(); i++) {
        selfFlags_[i] |= other.selfFlags_[i];
        crossFlags_[i] |= other.crossFlags_[i];
    }
}

DependencySummary
DependencyShard::summarize() const
{
    DependencySummary out;
    out.totalEpochs = selfFlags_.size();
    for (std::size_t i = 0; i < selfFlags_.size(); i++) {
        out.selfDependent += selfFlags_[i] != 0;
        out.crossDependent += crossFlags_[i] != 0;
    }
    return out;
}

DependencySummary
analyzeDependencies(const EpochBuilder &builder, Tick window)
{
    DependencyShard shard;
    shard.scan(builder.epochs(), window, 0, 1);
    return shard.summarize();
}

} // namespace whisper::analysis

#include "analysis/epoch.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace whisper::analysis
{

using trace::DataClass;
using trace::EventKind;
using trace::TraceEvent;

EpochBuilder::EpochBuilder(const trace::TraceSet &traces)
{
    for (const auto &buf : traces.buffers())
        buildThread(*buf);
    // Keep a deterministic global order: by end timestamp, then tid.
    std::stable_sort(epochs_.begin(), epochs_.end(),
                     [](const Epoch &a, const Epoch &b) {
                         if (a.endTs != b.endTs)
                             return a.endTs < b.endTs;
                         return a.tid < b.tid;
                     });
}

void
EpochBuilder::buildThread(const trace::TraceBuffer &buf)
{
    const ThreadId tid = buf.tid();
    std::uint64_t next_index = 0;

    Epoch cur;
    std::unordered_set<LineAddr> cur_lines;
    bool open = false;
    TxId cur_tx = 0;
    std::unordered_map<TxId, std::size_t> tx_index;

    auto tx_info = [&](TxId tx) -> TxInfo & {
        auto it = tx_index.find(tx);
        if (it == tx_index.end()) {
            it = tx_index.emplace(tx, txs_.size()).first;
            txs_.push_back({tx, tid, 0, 0, 0, false});
        }
        return txs_[it->second];
    };

    for (const TraceEvent &ev : buf.events()) {
        switch (ev.kind) {
          case EventKind::PmStore:
          case EventKind::PmNtStore: {
            if (!open) {
                cur = Epoch{};
                cur.tid = tid;
                cur.index = next_index;
                cur.startTs = ev.ts;
                cur.tx = cur_tx;
                cur_lines.clear();
                open = true;
            }
            const LineAddr first = lineOf(ev.addr);
            const LineAddr last =
                lineOf(ev.addr + (ev.size ? ev.size - 1 : 0));
            for (LineAddr line = first; line <= last; line++)
                cur_lines.insert(line);
            cur.storeCount++;
            cur.storeBytes += ev.size;
            if (ev.kind == EventKind::PmNtStore)
                cur.ntStoreCount++;
            if (cur_tx != 0) {
                TxInfo &info = tx_info(cur_tx);
                if (ev.cls == DataClass::User)
                    info.userBytes += ev.size;
                else
                    info.metaBytes += ev.size;
            }
            break;
          }
          case EventKind::Fence:
            if (open) {
                cur.endTs = ev.ts;
                cur.endKind = ev.fenceKind();
                cur.lines.assign(cur_lines.begin(), cur_lines.end());
                std::sort(cur.lines.begin(), cur.lines.end());
                if (cur.tx != 0)
                    tx_info(cur.tx).epochs++;
                epochs_.push_back(std::move(cur));
                next_index++;
                open = false;
            }
            break;
          case EventKind::TxBegin:
            cur_tx = ev.addr;
            tx_info(cur_tx);
            break;
          case EventKind::TxEnd:
            cur_tx = 0;
            break;
          case EventKind::TxAbort:
            tx_info(ev.addr).aborted = true;
            cur_tx = 0;
            break;
          default:
            break;
        }
    }
    // A trailing open epoch (stores never fenced) is not counted: it
    // was never ordered, matching the paper's definition.
}

std::vector<const Epoch *>
EpochBuilder::epochsOf(ThreadId tid) const
{
    std::vector<const Epoch *> out;
    for (const auto &ep : epochs_) {
        if (ep.tid == tid)
            out.push_back(&ep);
    }
    std::sort(out.begin(), out.end(),
              [](const Epoch *a, const Epoch *b) {
                  return a->index < b->index;
              });
    return out;
}

} // namespace whisper::analysis

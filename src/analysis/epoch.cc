#include "analysis/epoch.hh"

#include <algorithm>
#include <iterator>
#include <utility>

namespace whisper::analysis
{

using trace::DataClass;
using trace::EventKind;
using trace::TraceEvent;

ThreadEpochAccumulator::ThreadEpochAccumulator(ThreadId tid)
    : tid_(tid)
{
}

TxInfo &
ThreadEpochAccumulator::txInfo(TxId tx)
{
    auto it = txIndex_.find(tx);
    if (it == txIndex_.end()) {
        it = txIndex_.emplace(tx, txs_.size()).first;
        txs_.push_back({tx, tid_, 0, 0, 0, false});
    }
    return txs_[it->second];
}

void
ThreadEpochAccumulator::add(const TraceEvent &ev)
{
    switch (ev.kind) {
      case EventKind::PmStore:
      case EventKind::PmNtStore: {
        if (!open_) {
            cur_ = Epoch{};
            cur_.tid = tid_;
            cur_.index = nextIndex_;
            cur_.startTs = ev.ts;
            cur_.tx = curTx_;
            curLines_.clear();
            open_ = true;
        }
        const LineAddr first = lineOf(ev.addr);
        const LineAddr last =
            lineOf(ev.addr + (ev.size ? ev.size - 1 : 0));
        for (LineAddr line = first; line <= last; line++)
            curLines_.insert(line);
        cur_.storeCount++;
        cur_.storeBytes += ev.size;
        if (ev.kind == EventKind::PmNtStore)
            cur_.ntStoreCount++;
        if (curTx_ != 0) {
            TxInfo &info = txInfo(curTx_);
            if (ev.cls == DataClass::User)
                info.userBytes += ev.size;
            else
                info.metaBytes += ev.size;
        }
        break;
      }
      case EventKind::Fence:
        if (open_) {
            cur_.endTs = ev.ts;
            cur_.endKind = ev.fenceKind();
            cur_.lines.assign(curLines_.begin(), curLines_.end());
            std::sort(cur_.lines.begin(), cur_.lines.end());
            if (cur_.tx != 0)
                txInfo(cur_.tx).epochs++;
            epochs_.push_back(std::move(cur_));
            nextIndex_++;
            open_ = false;
        }
        break;
      case EventKind::TxBegin:
        curTx_ = ev.addr;
        txInfo(curTx_);
        break;
      case EventKind::TxEnd:
        curTx_ = 0;
        break;
      case EventKind::TxAbort:
        txInfo(ev.addr).aborted = true;
        curTx_ = 0;
        break;
      default:
        break;
    }
}

EpochBuilder::EpochBuilder(const trace::TraceSet &traces)
{
    for (const auto &buf : traces.buffers()) {
        ThreadEpochAccumulator acc(buf->tid());
        acc.addChunk(buf->events().data(), buf->events().size());
        std::move(acc.epochs().begin(), acc.epochs().end(),
                  std::back_inserter(epochs_));
        std::move(acc.transactions().begin(),
                  acc.transactions().end(),
                  std::back_inserter(txs_));
    }
    sortEpochs();
}

EpochBuilder::EpochBuilder(std::vector<Epoch> epochs,
                           std::vector<TxInfo> txs)
    : epochs_(std::move(epochs)), txs_(std::move(txs))
{
    sortEpochs();
}

void
EpochBuilder::sortEpochs()
{
    // Keep a deterministic global order: by end timestamp, then tid.
    std::stable_sort(epochs_.begin(), epochs_.end(),
                     [](const Epoch &a, const Epoch &b) {
                         if (a.endTs != b.endTs)
                             return a.endTs < b.endTs;
                         return a.tid < b.tid;
                     });
}

std::vector<const Epoch *>
EpochBuilder::epochsOf(ThreadId tid) const
{
    std::vector<const Epoch *> out;
    for (const auto &ep : epochs_) {
        if (ep.tid == tid)
            out.push_back(&ep);
    }
    std::sort(out.begin(), out.end(),
              [](const Epoch *a, const Epoch *b) {
                  return a->index < b->index;
              });
    return out;
}

} // namespace whisper::analysis

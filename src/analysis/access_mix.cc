#include "analysis/access_mix.hh"

namespace whisper::analysis
{

using trace::DataClass;

AccessMix
computeAccessMix(const trace::AccessCounters &total)
{
    AccessMix out;
    out.pmAccesses = total.pmAccesses();
    out.dramAccesses = total.dramAccesses();
    return out;
}

NtiUsage
computeNtiUsage(const trace::AccessCounters &total)
{
    NtiUsage out;
    out.cacheableStores = total.pmStores;
    out.ntStores = total.pmNtStores;
    out.cacheableBytes = total.pmStoreBytes;
    out.ntBytes = total.pmNtStoreBytes;
    return out;
}

Amplification
computeAmplification(const trace::AccessCounters &total)
{
    Amplification out;
    out.userBytes =
        total.pmBytesByClass[static_cast<int>(DataClass::User)];
    out.logBytes =
        total.pmBytesByClass[static_cast<int>(DataClass::Log)];
    out.allocBytes =
        total.pmBytesByClass[static_cast<int>(DataClass::AllocMeta)];
    out.txMetaBytes =
        total.pmBytesByClass[static_cast<int>(DataClass::TxMeta)];
    out.fsMetaBytes =
        total.pmBytesByClass[static_cast<int>(DataClass::FsMeta)];
    return out;
}

AccessMix
computeAccessMix(const trace::TraceSet &traces)
{
    return computeAccessMix(traces.totalCounters());
}

NtiUsage
computeNtiUsage(const trace::TraceSet &traces)
{
    return computeNtiUsage(traces.totalCounters());
}

Amplification
computeAmplification(const trace::TraceSet &traces)
{
    return computeAmplification(traces.totalCounters());
}

} // namespace whisper::analysis

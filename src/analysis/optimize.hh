/**
 * @file
 * Trace-driven fence/flush redundancy analysis (Bentō-style).
 *
 * The paper measures ordering and durability overhead; this pass finds
 * the part of it that is removable. Each PmFlush and Fence event of a
 * trace is classified as required or redundant under four categories:
 *
 *  (a) flush re-dirtied — the flushed line is stored again before the
 *      next fence, so the writeback persists data that is immediately
 *      overwritten (the flush should sink below the last store);
 *  (b) flush clean — the line was never stored since the last fence
 *      that drained a flush of it (or since the start of the trace),
 *      so the writeback moves no new bytes;
 *  (c) ordering fence, no conflict — the epochs on either side of an
 *      ordering fence share no cache line, so the fence separates no
 *      conflicting accesses and the next fence subsumes it;
 *  (d) coalescible durability pair — a durability fence inside a
 *      transaction whose epoch is empty (no store, NT store or flush
 *      since the previous fence): it pairs with that previous fence
 *      and one of the two suffices.
 *
 * Classification is a per-thread streaming computation with the same
 * accumulator discipline as epoch.hh: ThreadOptimizeAccumulator
 * consumes one thread's events in program order, per-thread summaries
 * add up in any grouping, and the parallel drivers below produce
 * bit-identical results at any job count.
 *
 * The analysis is deliberately conservative where the trace alone
 * cannot prove redundancy: NT-stored lines stay dirty until a flush
 * of them is fenced (under-reporting (b)), and durability fences with
 * non-empty epochs are always required. Category (c) is a
 * measurement, not an elision license — an ordering fence can order a
 * log record against data on a *different* line (that is its job in
 * the txlibs' append paths), which is exactly why elision is keyed to
 * named origin sites with layer-specific safety arguments
 * (txlib/elision.hh) rather than applied wholesale.
 */

#ifndef WHISPER_ANALYSIS_OPTIMIZE_HH
#define WHISPER_ANALYSIS_OPTIMIZE_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace_set.hh"

namespace whisper::analysis
{

/** Flush/fence counts attributed to one trace origin site. */
struct OriginCounts
{
    std::uint64_t flushes = 0;
    std::uint64_t redundantFlushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t redundantFences = 0;

    void
    merge(const OriginCounts &other)
    {
        flushes += other.flushes;
        redundantFlushes += other.redundantFlushes;
        fences += other.fences;
        redundantFences += other.redundantFences;
    }
};

/**
 * Additive summary of one or more threads' classification. Merging is
 * plain addition, so shard grouping cannot change the result.
 */
struct OptimizeSummary
{
    std::uint64_t totalFlushes = 0;
    std::uint64_t flushRedirtied = 0;   //!< category (a)
    std::uint64_t flushClean = 0;       //!< category (b)
    std::uint64_t totalFences = 0;
    std::uint64_t fenceNoConflict = 0;  //!< category (c)
    std::uint64_t fenceCoalescible = 0; //!< category (d)
    std::array<OriginCounts, trace::kOriginCount> byOrigin{};

    std::uint64_t
    redundantFlushes() const
    {
        return flushRedirtied + flushClean;
    }

    std::uint64_t
    redundantFences() const
    {
        return fenceNoConflict + fenceCoalescible;
    }

    void merge(const OptimizeSummary &other);
};

/**
 * One per-site elision suggestion: counts for an origin that had any
 * redundant operation, plus the name of the ElisionPolicy bit that
 * can act on it ("" when no mechanically-safe policy exists — e.g.
 * log-append fences, whose ordering a recovery argument needs).
 */
struct ElisionSuggestion
{
    trace::Origin origin = trace::Origin::None;
    OriginCounts counts;
    const char *policy = "";
};

/** Suggestions for every origin with redundant work, in enum order. */
std::vector<ElisionSuggestion>
suggestElisions(const OptimizeSummary &summary);

/**
 * Streaming redundancy classification for ONE thread.
 *
 * Feed the thread's events in program order via add()/addChunk(),
 * then call finish() — the trailing ordering fence (if any) is
 * resolved against the open tail epoch. summary() is valid after
 * finish().
 */
class ThreadOptimizeAccumulator
{
  public:
    explicit ThreadOptimizeAccumulator(ThreadId tid);

    /** Consume the next event of this thread, in program order. */
    void add(const trace::TraceEvent &ev);

    /** Consume a contiguous chunk of events, in program order. */
    void
    addChunk(const trace::TraceEvent *events, std::size_t count)
    {
        for (std::size_t i = 0; i < count; i++)
            add(events[i]);
    }

    /** Resolve trailing state; call once, after the last event. */
    void finish();

    ThreadId tid() const { return tid_; }

    const OptimizeSummary &summary() const { return summary_; }

  private:
    enum class LineState : std::uint8_t
    {
        Dirty,   //!< stored since last persisted writeback
        Pending, //!< flushed since last store, fence not yet seen
    };

    /** A flush awaiting (a)-resolution: re-store before the fence. */
    struct PendingFlush
    {
        std::uint8_t origin = 0;
        unsigned remaining = 0; //!< dirty lines not yet re-stored
        bool resolved = false;
    };

    void noteStore(const trace::TraceEvent &ev);
    void noteFlush(const trace::TraceEvent &ev);
    void noteFence(const trace::TraceEvent &ev);
    void touchLine(LineAddr line);
    void resolvePrevFence();

    ThreadId tid_;
    OptimizeSummary summary_;

    /** Absent = clean (never stored, or persisted by some fence). */
    std::unordered_map<LineAddr, LineState> lineState_;
    /** Line -> index into pendingFlushes_ for (a) resolution. */
    std::unordered_map<LineAddr, std::size_t> pendingByLine_;
    std::vector<PendingFlush> pendingFlushes_;

    /** Lines stored or flushed since the last fence. */
    std::unordered_set<LineAddr> curTouched_;
    bool intervalHasOps_ = false;     //!< store/ntstore/flush seen
    bool intervalTxBoundary_ = false; //!< Tx* event seen
    TxId curTx_ = 0;
    bool fenceSeen_ = false;

    /** Deferred ordering fence awaiting its following epoch. */
    bool prevFenceActive_ = false;
    bool prevFenceConflict_ = false;
    std::uint8_t prevFenceOrigin_ = 0;
    std::unordered_set<LineAddr> prevFenceLines_;
};

/** Options for the parallel drivers. */
struct OptimizeOptions
{
    unsigned jobs = 0; //!< worker threads; 0 = hardware concurrency
};

/** Whole-trace classification result. */
struct OptimizeResult
{
    OptimizeSummary summary;
    std::uint64_t totalEvents = 0;
    std::size_t threadCount = 0;
};

/** Classify an in-memory trace set. Deterministic at any job count. */
OptimizeResult optimizeTraces(const trace::TraceSet &traces,
                              const OptimizeOptions &options = {});

/**
 * Classify a trace file, streaming per-thread sections in parallel.
 * Returns false when the file cannot be opened or is corrupt.
 */
bool optimizeTraceFile(const std::string &path, OptimizeResult &out,
                       const OptimizeOptions &options = {});

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_OPTIMIZE_HH

/**
 * @file
 * Epoch reconstruction from traces.
 *
 * An epoch is the set of PM stores (cacheable or non-temporal) a
 * thread performs between two sfence instructions; flush operations
 * are ignored, exactly as in the paper's §5.1 methodology. Epochs are
 * attributed to the durable transaction that was open when the
 * epoch's first store executed.
 */

#ifndef WHISPER_ANALYSIS_EPOCH_HH
#define WHISPER_ANALYSIS_EPOCH_HH

#include <vector>

#include "trace/trace_set.hh"

namespace whisper::analysis
{

/** One reconstructed epoch. */
struct Epoch
{
    ThreadId tid = 0;
    std::uint64_t index = 0;       //!< per-thread sequence number
    Tick startTs = 0;              //!< first store
    Tick endTs = 0;                //!< closing fence
    TxId tx = 0;                   //!< 0 when outside any transaction
    trace::FenceKind endKind =
        trace::FenceKind::Ordering; //!< ordering vs durability fence
    std::vector<LineAddr> lines;   //!< unique 64B lines, sorted
    std::uint64_t storeCount = 0;
    std::uint64_t storeBytes = 0;
    std::uint64_t ntStoreCount = 0;

    /** Epoch size as defined by the paper: unique lines stored. */
    std::uint64_t size() const { return lines.size(); }

    bool isSingleton() const { return lines.size() == 1; }
};

/** Per-transaction footprint reconstructed alongside epochs. */
struct TxInfo
{
    TxId tx;
    ThreadId tid;
    std::uint64_t epochs = 0;      //!< ordering points in the tx
    std::uint64_t userBytes = 0;   //!< DataClass::User stores
    std::uint64_t metaBytes = 0;   //!< everything else
    bool aborted = false;
};

/**
 * Rebuilds epochs and transaction footprints from a TraceSet.
 */
class EpochBuilder
{
  public:
    /** Reconstruct all threads' epochs (per-thread program order). */
    explicit EpochBuilder(const trace::TraceSet &traces);

    const std::vector<Epoch> &epochs() const { return epochs_; }
    const std::vector<TxInfo> &transactions() const { return txs_; }

    /** Epochs of one thread, in order. */
    std::vector<const Epoch *> epochsOf(ThreadId tid) const;

    std::uint64_t epochCount() const { return epochs_.size(); }

  private:
    void buildThread(const trace::TraceBuffer &buf);

    std::vector<Epoch> epochs_;
    std::vector<TxInfo> txs_;
};

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_EPOCH_HH

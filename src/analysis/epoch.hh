/**
 * @file
 * Epoch reconstruction from traces.
 *
 * An epoch is the set of PM stores (cacheable or non-temporal) a
 * thread performs between two sfence instructions; flush operations
 * are ignored, exactly as in the paper's §5.1 methodology. Epochs are
 * attributed to the durable transaction that was open when the
 * epoch's first store executed.
 *
 * Reconstruction is a per-thread streaming computation:
 * ThreadEpochAccumulator consumes one thread's events in program
 * order — from an in-memory TraceBuffer or chunk-by-chunk from a
 * trace file — and different threads' accumulators are independent,
 * which is what lets the parallel pipeline (pipeline.hh) fan them out
 * across cores and still join into the exact sequential result.
 */

#ifndef WHISPER_ANALYSIS_EPOCH_HH
#define WHISPER_ANALYSIS_EPOCH_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace_set.hh"

namespace whisper::analysis
{

/** One reconstructed epoch. */
struct Epoch
{
    ThreadId tid = 0;
    std::uint64_t index = 0;       //!< per-thread sequence number
    Tick startTs = 0;              //!< first store
    Tick endTs = 0;                //!< closing fence
    TxId tx = 0;                   //!< 0 when outside any transaction
    trace::FenceKind endKind =
        trace::FenceKind::Ordering; //!< ordering vs durability fence
    std::vector<LineAddr> lines;   //!< unique 64B lines, sorted
    std::uint64_t storeCount = 0;
    std::uint64_t storeBytes = 0;
    std::uint64_t ntStoreCount = 0;

    /** Epoch size as defined by the paper: unique lines stored. */
    std::uint64_t size() const { return lines.size(); }

    bool isSingleton() const { return lines.size() == 1; }
};

/** Per-transaction footprint reconstructed alongside epochs. */
struct TxInfo
{
    TxId tx;
    ThreadId tid;
    std::uint64_t epochs = 0;      //!< ordering points in the tx
    std::uint64_t userBytes = 0;   //!< DataClass::User stores
    std::uint64_t metaBytes = 0;   //!< everything else
    bool aborted = false;
};

/**
 * Streaming epoch reconstruction for ONE thread.
 *
 * Feed the thread's events in program order via add()/addChunk();
 * epochs() and transactions() are valid once the stream ends (a
 * trailing open epoch — stores never fenced — is not counted, it was
 * never ordered). The result is a pure function of the event
 * sequence, so accumulators for different threads can run on
 * different cores.
 */
class ThreadEpochAccumulator
{
  public:
    explicit ThreadEpochAccumulator(ThreadId tid);

    /** Consume the next event of this thread, in program order. */
    void add(const trace::TraceEvent &ev);

    /** Consume a contiguous chunk of events, in program order. */
    void
    addChunk(const trace::TraceEvent *events, std::size_t count)
    {
        for (std::size_t i = 0; i < count; i++)
            add(events[i]);
    }

    ThreadId tid() const { return tid_; }

    /** Closed epochs so far, in per-thread program order. */
    std::vector<Epoch> &epochs() { return epochs_; }
    const std::vector<Epoch> &epochs() const { return epochs_; }

    /** Transactions seen so far, in first-touch order. */
    std::vector<TxInfo> &transactions() { return txs_; }
    const std::vector<TxInfo> &transactions() const { return txs_; }

  private:
    TxInfo &txInfo(TxId tx);

    ThreadId tid_;
    std::uint64_t nextIndex_ = 0;
    Epoch cur_;
    std::unordered_set<LineAddr> curLines_;
    bool open_ = false;
    TxId curTx_ = 0;
    std::unordered_map<TxId, std::size_t> txIndex_;
    std::vector<Epoch> epochs_;
    std::vector<TxInfo> txs_;
};

/**
 * Rebuilds epochs and transaction footprints from a TraceSet, or
 * assembles them from per-thread accumulator results. Either way the
 * final epoch list is globally ordered by end timestamp (ties broken
 * by tid), which the dependency analysis relies on.
 */
class EpochBuilder
{
  public:
    /** Reconstruct all threads' epochs (per-thread program order). */
    explicit EpochBuilder(const trace::TraceSet &traces);

    /**
     * Assemble from already-reconstructed per-thread results,
     * concatenated in recording order. Produces a state bit-identical
     * to the TraceSet constructor when the inputs come from
     * ThreadEpochAccumulators fed the same per-thread streams.
     */
    EpochBuilder(std::vector<Epoch> epochs, std::vector<TxInfo> txs);

    const std::vector<Epoch> &epochs() const { return epochs_; }
    const std::vector<TxInfo> &transactions() const { return txs_; }

    /** Epochs of one thread, in order. */
    std::vector<const Epoch *> epochsOf(ThreadId tid) const;

    std::uint64_t epochCount() const { return epochs_.size(); }

  private:
    void sortEpochs();

    std::vector<Epoch> epochs_;
    std::vector<TxInfo> txs_;
};

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_EPOCH_HH

/**
 * @file
 * Epoch dependency analysis (the paper's Figure 5).
 *
 * Write-after-write dependencies between epochs are classified as
 *
 *  - self-dependency:  E^m_k  ~>_c  E^m'_k — two epochs of the *same*
 *    thread store to a common cache line c, and
 *  - cross-dependency: E^m_i (x)_c E^n_j — epochs of *different*
 *    threads store to a common line,
 *
 * counted only when the earlier epoch ended within a 50 us window of
 * the later epoch (the paper's bound on how long a flushed line can
 * stay buffered before becoming persistent).
 */

#ifndef WHISPER_ANALYSIS_DEPENDENCY_HH
#define WHISPER_ANALYSIS_DEPENDENCY_HH

#include "analysis/epoch.hh"

namespace whisper::analysis
{

/** Result of the dependency scan. */
struct DependencySummary
{
    std::uint64_t totalEpochs = 0;
    std::uint64_t selfDependent = 0;   //!< epochs with >=1 self-dep
    std::uint64_t crossDependent = 0;  //!< epochs with >=1 cross-dep

    double
    selfFraction() const
    {
        return totalEpochs
                   ? static_cast<double>(selfDependent) /
                         static_cast<double>(totalEpochs)
                   : 0.0;
    }

    double
    crossFraction() const
    {
        return totalEpochs
                   ? static_cast<double>(crossDependent) /
                         static_cast<double>(totalEpochs)
                   : 0.0;
    }
};

/**
 * Scan epochs (must be globally ordered by end timestamp, as
 * EpochBuilder produces) for WAW dependencies within @p window ticks.
 */
DependencySummary analyzeDependencies(const EpochBuilder &builder,
                                      Tick window = kDependencyWindow);

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_DEPENDENCY_HH

/**
 * @file
 * Epoch dependency analysis (the paper's Figure 5).
 *
 * Write-after-write dependencies between epochs are classified as
 *
 *  - self-dependency:  E^m_k  ~>_c  E^m'_k — two epochs of the *same*
 *    thread store to a common cache line c, and
 *  - cross-dependency: E^m_i (x)_c E^n_j — epochs of *different*
 *    threads store to a common line,
 *
 * counted only when the earlier epoch ended within a 50 us window of
 * the later epoch (the paper's bound on how long a flushed line can
 * stay buffered before becoming persistent).
 *
 * The scan parallelizes by sharding the *line address space*, not the
 * epoch list: whether epoch E depends on an earlier epoch through
 * line c involves only the write history of c, so a shard that owns a
 * subset of lines computes exact per-epoch dependency flags for its
 * lines, and OR-merging the shards' flags reproduces the sequential
 * classification bit for bit — including exact cross-thread counts —
 * at any shard count.
 */

#ifndef WHISPER_ANALYSIS_DEPENDENCY_HH
#define WHISPER_ANALYSIS_DEPENDENCY_HH

#include "analysis/epoch.hh"

namespace whisper::analysis
{

/** Result of the dependency scan. */
struct DependencySummary
{
    std::uint64_t totalEpochs = 0;
    std::uint64_t selfDependent = 0;   //!< epochs with >=1 self-dep
    std::uint64_t crossDependent = 0;  //!< epochs with >=1 cross-dep

    double
    selfFraction() const
    {
        return totalEpochs
                   ? static_cast<double>(selfDependent) /
                         static_cast<double>(totalEpochs)
                   : 0.0;
    }

    double
    crossFraction() const
    {
        return totalEpochs
                   ? static_cast<double>(crossDependent) /
                         static_cast<double>(totalEpochs)
                   : 0.0;
    }
};

/**
 * Per-epoch dependency flags for one shard of the line space.
 *
 * scan() walks the globally ordered epoch list once, but classifies
 * and records write history only for lines owned by this shard
 * (line % shardCount == shardIndex). merge() ORs another shard's
 * flags in; summarize() counts flagged epochs. One shard covering
 * the whole line space is exactly the sequential algorithm.
 */
class DependencyShard
{
  public:
    /**
     * Classify @p epochs (globally ordered by end timestamp, as
     * EpochBuilder produces) against the lines owned by shard
     * @p shardIndex of @p shardCount, within @p window ticks.
     */
    void scan(const std::vector<Epoch> &epochs, Tick window,
              std::size_t shardIndex, std::size_t shardCount);

    /** OR @p other's per-epoch flags into this shard's. */
    void merge(const DependencyShard &other);

    /** Count flagged epochs. */
    DependencySummary summarize() const;

    const std::vector<std::uint8_t> &selfFlags() const
    {
        return selfFlags_;
    }
    const std::vector<std::uint8_t> &crossFlags() const
    {
        return crossFlags_;
    }

  private:
    std::vector<std::uint8_t> selfFlags_;
    std::vector<std::uint8_t> crossFlags_;
};

/**
 * Scan epochs (must be globally ordered by end timestamp, as
 * EpochBuilder produces) for WAW dependencies within @p window ticks.
 */
DependencySummary analyzeDependencies(const EpochBuilder &builder,
                                      Tick window = kDependencyWindow);

} // namespace whisper::analysis

#endif // WHISPER_ANALYSIS_DEPENDENCY_HH

#include "analysis/optimize.hh"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hh"
#include "trace/trace_reader.hh"

namespace whisper::analysis
{

void
OptimizeSummary::merge(const OptimizeSummary &other)
{
    totalFlushes += other.totalFlushes;
    flushRedirtied += other.flushRedirtied;
    flushClean += other.flushClean;
    totalFences += other.totalFences;
    fenceNoConflict += other.fenceNoConflict;
    fenceCoalescible += other.fenceCoalescible;
    for (std::size_t i = 0; i < byOrigin.size(); i++)
        byOrigin[i].merge(other.byOrigin[i]);
}

std::vector<ElisionSuggestion>
suggestElisions(const OptimizeSummary &summary)
{
    // Origins whose redundancy a named ElisionPolicy bit can act on
    // (the mechanically-safe subset; see txlib/elision.hh for the
    // per-site recovery arguments).
    auto policyFor = [](trace::Origin origin) -> const char * {
        switch (origin) {
          case trace::Origin::MneCommitApply:
            return "mne-commit-apply";
          case trace::Origin::NvmlClearLog:
            return "nvml-clear-log";
          case trace::Origin::NvmlCommitFlush:
            return "nvml-commit-fence";
          default:
            return "";
        }
    };
    std::vector<ElisionSuggestion> out;
    for (std::size_t i = 0; i < summary.byOrigin.size(); i++) {
        const OriginCounts &counts = summary.byOrigin[i];
        if (counts.redundantFlushes == 0 && counts.redundantFences == 0)
            continue;
        ElisionSuggestion s;
        s.origin = static_cast<trace::Origin>(i);
        s.counts = counts;
        s.policy = policyFor(s.origin);
        out.push_back(s);
    }
    return out;
}

ThreadOptimizeAccumulator::ThreadOptimizeAccumulator(ThreadId tid)
    : tid_(tid)
{
}

void
ThreadOptimizeAccumulator::touchLine(LineAddr line)
{
    if (prevFenceActive_ && !prevFenceConflict_ &&
        prevFenceLines_.count(line)) {
        prevFenceConflict_ = true;
    }
    curTouched_.insert(line);
}

void
ThreadOptimizeAccumulator::noteStore(const trace::TraceEvent &ev)
{
    intervalHasOps_ = true;
    const LineAddr first = lineOf(ev.addr);
    const LineAddr last =
        lineOf(ev.addr + (ev.size ? ev.size - 1 : 0));
    for (LineAddr line = first; line <= last; line++) {
        touchLine(line);
        auto it = lineState_.find(line);
        if (it != lineState_.end() && it->second == LineState::Pending) {
            // Re-store of a flushed-but-unfenced line: the flush that
            // queued the writeback persists bytes that are already
            // stale — category (a) once all its lines re-dirty.
            auto pit = pendingByLine_.find(line);
            if (pit != pendingByLine_.end()) {
                PendingFlush &pf = pendingFlushes_[pit->second];
                if (!pf.resolved && --pf.remaining == 0) {
                    pf.resolved = true;
                    summary_.flushRedirtied++;
                    summary_.byOrigin[pf.origin < trace::kOriginCount
                                          ? pf.origin
                                          : 0]
                        .redundantFlushes++;
                }
                pendingByLine_.erase(pit);
            }
        }
        lineState_[line] = LineState::Dirty;
    }
}

void
ThreadOptimizeAccumulator::noteFlush(const trace::TraceEvent &ev)
{
    intervalHasOps_ = true;
    const std::uint8_t origin =
        ev.origin < trace::kOriginCount ? ev.origin : 0;
    summary_.totalFlushes++;
    summary_.byOrigin[origin].flushes++;

    const LineAddr first = lineOf(ev.addr);
    const LineAddr last =
        lineOf(ev.addr + (ev.size ? ev.size - 1 : 0));
    unsigned dirty = 0;
    for (LineAddr line = first; line <= last; line++) {
        touchLine(line);
        auto it = lineState_.find(line);
        if (it != lineState_.end() && it->second == LineState::Dirty)
            dirty++;
    }
    if (dirty == 0) {
        // No covered line carries unpersisted bytes: the writeback
        // moves nothing — category (b).
        summary_.flushClean++;
        summary_.byOrigin[origin].redundantFlushes++;
        return;
    }
    // Required so far; arm (a) detection on the dirty lines. A line
    // already awaiting resolution keeps its earlier flush record (a
    // second flush of a Pending line was counted clean above).
    pendingFlushes_.push_back({origin, dirty, false});
    const std::size_t idx = pendingFlushes_.size() - 1;
    for (LineAddr line = first; line <= last; line++) {
        auto it = lineState_.find(line);
        if (it != lineState_.end() && it->second == LineState::Dirty) {
            it->second = LineState::Pending;
            pendingByLine_[line] = idx;
        }
    }
}

void
ThreadOptimizeAccumulator::resolvePrevFence()
{
    if (!prevFenceActive_)
        return;
    if (!prevFenceConflict_) {
        // The epochs on either side share no line: the fence ordered
        // nothing the next fence does not also order — category (c).
        summary_.fenceNoConflict++;
        summary_.byOrigin[prevFenceOrigin_ < trace::kOriginCount
                              ? prevFenceOrigin_
                              : 0]
            .redundantFences++;
    }
    prevFenceActive_ = false;
    prevFenceConflict_ = false;
    prevFenceLines_.clear();
}

void
ThreadOptimizeAccumulator::noteFence(const trace::TraceEvent &ev)
{
    const std::uint8_t origin =
        ev.origin < trace::kOriginCount ? ev.origin : 0;
    summary_.totalFences++;
    summary_.byOrigin[origin].fences++;

    resolvePrevFence();

    if (ev.fenceKind() == trace::FenceKind::Durability) {
        // Coalescible pair (d): a durability fence inside a
        // transaction whose epoch is empty — the previous fence
        // already drained everything this one would.
        if (fenceSeen_ && !intervalHasOps_ && curTx_ != 0 &&
            !intervalTxBoundary_) {
            summary_.fenceCoalescible++;
            summary_.byOrigin[origin].redundantFences++;
        }
    } else {
        // Ordering fence: verdict depends on the epoch that follows;
        // defer until the next fence (or finish()).
        prevFenceActive_ = true;
        prevFenceConflict_ = false;
        prevFenceOrigin_ = origin;
        prevFenceLines_ = std::move(curTouched_);
    }

    // The fence drains this thread's queued writebacks: flushed lines
    // with no later store become clean. Unresolved (a) candidates
    // stay counted as required.
    for (const auto &entry : pendingByLine_)
        lineState_.erase(entry.first);
    pendingByLine_.clear();
    pendingFlushes_.clear();

    curTouched_.clear();
    intervalHasOps_ = false;
    intervalTxBoundary_ = false;
    fenceSeen_ = true;
}

void
ThreadOptimizeAccumulator::add(const trace::TraceEvent &ev)
{
    switch (ev.kind) {
      case trace::EventKind::PmStore:
      case trace::EventKind::PmNtStore:
        noteStore(ev);
        break;
      case trace::EventKind::PmFlush:
        noteFlush(ev);
        break;
      case trace::EventKind::Fence:
        noteFence(ev);
        break;
      case trace::EventKind::TxBegin:
        curTx_ = ev.addr;
        intervalTxBoundary_ = true;
        break;
      case trace::EventKind::TxEnd:
      case trace::EventKind::TxAbort:
        curTx_ = 0;
        intervalTxBoundary_ = true;
        break;
      default:
        break; // loads and DRAM traffic do not affect persistence
    }
}

void
ThreadOptimizeAccumulator::finish()
{
    // A trailing ordering fence is resolved against the open tail
    // epoch: whatever conflicts it had have been observed by now.
    resolvePrevFence();
}

namespace
{

struct OptimizeShard
{
    OptimizeSummary summary;
    std::uint64_t eventCount = 0;
};

OptimizeResult
joinShards(std::vector<OptimizeShard> shards)
{
    OptimizeResult out;
    out.threadCount = shards.size();
    for (const OptimizeShard &shard : shards) {
        out.totalEvents += shard.eventCount;
        out.summary.merge(shard.summary);
    }
    return out;
}

} // namespace

OptimizeResult
optimizeTraces(const trace::TraceSet &traces,
               const OptimizeOptions &options)
{
    ThreadPool pool(options.jobs);
    const auto &buffers = traces.buffers();
    auto shards = pool.map(buffers.size(), [&](std::size_t i) {
        const trace::TraceBuffer &buf = *buffers[i];
        ThreadOptimizeAccumulator acc(buf.tid());
        acc.addChunk(buf.events().data(), buf.events().size());
        acc.finish();
        return OptimizeShard{acc.summary(), buf.size()};
    });
    return joinShards(std::move(shards));
}

bool
optimizeTraceFile(const std::string &path, OptimizeResult &out,
                  const OptimizeOptions &options)
{
    trace::TraceFileReader reader;
    if (!reader.open(path))
        return false;

    ThreadPool pool(options.jobs);
    try {
        auto shards =
            pool.map(reader.sections().size(), [&](std::size_t i) {
                OptimizeShard shard;
                ThreadOptimizeAccumulator acc(
                    reader.sections()[i].tid);
                const bool ok = reader.streamSection(
                    i, [&](const trace::TraceEvent *events,
                           std::size_t count) {
                        shard.eventCount += count;
                        acc.addChunk(events, count);
                    });
                if (!ok) {
                    throw std::runtime_error(
                        "trace section stream failed");
                }
                acc.finish();
                shard.summary = acc.summary();
                return shard;
            });
        out = joinShards(std::move(shards));
    } catch (const std::runtime_error &) {
        return false;
    }
    return true;
}

} // namespace whisper::analysis

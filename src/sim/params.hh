/**
 * @file
 * Simulation parameters (paper Table 3).
 *
 * Four cores, private 64 KB L1D caches, a shared last-level cache,
 * two memory controllers, DRAM at 40 cycles and PM at 160 cycles.
 * The trace-driven core model is in-order (one memory event at a
 * time per core); this under-states MLP for every persistency model
 * equally, so the relative results — which is what Figure 10 reports
 * — are preserved.
 */

#ifndef WHISPER_SIM_PARAMS_HH
#define WHISPER_SIM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/pm_device.hh"

namespace whisper::sim
{

/** Cycle counts and structure sizes of the simulated machine. */
struct SimParams
{
    unsigned cores = 4;

    /** @{ \name Cache geometry (64 B lines) */
    std::uint32_t l1Sets = 128;   //!< 128 x 8 x 64B = 64 KB
    std::uint32_t l1Ways = 8;
    std::uint32_t llcSets = 8192; //!< 8192 x 16 x 64B = 8 MB shared
    std::uint32_t llcWays = 16;
    /** @} */

    /** @{ \name Latencies (cycles) */
    std::uint32_t l1HitLat = 1;
    std::uint32_t llcHitLat = 20;
    std::uint32_t dramLat = 40;   //!< Table 3
    std::uint32_t coherenceLat = 30; //!< cross-core transfer
    /** @} */

    /**
     * The PM device cost surface: latencies, memory controllers,
     * DIMM interleaving. The default (PmDeviceParams::paperTable3())
     * is the uniform Table-3 machine; swap in
     * PmDeviceParams::optaneCalibrated() for the asymmetric device.
     */
    PmDeviceParams device;

    /** @{ \name HOPS persist buffers (§6.4: 32 entries, drain at 16) */
    std::uint32_t pbEntries = 32;
    std::uint32_t pbDrainThreshold = 16;

    /**
     * Epoch coalescing in the PB back ends — the optimization the
     * paper explicitly leaves for future work (§6.3). Adjacent
     * epochs of one thread with no cross-thread dependencies merge
     * before draining, deduplicating repeated lines.
     */
    bool pbCoalesce = false;

    /**
     * DPO/BSP mode (related work §7): Buffered Strict Persistency
     * serializes the flushing of updates within an epoch under
     * x86-TSO and broadcasts every PB write-back, instead of HOPS's
     * concurrent per-epoch issue. Used by ModelKind::Dpo.
     */
    bool dpoMode = false;
    /** @} */

    /**
     * Durability point: false = at the NVM device (a persist costs
     * device.pmLat), true = a persistent write queue at the MC (a
     * persist costs device.mcQueueLat). The paper evaluates both for
     * x86 and HOPS.
     */
    bool persistentWriteQueue = false;
};

} // namespace whisper::sim

#endif // WHISPER_SIM_PARAMS_HH

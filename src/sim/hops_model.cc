/**
 * @file
 * The HOPS persistency model: split per-thread persist buffers,
 * ofence/dfence, epoch timestamps, coherence-gleaned cross-thread
 * dependencies and counting Bloom filters (paper §6).
 *
 * Mapping from traces: the applications are written in the current
 * x86 style, so their traces contain clwb (PmFlush) events and fences
 * tagged Ordering or Durability by the instrumentation. On HOPS the
 * same program would drop every clwb, use ofence at ordering points
 * and dfence at commits — so this model elides flushes, makes
 * Ordering fences one-cycle timestamp bumps, and drains the persist
 * buffer at Durability fences.
 */

#include <deque>
#include <vector>

#include "common/logging.hh"
#include "sim/bloom.hh"
#include "sim/persist_model.hh"

namespace whisper::sim
{

namespace
{

/** One buffered epoch in a persist buffer. */
struct PbEpoch
{
    std::uint64_t ts = 0;
    std::vector<LineAddr> lines;
    /** Conservative cross-thread dependency: (core, epoch ts). */
    std::vector<std::pair<unsigned, std::uint64_t>> deps;
};

class HopsModel : public PersistModel
{
  public:
    explicit HopsModel(const SimParams &params)
        : PersistModel(params), threads_(params.cores)
    {
        for (auto &t : threads_)
            t.open.ts = 1;
    }

    std::string
    name() const override
    {
        if (params_.dpoMode)
            return "DPO (BSP)";
        return params_.persistentWriteQueue ? "HOPS (PWQ)"
                                            : "HOPS (NVM)";
    }

    std::uint64_t
    onPmStore(unsigned core, LineAddr line) override
    {
        return bufferLine(core, line);
    }

    std::uint64_t
    onPmNtStore(unsigned core, LineAddr line) override
    {
        // HOPS tracks NT updates in the PB as well; they simply skip
        // the cache fill on the functional side.
        return bufferLine(core, line);
    }

    std::uint64_t
    onFlush(unsigned core, LineAddr line) override
    {
        (void)core;
        (void)line;
        // HOPS hardware persists in the background; the clwb the
        // x86-style source emitted costs nothing here.
        stats_.flushesElided++;
        return 0;
    }

    std::uint64_t
    onFence(unsigned core, trace::FenceKind kind) override
    {
        Thread &t = threads_[core];
        closeEpoch(t);
        // Epochs closed a few ordering points ago have had the slack
        // to retire in the background (moving write-backs off the
        // critical path is what the PBs are for); the youngest few
        // are still in flight — visible for coherence gleaning and
        // paid for by the next dfence.
        while (t.queued.size() > kInFlightEpochs)
            drainOldest(core, false);
        if (kind == trace::FenceKind::Ordering)
            return 1; // ofence: a local timestamp bump

        // dfence: stall until this thread's PB is clean — i.e. until
        // the in-flight epoch's writes are ACKed as durable.
        std::uint64_t stall = 1;
        while (!t.queued.empty())
            stall += drainOldest(core, true);
        stats_.fenceStalls += stall;
        return stall;
    }

    void
    onOwnershipTransfer(unsigned from, unsigned to,
                        LineAddr line) override
    {
        // The thread acquiring exclusive permissions learns the
        // source thread and its *current* epoch timestamp
        // (conservative, as in §6.3).
        if (from == to)
            return;
        Thread &src = threads_[from];
        if (!src.bloom.mightContain(line))
            return;
        threads_[to].open.deps.emplace_back(from, src.open.ts);
        stats_.crossDepWaits++;
    }

    std::uint64_t
    onLlcMiss(unsigned core, LineAddr line) override
    {
        (void)core;
        // A miss whose line may still sit in some PB back end stalls
        // until the write-back completes (rare; §6.3).
        for (unsigned c = 0; c < threads_.size(); c++) {
            if (threads_[c].bloom.mightContain(line)) {
                stats_.missStalls += persistLatency();
                return persistLatency();
            }
        }
        return 0;
    }

    std::uint64_t
    finish(unsigned core) override
    {
        Thread &t = threads_[core];
        if (t.open.lines.empty() && t.queued.empty())
            return 0;
        return onFence(core, trace::FenceKind::Durability);
    }

  private:
    /** Closed epochs assumed still in flight at any moment. */
    static constexpr std::size_t kInFlightEpochs = 1;

    struct Thread
    {
        PbEpoch open;
        std::deque<PbEpoch> queued;
        std::uint64_t occupancy = 0;   //!< buffered PB entries
        std::uint64_t drainedTs = 0;   //!< newest fully durable epoch
        CountingBloom bloom;
    };

    void
    closeEpoch(Thread &t)
    {
        if (t.open.lines.empty() && t.open.deps.empty()) {
            t.open.ts++;
            return;
        }
        PbEpoch closed = std::move(t.open);
        t.open = PbEpoch{};
        t.open.ts = closed.ts + 1;

        // Epoch coalescing (future-work optimization, §6.3): merge
        // into the previous queued epoch when neither side carries
        // cross-thread dependencies. Draining them together is
        // strictly stronger than draining them in order, so crash
        // consistency is preserved — and repeated lines deduplicate,
        // which is exactly what the paper's abundant same-thread
        // self-dependencies make profitable.
        if (params_.pbCoalesce && !t.queued.empty() &&
            t.queued.back().deps.empty() && closed.deps.empty()) {
            PbEpoch &prev = t.queued.back();
            for (const LineAddr line : closed.lines) {
                bool dup = false;
                for (const LineAddr l : prev.lines)
                    dup |= l == line;
                if (dup) {
                    // The duplicate entry disappears (multi-version
                    // collapse); release its PB slot + filter count.
                    t.bloom.remove(line);
                    t.occupancy--;
                    stats_.epochsCoalesced++;
                } else {
                    prev.lines.push_back(line);
                }
            }
            prev.ts = closed.ts;
            return;
        }
        t.queued.push_back(std::move(closed));
    }

    /** Cycles to write one epoch back. */
    std::uint64_t
    epochDrainCost(const std::vector<LineAddr> &lines)
    {
        if (params_.dpoMode) {
            // BSP under x86-TSO: updates within an epoch flush
            // serially, and every write-back is broadcast.
            std::uint64_t cost = 0;
            for (const LineAddr line : lines)
                cost += device().persistCost(line) + kDpoBroadcastCost;
            return cost;
        }
        return device().drainLines(lines);
    }

    static constexpr std::uint64_t kDpoBroadcastCost = 8;

    std::uint64_t
    bufferLine(unsigned core, LineAddr line)
    {
        Thread &t = threads_[core];
        for (const LineAddr l : t.open.lines) {
            if (l == line)
                return 0; // coalesced within the epoch
        }
        t.open.lines.push_back(line);
        t.bloom.insert(line);
        t.occupancy++;

        std::uint64_t stall = 0;
        if (t.occupancy > params_.pbEntries) {
            // PB full: the store stalls until the oldest epoch is
            // written back.
            if (!t.queued.empty()) {
                const std::uint64_t cost = drainOldest(core, true);
                stats_.pbFullStalls += cost;
                stall += cost;
            } else {
                // One giant open epoch: split it (the paper's
                // epoch-splitting deadlock avoidance) and drain.
                closeEpoch(t);
                const std::uint64_t cost = drainOldest(core, true);
                stats_.pbFullStalls += cost;
                stall += cost;
            }
        } else if (t.occupancy >= params_.pbDrainThreshold &&
                   !t.queued.empty()) {
            // Background drain: off the critical path.
            drainOldest(core, false);
        }
        return stall;
    }

    /**
     * Write back the oldest queued epoch of @p core.
     * @param on_critical_path charge the cycles to the caller.
     * @return cycles the core stalls (0 for background drains).
     */
    std::uint64_t
    drainOldest(unsigned core, bool on_critical_path)
    {
        Thread &t = threads_[core];
        panic_if(t.queued.empty(), "drain of an empty persist buffer");
        PbEpoch epoch = std::move(t.queued.front());
        t.queued.pop_front();

        std::uint64_t stall = 0;
        // Honour cross-thread ordering: the source epochs must be
        // durable first (global TS vector lookup at the LLC).
        for (const auto &[src, ts] : epoch.deps) {
            Thread &s = threads_[src];
            while (s.drainedTs < ts && !s.queued.empty())
                stall += drainOldest(src, on_critical_path);
        }

        stall += epochDrainCost(epoch.lines);
        stats_.linesDrained += epoch.lines.size();
        for (const LineAddr line : epoch.lines)
            t.bloom.remove(line);
        t.occupancy -= epoch.lines.size();
        t.drainedTs = epoch.ts;
        stats_.epochsDrained++;
        return on_critical_path ? stall : 0;
    }

    std::vector<Thread> threads_;
};

} // namespace

std::unique_ptr<PersistModel>
makeHopsModel(const SimParams &params)
{
    return std::make_unique<HopsModel>(params);
}

} // namespace whisper::sim

/**
 * @file
 * Counting Bloom filter.
 *
 * HOPS attaches one to each persist-buffer back end to keep a
 * conservative set of buffered line addresses: an LLC miss whose line
 * might still be buffered must stall until the write-back completes
 * (paper §6.3). Counting (not plain) so entries can be removed as
 * epochs drain.
 */

#ifndef WHISPER_SIM_BLOOM_HH
#define WHISPER_SIM_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace whisper::sim
{

/**
 * Counting Bloom filter over cache-line addresses.
 */
class CountingBloom
{
  public:
    explicit CountingBloom(std::size_t buckets = 1024)
        : counts_(buckets, 0)
    {
    }

    void
    insert(LineAddr line)
    {
        // Saturate instead of wrapping: a wrapped counter would read 0
        // and produce the false negative the class contract forbids.
        for (int h = 0; h < kHashes; h++) {
            auto &c = counts_[slot(line, h)];
            if (c < kSaturated)
                c++;
        }
    }

    void
    remove(LineAddr line)
    {
        for (int h = 0; h < kHashes; h++) {
            auto &c = counts_[slot(line, h)];
            panic_if(c == 0,
                     "CountingBloom: remove of line %llu underflows a "
                     "counter (remove without matching insert)",
                     static_cast<unsigned long long>(line));
            // A saturated counter has lost its exact count; it must
            // stay pinned or a later remove could drop a live entry
            // to zero.
            if (c < kSaturated)
                c--;
        }
    }

    /** Possibly-present test (no false negatives). */
    bool
    mightContain(LineAddr line) const
    {
        for (int h = 0; h < kHashes; h++) {
            if (counts_[slot(line, h)] == 0)
                return false;
        }
        return true;
    }

  private:
    static constexpr int kHashes = 2;
    static constexpr std::uint16_t kSaturated = 0xFFFF;

    std::size_t
    slot(LineAddr line, int h) const
    {
        std::uint64_t x = line + static_cast<std::uint64_t>(h) *
                                     0x9e3779b97f4a7c15ull;
        x ^= x >> 31;
        x *= 0x7fb5d329728ea185ull;
        x ^= x >> 29;
        return static_cast<std::size_t>(x % counts_.size());
    }

    std::vector<std::uint16_t> counts_;
};

} // namespace whisper::sim

#endif // WHISPER_SIM_BLOOM_HH

#include "sim/pm_device.hh"

#include <algorithm>

namespace whisper::sim
{

PmDeviceParams
PmDeviceParams::paperTable3()
{
    return PmDeviceParams{};
}

PmDeviceParams
PmDeviceParams::optaneCalibrated()
{
    PmDeviceParams p;
    p.kind = Kind::Calibrated;
    // DESIGN.md §13 derives these from van Renen et al. (DaMoN'19)
    // at the repo's 1 cycle ~ 2.5 ns conversion.
    p.readLat = 120;
    p.readBufHitLat = 48;
    p.writeAcceptLat = 100;
    p.wcEvictLat = 180;
    p.dimmReadGap = 16;
    p.dimmWriteGap = 48;
    p.wcBufferBlocks = 64;
    p.dimmMap = DimmConfig{6, kInternalBlockLines};
    return p;
}

PmDeviceModel::PmDeviceModel(const PmDeviceParams &params,
                             bool persistent_write_queue)
    : p_(params), pwq_(persistent_write_queue)
{
}

std::uint64_t
PmDeviceModel::persistLatency() const
{
    if (pwq_)
        return p_.mcQueueLat;
    return p_.calibrated() ? p_.writeAcceptLat : p_.pmLat;
}

std::uint64_t
PmDeviceModel::takeBacklog(unsigned dimm)
{
    const std::uint64_t wait = queue_[dimm];
    queue_[dimm] = 0;
    stats_.queueWaitCycles += wait;
    return wait;
}

std::uint64_t
PmDeviceModel::readCost(LineAddr line)
{
    const unsigned dimm = dimmOf(line);
    stats_.reads++;
    stats_.dimmReads[dimm]++;
    if (!p_.calibrated())
        return p_.pmLat;

    const std::uint64_t wait = takeBacklog(dimm);
    queue_[dimm] += p_.dimmReadGap;
    const std::uint64_t block = line / kInternalBlockLines;
    if (wc_[dimm].index.count(block)) {
        stats_.readBufHits++;
        return p_.readBufHitLat + wait;
    }
    return p_.readLat + wait;
}

void
PmDeviceModel::noteWrite(LineAddr line)
{
    stats_.writes++;
    stats_.dimmWrites[dimmOf(line)]++;
}

void
PmDeviceModel::wcInsert(LineAddr line)
{
    const unsigned dimm = dimmOf(line);
    const std::uint64_t block = line / kInternalBlockLines;
    WcBuffer &wc = wc_[dimm];

    auto it = wc.index.find(block);
    if (it != wc.index.end()) {
        // The block is still being combined: no media work.
        stats_.wcHits++;
        wc.lru.splice(wc.lru.begin(), wc.lru, it->second);
        return;
    }
    wc.lru.push_front(block);
    wc.index[block] = wc.lru.begin();
    if (wc.lru.size() <= p_.wcBufferBlocks)
        return;
    // Capacity eviction: one full 256 B internal write, performed in
    // the background — it lands on the DIMM's backlog, to be paid by
    // whatever touches this DIMM next.
    wc.index.erase(wc.lru.back());
    wc.lru.pop_back();
    stats_.wcEvicts++;
    queue_[dimm] += p_.wcEvictLat;
}

std::uint64_t
PmDeviceModel::persistCost(LineAddr line)
{
    noteWrite(line);
    if (!p_.calibrated())
        return persistLatency();

    const unsigned dimm = dimmOf(line);
    const std::uint64_t wait = takeBacklog(dimm);
    wcInsert(line);
    queue_[dimm] += p_.dimmWriteGap;
    return persistLatency() + wait;
}

std::uint64_t
PmDeviceModel::drainLines(const std::vector<LineAddr> &lines)
{
    if (lines.empty())
        return 0;
    for (const LineAddr line : lines)
        noteWrite(line);

    if (!p_.calibrated()) {
        // Legacy streaming drain across the memory controllers
        // (bit-identical to the pre-device-model formula).
        const std::uint64_t gap =
            p_.mcServiceGap / p_.memControllers;
        return persistLatency() + (lines.size() - 1) * gap;
    }

    // DIMMs serve the burst in parallel; lines homed on one DIMM
    // serialize at its write gap behind that DIMM's backlog. The
    // stall is the slowest DIMM's completion.
    std::array<std::uint64_t, kMaxDimms> count{};
    for (const LineAddr line : lines)
        count[dimmOf(line)]++;
    std::uint64_t worst = 0;
    for (unsigned d = 0; d < kMaxDimms; d++) {
        if (!count[d])
            continue;
        const std::uint64_t done =
            takeBacklog(d) + (count[d] - 1) * p_.dimmWriteGap;
        worst = std::max(worst, done);
    }
    // Write-combining happens as the burst retires; evictions land
    // on the backlog behind the trailing service gap.
    for (const LineAddr line : lines)
        wcInsert(line);
    for (unsigned d = 0; d < kMaxDimms; d++) {
        if (count[d])
            queue_[d] += p_.dimmWriteGap;
    }
    return persistLatency() + worst;
}

} // namespace whisper::sim

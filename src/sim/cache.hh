/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Tracks presence and dirtiness only — data values live in the
 * functional layer (PmPool / host memory); the simulator needs
 * hit/miss behaviour and evictions.
 */

#ifndef WHISPER_SIM_CACHE_HH
#define WHISPER_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace whisper::sim
{

/** Result of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool evictedDirty = false;
    LineAddr evictedLine = 0;
};

/** Basic statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * One cache level.
 */
class Cache
{
  public:
    Cache(std::uint32_t sets, std::uint32_t ways);

    /**
     * Look up @p line; on a miss, fill it (evicting LRU if needed).
     * @p is_write marks the line dirty.
     */
    CacheResult access(LineAddr line, bool is_write);

    /** Whether @p line is currently present. */
    bool contains(LineAddr line) const;

    /** Drop @p line (invalidation); returns true if it was dirty. */
    bool invalidate(LineAddr line);

    const CacheStats &stats() const { return stats_; }

  private:
    struct Way
    {
        LineAddr line = ~LineAddr(0);
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> entries_;
    CacheStats stats_;

    Way *set(LineAddr line) { return &entries_[(line % sets_) * ways_]; }
    const Way *
    set(LineAddr line) const
    {
        return &entries_[(line % sets_) * ways_];
    }
};

} // namespace whisper::sim

#endif // WHISPER_SIM_CACHE_HH

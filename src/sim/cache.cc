#include "sim/cache.hh"

#include "common/logging.hh"

namespace whisper::sim
{

Cache::Cache(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), entries_(sets * ways)
{
    panic_if(sets == 0 || ways == 0, "degenerate cache geometry");
}

CacheResult
Cache::access(LineAddr line, bool is_write)
{
    CacheResult result;
    Way *ways = set(line);
    Way *victim = &ways[0];
    for (std::uint32_t w = 0; w < ways_; w++) {
        Way &way = ways[w];
        if (way.valid && way.line == line) {
            way.lastUse = ++useClock_;
            way.dirty |= is_write;
            stats_.hits++;
            result.hit = true;
            return result;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    stats_.misses++;
    if (victim->valid) {
        stats_.evictions++;
        result.evictedDirty = victim->dirty;
        result.evictedLine = victim->line;
    }
    victim->valid = true;
    victim->line = line;
    victim->dirty = is_write;
    victim->lastUse = ++useClock_;
    return result;
}

bool
Cache::contains(LineAddr line) const
{
    const Way *ways = set(line);
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (ways[w].valid && ways[w].line == line)
            return true;
    }
    return false;
}

bool
Cache::invalidate(LineAddr line)
{
    Way *ways = set(line);
    for (std::uint32_t w = 0; w < ways_; w++) {
        Way &way = ways[w];
        if (way.valid && way.line == line) {
            way.valid = false;
            return way.dirty;
        }
    }
    return false;
}

} // namespace whisper::sim

/**
 * @file
 * Persistency-model interface for the timing simulator.
 *
 * The simulator replays one application trace under different
 * persistency models (paper Figure 10):
 *
 *  - X86Model (NVM):  clwb + sfence; every fence stalls until the
 *    flushed/NT data is durable at the NVM device;
 *  - X86Model (PWQ):  same, but a persistent write queue moves the
 *    durability point to the memory controller;
 *  - HopsModel (NVM/PWQ): per-thread persist buffers; ordering
 *    fences are local timestamp bumps, durability fences drain the
 *    buffer; cross-thread dependencies gleaned from coherence;
 *  - IdealModel: no ordering or durability at all (upper bound, not
 *    crash-consistent).
 */

#ifndef WHISPER_SIM_PERSIST_MODEL_HH
#define WHISPER_SIM_PERSIST_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/params.hh"
#include "sim/pm_device.hh"
#include "trace/event.hh"

namespace whisper::sim
{

/** Cycles of stall attributable to persistence, by cause. */
struct PersistStats
{
    std::uint64_t fenceStalls = 0;   //!< cycles stalled at fences
    std::uint64_t pbFullStalls = 0;  //!< cycles stalled on a full PB
    std::uint64_t missStalls = 0;    //!< LLC misses held by the PB
    std::uint64_t flushesIssued = 0;
    std::uint64_t flushesElided = 0; //!< clwbs HOPS did not need
    std::uint64_t epochsDrained = 0;
    std::uint64_t linesDrained = 0;    //!< PM line write-backs issued
    std::uint64_t epochsCoalesced = 0; //!< merged by PB coalescing
    std::uint64_t crossDepWaits = 0;
};

/**
 * One persistency model instance (per simulation run).
 */
class PersistModel
{
  public:
    explicit PersistModel(const SimParams &params)
        : params_(params),
          device_(std::make_unique<PmDeviceModel>(
              params.device, params.persistentWriteQueue))
    {
    }
    virtual ~PersistModel() = default;

    virtual std::string name() const = 0;

    /** A PM store by @p core touching @p line. Returns stall cycles. */
    virtual std::uint64_t onPmStore(unsigned core, LineAddr line) = 0;

    /** A non-temporal PM store (bypasses the cache). */
    virtual std::uint64_t onPmNtStore(unsigned core,
                                      LineAddr line) = 0;

    /** A clwb of @p line. */
    virtual std::uint64_t onFlush(unsigned core, LineAddr line) = 0;

    /** An sfence of the given kind. */
    virtual std::uint64_t onFence(unsigned core,
                                  trace::FenceKind kind) = 0;

    /** @p to gained write ownership of a line @p from had modified. */
    virtual void
    onOwnershipTransfer(unsigned from, unsigned to, LineAddr line)
    {
        (void)from;
        (void)to;
        (void)line;
    }

    /** An LLC miss on a PM @p line (PB back ends may hold it). */
    virtual std::uint64_t
    onLlcMiss(unsigned core, LineAddr line)
    {
        (void)core;
        (void)line;
        return 0;
    }

    /** Drain everything at the end of the run. Returns stall cycles. */
    virtual std::uint64_t finish(unsigned core) = 0;

    const PersistStats &stats() const { return stats_; }

    /** The PM device behind this model (the Simulator charges PM
     *  line fills through it so device pressure reaches the MC
     *  path too). */
    PmDeviceModel &device() { return *device_; }
    const PmDeviceModel &device() const { return *device_; }

  protected:
    /** Cycles until one line's write is durable. */
    std::uint64_t
    persistLatency() const
    {
        return device_->persistLatency();
    }

    SimParams params_;
    PersistStats stats_;
    std::unique_ptr<PmDeviceModel> device_;
};

/** Factory helpers. */
std::unique_ptr<PersistModel> makeX86Model(const SimParams &params);
std::unique_ptr<PersistModel> makeHopsModel(const SimParams &params);
std::unique_ptr<PersistModel> makeIdealModel(const SimParams &params);

} // namespace whisper::sim

#endif // WHISPER_SIM_PERSIST_MODEL_HH

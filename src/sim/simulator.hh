/**
 * @file
 * Trace-driven timing simulator.
 *
 * Replays a WHISPER trace (PM stores/loads/flushes/fences plus DRAM
 * accesses) through a 4-core memory hierarchy — private L1Ds, a
 * shared LLC with write-ownership tracking, two memory controllers
 * with DRAM/PM latencies — under a pluggable persistency model.
 * This is the stand-in for the paper's gem5 full-system setup; see
 * DESIGN.md for the substitution argument (relative runtimes across
 * persistency models are the quantity of interest).
 *
 * Event costs accrue to per-core cycle counters; events are processed
 * in global trace order so coherence interactions (and HOPS's
 * dependency gleaning) see a consistent interleaving. The run's
 * simulated time is the maximum core cycle count.
 */

#ifndef WHISPER_SIM_SIMULATOR_HH
#define WHISPER_SIM_SIMULATOR_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/cache.hh"
#include "sim/persist_model.hh"
#include "trace/trace_set.hh"

namespace whisper::sim
{

/** Which persistency model to instantiate. */
enum class ModelKind
{
    X86Nvm,
    X86Pwq,
    HopsNvm,
    HopsPwq,
    Dpo,      //!< Delegated Persist Ordering under BSP (related work)
    Ideal,
};

const char *modelKindName(ModelKind kind);

/** Everything a simulation run reports. */
struct SimResult
{
    std::string model;
    std::uint64_t cycles = 0;            //!< max over cores
    std::vector<std::uint64_t> coreCycles;
    std::uint64_t pmAccesses = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t coherenceTransfers = 0;
    CacheStats l1Stats;                  //!< aggregated over cores
    CacheStats llcStats;
    PersistStats persist;
    PmDeviceStats device;                //!< PM device traffic
};

/**
 * One simulation: a trace replayed under one model.
 */
class Simulator
{
  public:
    Simulator(const SimParams &params, ModelKind kind);

    /** Replay @p traces to completion and return the result. */
    SimResult run(const trace::TraceSet &traces);

  private:
    std::uint64_t memAccess(unsigned core, Addr addr,
                            std::uint32_t size, bool is_write,
                            bool is_pm, bool bypass_cache);

    SimParams params_;
    ModelKind kind_;
    std::unique_ptr<PersistModel> model_;
    std::vector<Cache> l1_;
    std::unique_ptr<Cache> llc_;
    /** Last core to write each line (write-ownership tracking). */
    std::unordered_map<LineAddr, unsigned> lastWriter_;
    std::uint64_t coherenceTransfers_ = 0;
};

/** Convenience: run one trace under every model of @p kinds. */
std::vector<SimResult> runModels(const trace::TraceSet &traces,
                                 const SimParams &base_params,
                                 const std::vector<ModelKind> &kinds);

} // namespace whisper::sim

#endif // WHISPER_SIM_SIMULATOR_HH

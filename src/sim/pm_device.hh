/**
 * @file
 * PM device model: the cost surface behind every persistency model.
 *
 * Two operating points, selected by PmDeviceParams::kind:
 *
 *  - Uniform (the default, preset paperTable3()): every PM access
 *    costs the single Table-3 latency and drains stream across the
 *    memory controllers — exactly the legacy formulas, bit-identical
 *    to the pre-device-model simulator.
 *
 *  - Calibrated (preset optaneCalibrated()): read/write latency
 *    asymmetry, a 256 B internal access granularity behind a small
 *    per-DIMM write-combining buffer (hit = cheap, evict = a full
 *    internal-block media write), and per-DIMM service queues over a
 *    configurable address interleaving. Calibrated to van Renen et
 *    al., "Persistent Memory I/O Primitives" (DaMoN'19); the cycle
 *    conversion is documented in DESIGN.md §13.
 *
 * The model is deterministic: costs are a pure function of the
 * parameters and the sequence of calls (trace order). Per-DIMM
 * backlog queues are consumed-on-touch — an access pays the backlog
 * its home DIMM has accumulated (eviction media writes, trailing
 * service gaps) and resets it — so hot DIMMs penalize exactly the
 * accesses that hit them.
 */

#ifndef WHISPER_SIM_PM_DEVICE_HH
#define WHISPER_SIM_PM_DEVICE_HH

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/dimm.hh"
#include "common/types.hh"

namespace whisper::sim
{

/** Cache lines per internal device block (256 B on Optane). */
constexpr unsigned kInternalBlockLines = 4;

/**
 * The PM cost surface of SimParams. Benches and the CLI should use
 * the named presets instead of poking individual fields.
 */
struct PmDeviceParams
{
    enum class Kind
    {
        Uniform,    //!< single latency (paper Table 3 machine)
        Calibrated, //!< asymmetric + WC buffer + per-DIMM queues
    };

    Kind kind = Kind::Uniform;

    /** @{ \name Uniform surface (paper Table 3) */
    std::uint32_t pmLat = 160;       //!< Table 3 PM access latency
    unsigned memControllers = 2;
    /** PWQ accept cost: request queueing, the issuing core's
     *  store-buffer drain at the sfence, and the clwb round trip
     *  through the cache hierarchy to the MC. */
    std::uint32_t mcQueueLat = 80;
    std::uint32_t mcServiceGap = 20; //!< back-to-back service gap
    /** @} */

    /** @{ \name Calibrated surface (van Renen et al., DaMoN'19) */
    std::uint32_t readLat = 120;        //!< media read (~305 ns)
    std::uint32_t readBufHitLat = 48;   //!< 256 B block buffered
    std::uint32_t writeAcceptLat = 100; //!< durability ack, no PWQ
    std::uint32_t wcEvictLat = 180;     //!< 256 B media program
    std::uint32_t dimmReadGap = 16;     //!< per-DIMM read service gap
    std::uint32_t dimmWriteGap = 48;    //!< per-DIMM write service gap
    std::uint32_t wcBufferBlocks = 64;  //!< WC capacity (16 KB/DIMM)
    DimmConfig dimmMap{};               //!< address interleaving
    /** @} */

    bool calibrated() const { return kind == Kind::Calibrated; }

    /** Legacy uniform machine (the default; golden-bench identical). */
    static PmDeviceParams paperTable3();

    /** Optane-like asymmetric device, six interleaved DIMMs. */
    static PmDeviceParams optaneCalibrated();
};

/** Device-side traffic and contention counters. */
struct PmDeviceStats
{
    std::uint64_t reads = 0;           //!< PM line fills (LLC misses)
    std::uint64_t writes = 0;          //!< PM line write-backs
    std::uint64_t wcHits = 0;          //!< write hit a buffered block
    std::uint64_t wcEvicts = 0;        //!< full internal-block writes
    std::uint64_t readBufHits = 0;     //!< read hit a buffered block
    std::uint64_t queueWaitCycles = 0; //!< backlog paid by accesses
    std::array<std::uint64_t, kMaxDimms> dimmReads{};
    std::array<std::uint64_t, kMaxDimms> dimmWrites{};
};

/**
 * One device instance (per simulation run; owned by the persistency
 * model so WC-buffer and queue state stay per-model).
 */
class PmDeviceModel
{
  public:
    PmDeviceModel(const PmDeviceParams &params,
                  bool persistent_write_queue);

    const PmDeviceParams &params() const { return p_; }
    const PmDeviceStats &stats() const { return stats_; }
    bool calibrated() const { return p_.calibrated(); }

    /** Home DIMM of @p line: pure in (line, params). */
    unsigned dimmOf(LineAddr line) const
    {
        return p_.dimmMap.dimmOf(line);
    }

    /** Cycles until one line's write is durable (legacy scalar). */
    std::uint64_t persistLatency() const;

    /** A PM line fill on an LLC miss. */
    std::uint64_t readCost(LineAddr line);

    /** One durable line write-back (serial paths, e.g. DPO/BSP). */
    std::uint64_t persistCost(LineAddr line);

    /** An epoch of line write-backs issued as one burst: DIMMs serve
     *  in parallel, lines on one DIMM serialize at its write gap. */
    std::uint64_t drainLines(const std::vector<LineAddr> &lines);

  private:
    void noteWrite(LineAddr line);
    /** Insert @p line's internal block into its DIMM's WC buffer;
     *  an eviction queues a media write on that DIMM. */
    void wcInsert(LineAddr line);
    /** Pay and consume @p dimm's backlog. */
    std::uint64_t takeBacklog(unsigned dimm);

    /** Per-DIMM write-combining buffer: LRU over internal blocks. */
    struct WcBuffer
    {
        std::list<std::uint64_t> lru; //!< front = MRU
        std::unordered_map<std::uint64_t,
                           std::list<std::uint64_t>::iterator>
            index;
    };

    PmDeviceParams p_;
    bool pwq_ = false;
    PmDeviceStats stats_;
    std::array<std::uint64_t, kMaxDimms> queue_{}; //!< backlog cycles
    std::array<WcBuffer, kMaxDimms> wc_;
};

} // namespace whisper::sim

#endif // WHISPER_SIM_PM_DEVICE_HH

#include "sim/simulator.hh"

#include "common/logging.hh"

namespace whisper::sim
{

using trace::EventKind;

namespace
{
/** DRAM addresses are host pointers; keep them disjoint from pool
 *  offsets by folding them into a separate tag space. */
constexpr Addr kDramTag = Addr(1) << 44;

Addr
dramAddr(Addr host_ptr)
{
    return kDramTag | (host_ptr & (kDramTag - 1));
}
} // namespace

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::X86Nvm:  return "x86-64 (NVM)";
      case ModelKind::X86Pwq:  return "x86-64 (PWQ)";
      case ModelKind::HopsNvm: return "HOPS (NVM)";
      case ModelKind::HopsPwq: return "HOPS (PWQ)";
      case ModelKind::Dpo:     return "DPO (BSP)";
      case ModelKind::Ideal:   return "ideal (non-CC)";
    }
    return "?";
}

Simulator::Simulator(const SimParams &params, ModelKind kind)
    : params_(params), kind_(kind)
{
    SimParams model_params = params_;
    switch (kind) {
      case ModelKind::X86Nvm:
        model_params.persistentWriteQueue = false;
        model_ = makeX86Model(model_params);
        break;
      case ModelKind::X86Pwq:
        model_params.persistentWriteQueue = true;
        model_ = makeX86Model(model_params);
        break;
      case ModelKind::HopsNvm:
        model_params.persistentWriteQueue = false;
        model_ = makeHopsModel(model_params);
        break;
      case ModelKind::HopsPwq:
        model_params.persistentWriteQueue = true;
        model_ = makeHopsModel(model_params);
        break;
      case ModelKind::Dpo:
        model_params.persistentWriteQueue = false;
        model_params.dpoMode = true;
        model_ = makeHopsModel(model_params);
        break;
      case ModelKind::Ideal:
        model_ = makeIdealModel(model_params);
        break;
    }
    for (unsigned c = 0; c < params_.cores; c++)
        l1_.emplace_back(params_.l1Sets, params_.l1Ways);
    llc_ = std::make_unique<Cache>(params_.llcSets, params_.llcWays);
}

std::uint64_t
Simulator::memAccess(unsigned core, Addr addr, std::uint32_t size,
                     bool is_write, bool is_pm, bool bypass_cache)
{
    const LineAddr first = lineOf(addr);
    const LineAddr last = lineOf(addr + (size ? size - 1 : 0));
    std::uint64_t cycles = 0;
    for (LineAddr line = first; line <= last; line++) {
        if (is_write) {
            // Write-ownership transfer detection (coherence).
            auto it = lastWriter_.find(line);
            if (it != lastWriter_.end() && it->second != core) {
                const unsigned prev = it->second;
                if (l1_[prev].invalidate(line) ||
                    l1_[prev].contains(line)) {
                    cycles += params_.coherenceLat;
                    coherenceTransfers_++;
                }
                model_->onOwnershipTransfer(prev, core, line);
            }
            lastWriter_[line] = core;
        }

        if (bypass_cache) {
            // Non-temporal: post to the write-combining buffer; the
            // store itself retires quickly.
            cycles += 1;
            continue;
        }

        const CacheResult l1 = l1_[core].access(line, is_write);
        if (l1.hit) {
            cycles += params_.l1HitLat;
            continue;
        }
        const CacheResult llc = llc_->access(line, false);
        if (llc.hit) {
            cycles += params_.l1HitLat + params_.llcHitLat;
            continue;
        }
        cycles += params_.l1HitLat + params_.llcHitLat +
                  (is_pm ? model_->device().readCost(line)
                         : params_.dramLat);
        if (is_pm)
            cycles += model_->onLlcMiss(core, line);
    }
    return cycles;
}

SimResult
Simulator::run(const trace::TraceSet &traces)
{
    SimResult result;
    result.model = modelKindName(kind_);
    result.coreCycles.assign(params_.cores, 0);

    const auto merged = traces.merged();
    for (const auto &[tid, ev] : merged) {
        const unsigned core = tid % params_.cores;
        std::uint64_t cycles = 0;
        switch (ev.kind) {
          case EventKind::PmStore: {
            cycles += memAccess(core, ev.addr, ev.size, true, true,
                                false);
            const LineAddr first = lineOf(ev.addr);
            const LineAddr last =
                lineOf(ev.addr + (ev.size ? ev.size - 1 : 0));
            for (LineAddr line = first; line <= last; line++)
                cycles += model_->onPmStore(core, line);
            result.pmAccesses++;
            break;
          }
          case EventKind::PmNtStore: {
            cycles += memAccess(core, ev.addr, ev.size, true, true,
                                true);
            const LineAddr first = lineOf(ev.addr);
            const LineAddr last =
                lineOf(ev.addr + (ev.size ? ev.size - 1 : 0));
            for (LineAddr line = first; line <= last; line++)
                cycles += model_->onPmNtStore(core, line);
            result.pmAccesses++;
            break;
          }
          case EventKind::PmLoad:
            cycles += memAccess(core, ev.addr, ev.size, false, true,
                                false);
            result.pmAccesses++;
            break;
          case EventKind::PmFlush:
            cycles += model_->onFlush(core, lineOf(ev.addr));
            break;
          case EventKind::Fence:
            cycles += model_->onFence(core, ev.fenceKind());
            break;
          case EventKind::DramLoad:
            cycles += memAccess(core, dramAddr(ev.addr), ev.size,
                                false, false, false);
            result.dramAccesses++;
            break;
          case EventKind::DramStore:
            cycles += memAccess(core, dramAddr(ev.addr), ev.size, true,
                                false, false);
            result.dramAccesses++;
            break;
          case EventKind::TxBegin:
          case EventKind::TxEnd:
          case EventKind::TxAbort:
            cycles += 1;
            break;
        }
        result.coreCycles[core] += cycles;
    }

    for (unsigned core = 0; core < params_.cores; core++)
        result.coreCycles[core] += model_->finish(core);

    for (const auto c : result.coreCycles)
        result.cycles = std::max(result.cycles, c);
    for (const auto &l1 : l1_) {
        result.l1Stats.hits += l1.stats().hits;
        result.l1Stats.misses += l1.stats().misses;
        result.l1Stats.evictions += l1.stats().evictions;
    }
    result.llcStats = llc_->stats();
    result.coherenceTransfers = coherenceTransfers_;
    result.persist = model_->stats();
    result.device = model_->device().stats();
    return result;
}

std::vector<SimResult>
runModels(const trace::TraceSet &traces, const SimParams &base_params,
          const std::vector<ModelKind> &kinds)
{
    std::vector<SimResult> results;
    results.reserve(kinds.size());
    for (const ModelKind kind : kinds) {
        Simulator sim(base_params, kind);
        results.push_back(sim.run(traces));
    }
    return results;
}

} // namespace whisper::sim

/**
 * @file
 * The x86-64 baseline persistency model (clwb + sfence) and the ideal
 * (non-crash-consistent) model.
 */

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "sim/persist_model.hh"

namespace whisper::sim
{

namespace
{

/**
 * Current-hardware persistence: applications flush each dirty line
 * and an sfence stalls the thread until every outstanding flush and
 * write-combining drain is durable (at the NVM device, or at the MC
 * when a persistent write queue exists).
 */
class X86Model : public PersistModel
{
  public:
    explicit X86Model(const SimParams &params)
        : PersistModel(params), pending_(params.cores)
    {
    }

    std::string
    name() const override
    {
        return params_.persistentWriteQueue ? "x86-64 (PWQ)"
                                            : "x86-64 (NVM)";
    }

    std::uint64_t
    onPmStore(unsigned core, LineAddr line) override
    {
        (void)core;
        (void)line;
        return 0; // ordinary cacheable store; cost is the cache access
    }

    std::uint64_t
    onPmNtStore(unsigned core, LineAddr line) override
    {
        // NT stores post into the write-combining buffer; durability
        // is paid at the next fence.
        pending_[core].insert(line);
        return 0;
    }

    std::uint64_t
    onFlush(unsigned core, LineAddr line) override
    {
        stats_.flushesIssued++;
        pending_[core].insert(line);
        return kFlushIssueCost;
    }

    std::uint64_t
    onFence(unsigned core, trace::FenceKind kind) override
    {
        (void)kind; // x86 has only sfence; both kinds stall fully
        // Canonicalize the pending set so device costs (WC-buffer
        // evictions, per-DIMM queues) never depend on hash order.
        std::vector<LineAddr> lines(pending_[core].begin(),
                                    pending_[core].end());
        std::sort(lines.begin(), lines.end());
        pending_[core].clear();
        const std::uint64_t stall =
            lines.empty() ? kEmptyFenceCost : device().drainLines(lines);
        stats_.fenceStalls += stall;
        if (!lines.empty())
            stats_.epochsDrained++;
        return stall;
    }

    std::uint64_t
    finish(unsigned core) override
    {
        if (pending_[core].empty())
            return 0;
        return onFence(core, trace::FenceKind::Durability);
    }

  private:
    static constexpr std::uint64_t kFlushIssueCost = 4;
    static constexpr std::uint64_t kEmptyFenceCost = 2;

    std::vector<std::unordered_set<LineAddr>> pending_;
};

/**
 * Upper bound: ignores all ordering/durability (not crash-consistent;
 * the paper's IDEAL (NON-CC) bar).
 */
class IdealModel : public PersistModel
{
  public:
    explicit IdealModel(const SimParams &params) : PersistModel(params)
    {
    }

    std::string name() const override { return "ideal (non-CC)"; }

    std::uint64_t
    onPmStore(unsigned, LineAddr) override
    {
        return 0;
    }

    std::uint64_t
    onPmNtStore(unsigned, LineAddr) override
    {
        return 0;
    }

    std::uint64_t
    onFlush(unsigned, LineAddr) override
    {
        stats_.flushesElided++;
        return 0;
    }

    std::uint64_t
    onFence(unsigned, trace::FenceKind) override
    {
        return 1;
    }

    std::uint64_t
    finish(unsigned) override
    {
        return 0;
    }
};

} // namespace

std::unique_ptr<PersistModel>
makeX86Model(const SimParams &params)
{
    return std::make_unique<X86Model>(params);
}

std::unique_ptr<PersistModel>
makeIdealModel(const SimParams &params)
{
    return std::make_unique<IdealModel>(params);
}

} // namespace whisper::sim

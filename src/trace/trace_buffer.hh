/**
 * @file
 * Per-thread, append-only event buffer.
 *
 * Each application thread owns one buffer, so recording is lock-free.
 * Volatile accesses can optionally be recorded as counters only, which
 * keeps epoch-analysis traces small while still supporting Figure 6's
 * access-mix measurement.
 */

#ifndef WHISPER_TRACE_TRACE_BUFFER_HH
#define WHISPER_TRACE_TRACE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "trace/event.hh"

namespace whisper::trace
{

/** Aggregate counters kept even when events are not being recorded. */
struct AccessCounters
{
    std::uint64_t pmStores = 0;
    std::uint64_t pmNtStores = 0;
    std::uint64_t pmLoads = 0;
    std::uint64_t pmFlushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t dramLoads = 0;
    std::uint64_t dramStores = 0;
    std::uint64_t pmStoreBytes = 0;   //!< cacheable PM store bytes
    std::uint64_t pmNtStoreBytes = 0; //!< non-temporal PM store bytes
    std::uint64_t pmBytesByClass[6] = {0, 0, 0, 0, 0, 0};

    std::uint64_t
    pmWrites() const
    {
        return pmStores + pmNtStores;
    }

    std::uint64_t
    pmAccesses() const
    {
        return pmStores + pmNtStores + pmLoads;
    }

    std::uint64_t
    dramAccesses() const
    {
        return dramLoads + dramStores;
    }

    /**
     * Fold the counter effect of one event in. This is the exact
     * update TraceBuffer::push applies, exposed so streaming readers
     * can rebuild counters from raw event chunks without a buffer.
     */
    void add(const TraceEvent &ev);

    void merge(const AccessCounters &other);
};

/**
 * Event sink for one thread.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(ThreadId tid, bool record_volatile = false);

    ThreadId tid() const { return tid_; }

    /** Append one event (also updates the counters). */
    void push(const TraceEvent &ev);

    /**
     * Account a burst of volatile accesses without materializing
     * events (used when only counters are recorded; the instrumented
     * applications model large amounts of DRAM work this way).
     */
    void
    addVolatileBulk(std::uint64_t loads, std::uint64_t stores)
    {
        counters_.dramLoads += loads;
        counters_.dramStores += stores;
    }

    /** Whether DramLoad/DramStore events are stored, not just counted. */
    bool recordsVolatile() const { return recordVolatile_; }
    void setRecordVolatile(bool on) { recordVolatile_ = on; }

    const std::vector<TraceEvent> &events() const { return events_; }
    const AccessCounters &counters() const { return counters_; }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Drop all recorded events and counters. */
    void clear();

  private:
    ThreadId tid_;
    bool recordVolatile_;
    std::vector<TraceEvent> events_;
    AccessCounters counters_;
};

} // namespace whisper::trace

#endif // WHISPER_TRACE_TRACE_BUFFER_HH

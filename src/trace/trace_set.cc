#include "trace/trace_set.hh"

#include <algorithm>

#include "common/logging.hh"

namespace whisper::trace
{

TraceSet::TraceSet(bool record_volatile)
    : recordVolatile_(record_volatile)
{
}

TraceBuffer *
TraceSet::createBuffer(ThreadId tid)
{
    panic_if(buffer(tid) != nullptr, "duplicate trace buffer for tid %u",
             tid);
    buffers_.push_back(std::make_unique<TraceBuffer>(tid, recordVolatile_));
    return buffers_.back().get();
}

TraceBuffer *
TraceSet::buffer(ThreadId tid)
{
    for (auto &buf : buffers_) {
        if (buf->tid() == tid)
            return buf.get();
    }
    return nullptr;
}

const TraceBuffer *
TraceSet::buffer(ThreadId tid) const
{
    for (const auto &buf : buffers_) {
        if (buf->tid() == tid)
            return buf.get();
    }
    return nullptr;
}

AccessCounters
TraceSet::totalCounters() const
{
    AccessCounters total;
    for (const auto &buf : buffers_)
        total.merge(buf->counters());
    return total;
}

std::size_t
TraceSet::totalEvents() const
{
    std::size_t n = 0;
    for (const auto &buf : buffers_)
        n += buf->size();
    return n;
}

std::vector<MergedEvent>
TraceSet::merged() const
{
    std::vector<MergedEvent> out;
    out.reserve(totalEvents());
    for (const auto &buf : buffers_) {
        for (const auto &ev : buf->events())
            out.push_back({buf->tid(), ev});
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const MergedEvent &a, const MergedEvent &b) {
                         if (a.ev.ts != b.ev.ts)
                             return a.ev.ts < b.ev.ts;
                         return a.tid < b.tid;
                     });
    return out;
}

Tick
TraceSet::firstTick() const
{
    Tick first = ~Tick(0);
    for (const auto &buf : buffers_) {
        if (!buf->empty())
            first = std::min(first, buf->events().front().ts);
    }
    return first == ~Tick(0) ? 0 : first;
}

Tick
TraceSet::lastTick() const
{
    Tick last = 0;
    for (const auto &buf : buffers_) {
        if (!buf->empty())
            last = std::max(last, buf->events().back().ts);
    }
    return last;
}

void
TraceSet::clear()
{
    for (auto &buf : buffers_)
        buf->clear();
}

} // namespace whisper::trace

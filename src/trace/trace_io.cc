#include "trace/trace_io.hh"

#include <cstdio>
#include <memory>

#include "common/logging.hh"

namespace whisper::trace
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

struct TraceHeader
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t threadCount;
};

struct SectionHeader
{
    std::uint32_t tid;
    std::uint32_t pad;
    std::uint64_t eventCount;
};

template <typename T>
bool
writePod(std::FILE *f, const T &value)
{
    return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool
readPod(std::FILE *f, T &value)
{
    return std::fread(&value, sizeof(T), 1, f) == 1;
}

} // namespace

bool
writeTraceFile(const std::string &path, const TraceSet &traces)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        warn("cannot open trace file %s for writing", path.c_str());
        return false;
    }
    TraceHeader hdr{kTraceMagic, 1,
                    static_cast<std::uint32_t>(traces.threadCount())};
    if (!writePod(f.get(), hdr))
        return false;
    for (const auto &buf : traces.buffers()) {
        SectionHeader sec{buf->tid(), 0,
                          static_cast<std::uint64_t>(buf->size())};
        if (!writePod(f.get(), sec))
            return false;
        const auto &events = buf->events();
        if (!events.empty() &&
            std::fwrite(events.data(), sizeof(TraceEvent), events.size(),
                        f.get()) != events.size()) {
            return false;
        }
    }
    return true;
}

bool
readTraceFile(const std::string &path, TraceSet &traces)
{
    panic_if(traces.threadCount() != 0,
             "readTraceFile into a non-empty TraceSet");
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        warn("cannot open trace file %s for reading", path.c_str());
        return false;
    }
    TraceHeader hdr{};
    if (!readPod(f.get(), hdr) || hdr.magic != kTraceMagic ||
        hdr.version != 1) {
        warn("bad trace header in %s", path.c_str());
        return false;
    }
    for (std::uint32_t i = 0; i < hdr.threadCount; i++) {
        SectionHeader sec{};
        if (!readPod(f.get(), sec))
            return false;
        TraceBuffer *buf = traces.createBuffer(sec.tid);
        buf->setRecordVolatile(true);
        for (std::uint64_t j = 0; j < sec.eventCount; j++) {
            TraceEvent ev{};
            if (!readPod(f.get(), ev))
                return false;
            buf->push(ev);
        }
    }
    return true;
}

} // namespace whisper::trace

#include "trace/trace_io.hh"

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "trace/trace_reader.hh"

namespace whisper::trace
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool
writePod(std::FILE *f, const T &value)
{
    return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

} // namespace

bool
writeTraceFile(const std::string &path, const TraceSet &traces)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        warn("cannot open trace file %s for writing", path.c_str());
        return false;
    }
    TraceFileHeader hdr{kTraceMagic, kTraceVersion,
                        static_cast<std::uint32_t>(
                            traces.threadCount())};
    if (!writePod(f.get(), hdr))
        return false;
    for (const auto &buf : traces.buffers()) {
        TraceSectionHeader sec{buf->tid(), 0,
                               static_cast<std::uint64_t>(
                                   buf->size())};
        if (!writePod(f.get(), sec))
            return false;
        const auto &events = buf->events();
        if (!events.empty() &&
            std::fwrite(events.data(), sizeof(TraceEvent), events.size(),
                        f.get()) != events.size()) {
            return false;
        }
    }
    return true;
}

bool
readTraceFile(const std::string &path, TraceSet &traces)
{
    panic_if(traces.threadCount() != 0,
             "readTraceFile into a non-empty TraceSet");
    TraceFileReader reader;
    if (!reader.open(path))
        return false;
    for (std::size_t i = 0; i < reader.sections().size(); i++) {
        TraceBuffer *buf =
            traces.createBuffer(reader.sections()[i].tid);
        buf->setRecordVolatile(true);
        const bool ok = reader.streamSection(
            i, [&](const TraceEvent *events, std::size_t count) {
                for (std::size_t j = 0; j < count; j++)
                    buf->push(events[j]);
            });
        if (!ok)
            return false;
    }
    return true;
}

} // namespace whisper::trace

#include "trace/trace_reader.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace whisper::trace
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

std::uint64_t
TraceFileReader::totalEvents() const
{
    std::uint64_t n = 0;
    for (const auto &sec : sections_)
        n += sec.eventCount;
    return n;
}

bool
TraceFileReader::open(const std::string &path)
{
    path_.clear();
    sections_.clear();

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        warn("cannot open trace file %s for reading", path.c_str());
        return false;
    }
    TraceFileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1 ||
        hdr.magic != kTraceMagic || hdr.version != kTraceVersion) {
        warn("bad trace header in %s", path.c_str());
        return false;
    }
    for (std::uint32_t i = 0; i < hdr.threadCount; i++) {
        TraceSectionHeader sec{};
        if (std::fread(&sec, sizeof(sec), 1, f.get()) != 1) {
            warn("truncated section header in %s", path.c_str());
            return false;
        }
        const long offset = std::ftell(f.get());
        if (offset < 0)
            return false;
        sections_.push_back({sec.tid, sec.eventCount,
                             static_cast<std::uint64_t>(offset)});
        // Seek over the payload; only the headers are read here.
        if (std::fseek(f.get(),
                       static_cast<long>(sec.eventCount *
                                         sizeof(TraceEvent)),
                       SEEK_CUR) != 0) {
            warn("truncated section payload in %s", path.c_str());
            return false;
        }
    }
    path_ = path;
    return true;
}

bool
TraceFileReader::streamSection(std::size_t index,
                               const EventChunkSink &sink,
                               std::size_t chunkEvents) const
{
    if (index >= sections_.size() || chunkEvents == 0)
        return false;
    const TraceSectionInfo &sec = sections_[index];

    // A private handle per stream keeps concurrent shards independent.
    FilePtr f(std::fopen(path_.c_str(), "rb"));
    if (!f) {
        warn("cannot reopen trace file %s", path_.c_str());
        return false;
    }
    if (std::fseek(f.get(), static_cast<long>(sec.fileOffset),
                   SEEK_SET) != 0) {
        return false;
    }

    std::vector<TraceEvent> chunk(
        std::min<std::size_t>(chunkEvents, sec.eventCount ?
                                               sec.eventCount : 1));
    std::uint64_t remaining = sec.eventCount;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, chunk.size()));
        if (std::fread(chunk.data(), sizeof(TraceEvent), want,
                       f.get()) != want) {
            warn("short read in section %zu of %s", index,
                 path_.c_str());
            return false;
        }
        sink(chunk.data(), want);
        remaining -= want;
    }
    return true;
}

} // namespace whisper::trace

#include "trace/trace_reader.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace whisper::trace
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

const char *
traceReadErrorName(TraceReadError err)
{
    switch (err) {
    case TraceReadError::None: return "none";
    case TraceReadError::Io: return "io";
    case TraceReadError::BadHeader: return "bad-header";
    case TraceReadError::Truncated: return "truncated";
    case TraceReadError::ShortRead: return "short-read";
    }
    return "unknown";
}

std::uint64_t
TraceFileReader::totalEvents() const
{
    std::uint64_t n = 0;
    for (const auto &sec : sections_)
        n += sec.eventCount;
    return n;
}

bool
TraceFileReader::open(const std::string &path)
{
    path_.clear();
    sections_.clear();
    lastError_ = TraceReadError::None;

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        warn("cannot open trace file %s for reading", path.c_str());
        lastError_ = TraceReadError::Io;
        return false;
    }
    if (std::fseek(f.get(), 0, SEEK_END) != 0) {
        lastError_ = TraceReadError::Io;
        return false;
    }
    const long end = std::ftell(f.get());
    if (end < 0 || std::fseek(f.get(), 0, SEEK_SET) != 0) {
        lastError_ = TraceReadError::Io;
        return false;
    }
    const auto file_size = static_cast<std::uint64_t>(end);

    TraceFileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1) {
        warn("truncated trace header in %s", path.c_str());
        lastError_ = TraceReadError::Truncated;
        return false;
    }
    if (hdr.magic != kTraceMagic || hdr.version != kTraceVersion) {
        warn("bad trace header in %s", path.c_str());
        lastError_ = TraceReadError::BadHeader;
        return false;
    }
    // Walk the headers, bounding every section against the real file
    // size — a byte-truncated trace fails here, up front, instead of
    // aborting an analysis stream halfway through with a short read.
    std::uint64_t off = sizeof(TraceFileHeader);
    for (std::uint32_t i = 0; i < hdr.threadCount; i++) {
        if (off + sizeof(TraceSectionHeader) > file_size) {
            warn("truncated section header in %s", path.c_str());
            sections_.clear();
            lastError_ = TraceReadError::Truncated;
            return false;
        }
        TraceSectionHeader sec{};
        if (std::fseek(f.get(), static_cast<long>(off), SEEK_SET) !=
                0 ||
            std::fread(&sec, sizeof(sec), 1, f.get()) != 1) {
            sections_.clear();
            lastError_ = TraceReadError::Io;
            return false;
        }
        off += sizeof(TraceSectionHeader);
        if (sec.eventCount > file_size / sizeof(TraceEvent) ||
            off + sec.eventCount * sizeof(TraceEvent) > file_size) {
            warn("truncated section payload in %s (section %u claims "
                 "%llu events)",
                 path.c_str(), i,
                 static_cast<unsigned long long>(sec.eventCount));
            sections_.clear();
            lastError_ = TraceReadError::Truncated;
            return false;
        }
        sections_.push_back({sec.tid, sec.eventCount, off});
        off += sec.eventCount * sizeof(TraceEvent);
    }
    path_ = path;
    return true;
}

bool
TraceFileReader::streamSection(std::size_t index,
                               const EventChunkSink &sink,
                               std::size_t chunkEvents,
                               TraceReadError *err) const
{
    const auto fail = [&](TraceReadError e) {
        if (err)
            *err = e;
        return false;
    };
    if (err)
        *err = TraceReadError::None;
    if (index >= sections_.size() || chunkEvents == 0)
        return fail(TraceReadError::Io);
    const TraceSectionInfo &sec = sections_[index];

    // A private handle per stream keeps concurrent shards independent.
    FilePtr f(std::fopen(path_.c_str(), "rb"));
    if (!f) {
        warn("cannot reopen trace file %s", path_.c_str());
        return fail(TraceReadError::Io);
    }
    if (std::fseek(f.get(), static_cast<long>(sec.fileOffset),
                   SEEK_SET) != 0) {
        return fail(TraceReadError::Io);
    }

    std::vector<TraceEvent> chunk(
        std::min<std::size_t>(chunkEvents, sec.eventCount ?
                                               sec.eventCount : 1));
    std::uint64_t remaining = sec.eventCount;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, chunk.size()));
        if (std::fread(chunk.data(), sizeof(TraceEvent), want,
                       f.get()) != want) {
            warn("short read in section %zu of %s", index,
                 path_.c_str());
            return fail(TraceReadError::ShortRead);
        }
        sink(chunk.data(), want);
        remaining -= want;
    }
    return true;
}

} // namespace whisper::trace

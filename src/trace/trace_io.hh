/**
 * @file
 * Binary serialization of trace sets.
 *
 * The on-disk format is a fixed header followed by one section per
 * thread: {tid, event count, raw TraceEvent array}. Traces written by
 * an application run can be re-analysed or replayed through the timing
 * simulator without re-running the application. The byte-level layout
 * is specified in docs/TRACE_FORMAT.md; trace_reader.hh provides
 * chunked streaming access to the same files.
 */

#ifndef WHISPER_TRACE_TRACE_IO_HH
#define WHISPER_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace_set.hh"

namespace whisper::trace
{

/** Magic bytes at the front of a trace file. */
constexpr std::uint64_t kTraceMagic = 0x5748495350455231ull; // "WHISPER1"

/** Current (and only) on-disk format version. */
constexpr std::uint32_t kTraceVersion = 1;

/**
 * File header: one per trace file, written verbatim in host byte
 * order (the format is little-endian; see docs/TRACE_FORMAT.md).
 */
struct TraceFileHeader
{
    std::uint64_t magic;       //!< kTraceMagic
    std::uint32_t version;     //!< kTraceVersion
    std::uint32_t threadCount; //!< number of sections that follow
};

static_assert(sizeof(TraceFileHeader) == 16,
              "trace file header layout drifted");

/** Section header: one per recorded thread, preceding its events. */
struct TraceSectionHeader
{
    std::uint32_t tid;         //!< recording thread id
    std::uint32_t pad;         //!< zero; reserved
    std::uint64_t eventCount;  //!< TraceEvents following this header
};

static_assert(sizeof(TraceSectionHeader) == 16,
              "trace section header layout drifted");

/** Serialize @p traces to @p path. Returns false on I/O failure. */
bool writeTraceFile(const std::string &path, const TraceSet &traces);

/**
 * Load a trace file into @p traces (which must be empty).
 * Returns false on I/O failure or format mismatch.
 */
bool readTraceFile(const std::string &path, TraceSet &traces);

} // namespace whisper::trace

#endif // WHISPER_TRACE_TRACE_IO_HH

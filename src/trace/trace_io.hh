/**
 * @file
 * Binary serialization of trace sets.
 *
 * The on-disk format is a fixed header followed by one section per
 * thread: {tid, event count, raw TraceEvent array}. Traces written by
 * an application run can be re-analysed or replayed through the timing
 * simulator without re-running the application.
 */

#ifndef WHISPER_TRACE_TRACE_IO_HH
#define WHISPER_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace_set.hh"

namespace whisper::trace
{

/** Magic bytes at the front of a trace file. */
constexpr std::uint64_t kTraceMagic = 0x5748495350455231ull; // "WHISPER1"

/** Serialize @p traces to @p path. Returns false on I/O failure. */
bool writeTraceFile(const std::string &path, const TraceSet &traces);

/**
 * Load a trace file into @p traces (which must be empty).
 * Returns false on I/O failure or format mismatch.
 */
bool readTraceFile(const std::string &path, TraceSet &traces);

} // namespace whisper::trace

#endif // WHISPER_TRACE_TRACE_IO_HH

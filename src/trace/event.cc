#include "trace/event.hh"

namespace whisper::trace
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::PmStore:   return "pm_store";
      case EventKind::PmNtStore: return "pm_nt_store";
      case EventKind::PmLoad:    return "pm_load";
      case EventKind::PmFlush:   return "pm_flush";
      case EventKind::Fence:     return "fence";
      case EventKind::TxBegin:   return "tx_begin";
      case EventKind::TxEnd:     return "tx_end";
      case EventKind::TxAbort:   return "tx_abort";
      case EventKind::DramLoad:  return "dram_load";
      case EventKind::DramStore: return "dram_store";
    }
    return "?";
}

const char *
dataClassName(DataClass cls)
{
    switch (cls) {
      case DataClass::User:      return "user";
      case DataClass::Log:       return "log";
      case DataClass::AllocMeta: return "alloc";
      case DataClass::TxMeta:    return "txmeta";
      case DataClass::FsMeta:    return "fsmeta";
      case DataClass::None:      return "none";
    }
    return "?";
}

} // namespace whisper::trace

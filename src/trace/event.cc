#include "trace/event.hh"

namespace whisper::trace
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::PmStore:   return "pm_store";
      case EventKind::PmNtStore: return "pm_nt_store";
      case EventKind::PmLoad:    return "pm_load";
      case EventKind::PmFlush:   return "pm_flush";
      case EventKind::Fence:     return "fence";
      case EventKind::TxBegin:   return "tx_begin";
      case EventKind::TxEnd:     return "tx_end";
      case EventKind::TxAbort:   return "tx_abort";
      case EventKind::DramLoad:  return "dram_load";
      case EventKind::DramStore: return "dram_store";
    }
    return "?";
}

const char *
dataClassName(DataClass cls)
{
    switch (cls) {
      case DataClass::User:      return "user";
      case DataClass::Log:       return "log";
      case DataClass::AllocMeta: return "alloc";
      case DataClass::TxMeta:    return "txmeta";
      case DataClass::FsMeta:    return "fsmeta";
      case DataClass::None:      return "none";
    }
    return "?";
}

const char *
originName(Origin origin)
{
    switch (origin) {
      case Origin::None:            return "app";
      case Origin::MneLogAppend:    return "mne-log-append";
      case Origin::MneCellPublish:  return "mne-cell-publish";
      case Origin::MneCommitApply:  return "mne-commit-apply";
      case Origin::MneTruncate:     return "mne-truncate";
      case Origin::MneRecovery:     return "mne-recovery";
      case Origin::NvmlUndoAppend:  return "nvml-undo-append";
      case Origin::NvmlTxState:     return "nvml-tx-state";
      case Origin::NvmlCommitFlush: return "nvml-commit-flush";
      case Origin::NvmlClearLog:    return "nvml-clear-log";
      case Origin::NvmlRecovery:    return "nvml-recovery";
      case Origin::HaloSegOpen:     return "halo-seg-open";
      case Origin::HaloAppend:      return "halo-append";
      case Origin::HaloSeal:        return "halo-seal";
      case Origin::kCount:          break;
    }
    return "?";
}

} // namespace whisper::trace

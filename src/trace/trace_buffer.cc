#include "trace/trace_buffer.hh"

namespace whisper::trace
{

void
AccessCounters::merge(const AccessCounters &other)
{
    pmStores += other.pmStores;
    pmNtStores += other.pmNtStores;
    pmLoads += other.pmLoads;
    pmFlushes += other.pmFlushes;
    fences += other.fences;
    dramLoads += other.dramLoads;
    dramStores += other.dramStores;
    pmStoreBytes += other.pmStoreBytes;
    pmNtStoreBytes += other.pmNtStoreBytes;
    for (std::size_t i = 0; i < 6; i++)
        pmBytesByClass[i] += other.pmBytesByClass[i];
}

TraceBuffer::TraceBuffer(ThreadId tid, bool record_volatile)
    : tid_(tid), recordVolatile_(record_volatile)
{
    events_.reserve(1024);
}

void
TraceBuffer::push(const TraceEvent &ev)
{
    switch (ev.kind) {
      case EventKind::PmStore:
        counters_.pmStores++;
        counters_.pmStoreBytes += ev.size;
        counters_.pmBytesByClass[static_cast<int>(ev.cls)] += ev.size;
        break;
      case EventKind::PmNtStore:
        counters_.pmNtStores++;
        counters_.pmNtStoreBytes += ev.size;
        counters_.pmBytesByClass[static_cast<int>(ev.cls)] += ev.size;
        break;
      case EventKind::PmLoad:
        counters_.pmLoads++;
        break;
      case EventKind::PmFlush:
        counters_.pmFlushes++;
        break;
      case EventKind::Fence:
        counters_.fences++;
        break;
      case EventKind::DramLoad:
        counters_.dramLoads++;
        if (!recordVolatile_)
            return;
        break;
      case EventKind::DramStore:
        counters_.dramStores++;
        if (!recordVolatile_)
            return;
        break;
      default:
        break;
    }
    events_.push_back(ev);
}

void
TraceBuffer::clear()
{
    events_.clear();
    counters_ = AccessCounters{};
}

} // namespace whisper::trace

#include "trace/trace_buffer.hh"

namespace whisper::trace
{

void
AccessCounters::merge(const AccessCounters &other)
{
    pmStores += other.pmStores;
    pmNtStores += other.pmNtStores;
    pmLoads += other.pmLoads;
    pmFlushes += other.pmFlushes;
    fences += other.fences;
    dramLoads += other.dramLoads;
    dramStores += other.dramStores;
    pmStoreBytes += other.pmStoreBytes;
    pmNtStoreBytes += other.pmNtStoreBytes;
    for (std::size_t i = 0; i < 6; i++)
        pmBytesByClass[i] += other.pmBytesByClass[i];
}

TraceBuffer::TraceBuffer(ThreadId tid, bool record_volatile)
    : tid_(tid), recordVolatile_(record_volatile)
{
    events_.reserve(1024);
}

void
AccessCounters::add(const TraceEvent &ev)
{
    switch (ev.kind) {
      case EventKind::PmStore:
        pmStores++;
        pmStoreBytes += ev.size;
        pmBytesByClass[static_cast<int>(ev.cls)] += ev.size;
        break;
      case EventKind::PmNtStore:
        pmNtStores++;
        pmNtStoreBytes += ev.size;
        pmBytesByClass[static_cast<int>(ev.cls)] += ev.size;
        break;
      case EventKind::PmLoad:
        pmLoads++;
        break;
      case EventKind::PmFlush:
        pmFlushes++;
        break;
      case EventKind::Fence:
        fences++;
        break;
      case EventKind::DramLoad:
        dramLoads++;
        break;
      case EventKind::DramStore:
        dramStores++;
        break;
      default:
        break;
    }
}

void
TraceBuffer::push(const TraceEvent &ev)
{
    counters_.add(ev);
    if (!recordVolatile_ && (ev.kind == EventKind::DramLoad ||
                             ev.kind == EventKind::DramStore)) {
        return;
    }
    events_.push_back(ev);
}

void
TraceBuffer::clear()
{
    events_.clear();
    counters_ = AccessCounters{};
}

} // namespace whisper::trace

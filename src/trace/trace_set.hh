/**
 * @file
 * Collection of per-thread trace buffers for one application run.
 */

#ifndef WHISPER_TRACE_TRACE_SET_HH
#define WHISPER_TRACE_TRACE_SET_HH

#include <memory>
#include <vector>

#include "trace/trace_buffer.hh"

namespace whisper::trace
{

/** A (thread, event) pair produced by merged iteration. */
struct MergedEvent
{
    ThreadId tid;
    TraceEvent ev;
};

/**
 * Owns the TraceBuffers of every thread in a run.
 *
 * Buffers are created up front (before the threads start) so no
 * synchronization is needed while recording.
 */
class TraceSet
{
  public:
    explicit TraceSet(bool record_volatile = false);

    /** Create the buffer for thread @p tid; returns a stable pointer. */
    TraceBuffer *createBuffer(ThreadId tid);

    /** Buffer for @p tid, or nullptr. */
    TraceBuffer *buffer(ThreadId tid);
    const TraceBuffer *buffer(ThreadId tid) const;

    std::size_t threadCount() const { return buffers_.size(); }

    const std::vector<std::unique_ptr<TraceBuffer>> &
    buffers() const
    {
        return buffers_;
    }

    /** Sum of all per-thread counters. */
    AccessCounters totalCounters() const;

    /** Total stored events across threads. */
    std::size_t totalEvents() const;

    /**
     * All events of all threads, globally sorted by timestamp
     * (ties broken by thread id, then program order).
     */
    std::vector<MergedEvent> merged() const;

    /** Earliest and latest timestamp across all buffers (0 if empty). */
    Tick firstTick() const;
    Tick lastTick() const;

    /** Drop all events from all buffers. */
    void clear();

  private:
    bool recordVolatile_;
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

} // namespace whisper::trace

#endif // WHISPER_TRACE_TRACE_SET_HH

/**
 * @file
 * Chunked, seekable readers over on-disk trace files.
 *
 * readTraceFile() materializes a whole TraceSet in memory; these
 * readers instead expose the file as independently streamable
 * per-thread sections, so the analysis pipeline can fan sections out
 * across cores and iterate events in fixed-size chunks without ever
 * holding more than one chunk per shard in memory. The format itself
 * is specified in docs/TRACE_FORMAT.md.
 */

#ifndef WHISPER_TRACE_TRACE_READER_HH
#define WHISPER_TRACE_TRACE_READER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "trace/event.hh"

namespace whisper::trace
{

/** Location and size of one per-thread section inside a trace file. */
struct TraceSectionInfo
{
    ThreadId tid = 0;
    std::uint64_t eventCount = 0;
    std::uint64_t fileOffset = 0; //!< byte offset of the event array
};

/**
 * Why a reader call failed. open() validates every section's extent
 * against the real file size, so a byte-truncated trace is rejected
 * up front as Truncated instead of failing with a short read halfway
 * through an analysis stream.
 */
enum class TraceReadError
{
    None,      //!< the call succeeded
    Io,        //!< cannot open/seek the file
    BadHeader, //!< wrong magic or unsupported version
    Truncated, //!< headers claim more bytes than the file holds
    ShortRead, //!< payload vanished between open() and streaming
};

/** Stable lowercase name for @p err ("none", "io", ...). */
const char *traceReadErrorName(TraceReadError err);

/** Callback receiving one chunk of events in program order. */
using EventChunkSink =
    std::function<void(const TraceEvent *events, std::size_t count)>;

/**
 * Index of a trace file's sections, built from the headers alone.
 *
 * open() reads the file header and each section header, seeking over
 * the event payloads, so indexing a multi-gigabyte trace costs a few
 * reads. Sections can then be streamed independently — each
 * streamSection() call opens its own file handle, so concurrent
 * shards never share a seek position.
 */
class TraceFileReader
{
  public:
    /** Events per chunk handed to the sink (1 MiB of events). */
    static constexpr std::size_t kDefaultChunkEvents =
        (1u << 20) / sizeof(TraceEvent);

    /**
     * Index @p path. Returns false (and leaves the reader empty) on
     * I/O failure, bad magic, an unsupported version, or a file too
     * short for the sections its headers describe; lastError() then
     * says which.
     */
    bool open(const std::string &path);

    /** Outcome of the last open() call. */
    TraceReadError lastError() const { return lastError_; }

    const std::string &path() const { return path_; }

    /** Per-thread sections in file order (== recording tid order). */
    const std::vector<TraceSectionInfo> &sections() const
    {
        return sections_;
    }

    std::size_t threadCount() const { return sections_.size(); }

    /** Sum of all sections' event counts. */
    std::uint64_t totalEvents() const;

    /**
     * Stream section @p index through @p sink in program order,
     * @p chunkEvents events at a time. Thread-safe against concurrent
     * streamSection() calls on the same reader. Returns false on I/O
     * failure, reporting the cause through @p err when given (the
     * per-call out-param keeps concurrent shards race-free; open()
     * already bounds every section, so ShortRead here means the file
     * shrank after indexing).
     */
    bool streamSection(std::size_t index, const EventChunkSink &sink,
                       std::size_t chunkEvents = kDefaultChunkEvents,
                       TraceReadError *err = nullptr) const;

  private:
    std::string path_;
    std::vector<TraceSectionInfo> sections_;
    TraceReadError lastError_ = TraceReadError::None;
};

} // namespace whisper::trace

#endif // WHISPER_TRACE_TRACE_READER_HH

/**
 * @file
 * Chunked, seekable readers over on-disk trace files.
 *
 * readTraceFile() materializes a whole TraceSet in memory; these
 * readers instead expose the file as independently streamable
 * per-thread sections, so the analysis pipeline can fan sections out
 * across cores and iterate events in fixed-size chunks without ever
 * holding more than one chunk per shard in memory. The format itself
 * is specified in docs/TRACE_FORMAT.md.
 */

#ifndef WHISPER_TRACE_TRACE_READER_HH
#define WHISPER_TRACE_TRACE_READER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "trace/event.hh"

namespace whisper::trace
{

/** Location and size of one per-thread section inside a trace file. */
struct TraceSectionInfo
{
    ThreadId tid = 0;
    std::uint64_t eventCount = 0;
    std::uint64_t fileOffset = 0; //!< byte offset of the event array
};

/** Callback receiving one chunk of events in program order. */
using EventChunkSink =
    std::function<void(const TraceEvent *events, std::size_t count)>;

/**
 * Index of a trace file's sections, built from the headers alone.
 *
 * open() reads the file header and each section header, seeking over
 * the event payloads, so indexing a multi-gigabyte trace costs a few
 * reads. Sections can then be streamed independently — each
 * streamSection() call opens its own file handle, so concurrent
 * shards never share a seek position.
 */
class TraceFileReader
{
  public:
    /** Events per chunk handed to the sink (1 MiB of events). */
    static constexpr std::size_t kDefaultChunkEvents =
        (1u << 20) / sizeof(TraceEvent);

    /**
     * Index @p path. Returns false (and leaves the reader empty) on
     * I/O failure, bad magic, or an unsupported version.
     */
    bool open(const std::string &path);

    const std::string &path() const { return path_; }

    /** Per-thread sections in file order (== recording tid order). */
    const std::vector<TraceSectionInfo> &sections() const
    {
        return sections_;
    }

    std::size_t threadCount() const { return sections_.size(); }

    /** Sum of all sections' event counts. */
    std::uint64_t totalEvents() const;

    /**
     * Stream section @p index through @p sink in program order,
     * @p chunkEvents events at a time. Thread-safe against concurrent
     * streamSection() calls on the same reader. Returns false on I/O
     * failure (a short read mid-section aborts the stream).
     */
    bool streamSection(std::size_t index, const EventChunkSink &sink,
                       std::size_t chunkEvents =
                           kDefaultChunkEvents) const;

  private:
    std::string path_;
    std::vector<TraceSectionInfo> sections_;
};

} // namespace whisper::trace

#endif // WHISPER_TRACE_TRACE_READER_HH

/**
 * @file
 * Trace-event model for the WHISPER instrumentation framework.
 *
 * The paper's PM_* macros emit a record for every PM update, flush,
 * fence and transaction boundary (their Figure 2); this header defines
 * the equivalent in-memory record. Volatile (DRAM) accesses are also
 * representable so that the PM/DRAM access mix (their Figure 6) and
 * the timing simulation (their Figure 10) work from the same traces.
 */

#ifndef WHISPER_TRACE_EVENT_HH
#define WHISPER_TRACE_EVENT_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace whisper::trace
{

/** What happened. */
enum class EventKind : std::uint8_t
{
    PmStore,    //!< cacheable store to PM
    PmNtStore,  //!< non-temporal (cache-bypassing) store to PM
    PmLoad,     //!< load from PM
    PmFlush,    //!< clwb/clflushopt of one PM line
    Fence,      //!< sfence (aux = FenceKind)
    TxBegin,    //!< durable-transaction begin (addr = tx id)
    TxEnd,      //!< durable-transaction commit (addr = tx id)
    TxAbort,    //!< durable-transaction abort (addr = tx id)
    DramLoad,   //!< load from volatile memory
    DramStore,  //!< store to volatile memory
};

/**
 * Why the bytes were written. The paper's write-amplification and
 * small-epoch analyses attribute writes to user data vs recovery
 * metadata (logs, allocator state, transaction descriptors).
 */
enum class DataClass : std::uint8_t
{
    User,       //!< application payload
    Log,        //!< undo/redo log entries and log descriptors
    AllocMeta,  //!< persistent allocator state
    TxMeta,     //!< transaction/journal descriptors
    FsMeta,     //!< filesystem metadata (inodes, B-tree nodes)
    None,       //!< not a write (loads, fences)
};

/** Flavour of an sfence, as classified by the instrumentation. */
enum class FenceKind : std::uint8_t
{
    Ordering,    //!< intra-transaction ordering point (HOPS ofence)
    Durability,  //!< commit/durability point (HOPS dfence)
};

/**
 * Which instrumented code site emitted an event. The txlib layers tag
 * their log-management and commit paths so the fence/flush optimizer
 * can key its per-site elision suggestions to something a human (or an
 * ElisionPolicy bit) can act on. Application code and traces recorded
 * before this field existed carry None — the byte holding it was
 * always written as zero.
 */
enum class Origin : std::uint8_t
{
    None,            //!< application code or legacy trace
    MneLogAppend,    //!< mnemosyne: redo-record append epoch
    MneCellPublish,  //!< mnemosyne: active-cell publish at tx begin
    MneCommitApply,  //!< mnemosyne: write-set application at commit
    MneTruncate,     //!< mnemosyne: log retirement (cell clear)
    MneRecovery,     //!< mnemosyne: redo replay during recover()
    NvmlUndoAppend,  //!< nvml: undo-record append epoch
    NvmlTxState,     //!< nvml: descriptor state transition
    NvmlCommitFlush, //!< nvml: modified-range flushes at commit
    NvmlClearLog,    //!< nvml: per-record log clear epochs
    NvmlRecovery,    //!< nvml: rollback during recover()
    HaloSegOpen,     //!< halo: advisory segment-header write at open
    HaloAppend,      //!< halo: record header/payload stores + clwb
    HaloSeal,        //!< halo: batched durability fence (seal)
    kCount,          //!< number of origins (array sizing)
};

/** Number of distinct trace origins. */
inline constexpr std::size_t kOriginCount =
    static_cast<std::size_t>(Origin::kCount);

/**
 * One instrumented operation. 24 bytes, trivially copyable; the owning
 * thread is implied by the buffer the event sits in.
 */
struct TraceEvent
{
    Tick ts;            //!< global logical timestamp
    Addr addr;          //!< pool offset, or tx id for Tx* events
    std::uint32_t size; //!< bytes touched (0 for fences)
    EventKind kind;
    DataClass cls;
    std::uint8_t aux;   //!< FenceKind for Fence events
    std::uint8_t origin = 0; //!< Origin of the emitting code site

    bool
    isPmWrite() const
    {
        return kind == EventKind::PmStore || kind == EventKind::PmNtStore;
    }

    bool
    isFence() const
    {
        return kind == EventKind::Fence;
    }

    FenceKind
    fenceKind() const
    {
        return static_cast<FenceKind>(aux);
    }

    /** Origin tag, clamped to None for out-of-range bytes. */
    Origin
    originTag() const
    {
        return origin < kOriginCount ? static_cast<Origin>(origin)
                                     : Origin::None;
    }
};

static_assert(sizeof(TraceEvent) == 24, "TraceEvent layout drifted");

/** Human-readable name of an event kind (debugging, dumps). */
const char *eventKindName(EventKind kind);

/** Human-readable name of a data class. */
const char *dataClassName(DataClass cls);

/** Human-readable name of a trace origin. */
const char *originName(Origin origin);

} // namespace whisper::trace

#endif // WHISPER_TRACE_EVENT_HH

#include "mod/mod_vector.hh"

#include <cstring>

#include "common/logging.hh"

namespace whisper::mod
{

using pm::DataClass;
using pm::FenceKind;

std::uint64_t
ModVector::chunkChecksum(std::uint64_t count,
                         const std::uint64_t *elems)
{
    // splitmix64-style fold; position-sensitive so swapped elements
    // do not cancel the way a plain XOR would.
    std::uint64_t h = 0x564543u ^ (count * 0x9e3779b97f4a7c15ull);
    for (std::uint64_t i = 0; i < kElems; i++) {
        std::uint64_t x = elems[i] + 0x9e3779b97f4a7c15ull * (i + 1);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        h ^= x;
        h *= 0x94d049bb133111ebull;
    }
    return h;
}

ModVector::ModVector(pm::PmContext &ctx, ModHeap &heap, Addr table_off,
                     std::uint64_t slot_count)
    : heap_(heap), tableOff_(table_off), slotCount_(slot_count),
      stripeCount_((slot_count + kSlotsPerStripe - 1) /
                       kSlotsPerStripe +
                   1),
      stripes_(std::make_unique<std::mutex[]>(stripeCount_))
{
    ctx.store(tableOff_, &kMagic, 8, DataClass::TxMeta);
    ctx.store(tableOff_ + 8, &slotCount_, 8, DataClass::TxMeta);
    for (std::uint64_t s = 0; s < slotCount_; s++)
        ctx.store(slotOff(s), &kNullAddr, 8, DataClass::TxMeta);
    ctx.flush(tableOff_, tableBytes(slotCount_));
    ctx.fence(FenceKind::Durability);
}

ModVector::ModVector(ModHeap &heap, Addr table_off,
                     std::uint64_t slot_count)
    : heap_(heap), tableOff_(table_off), slotCount_(slot_count),
      stripeCount_((slot_count + kSlotsPerStripe - 1) /
                       kSlotsPerStripe +
                   1),
      stripes_(std::make_unique<std::mutex[]>(stripeCount_))
{
}

std::uint64_t
ModVector::stripeOf(std::uint64_t slot) const
{
    // Range stripes: a block of kSlotsPerStripe consecutive slots
    // shares one lock, so threads working disjoint spine regions
    // (the partitioned workloads give each thread its own block of
    // slots) never contend.
    return slot / kSlotsPerStripe;
}

Addr
ModVector::slotOff(std::uint64_t slot) const
{
    panic_if(slot >= slotCount_, "mod vector: slot out of range");
    return tableOff_ + 16 + slot * 8;
}

Addr
ModVector::loadSlot(pm::PmContext &ctx, std::uint64_t slot)
{
    Addr off = kNullAddr;
    ctx.load(slotOff(slot), &off, 8);
    return off;
}

bool
ModVector::write(pm::PmContext &ctx, ThreadId tid, std::uint64_t slot,
                 std::uint64_t first, const std::uint64_t *vals,
                 std::uint64_t k, std::uint64_t new_count)
{
    panic_if(k == 0 || first + k > kElems || new_count > kElems ||
                 first + k > new_count,
             "mod vector: bad write shape");
    // Stripe taken before the slot is read: the slot cannot move under
    // this writer, so the commit CAS below must succeed.
    std::lock_guard<std::mutex> guard(stripes_[stripeOf(slot)]);
    const Addr old = loadSlot(ctx, slot);
    VecChunk prev{};
    if (old != kNullAddr)
        ctx.load(old, &prev, sizeof(prev));

    const TxId tx = ctx.txBegin();
    const Addr node = heap_.alloc(ctx, sizeof(VecChunk));
    if (node == kNullAddr) {
        ctx.txAbort(tx);
        return false;
    }

    // Assemble the shadow image, then store it with per-class
    // attribution: fresh values are user bytes, carried-over values
    // are shadow-copy relocation (counted as log-class amplification),
    // and the header is transaction metadata.
    std::uint64_t elems[kElems] = {};
    for (std::uint64_t i = 0; i < new_count; i++)
        elems[i] = i < prev.count ? prev.elems[i] : 0;
    for (std::uint64_t i = 0; i < k; i++)
        elems[first + i] = vals[i];
    const std::uint64_t checksum = chunkChecksum(new_count, elems);

    ctx.store(node + offsetof(VecChunk, checksum), &checksum, 8,
              DataClass::TxMeta);
    ctx.store(node + offsetof(VecChunk, count), &new_count, 8,
              DataClass::TxMeta);
    for (std::uint64_t i = 0; i < kElems; i++) {
        const bool fresh = i >= first && i < first + k;
        ctx.store(node + offsetof(VecChunk, elems) + i * 8, &elems[i],
                  8, fresh ? DataClass::User : DataClass::Log);
    }
    ctx.flush(node, sizeof(VecChunk));

    // The one ordering point: shadow chunk (and the allocator's
    // bitmap word) durable before the commit swap can be observed.
    ctx.fence(FenceKind::Ordering);

    panic_if(!ctx.casStore(slotOff(slot), old, node,
                           DataClass::TxMeta),
             "mod vector: commit CAS lost despite stripe lock");
    ctx.flush(slotOff(slot), 8);
    if (old != kNullAddr)
        heap_.retire(ctx, tid, old);
    ctx.txEnd(tx);
    return true;
}

std::uint64_t
ModVector::chunkCount(pm::PmContext &ctx, std::uint64_t slot)
{
    const Addr off = loadSlot(ctx, slot);
    if (off == kNullAddr)
        return 0;
    std::uint64_t count = 0;
    ctx.load(off + offsetof(VecChunk, count), &count, 8);
    return count;
}

bool
ModVector::get(pm::PmContext &ctx, std::uint64_t slot,
               std::uint64_t idx, std::uint64_t &out)
{
    const Addr off = loadSlot(ctx, slot);
    if (off == kNullAddr || idx >= kElems)
        return false;
    VecChunk chunk{};
    ctx.load(off, &chunk, sizeof(chunk));
    if (idx >= chunk.count)
        return false;
    out = chunk.elems[idx];
    return true;
}

bool
ModVector::check(pm::PmContext &ctx, std::string *why)
{
    std::uint64_t magic = 0;
    ctx.load(tableOff_, &magic, 8);
    if (magic != kMagic) {
        if (why)
            *why = "mod vector: bad table magic";
        return false;
    }
    for (std::uint64_t s = 0; s < slotCount_; s++) {
        const Addr off = loadSlot(ctx, s);
        if (off == kNullAddr)
            continue;
        if (!heap_.isBlockStart(off)) {
            if (why)
                *why = "mod vector: slot names a non-node offset";
            return false;
        }
        VecChunk chunk{};
        ctx.load(off, &chunk, sizeof(chunk));
        if (chunk.count == 0 || chunk.count > kElems) {
            if (why)
                *why = "mod vector: chunk count out of range";
            return false;
        }
        if (chunk.checksum != chunkChecksum(chunk.count, chunk.elems)) {
            if (why)
                *why = "mod vector: chunk checksum mismatch";
            return false;
        }
    }
    return true;
}

void
ModVector::reachable(pm::PmContext &ctx, std::vector<Addr> &out)
{
    for (std::uint64_t s = 0; s < slotCount_; s++) {
        const Addr off = loadSlot(ctx, s);
        if (off != kNullAddr && heap_.isBlockStart(off))
            out.push_back(off);
    }
}

} // namespace whisper::mod

#include "mod/mod_vector.hh"

#include <algorithm>
#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "core/verify_report.hh"

namespace whisper::mod
{

using pm::DataClass;
using pm::FenceKind;

std::uint64_t
ModVector::chunkChecksum(std::uint64_t count,
                         const std::uint64_t *elems)
{
    // Two chained CRC32 passes over count and the full element array
    // fill the 64-bit field; a zero-filled (scrubbed) chunk can never
    // validate, so media loss is always detected.
    std::uint64_t buf[1 + kElems];
    buf[0] = count;
    for (std::uint64_t i = 0; i < kElems; i++)
        buf[1 + i] = elems[i];
    const std::uint32_t lo = crc32(buf, sizeof(buf));
    const std::uint32_t hi = crc32Update(lo, buf, sizeof(buf));
    return static_cast<std::uint64_t>(hi) << 32 | lo;
}

std::uint64_t
ModVector::headerCrc(std::uint64_t slot_count)
{
    const std::uint64_t hdr[2] = {kMagic, slot_count};
    return crc32(hdr, sizeof(hdr));
}

ModVector::ModVector(pm::PmContext &ctx, ModHeap &heap, Addr table_off,
                     std::uint64_t slot_count)
    : heap_(heap), tableOff_(table_off), slotCount_(slot_count),
      stripeCount_((slot_count + kSlotsPerStripe - 1) /
                       kSlotsPerStripe +
                   1),
      stripes_(std::make_unique<std::mutex[]>(stripeCount_))
{
    ctx.store(tableOff_, &kMagic, 8, DataClass::TxMeta);
    ctx.store(tableOff_ + 8, &slotCount_, 8, DataClass::TxMeta);
    const std::uint64_t crc = headerCrc(slotCount_);
    ctx.store(tableOff_ + 16, &crc, 8, DataClass::TxMeta);
    for (std::uint64_t s = 0; s < slotCount_; s++)
        ctx.store(slotOff(s), &kNullAddr, 8, DataClass::TxMeta);
    ctx.flush(tableOff_, tableBytes(slotCount_));
    ctx.fence(FenceKind::Durability);
}

ModVector::ModVector(ModHeap &heap, Addr table_off,
                     std::uint64_t slot_count)
    : heap_(heap), tableOff_(table_off), slotCount_(slot_count),
      stripeCount_((slot_count + kSlotsPerStripe - 1) /
                       kSlotsPerStripe +
                   1),
      stripes_(std::make_unique<std::mutex[]>(stripeCount_))
{
}

std::uint64_t
ModVector::stripeOf(std::uint64_t slot) const
{
    // Range stripes: a block of kSlotsPerStripe consecutive slots
    // shares one lock, so threads working disjoint spine regions
    // (the partitioned workloads give each thread its own block of
    // slots) never contend.
    return slot / kSlotsPerStripe;
}

Addr
ModVector::slotOff(std::uint64_t slot) const
{
    panic_if(slot >= slotCount_, "mod vector: slot out of range");
    return tableOff_ + kHeaderBytes + slot * 8;
}

Addr
ModVector::loadSlot(pm::PmContext &ctx, std::uint64_t slot)
{
    Addr off = kNullAddr;
    ctx.load(slotOff(slot), &off, 8);
    return off;
}

bool
ModVector::write(pm::PmContext &ctx, ThreadId tid, std::uint64_t slot,
                 std::uint64_t first, const std::uint64_t *vals,
                 std::uint64_t k, std::uint64_t new_count)
{
    panic_if(k == 0 || first + k > kElems || new_count > kElems ||
                 first + k > new_count,
             "mod vector: bad write shape");
    // Stripe taken before the slot is read: the slot cannot move under
    // this writer, so the commit CAS below must succeed.
    std::lock_guard<std::mutex> guard(stripes_[stripeOf(slot)]);
    const Addr old = loadSlot(ctx, slot);
    VecChunk prev{};
    if (old != kNullAddr)
        ctx.load(old, &prev, sizeof(prev));

    const TxId tx = ctx.txBegin();
    const Addr node = heap_.alloc(ctx, sizeof(VecChunk));
    if (node == kNullAddr) {
        ctx.txAbort(tx);
        return false;
    }

    // Assemble the shadow image, then store it with per-class
    // attribution: fresh values are user bytes, carried-over values
    // are shadow-copy relocation (counted as log-class amplification),
    // and the header is transaction metadata.
    std::uint64_t elems[kElems] = {};
    for (std::uint64_t i = 0; i < new_count; i++)
        elems[i] = i < prev.count ? prev.elems[i] : 0;
    for (std::uint64_t i = 0; i < k; i++)
        elems[first + i] = vals[i];
    const std::uint64_t checksum = chunkChecksum(new_count, elems);

    ctx.store(node + offsetof(VecChunk, checksum), &checksum, 8,
              DataClass::TxMeta);
    ctx.store(node + offsetof(VecChunk, count), &new_count, 8,
              DataClass::TxMeta);
    for (std::uint64_t i = 0; i < kElems; i++) {
        const bool fresh = i >= first && i < first + k;
        ctx.store(node + offsetof(VecChunk, elems) + i * 8, &elems[i],
                  8, fresh ? DataClass::User : DataClass::Log);
    }
    ctx.flush(node, sizeof(VecChunk));

    // The one ordering point: shadow chunk (and the allocator's
    // bitmap word) durable before the commit swap can be observed.
    ctx.fence(FenceKind::Ordering);

    panic_if(!ctx.casStore(slotOff(slot), old, node,
                           DataClass::TxMeta),
             "mod vector: commit CAS lost despite stripe lock");
    ctx.flush(slotOff(slot), 8);
    if (old != kNullAddr)
        heap_.retire(ctx, tid, old);
    ctx.txEnd(tx);
    return true;
}

std::uint64_t
ModVector::chunkCount(pm::PmContext &ctx, std::uint64_t slot)
{
    const Addr off = loadSlot(ctx, slot);
    if (off == kNullAddr)
        return 0;
    std::uint64_t count = 0;
    ctx.load(off + offsetof(VecChunk, count), &count, 8);
    return count;
}

bool
ModVector::get(pm::PmContext &ctx, std::uint64_t slot,
               std::uint64_t idx, std::uint64_t &out)
{
    const Addr off = loadSlot(ctx, slot);
    if (off == kNullAddr || idx >= kElems)
        return false;
    VecChunk chunk{};
    ctx.load(off, &chunk, sizeof(chunk));
    if (idx >= chunk.count)
        return false;
    out = chunk.elems[idx];
    return true;
}

bool
ModVector::check(pm::PmContext &ctx, std::string *why)
{
    std::uint64_t hdr[3] = {};
    ctx.load(tableOff_, hdr, sizeof(hdr));
    if (hdr[0] != kMagic) {
        if (why)
            *why = "mod vector: bad table magic";
        return false;
    }
    if (hdr[1] != slotCount_ || hdr[2] != headerCrc(slotCount_)) {
        if (why)
            *why = "mod vector: table header CRC mismatch";
        return false;
    }
    for (std::uint64_t s = 0; s < slotCount_; s++) {
        const Addr off = loadSlot(ctx, s);
        if (off == kNullAddr)
            continue;
        if (!heap_.isBlockStart(off)) {
            if (why)
                *why = "mod vector: slot names a non-node offset";
            return false;
        }
        VecChunk chunk{};
        ctx.load(off, &chunk, sizeof(chunk));
        if (chunk.count == 0 || chunk.count > kElems) {
            if (why)
                *why = "mod vector: chunk count out of range";
            return false;
        }
        if (chunk.checksum != chunkChecksum(chunk.count, chunk.elems)) {
            if (why)
                *why = "mod vector: chunk checksum mismatch";
            return false;
        }
    }
    return true;
}

void
ModVector::reachable(pm::PmContext &ctx, std::vector<Addr> &out)
{
    for (std::uint64_t s = 0; s < slotCount_; s++) {
        const Addr off = loadSlot(ctx, s);
        if (off != kNullAddr && heap_.isBlockStart(off))
            out.push_back(off);
    }
}

void
ModVector::scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
                 core::VerifyReport &report)
{
    if (lines.empty())
        return;
    const Addr table_end = tableOff_ + tableBytes(slotCount_);
    const LineAddr t_first = lineOf(tableOff_);
    const LineAddr t_last = lineOf(table_end - 1);

    // Phase 1 — table lines. The header is fully redundant (attach
    // parameters) and repairs silently; a lost spine slot becomes a
    // null slot, *declared* data loss.
    std::vector<LineAddr> table_lines;
    std::vector<LineAddr> chunk_lines;
    for (const LineAddr line : lines) {
        (line >= t_first && line <= t_last ? table_lines : chunk_lines)
            .push_back(line);
    }
    std::vector<LineAddr> root_lost;
    for (const LineAddr line : table_lines) {
        const Addr lo = std::max<Addr>(line << kCacheLineBits,
                                       tableOff_);
        const Addr hi = std::min<Addr>((line + 1) << kCacheLineBits,
                                       table_end);
        for (Addr off = lo; off < hi; off += 8) {
            if (off == tableOff_) {
                ctx.store(off, &kMagic, 8, DataClass::TxMeta);
            } else if (off == tableOff_ + 8) {
                ctx.store(off, &slotCount_, 8, DataClass::TxMeta);
            } else if (off == tableOff_ + 16) {
                const std::uint64_t crc = headerCrc(slotCount_);
                ctx.store(off, &crc, 8, DataClass::TxMeta);
            } else {
                ctx.store(off, &kNullAddr, 8, DataClass::TxMeta);
                if (root_lost.empty() || root_lost.back() != line)
                    root_lost.push_back(line);
            }
        }
        ctx.persist(lo, hi - lo);
    }
    if (!root_lost.empty()) {
        report.degrade("mod-root-lost",
                       std::to_string(root_lost.size()) +
                           " spine line(s) lost to media faults; "
                           "affected slots nulled",
                       root_lost);
    }

    // Phase 2 — chunks. A poisoned chunk line was zero-filled, so the
    // chunk fails its CRC; null the referencing slot (the chunk block
    // itself is reclaimed when recovery rebuilds occupancy).
    if (!chunk_lines.empty()) {
        std::uint64_t cut = 0;
        std::vector<LineAddr> cut_lines;
        for (std::uint64_t s = 0; s < slotCount_; s++) {
            const Addr off = loadSlot(ctx, s);
            if (off == kNullAddr)
                continue;
            bool ok = heap_.isBlockStart(off);
            if (ok) {
                VecChunk chunk{};
                ctx.load(off, &chunk, sizeof(chunk));
                ok = chunk.count >= 1 && chunk.count <= kElems &&
                     chunk.checksum ==
                         chunkChecksum(chunk.count, chunk.elems);
            }
            if (!ok) {
                ctx.store(slotOff(s), &kNullAddr, 8,
                          DataClass::TxMeta);
                ctx.persist(slotOff(s), 8);
                cut++;
                cut_lines.push_back(lineOf(off));
            }
        }
        if (cut) {
            report.degrade("mod-chunk-corrupt",
                           std::to_string(cut) +
                               " chunk(s) failed their CRC; "
                               "referencing slots nulled",
                           cut_lines);
        }
    }
    // Table lines are fully handled here; chunk-region lines are left
    // for the heap scrub (occupancy is rebuilt from reachability).
    lines = std::move(chunk_lines);
}

} // namespace whisper::mod

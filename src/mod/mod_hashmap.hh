/**
 * @file
 * MOD persistent hashmap: functional (shadow-copied) bucket chains.
 *
 * Buckets are a flat table of chain-head pointers updated only by
 * 8-byte atomic swaps. Entries are immutable checksummed nodes; a
 * mutation builds the new chain prefix (shadow copies of the
 * predecessors plus the inserted/updated node, sharing the untouched
 * suffix), persists it behind a single ordering fence, and commits
 * with an 8-byte CAS on the bucket head — one ordering point per
 * update, exactly the MOD discipline, against NVML's alternating
 * undo-log epochs for the same workload.
 *
 * Concurrency: writers serialize per *stripe* (a partition-local
 * slice of the bucket table), so updates to disjoint keys run truly
 * in parallel and commit independently; the CAS is the commit point.
 * Readers take no lock at all — they chase the immutable chain from
 * whatever head the bucket publishes, relying on the heap's grace
 * periods to keep superseded nodes valid until every racing reader
 * has quiesced (ModHeap::readerQuiesce()/durabilityPoint()).
 *
 * The key space is partitioned (key's top 16 bits select a bucket
 * partition) so concurrent writers never shadow-copy each other's
 * chains, never meet on a stripe, and per-thread traffic stays
 * deterministic under any interleaving.
 */

#ifndef WHISPER_MOD_MOD_HASHMAP_HH
#define WHISPER_MOD_MOD_HASHMAP_HH

#include <memory>
#include <mutex>
#include <string>

#include "mod/mod_heap.hh"

namespace whisper::core
{
class VerifyReport;
}

namespace whisper::mod
{

/**
 * Test-only fault injection: when on, every ModHashmap::put() durably
 * publishes a *sentinel* payload (with a checksum computed over that
 * sentinel, so it validates) and then patches the real payload in
 * place without flushing it. Reads are correct until a power cut,
 * which reverts the node to the sentinel — every structural invariant
 * still holds after recovery, but the recovered value is one no put
 * ever wrote: exactly the class of commit bug only the
 * durable-linearizability checker can catch. Global and sticky;
 * tests must switch it back off.
 */
void setBrokenCommitForTest(bool broken);

/** One immutable chain node (a single cache line in the 64B slab). */
struct MapEntry
{
    std::uint64_t checksum; //!< entryChecksum(key, vals)
    std::uint64_t key;
    Addr next;
    std::uint64_t vals[3];  //!< inline 24-byte value payload
};

/**
 * The persistent MOD hashmap.
 *
 * Table layout at @c table_off: {magic, bucketCount, headerCrc,
 * buckets[bucketCount]}. The CRC word protects the root metadata
 * against media corruption; a scrub pass rebuilds the header (and
 * nulls any bucket slots the media lost) from the attach parameters.
 */
class ModHashmap
{
  public:
    static constexpr std::uint64_t kMagic = 0x4D4F444D41503031ull;
    static constexpr std::uint64_t kValWords = 3;
    /** Writer stripes per bucket partition. */
    static constexpr std::uint64_t kStripesPerPartition = 8;
    /** Bytes of {magic, bucketCount, headerCrc} before the buckets. */
    static constexpr std::size_t kHeaderBytes = 24;

    static std::size_t
    tableBytes(std::uint64_t bucket_count)
    {
        return kHeaderBytes + bucket_count * 8;
    }

    /** CRC32 (widened) of the {magic, bucketCount} header words. */
    static std::uint64_t headerCrc(std::uint64_t bucket_count);

    /** Format (all buckets empty; durably fenced). */
    ModHashmap(pm::PmContext &ctx, ModHeap &heap, Addr table_off,
               std::uint64_t bucket_count, unsigned partitions);

    /** Attach after a crash (no writes until recover()). */
    ModHashmap(ModHeap &heap, Addr table_off,
               std::uint64_t bucket_count, unsigned partitions);

    /**
     * Insert or update @p key with @p vals (kValWords words).
     * @p inserted reports which happened. Returns false when the
     * heap is exhausted.
     */
    bool put(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
             const std::uint64_t *vals, bool &inserted);

    /** Remove @p key; false when absent. */
    bool remove(pm::PmContext &ctx, ThreadId tid, std::uint64_t key);

    /**
     * Read @p key's value; false when absent. Lock-free: safe against
     * concurrent put/remove (the caller's thread must quiesce
     * periodically via the heap so grace periods can elapse).
     */
    bool lookup(pm::PmContext &ctx, std::uint64_t key,
                std::uint64_t *vals);

    /**
     * Structural invariants over every chain: nodes are live heap
     * blocks, checksums hold, every key hashes to its bucket, no
     * cycles. Fills @p why on violation.
     */
    bool check(pm::PmContext &ctx, std::string *why);

    /** Reachable entries (recovery mark phase / size recount). */
    void reachable(pm::PmContext &ctx, std::vector<Addr> &out);

    /**
     * Media-fault scrub (runs before recover()): repair what the
     * table's redundancy allows and degrade the rest. Lines in
     * @p lines were poisoned (and zero-filled); the scrub rewrites
     * the header from the attach parameters, nulls bucket slots the
     * media lost (degrading "mod-root-lost"), truncates chains at the
     * first corrupt node (degrading "mod-chain-corrupt") and erases
     * every line it handled from @p lines.
     */
    void scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
               core::VerifyReport &report);

    std::uint64_t countReachable(pm::PmContext &ctx);

    std::uint64_t bucketOf(std::uint64_t key) const;
    Addr bucketOff(std::uint64_t bucket) const;
    std::uint64_t bucketCount() const { return bucketCount_; }

    /** Writer stripe of @p bucket (partition-local; exposed for tests). */
    std::uint64_t stripeOf(std::uint64_t bucket) const;

    static std::uint64_t entryChecksum(std::uint64_t key,
                                       const std::uint64_t *vals);

  private:
    Addr loadBucket(pm::PmContext &ctx, std::uint64_t bucket);

    /**
     * Store one shadow node. @p fresh_payload marks key/vals as new
     * user bytes; copied nodes count their payload as relocation
     * (log-class) amplification.
     */
    void storeNode(pm::PmContext &ctx, Addr node,
                   const MapEntry &entry, bool fresh_payload);

    ModHeap &heap_;
    Addr tableOff_;
    std::uint64_t bucketCount_;
    unsigned partitions_;
    /**
     * Striped writer locks, kStripesPerPartition per partition. A
     * stripe only serializes writers hashing into the same slice of
     * one partition; cross-partition (i.e. cross-thread, for the
     * partitioned workloads) updates never contend.
     */
    std::unique_ptr<std::mutex[]> stripes_;
};

} // namespace whisper::mod

#endif // WHISPER_MOD_MOD_HASHMAP_HH

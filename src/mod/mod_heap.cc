#include "mod/mod_heap.hh"

#include "common/logging.hh"

namespace whisper::mod
{

using pm::DataClass;
using pm::FenceKind;

// ------------------------------------------------------ ModAllocator

void
ModAllocator::persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                                std::uint64_t new_val)
{
    // MOD discipline: store + flush only. The flush drains at the
    // owning update's single ordering fence; recovery tolerates a
    // stale word because occupancy is rebuilt from reachability.
    ctx.store(word_off, &new_val, 8, DataClass::AllocMeta);
    ctx.flush(word_off, 8);
}

bool
ModAllocator::isBlockStart(Addr off) const
{
    std::size_t cls = 0;
    std::uint64_t bit = 0;
    if (!locate(off, cls, bit))
        return false;
    return slabs_[cls].blocksBase + bit * slabs_[cls].blockSize == off;
}

void
ModAllocator::rebuildOccupancy(pm::PmContext &ctx,
                               const std::vector<Addr> &live)
{
    std::lock_guard<std::mutex> guard(mtx_);
    stats_.bytesLive = 0;
    for (auto &slab : slabs_) {
        const std::uint64_t words = (slab.blockCount + 63) / 64;
        slab.shadow.assign(words, 0);
        slab.cursor = 0;
    }
    for (Addr payload : live) {
        std::size_t cls = 0;
        std::uint64_t bit = 0;
        panic_if(!locate(payload, cls, bit),
                 "mod rebuild: offset %llu is not a slab block",
                 static_cast<unsigned long long>(payload));
        slabs_[cls].shadow[bit / 64] |= 1ull << (bit % 64);
        stats_.bytesLive += slabs_[cls].blockSize;
    }
    for (const auto &slab : slabs_) {
        const std::uint64_t words = (slab.blockCount + 63) / 64;
        for (std::uint64_t w = 0; w < words; w++) {
            ctx.store(slab.bitmapBase + w * 8, &slab.shadow[w], 8,
                      DataClass::AllocMeta);
        }
        ctx.flush(slab.bitmapBase, words * 8);
    }
}

// ----------------------------------------------------------- ModHeap

ModHeap::ModHeap(pm::PmContext &ctx, Addr base, std::size_t size,
                 unsigned max_threads)
    : base_(base), size_(size), maxThreads_(max_threads)
{
    layout();
    ctx.store(base_, &kMagic, 8, DataClass::TxMeta);
    ctx.flush(base_, 8);
    for (ThreadId t = 0; t < maxThreads_; t++) {
        const std::uint64_t zero = 0;
        ctx.store(laneOff(t), &zero, 8, DataClass::TxMeta);
        for (std::uint64_t s = 0; s < kGcEntries; s++)
            ctx.store(laneEntryOff(t, s), &kNullAddr, 8,
                      DataClass::TxMeta);
        ctx.flush(laneOff(t), laneBytes());
    }
    // Each arena's formatting constructor ends with a durability
    // fence; the last one also drains the header and lane flushes.
    for (ThreadId t = 0; t < maxThreads_; t++) {
        arenas_.push_back(std::make_unique<ModAllocator>(
            ctx, allocBase_ + t * arenaShare_, arenaShare_));
    }
}

ModHeap::ModHeap(Addr base, std::size_t size, unsigned max_threads)
    : base_(base), size_(size), maxThreads_(max_threads)
{
    layout();
    for (ThreadId t = 0; t < maxThreads_; t++) {
        arenas_.push_back(std::make_unique<ModAllocator>(
            allocBase_ + t * arenaShare_, arenaShare_));
    }
}

void
ModHeap::layout()
{
    panic_if(maxThreads_ == 0, "mod heap needs at least one thread");
    lanes_.assign(maxThreads_, Lane{});
    qcount_ = std::make_unique<std::atomic<std::uint64_t>[]>(maxThreads_);
    online_ = std::make_unique<std::atomic<bool>[]>(maxThreads_);
    for (unsigned t = 0; t < maxThreads_; t++) {
        qcount_[t].store(0, std::memory_order_relaxed);
        online_[t].store(true, std::memory_order_relaxed);
    }
    const Addr lanes_end =
        base_ + kCacheLineSize + maxThreads_ * laneBytes();
    allocBase_ = lineBase(lanes_end + kCacheLineSize - 1);
    panic_if(allocBase_ >= base_ + size_, "mod heap region too small");
    // Equal line-aligned arena shares: a thread's allocations live in
    // its own region, so no two threads ever share an allocator lock
    // or a metadata cache line.
    const std::size_t alloc_bytes = base_ + size_ - allocBase_;
    arenaShare_ =
        (alloc_bytes / maxThreads_) & ~(kCacheLineSize - 1);
    panic_if(arenaShare_ == 0, "mod heap region too small for %u arenas",
             maxThreads_);
}

Addr
ModHeap::laneOff(ThreadId tid) const
{
    panic_if(tid >= maxThreads_, "mod heap: lane %u out of range", tid);
    return base_ + kCacheLineSize + tid * laneBytes();
}

Addr
ModHeap::laneEntryOff(ThreadId tid, std::uint64_t slot) const
{
    return laneOff(tid) + 8 + (slot % kGcEntries) * 8;
}

ModAllocator &
ModHeap::arenaOf(Addr off) const
{
    panic_if(off < allocBase_ ||
                 off >= allocBase_ + arenaShare_ * maxThreads_,
             "offset %llu outside every mod arena",
             static_cast<unsigned long long>(off));
    return *arenas_[(off - allocBase_) / arenaShare_];
}

Addr
ModHeap::alloc(pm::PmContext &ctx, std::size_t n)
{
    const ThreadId tid = ctx.tid();
    panic_if(tid >= maxThreads_, "mod alloc from tid %u beyond %u arenas",
             tid, maxThreads_);
    return arenas_[tid]->alloc(ctx, n);
}

void
ModHeap::retire(pm::PmContext &ctx, ThreadId tid, Addr node)
{
    Lane &lane = lanes_.at(tid);
    // Bound the un-reclaimed backlog: once a full ring's worth is
    // outstanding, take a durability point first. (Grace may keep
    // deferring the actual frees; the persistent ring then wraps
    // over un-reclaimed entries, which costs post-mortem visibility
    // only — recovery clears lanes wholesale and rebuilds occupancy
    // from reachability.)
    if (lane.pendingTotal >= kGcEntries)
        durabilityPoint(ctx, tid);
    ctx.store(laneEntryOff(tid, lane.count), &node, 8,
              DataClass::TxMeta);
    ctx.flush(laneEntryOff(tid, lane.count), 8);
    lane.count++;
    lane.fresh.push_back(node);
    lane.pendingTotal++;
    gc_.retired++;
}

bool
ModHeap::batchRipe(const GraceBatch &batch, ThreadId tid) const
{
    for (unsigned t = 0; t < maxThreads_; t++) {
        if (t == tid)
            continue;
        if (!online_[t].load(std::memory_order_acquire))
            continue;
        if (qcount_[t].load(std::memory_order_acquire) <= batch.snap[t])
            return false;
    }
    return true;
}

void
ModHeap::reclaimRipe(pm::PmContext &ctx, ThreadId tid)
{
    Lane &lane = lanes_.at(tid);
    while (!lane.grace.empty() && batchRipe(lane.grace.front(), tid)) {
        GraceBatch &batch = lane.grace.front();
        for (Addr node : batch.nodes)
            arenaOf(node).free(ctx, node);
        gc_.reclaimed += batch.nodes.size();
        lane.pendingTotal -= batch.nodes.size();
        lane.grace.pop_front();
    }
}

void
ModHeap::durabilityPoint(pm::PmContext &ctx, ThreadId tid)
{
    // One gate turn for the whole durability point: under a fuzzing
    // schedule the fence, the grace arithmetic and any reclaim frees
    // land at one deterministic position in the global op order.
    pm::GateTurn turn(ctx.schedGate(), tid);
    Lane &lane = lanes_.at(tid);
    // The dfence makes every swap this thread issued durable; the
    // durable image can no longer name the nodes retired before it.
    ctx.fence(FenceKind::Durability);
    if (!lane.fresh.empty()) {
        GraceBatch batch;
        batch.nodes = std::move(lane.fresh);
        lane.fresh.clear();
        batch.snap.resize(maxThreads_);
        for (unsigned t = 0; t < maxThreads_; t++)
            batch.snap[t] = qcount_[t].load(std::memory_order_acquire);
        lane.grace.push_back(std::move(batch));
    }
    // Passing a durability point is also a quiescent point: this
    // thread holds no references into any structure here. The release
    // pairs with batchRipe()'s acquire, ordering our last reads
    // before another thread's reuse of a block it then reclaims.
    qcount_[tid].fetch_add(1, std::memory_order_release);
    reclaimRipe(ctx, tid);
    ctx.store(laneOff(tid), &lane.count, 8, DataClass::TxMeta);
    ctx.flush(laneOff(tid), 8);
    gc_.durabilityPoints++;
}

void
ModHeap::readerQuiesce(ThreadId tid)
{
    panic_if(tid >= maxThreads_, "mod heap: lane %u out of range", tid);
    qcount_[tid].fetch_add(1, std::memory_order_release);
}

void
ModHeap::threadExit(pm::PmContext &ctx, ThreadId tid)
{
    durabilityPoint(ctx, tid);
    online_[tid].store(false, std::memory_order_release);
    // Other threads may have quiesced since the durability point
    // above; try once more so the last thread out reclaims its own
    // backlog. Whatever stays is swept by the next recovery.
    pm::GateTurn turn(ctx.schedGate(), tid);
    reclaimRipe(ctx, tid);
}

void
ModHeap::recover(pm::PmContext &ctx,
                 const std::vector<Addr> &reachable)
{
    // Route each live node to its owning arena for the mark phase.
    std::vector<std::vector<Addr>> per_arena(maxThreads_);
    for (Addr node : reachable) {
        panic_if(node < allocBase_ ||
                     node >= allocBase_ + arenaShare_ * maxThreads_,
                 "reachable node %llu outside every mod arena",
                 static_cast<unsigned long long>(node));
        per_arena[(node - allocBase_) / arenaShare_].push_back(node);
    }
    for (ThreadId t = 0; t < maxThreads_; t++)
        arenas_[t]->rebuildOccupancy(ctx, per_arena[t]);
    for (ThreadId t = 0; t < maxThreads_; t++) {
        const std::uint64_t zero = 0;
        ctx.store(laneOff(t), &zero, 8, DataClass::TxMeta);
        for (std::uint64_t s = 0; s < kGcEntries; s++)
            ctx.store(laneEntryOff(t, s), &kNullAddr, 8,
                      DataClass::TxMeta);
        ctx.flush(laneOff(t), laneBytes());
        lanes_[t] = Lane{};
        qcount_[t].store(0, std::memory_order_relaxed);
        online_[t].store(true, std::memory_order_relaxed);
    }
    gc_.retired = 0;
    gc_.reclaimed = 0;
    gc_.durabilityPoints = 0;
    ctx.fence(FenceKind::Durability);
}

bool
ModHeap::gcQuiescent(pm::PmContext &ctx, std::string *why) const
{
    for (ThreadId t = 0; t < maxThreads_; t++) {
        if (lanes_[t].pendingTotal != 0) {
            if (why)
                *why = "gc lane has pending reclaims";
            return false;
        }
        std::uint64_t watermark = ~std::uint64_t(0);
        ctx.load(laneOff(t), &watermark, 8);
        if (watermark != 0) {
            if (why)
                *why = "gc lane watermark not reset";
            return false;
        }
        for (std::uint64_t s = 0; s < kGcEntries; s++) {
            Addr entry = 0;
            ctx.load(laneEntryOff(t, s), &entry, 8);
            if (entry != kNullAddr) {
                if (why)
                    *why = "gc lane ring not cleared";
                return false;
            }
        }
    }
    return true;
}

bool
ModHeap::isBlockStart(Addr off) const
{
    if (off < allocBase_ || off >= allocBase_ + arenaShare_ * maxThreads_)
        return false;
    return arenaOf(off).isBlockStart(off);
}

bool
ModHeap::isLiveNode(Addr off) const
{
    if (off < allocBase_ || off >= allocBase_ + arenaShare_ * maxThreads_)
        return false;
    const ModAllocator &arena = arenaOf(off);
    return arena.isBlockStart(off) && arena.isAllocated(off);
}

alloc::AllocStats
ModHeap::allocStats() const
{
    alloc::AllocStats sum;
    for (const auto &arena : arenas_) {
        const alloc::AllocStats &s = arena->stats();
        sum.allocs += s.allocs;
        sum.frees += s.frees;
        sum.failedAllocs += s.failedAllocs;
        sum.splits += s.splits;
        sum.coalesces += s.coalesces;
        sum.bytesLive += s.bytesLive;
    }
    return sum;
}

bool
ModHeap::magicIntact(pm::PmContext &ctx) const
{
    std::uint64_t magic = 0;
    ctx.load(base_, &magic, 8);
    return magic == kMagic;
}

void
ModHeap::scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines)
{
    if (lines.empty())
        return;
    const LineAddr first = lineOf(base_);
    const LineAddr last = lineOf(base_ + size_ - 1);
    std::vector<LineAddr> rest;
    for (const LineAddr line : lines) {
        if (line < first || line > last) {
            rest.push_back(line);
            continue;
        }
        if (line == first) {
            const std::uint64_t magic = kMagic;
            ctx.store(base_, &magic, 8, pm::DataClass::TxMeta);
            ctx.persist(base_, 8);
        }
        // Lanes, bitmap words and unreachable nodes are rebuilt or
        // discarded by recover(); nothing else needs rewriting.
    }
    lines = std::move(rest);
}

} // namespace whisper::mod

#include "mod/mod_heap.hh"

#include "common/logging.hh"

namespace whisper::mod
{

using pm::DataClass;
using pm::FenceKind;

// ------------------------------------------------------ ModAllocator

void
ModAllocator::persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                                std::uint64_t new_val)
{
    // MOD discipline: store + flush only. The flush drains at the
    // owning update's single ordering fence; recovery tolerates a
    // stale word because occupancy is rebuilt from reachability.
    ctx.store(word_off, &new_val, 8, DataClass::AllocMeta);
    ctx.flush(word_off, 8);
}

bool
ModAllocator::isBlockStart(Addr off) const
{
    std::size_t cls = 0;
    std::uint64_t bit = 0;
    if (!locate(off, cls, bit))
        return false;
    return slabs_[cls].blocksBase + bit * slabs_[cls].blockSize == off;
}

void
ModAllocator::rebuildOccupancy(pm::PmContext &ctx,
                               const std::vector<Addr> &live)
{
    std::lock_guard<std::mutex> guard(mtx_);
    stats_.bytesLive = 0;
    for (auto &slab : slabs_) {
        const std::uint64_t words = (slab.blockCount + 63) / 64;
        slab.shadow.assign(words, 0);
        slab.cursor = 0;
    }
    for (Addr payload : live) {
        std::size_t cls = 0;
        std::uint64_t bit = 0;
        panic_if(!locate(payload, cls, bit),
                 "mod rebuild: offset %llu is not a slab block",
                 static_cast<unsigned long long>(payload));
        slabs_[cls].shadow[bit / 64] |= 1ull << (bit % 64);
        stats_.bytesLive += slabs_[cls].blockSize;
    }
    for (const auto &slab : slabs_) {
        const std::uint64_t words = (slab.blockCount + 63) / 64;
        for (std::uint64_t w = 0; w < words; w++) {
            ctx.store(slab.bitmapBase + w * 8, &slab.shadow[w], 8,
                      DataClass::AllocMeta);
        }
        ctx.flush(slab.bitmapBase, words * 8);
    }
}

// ----------------------------------------------------------- ModHeap

ModHeap::ModHeap(pm::PmContext &ctx, Addr base, std::size_t size,
                 unsigned max_threads)
    : base_(base), size_(size), maxThreads_(max_threads)
{
    layout();
    ctx.store(base_, &kMagic, 8, DataClass::TxMeta);
    ctx.flush(base_, 8);
    for (ThreadId t = 0; t < maxThreads_; t++) {
        const std::uint64_t zero = 0;
        ctx.store(laneOff(t), &zero, 8, DataClass::TxMeta);
        for (std::uint64_t s = 0; s < kGcEntries; s++)
            ctx.store(laneEntryOff(t, s), &kNullAddr, 8,
                      DataClass::TxMeta);
        ctx.flush(laneOff(t), laneBytes());
    }
    // The allocator's formatting constructor ends with a durability
    // fence, which also drains the header and lane flushes above.
    alloc_ = std::make_unique<ModAllocator>(ctx, allocBase_,
                                            allocBytes_);
}

ModHeap::ModHeap(Addr base, std::size_t size, unsigned max_threads)
    : base_(base), size_(size), maxThreads_(max_threads)
{
    layout();
    alloc_ = std::make_unique<ModAllocator>(allocBase_, allocBytes_);
}

void
ModHeap::layout()
{
    lanes_.assign(maxThreads_, Lane{});
    const Addr lanes_end =
        base_ + kCacheLineSize + maxThreads_ * laneBytes();
    allocBase_ = lineBase(lanes_end + kCacheLineSize - 1);
    panic_if(allocBase_ >= base_ + size_, "mod heap region too small");
    allocBytes_ = base_ + size_ - allocBase_;
}

Addr
ModHeap::laneOff(ThreadId tid) const
{
    panic_if(tid >= maxThreads_, "mod heap: lane %u out of range", tid);
    return base_ + kCacheLineSize + tid * laneBytes();
}

Addr
ModHeap::laneEntryOff(ThreadId tid, std::uint64_t slot) const
{
    return laneOff(tid) + 8 + (slot % kGcEntries) * 8;
}

Addr
ModHeap::alloc(pm::PmContext &ctx, std::size_t n)
{
    return alloc_->alloc(ctx, n);
}

void
ModHeap::retire(pm::PmContext &ctx, ThreadId tid, Addr node)
{
    Lane &lane = lanes_.at(tid);
    // Never overwrite a slot whose node is still awaiting reclaim.
    if (lane.pending.size() >= kGcEntries)
        durabilityPoint(ctx, tid);
    ctx.store(laneEntryOff(tid, lane.count), &node, 8,
              DataClass::TxMeta);
    ctx.flush(laneEntryOff(tid, lane.count), 8);
    lane.count++;
    lane.pending.push_back(node);
    gc_.retired++;
}

void
ModHeap::durabilityPoint(pm::PmContext &ctx, ThreadId tid)
{
    Lane &lane = lanes_.at(tid);
    // The dfence makes every swap this thread issued durable; only
    // then are the superseded nodes unreachable from the durable
    // image and safe to reclaim.
    ctx.fence(FenceKind::Durability);
    for (Addr node : lane.pending)
        alloc_->free(ctx, node);
    gc_.reclaimed += lane.pending.size();
    lane.pending.clear();
    ctx.store(laneOff(tid), &lane.count, 8, DataClass::TxMeta);
    ctx.flush(laneOff(tid), 8);
    gc_.durabilityPoints++;
}

void
ModHeap::recover(pm::PmContext &ctx,
                 const std::vector<Addr> &reachable)
{
    alloc_->rebuildOccupancy(ctx, reachable);
    for (ThreadId t = 0; t < maxThreads_; t++) {
        const std::uint64_t zero = 0;
        ctx.store(laneOff(t), &zero, 8, DataClass::TxMeta);
        for (std::uint64_t s = 0; s < kGcEntries; s++)
            ctx.store(laneEntryOff(t, s), &kNullAddr, 8,
                      DataClass::TxMeta);
        ctx.flush(laneOff(t), laneBytes());
        lanes_[t] = Lane{};
    }
    gc_ = ModGcStats{};
    ctx.fence(FenceKind::Durability);
}

bool
ModHeap::gcQuiescent(pm::PmContext &ctx, std::string *why) const
{
    for (ThreadId t = 0; t < maxThreads_; t++) {
        if (!lanes_[t].pending.empty()) {
            if (why)
                *why = "gc lane has pending reclaims";
            return false;
        }
        std::uint64_t watermark = ~std::uint64_t(0);
        ctx.load(laneOff(t), &watermark, 8);
        if (watermark != 0) {
            if (why)
                *why = "gc lane watermark not reset";
            return false;
        }
        for (std::uint64_t s = 0; s < kGcEntries; s++) {
            Addr entry = 0;
            ctx.load(laneEntryOff(t, s), &entry, 8);
            if (entry != kNullAddr) {
                if (why)
                    *why = "gc lane ring not cleared";
                return false;
            }
        }
    }
    return true;
}

bool
ModHeap::isLiveNode(Addr off) const
{
    return alloc_->isBlockStart(off) && alloc_->isAllocated(off);
}

bool
ModHeap::magicIntact(pm::PmContext &ctx) const
{
    std::uint64_t magic = 0;
    ctx.load(base_, &magic, 8);
    return magic == kMagic;
}

} // namespace whisper::mod

/**
 * @file
 * Heap for minimally-ordered durable (MOD) data structures.
 *
 * The paper's Consequences 3 and 8 blame undo/redo logging for the
 * suite's small epochs and write amplification; the authors'
 * follow-up (MOD: Minimally Ordered Durable Datastructures) removes
 * the log entirely: updates build a *shadow copy* of the changed
 * nodes, persist them with ordinary flushes, and commit with a single
 * 8-byte pointer swap after exactly one ordering fence. A durability
 * fence is issued only at durability points, many updates apart.
 *
 * ModHeap supplies the pieces every MOD structure needs, designed so
 * disjoint updates can run truly in parallel:
 *
 *  - per-thread allocator *arenas* with relaxed metadata persistence:
 *    each thread allocates shadow nodes from its own slab region, so
 *    allocation never contends a shared lock (and a thread's
 *    allocation addresses are independent of the interleaving — the
 *    crash fuzzer's deterministic replays rely on this). Bitmap words
 *    are written and flushed but never fenced on their own (they ride
 *    the update's single ofence); recovery rebuilds occupancy from
 *    the structure's reachable node set, so stale words are harmless;
 *  - per-thread *garbage lanes* with epoch-style grace: a node is
 *    retired when the swap that supersedes it is issued. At the
 *    retiring thread's next durability point the dfence proves the
 *    swap durable — the durable image can no longer name the node —
 *    but concurrent readers may still be walking it, so the node
 *    only becomes reclaimable once every other online thread has
 *    passed a quiescent point (durability point or readerQuiesce())
 *    after the retirement was batched. GC therefore never reclaims a
 *    node that is reachable from a durable root *or* visible to a
 *    racing reader.
 */

#ifndef WHISPER_MOD_MOD_HEAP_HH
#define WHISPER_MOD_MOD_HEAP_HH

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "alloc/slab_alloc.hh"

namespace whisper::mod
{

/**
 * Slab allocator whose bitmap writes are flushed but not fenced.
 *
 * MOD recovery derives occupancy from reachability, so the persistent
 * bitmap is only a hint; deferring its fence to the structure's one
 * ordering point is what keeps a MOD update at a single epoch where
 * the NVML allocator pays one epoch per logged bitmap mutation.
 */
class ModAllocator : public alloc::SlabAllocator
{
  public:
    ModAllocator(pm::PmContext &ctx, Addr base, std::size_t size)
        : SlabAllocator(ctx, base, size)
    {
    }

    ModAllocator(Addr base, std::size_t size)
        : SlabAllocator(base, size)
    {
    }

    /** True iff @p off is the first byte of some slab block. */
    bool isBlockStart(Addr off) const;

    /**
     * Mark-and-sweep rebuild: occupancy becomes exactly @p live (every
     * entry must be a block start). Bitmaps are rewritten persistently;
     * the caller issues the closing durability fence.
     */
    void rebuildOccupancy(pm::PmContext &ctx,
                          const std::vector<Addr> &live);

  protected:
    void persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                           std::uint64_t new_val) override;
};

/**
 * GC counters a ModHeap exposes (volatile, for tests and benches).
 * Atomic because concurrent threads retire/reclaim in parallel; the
 * fields read as plain integers.
 */
struct ModGcStats
{
    std::atomic<std::uint64_t> retired{0};    //!< nodes pushed on a lane
    std::atomic<std::uint64_t> reclaimed{0};  //!< nodes freed after grace
    std::atomic<std::uint64_t> durabilityPoints{0}; //!< dfences issued
};

/**
 * The MOD node heap: relaxed-persistence arenas + garbage lanes.
 *
 * Region layout starting at @c base:
 *
 *   [magic][per-thread GC lanes][arena 0][arena 1]...[arena N-1]
 *
 * A persistent lane is {clearedTo, entries[kGcEntries]}: retire()
 * publishes the superseded node's offset at slot count%kGcEntries
 * (one 8-byte TxMeta store riding the update's epoch) and
 * durabilityPoint() advances the persistent clearedTo watermark. The
 * ring is diagnostic: recovery clears the lanes wholesale and derives
 * occupancy from reachability, so a ring that wraps while grace
 * defers reclaim loses post-mortem visibility, never safety.
 */
class ModHeap
{
  public:
    static constexpr std::uint64_t kMagic = 0x4D4F444845415031ull;
    /** Ring slots per thread lane. */
    static constexpr std::uint64_t kGcEntries = 64;

    /** Format a heap over [base, base+size) (durably fenced). */
    ModHeap(pm::PmContext &ctx, Addr base, std::size_t size,
            unsigned max_threads);

    /** Attach after a crash; call recover() before any mutation. */
    ModHeap(Addr base, std::size_t size, unsigned max_threads);

    /**
     * Allocate a shadow node from the calling thread's arena (the
     * context's tid picks it); adds no ordering point and contends
     * no cross-thread lock.
     */
    Addr alloc(pm::PmContext &ctx, std::size_t n);

    /**
     * Publish @p node on @p tid's garbage lane: it is superseded by a
     * swap issued in the current update and becomes reclaimable once
     * that swap is provably durable and every concurrent reader has
     * quiesced.
     */
    void retire(pm::PmContext &ctx, ThreadId tid, Addr node);

    /**
     * Durability point: dfence, then batch the nodes @p tid retired
     * since its last durability point, reclaim every batch whose
     * grace period has elapsed, and advance the lane's persistent
     * watermark.
     */
    void durabilityPoint(pm::PmContext &ctx, ThreadId tid);

    /**
     * Reader-side quiescent point: a thread that only reads (and
     * therefore never fences) still announces "I hold no references
     * into the structures" so writers' grace periods can elapse.
     */
    void readerQuiesce(ThreadId tid);

    /**
     * @p tid's workload is done: final durability point, leave the
     * grace protocol (so other threads stop waiting on this one), and
     * reclaim whatever ripened. Batches still inside another thread's
     * grace window stay unreclaimed — recovery sweeps them anyway.
     */
    void threadExit(pm::PmContext &ctx, ThreadId tid);

    /**
     * Post-crash recovery: occupancy := @p reachable (the structure's
     * mark phase), garbage lanes cleared, everything durably fenced.
     */
    void recover(pm::PmContext &ctx,
                 const std::vector<Addr> &reachable);

    /**
     * Recovery invariant: every lane ring is cleared (entries null,
     * watermark zero) and no reclaim is pending. Fills @p why on
     * violation.
     */
    bool gcQuiescent(pm::PmContext &ctx, std::string *why) const;

    /** True iff @p off is a block start currently marked allocated. */
    bool isLiveNode(Addr off) const;

    /** True iff @p off is the first byte of some slab block. */
    bool isBlockStart(Addr off) const;

    bool magicIntact(pm::PmContext &ctx) const;

    /**
     * Media-fault scrub (runs before recover()): claims every poisoned
     * line inside the heap region and rewrites the magic word if its
     * line was hit. All other heap damage is silently repairable —
     * lanes are cleared wholesale by recover(), bitmap words are
     * rebuilt from reachability, and a corrupted *reachable* node is
     * the structure scrub's problem (chain truncation), not the
     * heap's. Erases every heap-range line from @p lines.
     */
    void scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines);

    /** Aggregated allocator statistics over all arenas. */
    alloc::AllocStats allocStats() const;

    const ModGcStats &gcStats() const { return gc_; }
    unsigned maxThreads() const { return maxThreads_; }

  private:
    /**
     * Nodes retired before one durability point, plus the grace
     * snapshot: the batch is reclaimable once every other online
     * thread's quiesce count exceeds its snapshotted value.
     */
    struct GraceBatch
    {
        std::vector<Addr> nodes;
        std::vector<std::uint64_t> snap;
    };

    struct Lane
    {
        std::uint64_t count = 0;      //!< retires ever published
        std::vector<Addr> fresh;      //!< retired since last dpoint
        std::deque<GraceBatch> grace; //!< batches awaiting grace
        std::uint64_t pendingTotal = 0; //!< fresh + batched nodes
    };

    /** Bytes one persistent lane occupies (line-aligned). */
    static constexpr std::size_t
    laneBytes()
    {
        std::size_t raw = 8 + kGcEntries * 8;
        return (raw + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
    }

    Addr laneOff(ThreadId tid) const;
    Addr laneEntryOff(ThreadId tid, std::uint64_t slot) const;
    void layout();
    ModAllocator &arenaOf(Addr off) const;
    bool batchRipe(const GraceBatch &batch, ThreadId tid) const;
    void reclaimRipe(pm::PmContext &ctx, ThreadId tid);

    Addr base_;
    std::size_t size_;
    unsigned maxThreads_;
    Addr allocBase_;
    std::size_t arenaShare_; //!< line-aligned bytes per arena
    std::vector<std::unique_ptr<ModAllocator>> arenas_;
    std::vector<Lane> lanes_;
    /** Per-thread quiescent-point counters (the grace clock). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> qcount_;
    /** Threads still participating in the grace protocol. */
    std::unique_ptr<std::atomic<bool>[]> online_;
    ModGcStats gc_;
};

} // namespace whisper::mod

#endif // WHISPER_MOD_MOD_HEAP_HH

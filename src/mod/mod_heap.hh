/**
 * @file
 * Heap for minimally-ordered durable (MOD) data structures.
 *
 * The paper's Consequences 3 and 8 blame undo/redo logging for the
 * suite's small epochs and write amplification; the authors'
 * follow-up (MOD: Minimally Ordered Durable Datastructures) removes
 * the log entirely: updates build a *shadow copy* of the changed
 * nodes, persist them with ordinary flushes, and commit with a single
 * 8-byte pointer swap after exactly one ordering fence. A durability
 * fence is issued only at durability points, many updates apart.
 *
 * ModHeap supplies the two pieces every MOD structure needs:
 *
 *  - a node allocator with *relaxed metadata persistence*: the slab
 *    bitmap word is written and flushed but never fenced on its own
 *    (it rides the update's single ofence). A crash may therefore
 *    tear or lose bitmap state — recovery rebuilds occupancy from the
 *    structure's reachable node set (mark-and-sweep), so staleness is
 *    harmless and allocation adds no ordering point;
 *  - a per-thread *garbage lane*: a persistent ring of superseded
 *    shadow nodes. A node is retired when the swap that supersedes it
 *    is issued, and reclaimed at the thread's next durability point —
 *    the dfence proves the swap durable, so the durable image can no
 *    longer name the old node. GC therefore never reclaims anything
 *    reachable from a durable root.
 */

#ifndef WHISPER_MOD_MOD_HEAP_HH
#define WHISPER_MOD_MOD_HEAP_HH

#include <memory>
#include <string>
#include <vector>

#include "alloc/slab_alloc.hh"

namespace whisper::mod
{

/**
 * Slab allocator whose bitmap writes are flushed but not fenced.
 *
 * MOD recovery derives occupancy from reachability, so the persistent
 * bitmap is only a hint; deferring its fence to the structure's one
 * ordering point is what keeps a MOD update at a single epoch where
 * the NVML allocator pays one epoch per logged bitmap mutation.
 */
class ModAllocator : public alloc::SlabAllocator
{
  public:
    ModAllocator(pm::PmContext &ctx, Addr base, std::size_t size)
        : SlabAllocator(ctx, base, size)
    {
    }

    ModAllocator(Addr base, std::size_t size)
        : SlabAllocator(base, size)
    {
    }

    /** True iff @p off is the first byte of some slab block. */
    bool isBlockStart(Addr off) const;

    /**
     * Mark-and-sweep rebuild: occupancy becomes exactly @p live (every
     * entry must be a block start). Bitmaps are rewritten persistently;
     * the caller issues the closing durability fence.
     */
    void rebuildOccupancy(pm::PmContext &ctx,
                          const std::vector<Addr> &live);

  protected:
    void persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                           std::uint64_t new_val) override;
};

/** GC counters a ModHeap exposes (volatile, for tests and benches). */
struct ModGcStats
{
    std::uint64_t retired = 0;          //!< nodes pushed on a lane
    std::uint64_t reclaimed = 0;        //!< nodes freed at dfences
    std::uint64_t durabilityPoints = 0; //!< dfences issued
};

/**
 * The MOD node heap: relaxed-persistence allocator + garbage lanes.
 *
 * Region layout starting at @c base:
 *
 *   [magic][per-thread GC lanes][ModAllocator slabs ............]
 *
 * A lane is {clearedTo, entries[kGcEntries]}: retire() publishes the
 * superseded node's offset at slot count%kGcEntries (one 8-byte
 * TxMeta store riding the update's epoch) and durabilityPoint()
 * advances the persistent clearedTo watermark after reclaiming. The
 * ring is sized so a durability interval never wraps it; retire()
 * forces an early durability point if it would.
 */
class ModHeap
{
  public:
    static constexpr std::uint64_t kMagic = 0x4D4F444845415031ull;
    /** Ring slots per thread lane. */
    static constexpr std::uint64_t kGcEntries = 64;

    /** Format a heap over [base, base+size) (durably fenced). */
    ModHeap(pm::PmContext &ctx, Addr base, std::size_t size,
            unsigned max_threads);

    /** Attach after a crash; call recover() before any mutation. */
    ModHeap(Addr base, std::size_t size, unsigned max_threads);

    /** Allocate a shadow node; adds no ordering point. */
    Addr alloc(pm::PmContext &ctx, std::size_t n);

    /**
     * Publish @p node on @p tid's garbage lane: it is superseded by a
     * swap issued in the current update and becomes reclaimable once
     * that swap is provably durable.
     */
    void retire(pm::PmContext &ctx, ThreadId tid, Addr node);

    /**
     * Durability point: dfence, then free every node @p tid retired
     * before the fence and advance the lane's persistent watermark.
     */
    void durabilityPoint(pm::PmContext &ctx, ThreadId tid);

    /**
     * Post-crash recovery: occupancy := @p reachable (the structure's
     * mark phase), garbage lanes cleared, everything durably fenced.
     */
    void recover(pm::PmContext &ctx,
                 const std::vector<Addr> &reachable);

    /**
     * Recovery invariant: every lane ring is cleared (entries null,
     * watermark zero) and no reclaim is pending. Fills @p why on
     * violation.
     */
    bool gcQuiescent(pm::PmContext &ctx, std::string *why) const;

    /** True iff @p off is a block start currently marked allocated. */
    bool isLiveNode(Addr off) const;

    /** True iff @p off is the first byte of some slab block. */
    bool isBlockStart(Addr off) const { return alloc_->isBlockStart(off); }

    bool magicIntact(pm::PmContext &ctx) const;

    const alloc::AllocStats &allocStats() const { return alloc_->stats(); }
    const ModGcStats &gcStats() const { return gc_; }
    unsigned maxThreads() const { return maxThreads_; }

  private:
    struct Lane
    {
        std::uint64_t count = 0;    //!< retires ever published
        std::vector<Addr> pending;  //!< retired, not yet reclaimed
    };

    /** Bytes one persistent lane occupies (line-aligned). */
    static constexpr std::size_t
    laneBytes()
    {
        std::size_t raw = 8 + kGcEntries * 8;
        return (raw + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
    }

    Addr laneOff(ThreadId tid) const;
    Addr laneEntryOff(ThreadId tid, std::uint64_t slot) const;
    void layout();

    Addr base_;
    std::size_t size_;
    unsigned maxThreads_;
    Addr allocBase_;
    std::size_t allocBytes_;
    std::unique_ptr<ModAllocator> alloc_;
    std::vector<Lane> lanes_;
    ModGcStats gc_;
};

} // namespace whisper::mod

#endif // WHISPER_MOD_MOD_HEAP_HH

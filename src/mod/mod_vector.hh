/**
 * @file
 * MOD persistent vector: a copy-on-write chunked array.
 *
 * The vector is a flat table of chunk pointers (the spine, updated
 * only by 8-byte atomic swaps) over checksummed chunks of eight
 * 64-bit elements. An update shadow-copies the one affected chunk,
 * persists it behind a single ordering fence, and commits with an
 * 8-byte CAS on the chunk's spine slot — the MOD pattern: one
 * ordering point per update, durability deferred to the heap's
 * durability points.
 *
 * Concurrency: writers serialize per spine *range* (kSlotsPerStripe
 * consecutive slots share a stripe lock), so updates to different
 * regions of the spine run in parallel and commit independently;
 * reads (get/chunkCount) are lock-free, relying on the heap's grace
 * periods to keep superseded chunks valid until racing readers
 * quiesce.
 *
 * Crash contract: every spine slot always names either the old or the
 * new fully-persisted chunk (the swap is a single in-line 8-byte
 * store issued only after the new chunk was fenced). Updates that
 * were not yet covered by a dfence may individually survive or
 * vanish, in any combination — that is the "minimal ordering" the
 * structure trades for its single ordering point.
 */

#ifndef WHISPER_MOD_MOD_VECTOR_HH
#define WHISPER_MOD_MOD_VECTOR_HH

#include <memory>
#include <mutex>
#include <string>

#include "mod/mod_heap.hh"

namespace whisper::core
{
class VerifyReport;
}

namespace whisper::mod
{

/** One persistent vector chunk (two cache lines in the 128B slab). */
struct VecChunk
{
    std::uint64_t checksum; //!< chunkChecksum(count, elems)
    std::uint64_t count;    //!< live elements, 1..kElems
    std::uint64_t elems[8];
};

/**
 * The persistent COW vector.
 *
 * Table layout at @c table_off: {magic, slotCount, headerCrc,
 * slots[slotCount]}. The CRC word protects the root metadata against
 * media corruption; a scrub pass rebuilds the header (and nulls any
 * spine slots the media lost) from the attach parameters. Slots are
 * grouped into fixed-size regions so concurrent writers can partition
 * the spine; the structure itself only validates per-chunk invariants
 * and leaves region discipline to the caller.
 */
class ModVector
{
  public:
    static constexpr std::uint64_t kMagic = 0x4D4F445645433031ull;
    static constexpr std::uint64_t kElems = 8;
    /** Consecutive spine slots sharing one writer stripe. */
    static constexpr std::uint64_t kSlotsPerStripe = 64;
    /** Bytes of {magic, slotCount, headerCrc} before the slots. */
    static constexpr std::size_t kHeaderBytes = 24;

    /** Bytes the table occupies for @p slot_count slots. */
    static std::size_t
    tableBytes(std::uint64_t slot_count)
    {
        return kHeaderBytes + slot_count * 8;
    }

    /** CRC32 (widened) of the {magic, slotCount} header words. */
    static std::uint64_t headerCrc(std::uint64_t slot_count);

    /** Format a vector (all slots null; durably fenced). */
    ModVector(pm::PmContext &ctx, ModHeap &heap, Addr table_off,
              std::uint64_t slot_count);

    /** Attach after a crash (no writes until recover()). */
    ModVector(ModHeap &heap, Addr table_off, std::uint64_t slot_count);

    /**
     * One MOD update: the chunk at @p slot becomes a fresh shadow
     * node with @p new_count elements where [first, first+k) take
     * @p vals and every other live element is carried over. A null
     * slot is populated (no copy, no retire). Returns false when the
     * heap is exhausted.
     */
    bool write(pm::PmContext &ctx, ThreadId tid, std::uint64_t slot,
               std::uint64_t first, const std::uint64_t *vals,
               std::uint64_t k, std::uint64_t new_count);

    /** Element count of @p slot (0 when the slot is null). Lock-free. */
    std::uint64_t chunkCount(pm::PmContext &ctx, std::uint64_t slot);

    /** Read one element; false when absent. Lock-free. */
    bool get(pm::PmContext &ctx, std::uint64_t slot,
             std::uint64_t idx, std::uint64_t &out);

    /**
     * Structural invariants over every slot: the chunk is a live
     * heap block with a valid checksum and count in [1, kElems].
     * This is exactly the "root names a fully-persisted structure"
     * crash invariant. Fills @p why on violation.
     */
    bool check(pm::PmContext &ctx, std::string *why);

    /** Append every referenced chunk offset (recovery mark phase). */
    void reachable(pm::PmContext &ctx, std::vector<Addr> &out);

    /**
     * Media-fault scrub (runs before recover()): rewrites the header
     * from the attach parameters, nulls spine slots the media lost
     * (degrading "mod-root-lost"), nulls slots whose chunk fails its
     * CRC (degrading "mod-chunk-corrupt") and erases every line it
     * handled from @p lines.
     */
    void scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
               core::VerifyReport &report);

    /** Pool offset of a slot's pointer cell. */
    Addr slotOff(std::uint64_t slot) const;

    std::uint64_t slotCount() const { return slotCount_; }

    /** Writer stripe of @p slot (slot / kSlotsPerStripe). */
    std::uint64_t stripeOf(std::uint64_t slot) const;

    static std::uint64_t chunkChecksum(std::uint64_t count,
                                       const std::uint64_t *elems);

  private:
    Addr loadSlot(pm::PmContext &ctx, std::uint64_t slot);

    ModHeap &heap_;
    Addr tableOff_;
    std::uint64_t slotCount_;
    std::uint64_t stripeCount_;
    /** Range-striped writer locks over the spine. */
    std::unique_ptr<std::mutex[]> stripes_;
};

} // namespace whisper::mod

#endif // WHISPER_MOD_MOD_VECTOR_HH

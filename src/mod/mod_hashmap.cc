#include "mod/mod_hashmap.hh"

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "core/verify_report.hh"

namespace whisper::mod
{

using pm::DataClass;
using pm::FenceKind;

namespace
{

/** Safety cap on chain walks; a longer chain means a cycle. */
constexpr std::uint64_t kMaxChain = 1u << 20;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Broken-commit switch (setBrokenCommitForTest). */
std::atomic<bool> g_brokenCommit{false};
constexpr std::uint64_t kBrokenSentinel = 0xdeadbeefdeadbeefull;

/** The sentinel-payload twin of @p e, checksummed so it validates. */
MapEntry
brokenStale(const MapEntry &e)
{
    MapEntry s = e;
    for (std::uint64_t i = 0; i < ModHashmap::kValWords; i++)
        s.vals[i] = kBrokenSentinel ^ i;
    s.checksum = ModHashmap::entryChecksum(s.key, s.vals);
    return s;
}

} // namespace

void
setBrokenCommitForTest(bool broken)
{
    g_brokenCommit.store(broken, std::memory_order_relaxed);
}

std::uint64_t
ModHashmap::entryChecksum(std::uint64_t key, const std::uint64_t *vals)
{
    // Two chained CRC32 passes over key and payload fill the 64-bit
    // field; a zero-filled (scrubbed) node can never validate. The
    // next pointer is deliberately excluded: a shadow path-copy
    // rewrites next but must not have to re-derive payload checksums.
    std::uint64_t buf[1 + kValWords];
    buf[0] = key;
    for (std::uint64_t i = 0; i < kValWords; i++)
        buf[1 + i] = vals[i];
    const std::uint32_t lo = crc32(buf, sizeof(buf));
    const std::uint32_t hi = crc32Update(lo, buf, sizeof(buf));
    return static_cast<std::uint64_t>(hi) << 32 | lo;
}

std::uint64_t
ModHashmap::headerCrc(std::uint64_t bucket_count)
{
    const std::uint64_t hdr[2] = {kMagic, bucket_count};
    return crc32(hdr, sizeof(hdr));
}

ModHashmap::ModHashmap(pm::PmContext &ctx, ModHeap &heap,
                       Addr table_off, std::uint64_t bucket_count,
                       unsigned partitions)
    : heap_(heap), tableOff_(table_off), bucketCount_(bucket_count),
      partitions_(partitions),
      stripes_(std::make_unique<std::mutex[]>(partitions *
                                              kStripesPerPartition))
{
    panic_if(partitions_ == 0 || bucketCount_ % partitions_ != 0,
             "mod hashmap: buckets must split evenly over partitions");
    ctx.store(tableOff_, &kMagic, 8, DataClass::TxMeta);
    ctx.store(tableOff_ + 8, &bucketCount_, 8, DataClass::TxMeta);
    const std::uint64_t crc = headerCrc(bucketCount_);
    ctx.store(tableOff_ + 16, &crc, 8, DataClass::TxMeta);
    for (std::uint64_t b = 0; b < bucketCount_; b++)
        ctx.store(bucketOff(b), &kNullAddr, 8, DataClass::TxMeta);
    ctx.flush(tableOff_, tableBytes(bucketCount_));
    ctx.fence(FenceKind::Durability);
}

ModHashmap::ModHashmap(ModHeap &heap, Addr table_off,
                       std::uint64_t bucket_count, unsigned partitions)
    : heap_(heap), tableOff_(table_off), bucketCount_(bucket_count),
      partitions_(partitions),
      stripes_(std::make_unique<std::mutex[]>(partitions *
                                              kStripesPerPartition))
{
    panic_if(partitions_ == 0 || bucketCount_ % partitions_ != 0,
             "mod hashmap: buckets must split evenly over partitions");
}

std::uint64_t
ModHashmap::bucketOf(std::uint64_t key) const
{
    const std::uint64_t per = bucketCount_ / partitions_;
    const std::uint64_t part = (key >> 48) % partitions_;
    return part * per + mix64(key) % per;
}

Addr
ModHashmap::bucketOff(std::uint64_t bucket) const
{
    panic_if(bucket >= bucketCount_,
             "mod hashmap: bucket out of range");
    return tableOff_ + kHeaderBytes + bucket * 8;
}

std::uint64_t
ModHashmap::stripeOf(std::uint64_t bucket) const
{
    // Partition-local: a bucket's stripe lives in its partition's own
    // block of kStripesPerPartition locks, so writers in different
    // partitions (== different threads under the partitioned
    // workloads) can never contend, no matter how buckets hash.
    const std::uint64_t per = bucketCount_ / partitions_;
    return (bucket / per) * kStripesPerPartition +
           (bucket % per) % kStripesPerPartition;
}

Addr
ModHashmap::loadBucket(pm::PmContext &ctx, std::uint64_t bucket)
{
    Addr off = kNullAddr;
    ctx.load(bucketOff(bucket), &off, 8);
    return off;
}

void
ModHashmap::storeNode(pm::PmContext &ctx, Addr node,
                      const MapEntry &entry, bool fresh_payload)
{
    const DataClass payload =
        fresh_payload ? DataClass::User : DataClass::Log;
    ctx.store(node + offsetof(MapEntry, checksum), &entry.checksum, 8,
              DataClass::TxMeta);
    ctx.store(node + offsetof(MapEntry, key), &entry.key, 8, payload);
    ctx.store(node + offsetof(MapEntry, next), &entry.next, 8,
              DataClass::TxMeta);
    for (std::uint64_t i = 0; i < kValWords; i++)
        ctx.store(node + offsetof(MapEntry, vals) + i * 8,
                  &entry.vals[i], 8, payload);
    ctx.flush(node, sizeof(MapEntry));
}

bool
ModHashmap::put(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                const std::uint64_t *vals, bool &inserted)
{
    const std::uint64_t bucket = bucketOf(key);
    // The stripe lock is taken before the head is read, so the head
    // cannot move under this writer and the commit CAS below must
    // succeed; its only job is to pin the expected value.
    std::lock_guard<std::mutex> guard(stripes_[stripeOf(bucket)]);
    const Addr head = loadBucket(ctx, bucket);

    // Find the key; remember the chain prefix that must be
    // shadow-copied when this turns out to be an update.
    std::vector<Addr> path;
    std::vector<MapEntry> nodes;
    Addr cur = head;
    bool found = false;
    while (cur != kNullAddr) {
        panic_if(path.size() > kMaxChain, "mod hashmap: chain cycle");
        MapEntry e{};
        ctx.load(cur, &e, sizeof(e));
        path.push_back(cur);
        nodes.push_back(e);
        if (e.key == key) {
            found = true;
            break;
        }
        cur = e.next;
    }
    inserted = !found;

    const std::size_t fresh_count = found ? path.size() : 1;
    const TxId tx = ctx.txBegin();
    std::vector<Addr> shadows(fresh_count, kNullAddr);
    for (std::size_t i = 0; i < fresh_count; i++) {
        shadows[i] = heap_.alloc(ctx, sizeof(MapEntry));
        if (shadows[i] == kNullAddr) {
            // Exhausted: the nodes already carved out are unreachable,
            // so parking them on the garbage lane reclaims them at the
            // next durability point.
            for (std::size_t j = 0; j < i; j++)
                heap_.retire(ctx, tid, shadows[j]);
            ctx.txAbort(tx);
            return false;
        }
    }

    const bool broken = g_brokenCommit.load(std::memory_order_relaxed);
    MapEntry fresh_entry{};
    if (!found) {
        // Insert at head: one fresh node in front of the old chain.
        MapEntry e{};
        e.key = key;
        e.next = head;
        for (std::uint64_t i = 0; i < kValWords; i++)
            e.vals[i] = vals[i];
        e.checksum = entryChecksum(e.key, e.vals);
        fresh_entry = e;
        storeNode(ctx, shadows[0], broken ? brokenStale(e) : e,
                  /*fresh_payload=*/true);
    } else {
        // Update: functional path copy. Build back-to-front so each
        // shadow can point at the next one; the replaced node's copy
        // carries the fresh payload and shares the untouched suffix.
        Addr below = nodes.back().next;
        for (std::size_t i = fresh_count; i-- > 0;) {
            MapEntry e = nodes[i];
            e.next = below;
            const bool fresh = i + 1 == fresh_count;
            if (fresh) {
                for (std::uint64_t v = 0; v < kValWords; v++)
                    e.vals[v] = vals[v];
                e.checksum = entryChecksum(e.key, e.vals);
                fresh_entry = e;
            }
            storeNode(ctx, shadows[i],
                      fresh && broken ? brokenStale(e) : e, fresh);
            below = shadows[i];
        }
    }

    // The one ordering point: every shadow node (and the bitmap words
    // their allocations dirtied) durable before the commit swap.
    ctx.fence(FenceKind::Ordering);

    panic_if(!ctx.casStore(bucketOff(bucket), head, shadows[0],
                           DataClass::TxMeta),
             "mod hashmap: commit CAS lost despite stripe lock");
    ctx.flush(bucketOff(bucket), 8);
    if (broken) {
        // Injected broken commit: what just became durable behind the
        // CAS is the sentinel twin; patch the real payload in without
        // a flush so a power cut quietly reverts the node to a
        // validating-but-never-written value.
        const Addr node = shadows[fresh_count - 1];
        for (std::uint64_t i = 0; i < kValWords; i++)
            ctx.store(node + offsetof(MapEntry, vals) + i * 8,
                      &fresh_entry.vals[i], 8, DataClass::User);
        ctx.store(node + offsetof(MapEntry, checksum),
                  &fresh_entry.checksum, 8, DataClass::TxMeta);
    }
    if (found)
        for (std::size_t i = 0; i < fresh_count; i++)
            heap_.retire(ctx, tid, path[i]);
    ctx.txEnd(tx);
    return true;
}

bool
ModHashmap::remove(pm::PmContext &ctx, ThreadId tid, std::uint64_t key)
{
    const std::uint64_t bucket = bucketOf(key);
    std::lock_guard<std::mutex> guard(stripes_[stripeOf(bucket)]);
    const Addr head = loadBucket(ctx, bucket);

    std::vector<Addr> path;
    std::vector<MapEntry> nodes;
    Addr cur = head;
    bool found = false;
    while (cur != kNullAddr) {
        panic_if(path.size() > kMaxChain, "mod hashmap: chain cycle");
        MapEntry e{};
        ctx.load(cur, &e, sizeof(e));
        path.push_back(cur);
        nodes.push_back(e);
        if (e.key == key) {
            found = true;
            break;
        }
        cur = e.next;
    }
    if (!found)
        return false;

    // Shadow-copy the predecessors (the removed node's copy is the
    // splice itself, so one fewer node than the path).
    const std::size_t copies = path.size() - 1;
    const TxId tx = ctx.txBegin();
    std::vector<Addr> shadows(copies, kNullAddr);
    for (std::size_t i = 0; i < copies; i++) {
        shadows[i] = heap_.alloc(ctx, sizeof(MapEntry));
        if (shadows[i] == kNullAddr) {
            for (std::size_t j = 0; j < i; j++)
                heap_.retire(ctx, tid, shadows[j]);
            ctx.txAbort(tx);
            return false;
        }
    }

    Addr below = nodes.back().next; // suffix past the removed node
    for (std::size_t i = copies; i-- > 0;) {
        MapEntry e = nodes[i];
        e.next = below;
        storeNode(ctx, shadows[i], e, /*fresh_payload=*/false);
        below = shadows[i];
    }

    ctx.fence(FenceKind::Ordering);

    const Addr new_head = copies ? shadows[0] : nodes.back().next;
    panic_if(!ctx.casStore(bucketOff(bucket), head, new_head,
                           DataClass::TxMeta),
             "mod hashmap: commit CAS lost despite stripe lock");
    ctx.flush(bucketOff(bucket), 8);
    for (Addr old : path)
        heap_.retire(ctx, tid, old);
    ctx.txEnd(tx);
    return true;
}

bool
ModHashmap::lookup(pm::PmContext &ctx, std::uint64_t key,
                   std::uint64_t *vals)
{
    // Lock-free: the head is an atomic 8-byte slot and every node
    // behind it is immutable; grace periods keep superseded nodes
    // alive until all racing readers have quiesced.
    Addr cur = loadBucket(ctx, bucketOf(key));
    std::uint64_t steps = 0;
    while (cur != kNullAddr) {
        panic_if(++steps > kMaxChain, "mod hashmap: chain cycle");
        MapEntry e{};
        ctx.load(cur, &e, sizeof(e));
        if (e.key == key) {
            for (std::uint64_t i = 0; i < kValWords; i++)
                vals[i] = e.vals[i];
            return true;
        }
        cur = e.next;
    }
    return false;
}

bool
ModHashmap::check(pm::PmContext &ctx, std::string *why)
{
    std::uint64_t hdr[3] = {};
    ctx.load(tableOff_, hdr, sizeof(hdr));
    if (hdr[0] != kMagic) {
        if (why)
            *why = "mod hashmap: bad table magic";
        return false;
    }
    if (hdr[1] != bucketCount_ || hdr[2] != headerCrc(bucketCount_)) {
        if (why)
            *why = "mod hashmap: table header CRC mismatch";
        return false;
    }
    for (std::uint64_t b = 0; b < bucketCount_; b++) {
        Addr cur = loadBucket(ctx, b);
        std::uint64_t steps = 0;
        while (cur != kNullAddr) {
            if (++steps > kMaxChain) {
                if (why)
                    *why = "mod hashmap: chain cycle";
                return false;
            }
            if (!heap_.isBlockStart(cur)) {
                if (why)
                    *why = "mod hashmap: chain names a non-node offset";
                return false;
            }
            MapEntry e{};
            ctx.load(cur, &e, sizeof(e));
            if (e.checksum != entryChecksum(e.key, e.vals)) {
                if (why)
                    *why = "mod hashmap: entry checksum mismatch";
                return false;
            }
            if (bucketOf(e.key) != b) {
                if (why)
                    *why = "mod hashmap: key in wrong bucket";
                return false;
            }
            cur = e.next;
        }
    }
    return true;
}

void
ModHashmap::reachable(pm::PmContext &ctx, std::vector<Addr> &out)
{
    for (std::uint64_t b = 0; b < bucketCount_; b++) {
        Addr cur = loadBucket(ctx, b);
        std::uint64_t steps = 0;
        while (cur != kNullAddr && heap_.isBlockStart(cur)) {
            panic_if(++steps > kMaxChain, "mod hashmap: chain cycle");
            out.push_back(cur);
            MapEntry e{};
            ctx.load(cur, &e, sizeof(e));
            cur = e.next;
        }
    }
}

std::uint64_t
ModHashmap::countReachable(pm::PmContext &ctx)
{
    std::vector<Addr> all;
    reachable(ctx, all);
    return all.size();
}

void
ModHashmap::scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
                  core::VerifyReport &report)
{
    if (lines.empty())
        return;
    const Addr table_end = tableOff_ + tableBytes(bucketCount_);
    const LineAddr t_first = lineOf(tableOff_);
    const LineAddr t_last = lineOf(table_end - 1);

    // Phase 1 — table lines. The header is fully redundant (attach
    // parameters), so it is rewritten silently; bucket slots have no
    // second copy, so a lost slot becomes an empty bucket and the
    // chain behind it bounded, *declared* data loss.
    std::vector<LineAddr> table_lines;
    std::vector<LineAddr> node_lines;
    for (const LineAddr line : lines) {
        (line >= t_first && line <= t_last ? table_lines : node_lines)
            .push_back(line);
    }
    std::vector<LineAddr> root_lost;
    for (const LineAddr line : table_lines) {
        const Addr lo = std::max<Addr>(line << kCacheLineBits,
                                       tableOff_);
        const Addr hi = std::min<Addr>((line + 1) << kCacheLineBits,
                                       table_end);
        for (Addr off = lo; off < hi; off += 8) {
            if (off == tableOff_) {
                ctx.store(off, &kMagic, 8, DataClass::TxMeta);
            } else if (off == tableOff_ + 8) {
                ctx.store(off, &bucketCount_, 8, DataClass::TxMeta);
            } else if (off == tableOff_ + 16) {
                const std::uint64_t crc = headerCrc(bucketCount_);
                ctx.store(off, &crc, 8, DataClass::TxMeta);
            } else {
                ctx.store(off, &kNullAddr, 8, DataClass::TxMeta);
                if (root_lost.empty() || root_lost.back() != line)
                    root_lost.push_back(line);
            }
        }
        ctx.persist(lo, hi - lo);
    }
    if (!root_lost.empty()) {
        report.degrade("mod-root-lost",
                       std::to_string(root_lost.size()) +
                           " bucket line(s) lost to media faults; "
                           "affected buckets emptied",
                       root_lost);
    }

    // Phase 2 — chain nodes. Any poisoned heap line was zero-filled,
    // so a corrupted node fails its entry CRC; truncate each chain at
    // the first such node by nulling the predecessor link (next is
    // excluded from the entry checksum, so the rewrite is safe).
    if (!node_lines.empty()) {
        std::uint64_t cut = 0;
        std::vector<LineAddr> cut_lines;
        for (std::uint64_t b = 0; b < bucketCount_; b++) {
            Addr prev_link = bucketOff(b);
            Addr cur = loadBucket(ctx, b);
            std::uint64_t steps = 0;
            while (cur != kNullAddr) {
                panic_if(++steps > kMaxChain,
                         "mod hashmap: chain cycle during scrub");
                MapEntry e{};
                bool ok = heap_.isBlockStart(cur);
                if (ok) {
                    ctx.load(cur, &e, sizeof(e));
                    ok = e.checksum == entryChecksum(e.key, e.vals);
                }
                if (!ok) {
                    ctx.store(prev_link, &kNullAddr, 8,
                              DataClass::TxMeta);
                    ctx.persist(prev_link, 8);
                    cut++;
                    cut_lines.push_back(lineOf(cur));
                    break;
                }
                prev_link = cur + offsetof(MapEntry, next);
                cur = e.next;
            }
        }
        if (cut) {
            report.degrade("mod-chain-corrupt",
                           std::to_string(cut) +
                               " chain(s) truncated at a corrupt node",
                           cut_lines);
        }
    }
    // Table lines are fully handled here; node-region lines are left
    // for the heap scrub (occupancy is rebuilt from reachability).
    lines = std::move(node_lines);
}

} // namespace whisper::mod

#include "txlib/nvml.hh"

#include <algorithm>
#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "core/verify_report.hh"
#include "txlib/elision.hh"

namespace whisper::nvml
{

using pm::DataClass;
using pm::FenceKind;

namespace
{

/** CRC32 of @p hdr (checksum zeroed) extended over the payload. */
std::uint32_t
undoCrc(const UndoHeader &hdr, const void *payload, std::size_t n)
{
    UndoHeader h = hdr;
    h.checksum = 0;
    std::uint32_t crc = crc32Update(0, &h, sizeof(h));
    if (n)
        crc = crc32Update(crc, payload, n);
    return crc;
}

/** Terminating sentinel record, CRC-stamped like any other. */
UndoHeader
endRecord()
{
    UndoHeader end{UndoHeader::kMagic, UndoKind::End, 0, 0, 0};
    end.checksum = undoCrc(end, nullptr, 0);
    return end;
}

} // namespace

NvmlPool::NvmlPool(pm::PmContext &ctx, Addr base, std::size_t size,
                   unsigned max_threads)
    : NvmlPool(base, size, max_threads)
{
    // Format: every tx descriptor NONE, every log terminated, null
    // root, then a fresh allocator (which formats its own redo log).
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        const auto none = static_cast<std::uint64_t>(TxState::None);
        ctx.store(stateOff(slot), &none, 8, DataClass::TxMeta);
        ctx.flush(stateOff(slot), 8);
        for (unsigned seg = 0; seg < kLogSegments; seg++) {
            const Addr seg_base =
                logBase(slot) + seg * segmentBytes();
            const UndoHeader end = endRecord();
            ctx.store(seg_base, &end, sizeof(end), DataClass::Log);
            ctx.flush(seg_base, sizeof(end));
        }
    }
    const Addr null_root = kNullAddr;
    ctx.store(rootOff_, &null_root, 8, DataClass::TxMeta);
    ctx.flush(rootOff_, 8);
    ctx.fence(FenceKind::Durability);

    const Addr alloc_log = heapBase_;
    const Addr slab_base = heapBase_ + alloc::NvmlAllocator::logBytes();
    alloc_ = std::make_unique<alloc::NvmlAllocator>(
        ctx, slab_base, base_ + size_ - slab_base, alloc_log);
}

NvmlPool::NvmlPool(Addr base, std::size_t size, unsigned max_threads)
    : base_(base), size_(size), maxThreads_(max_threads)
{
    panic_if(max_threads == 0, "pool needs at least one log slot");
    segCursor_.assign(maxThreads_, 0);
    // Layout: [tx states][per-thread logs][root][allocator log][slabs]
    const std::size_t state_area = kCacheLineSize * maxThreads_;
    const std::size_t log_area = kLogBytes * maxThreads_;
    panic_if(size_ < state_area + log_area + (1 << 16),
             "NVML pool region too small");
    rootOff_ = base_ + state_area + log_area;
    heapBase_ = rootOff_ + kCacheLineSize;
    if (!alloc_) {
        const Addr alloc_log = heapBase_;
        const Addr slab_base = heapBase_ +
                               alloc::NvmlAllocator::logBytes();
        alloc_ = std::make_unique<alloc::NvmlAllocator>(
            slab_base, base_ + size_ - slab_base, alloc_log);
    }
}

Addr
NvmlPool::stateOff(unsigned slot) const
{
    panic_if(slot >= maxThreads_, "tx slot out of range");
    return base_ + static_cast<Addr>(slot) * kCacheLineSize;
}

Addr
NvmlPool::logBase(unsigned slot) const
{
    panic_if(slot >= maxThreads_, "log slot out of range");
    return base_ + kCacheLineSize * maxThreads_ +
           static_cast<Addr>(slot) * kLogBytes;
}

Addr
NvmlPool::acquireLogSegment(unsigned slot)
{
    panic_if(slot >= maxThreads_, "log slot out of range");
    const unsigned seg = segCursor_[slot]++ % kLogSegments;
    return logBase(slot) + static_cast<Addr>(seg) * segmentBytes();
}

void
NvmlPool::recover(pm::PmContext &ctx)
{
    pm::OriginScope origin(ctx, trace::Origin::NvmlRecovery);
    // The allocator first: its redo log may carry bitmap mutations the
    // undo rollback below relies on (freeing needs a valid bitmap).
    alloc_->recover(ctx);

    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        std::uint64_t st = 0;
        ctx.load(stateOff(slot), &st, 8);

        // Walk every log segment, validating records. Only the
        // segment of the crashed transaction yields any (cleared
        // segments terminate at their first record).
        struct Rec { UndoKind kind; Addr addr; std::uint32_t size;
                     Addr payloadOff; };
        std::vector<Rec> recs;
        for (unsigned seg = 0; seg < kLogSegments; seg++) {
        const Addr seg_base = logBase(slot) + seg * segmentBytes();
        Addr cursor = seg_base;
        const Addr limit = seg_base + segmentBytes();
        while (cursor + sizeof(UndoHeader) <= limit) {
            UndoHeader hdr{};
            ctx.load(cursor, &hdr, sizeof(hdr));
            if (hdr.magic != UndoHeader::kMagic ||
                hdr.kind == UndoKind::End) {
                break;
            }
            const Addr payload = cursor + sizeof(UndoHeader);
            if (payload + hdr.size > limit ||
                undoCrc(hdr, ctx.pool().at<std::uint8_t>(payload),
                        hdr.size) != hdr.checksum) {
                // Torn or corrupted tail record: its data range was
                // never modified (records are fenced before data
                // writes), so skip.
                break;
            }
            recs.push_back({hdr.kind, hdr.addr, hdr.size, payload});
            cursor = lineBase(payload + hdr.size + kCacheLineSize - 1);
        }
        }

        if (st == static_cast<std::uint64_t>(TxState::Active)) {
            // Roll back: restore snapshots newest-first, release
            // transactional allocations.
            for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
                if (it->kind == UndoKind::Snapshot) {
                    std::vector<std::uint8_t> old(it->size);
                    ctx.load(it->payloadOff, old.data(), it->size);
                    ctx.store(it->addr, old.data(), it->size,
                              DataClass::User);
                    ctx.flush(it->addr, it->size);
                    ctx.fence(FenceKind::Ordering);
                } else if (it->kind == UndoKind::Alloc &&
                           alloc_->isAllocated(it->addr)) {
                    // The bitmap check makes rollback idempotent if a
                    // previous recovery attempt itself crashed.
                    alloc_->free(ctx, it->addr);
                }
            }
        }

        // Clear the logs and descriptor either way.
        for (unsigned seg = 0; seg < kLogSegments; seg++) {
            const Addr seg_base = logBase(slot) + seg * segmentBytes();
            const UndoHeader end = endRecord();
            ctx.store(seg_base, &end, sizeof(end), DataClass::Log);
            ctx.flush(seg_base, sizeof(end));
        }
        const auto none = static_cast<std::uint64_t>(TxState::None);
        ctx.store(stateOff(slot), &none, 8, DataClass::TxMeta);
        ctx.flush(stateOff(slot), 8);
        ctx.fence(FenceKind::Durability);
    }
}

void
NvmlPool::scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
                core::VerifyReport &report)
{
    if (lines.empty())
        return;
    const Addr states_end = base_ + kCacheLineSize * maxThreads_;
    const Addr logs_end = rootOff_;
    const LineAddr root_line = lineOf(rootOff_);
    const Addr alloc_log = heapBase_;
    const Addr alloc_log_end =
        heapBase_ + alloc::NvmlAllocator::logBytes();

    std::vector<LineAddr> desc_lost, log_lost, root_lost, alloc_lost,
        rest;
    // Descriptors first: a slot forced ACTIVE here makes its log
    // lines (scanned below) count as live damage.
    for (const LineAddr line : lines) {
        const Addr off = static_cast<Addr>(line) << kCacheLineBits;
        if (off >= base_ && off < states_end) {
            // Zero-filled reads as NONE, which would silently skip a
            // pending rollback. Force the conservative path: ACTIVE,
            // so recover() rolls back whatever valid records remain.
            const auto active =
                static_cast<std::uint64_t>(TxState::Active);
            ctx.store(off, &active, 8, DataClass::TxMeta);
            ctx.persist(off, 8);
            desc_lost.push_back(line);
        }
    }
    for (const LineAddr line : lines) {
        const Addr off = static_cast<Addr>(line) << kCacheLineBits;
        if (off >= base_ && off < states_end)
            continue; // handled above
        if (off >= states_end && off < logs_end) {
            const unsigned slot = static_cast<unsigned>(
                (off - states_end) / kLogBytes);
            std::uint64_t st = 0;
            ctx.load(stateOff(slot), &st, 8);
            if (st == static_cast<std::uint64_t>(TxState::Active))
                log_lost.push_back(line);
            // Retired/cleared log content is dead either way.
        } else if (line == root_line) {
            root_lost.push_back(line);
        } else if (off >= alloc_log && off < alloc_log_end) {
            alloc_lost.push_back(line);
        } else {
            rest.push_back(line);
        }
    }

    if (!desc_lost.empty()) {
        report.degrade("nvml-descriptor-lost",
                       std::to_string(desc_lost.size()) +
                           " tx descriptor(s) lost; forced ACTIVE for "
                           "conservative rollback",
                       desc_lost);
    }
    if (!log_lost.empty()) {
        report.degrade("nvml-undo-record-lost",
                       std::to_string(log_lost.size()) +
                           " undo-log line(s) of an ACTIVE slot lost; "
                           "rollback stops at the hole",
                       log_lost);
    }
    if (!root_lost.empty()) {
        report.degrade("nvml-root-lost",
                       "pool root slot lost to media faults",
                       root_lost);
    }
    if (!alloc_lost.empty()) {
        report.degrade("nvml-alloc-log-lost",
                       std::to_string(alloc_lost.size()) +
                           " allocator redo-log line(s) lost; pending "
                           "bitmap mutations dropped",
                       alloc_lost);
    }
    lines = std::move(rest);
}

bool
NvmlPool::logsQuiescent(pm::PmContext &ctx, std::string *why) const
{
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        std::uint64_t st = 0;
        ctx.load(stateOff(slot), &st, 8);
        if (st != static_cast<std::uint64_t>(TxState::None)) {
            if (why) {
                *why = "NVML slot " + std::to_string(slot) +
                       " descriptor is " + std::to_string(st) +
                       " (want NONE)";
            }
            return false;
        }
        for (unsigned seg = 0; seg < kLogSegments; seg++) {
            UndoHeader hdr{};
            ctx.load(logBase(slot) + seg * segmentBytes(), &hdr,
                     sizeof(hdr));
            if (hdr.magic == UndoHeader::kMagic &&
                hdr.kind != UndoKind::End) {
                if (why) {
                    *why = "NVML slot " + std::to_string(slot) +
                           " segment " + std::to_string(seg) +
                           " still holds a live undo record";
                }
                return false;
            }
        }
    }
    return true;
}

TxContext::TxContext(NvmlPool &pool, pm::PmContext &ctx)
    : pool_(pool), ctx_(ctx), state_(State::Active)
{
    id_ = ctx_.txBegin();
    slot_ = ctx_.tid() % pool_.maxThreads();
    logStart_ = pool_.acquireLogSegment(slot_);
    logHead_ = logStart_;
    setTxState(TxState::Active);
}

TxContext::~TxContext()
{
    // See Transaction::~Transaction: a crash point "kills the
    // process" mid-transaction; recovery rolls the log back.
    if (state_ == State::Active && ctx_.crashInjected())
        return;
    panic_if(state_ == State::Active,
             "TxContext destroyed without commit/abort");
}

void
TxContext::setTxState(TxState st)
{
    pm::OriginScope origin(ctx_, trace::Origin::NvmlTxState);
    const auto val = static_cast<std::uint64_t>(st);
    ctx_.store(pool_.stateOff(slot_), &val, 8, DataClass::TxMeta);
    ctx_.flush(pool_.stateOff(slot_), 8);
    ctx_.fence(FenceKind::Ordering);
}

void
TxContext::appendUndo(UndoKind kind, Addr addr, const void *payload,
                      std::uint32_t size)
{
    const Addr limit = logStart_ + NvmlPool::segmentBytes();
    panic_if(logHead_ + 2 * sizeof(UndoHeader) + size > limit,
             "NVML undo log overflow");
    UndoHeader hdr{UndoHeader::kMagic, kind, addr, size, 0};
    hdr.checksum = undoCrc(hdr, payload, size);
    // Undo records use cacheable stores + flush (NVML executes "all
    // log and data updates" with cacheable stores), and must be
    // durable before the data range may change: fence now. These
    // alternating record/data epochs are NVML's signature behaviour.
    pm::OriginScope origin(ctx_, trace::Origin::NvmlUndoAppend);
    ctx_.store(logHead_, &hdr, sizeof(hdr), DataClass::Log);
    if (size) {
        ctx_.store(logHead_ + sizeof(UndoHeader), payload, size,
                   DataClass::Log);
    }
    ctx_.flush(logHead_, sizeof(hdr) + size);
    // Line-aligned records; the per-record clears at commit keep
    // every retired segment terminated, so no tail sentinel is
    // needed (a mid-record stale tail fails magic/checksum checks).
    logHead_ = lineBase(logHead_ + sizeof(hdr) + size +
                        kCacheLineSize - 1);
    ctx_.fence(FenceKind::Ordering);
}

void
TxContext::addRange(Addr off, std::size_t n)
{
    panic_if(state_ != State::Active, "addRange on finished tx");
    std::vector<std::uint8_t> old(n);
    ctx_.load(off, old.data(), n);
    appendUndo(UndoKind::Snapshot, off, old.data(),
               static_cast<std::uint32_t>(n));
    noteModified(off, n);
}

void
TxContext::directStore(Addr off, const void *src, std::size_t n,
                       pm::DataClass cls)
{
    panic_if(state_ != State::Active, "directStore on finished tx");
    ctx_.store(off, src, n, cls);
    noteModified(off, n);
}

void
TxContext::noteModified(Addr off, std::size_t n)
{
    modified_.emplace_back(off, static_cast<std::uint32_t>(n));
}

Addr
TxContext::txAlloc(std::size_t n)
{
    panic_if(state_ != State::Active, "txAlloc on finished tx");
    const Addr payload = pool_.alloc_->alloc(ctx_, n);
    if (payload == kNullAddr)
        return payload;
    appendUndo(UndoKind::Alloc, payload, nullptr, 0);
    allocs_.push_back(payload);
    return payload;
}

void
TxContext::txFree(Addr payload)
{
    panic_if(state_ != State::Active, "txFree on finished tx");
    deferredFrees_.push_back(payload);
}

void
TxContext::commit()
{
    panic_if(state_ != State::Active, "double commit");

    // Flush every modified range, one durability point for the tx.
    // The data-durable-before-COMMITTED fence is never elidable for a
    // non-empty write set (a crash between COMMITTED and durable data
    // would keep torn rows); with nothing modified there is nothing
    // to drain, and the COMMITTED state write below carries its own
    // fence — the optimizer's coalescible pair (d).
    {
        pm::OriginScope origin(ctx_, trace::Origin::NvmlCommitFlush);
        for (const auto &[off, n] : modified_)
            ctx_.flush(off, n);
        if (!modified_.empty() ||
            !txlib::elisionEnabled(txlib::kElideNvmlCommitFence)) {
            ctx_.fence(FenceKind::Durability);
        }
    }

    setTxState(TxState::Committed);
    clearLog();

    for (const Addr payload : deferredFrees_)
        pool_.alloc_->free(ctx_, payload);

    setTxState(TxState::None);
    state_ = State::Committed;
    ctx_.txEnd(id_);
}

void
TxContext::abort()
{
    panic_if(state_ != State::Active, "abort on finished tx");

    // Restore snapshots newest-first, then free tx allocations.
    Addr cursor = logStart_;
    std::vector<std::pair<Addr, UndoHeader>> recs;
    while (cursor < logHead_) {
        UndoHeader hdr{};
        ctx_.load(cursor, &hdr, sizeof(hdr));
        recs.emplace_back(cursor + sizeof(UndoHeader), hdr);
        cursor = lineBase(cursor + sizeof(UndoHeader) + hdr.size +
                          kCacheLineSize - 1);
    }
    for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
        const auto &[payload_off, hdr] = *it;
        if (hdr.kind == UndoKind::Snapshot) {
            std::vector<std::uint8_t> old(hdr.size);
            ctx_.load(payload_off, old.data(), hdr.size);
            ctx_.store(hdr.addr, old.data(), hdr.size, DataClass::User);
            ctx_.flush(hdr.addr, hdr.size);
            ctx_.fence(FenceKind::Ordering);
        } else if (hdr.kind == UndoKind::Alloc) {
            pool_.alloc_->free(ctx_, hdr.addr);
        }
    }
    clearLog();
    setTxState(TxState::None);
    state_ = State::Aborted;
    ctx_.txAbort(id_);
}

void
TxContext::clearLog()
{
    pm::OriginScope origin(ctx_, trace::Origin::NvmlClearLog);
    if (txlib::elisionEnabled(txlib::kElideNvmlClearLog)) {
        // Batched retirement: every end record stored, every record
        // line flushed, one fence. The per-record fences are the
        // optimizer's category (c) — consecutive clear epochs touch
        // different record lines — and dropping them is safe because
        // recover() clears logs and descriptors for any state a crash
        // leaves behind, however many records were already retired.
        std::vector<Addr> recs;
        Addr cursor = logStart_;
        while (cursor < logHead_) {
            UndoHeader hdr{};
            ctx_.load(cursor, &hdr, sizeof(hdr));
            recs.push_back(cursor);
            const UndoHeader end = endRecord();
            ctx_.store(cursor, &end, sizeof(end), DataClass::Log);
            cursor = lineBase(cursor + sizeof(UndoHeader) + hdr.size +
                              kCacheLineSize - 1);
        }
        for (const Addr rec : recs)
            ctx_.flush(rec, sizeof(UndoHeader));
        if (!recs.empty())
            ctx_.fence(FenceKind::Ordering);
        logHead_ = logStart_;
        return;
    }
    // NVML "sets and clears its log entries" one at a time; each clear
    // is a singleton epoch.
    Addr cursor = logStart_;
    while (cursor < logHead_) {
        UndoHeader hdr{};
        ctx_.load(cursor, &hdr, sizeof(hdr));
        const UndoHeader end = endRecord();
        ctx_.store(cursor, &end, sizeof(end), DataClass::Log);
        ctx_.flush(cursor, sizeof(end));
        ctx_.fence(FenceKind::Ordering);
        cursor = lineBase(cursor + sizeof(UndoHeader) + hdr.size +
                          kCacheLineSize - 1);
    }
    logHead_ = logStart_;
}

} // namespace whisper::nvml

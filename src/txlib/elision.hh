/**
 * @file
 * Elision policy for the txlib layers' redundant persistence work.
 *
 * The trace optimizer (analysis/optimize.hh) classifies flushes and
 * fences as redundant; this header names the subset of those findings
 * the runtime can act on safely. Each policy bit gates one origin
 * site whose elision has a layer-specific recovery argument
 * (DESIGN.md §11), proven by rerunning the crashfuzz and media-fault
 * sweeps with the bit set:
 *
 *  - kElideMneCommitApply — Mnemosyne applies its write set in one
 *    coalesced epoch (all stores, then deduped flushes, then a single
 *    durability fence) instead of a (store, flush, fence) epoch per
 *    staged write. Safe: the redo log and commit record are already
 *    durable when application starts, and replay is idempotent — a
 *    crash anywhere inside the apply re-applies the whole write set.
 *  - kElideNvmlClearLog — NVML retires its undo log in one epoch
 *    (all end-record stores, then flushes, then one fence) instead of
 *    a singleton epoch per record. Safe: the descriptor is already
 *    COMMITTED, and recover() clears logs and descriptors regardless
 *    of how many records a crash left un-retired.
 *  - kElideNvmlCommitFence — NVML skips the commit durability fence
 *    when the transaction modified no range (the fence pairs with the
 *    preceding one across an empty epoch — the optimizer's category
 *    (d)). Safe: with nothing staged there is nothing the fence could
 *    drain before the COMMITTED state write, which carries its own
 *    fence.
 *
 * What is deliberately NOT elidable: log-append ordering fences (a
 * record must be durable before the data it protects changes) and the
 * data-durable-before-COMMITTED fence in a non-empty NVML commit
 * (eliding it could mark torn data committed). The optimizer reports
 * those sites with an empty policy name.
 *
 * The policy is a process-global atomic bitmask: the fuzz harness and
 * benches flip it per run, and racing contexts only ever read it.
 */

#ifndef WHISPER_TXLIB_ELISION_HH
#define WHISPER_TXLIB_ELISION_HH

#include <cstdint>

namespace whisper::txlib
{

/** Bitmask of elision sites. */
using ElisionPolicy = std::uint32_t;

enum : ElisionPolicy
{
    kElideNone = 0,
    /** Mnemosyne: coalesce the commit-time write-set application. */
    kElideMneCommitApply = 1u << 0,
    /** NVML: batch the per-record undo-log clears into one epoch. */
    kElideNvmlClearLog = 1u << 1,
    /** NVML: drop the commit durability fence of empty write sets. */
    kElideNvmlCommitFence = 1u << 2,
    /** Every proven-safe elision. */
    kElideAll = kElideMneCommitApply | kElideNvmlClearLog |
                kElideNvmlCommitFence,
};

/** Current process-global policy. */
ElisionPolicy elisionPolicy();

/** Replace the process-global policy (atomic; takes effect at once). */
void setElisionPolicy(ElisionPolicy policy);

/** True when every bit of @p bits is enabled. */
bool elisionEnabled(ElisionPolicy bits);

/** Short name of a single policy bit (CLI/report labels). */
const char *elisionPolicyName(ElisionPolicy bit);

/** RAII policy override, restoring the previous mask (tests/benches). */
class ScopedElisionPolicy
{
  public:
    explicit ScopedElisionPolicy(ElisionPolicy policy)
        : prev_(elisionPolicy())
    {
        setElisionPolicy(policy);
    }

    ~ScopedElisionPolicy() { setElisionPolicy(prev_); }

    ScopedElisionPolicy(const ScopedElisionPolicy &) = delete;
    ScopedElisionPolicy &operator=(const ScopedElisionPolicy &) = delete;

  private:
    ElisionPolicy prev_;
};

} // namespace whisper::txlib

#endif // WHISPER_TXLIB_ELISION_HH

#include "txlib/gc.hh"

#include <unordered_set>

namespace whisper::mne
{

GcStats
collectGarbage(MnemosyneHeap &heap, pm::PmContext &ctx,
               const std::vector<Addr> &roots,
               const TraceRefsFn &trace_refs)
{
    // Mark: BFS over the reference graph, clamped to live allocations
    // (a stale pointer into freed space must not resurrect it).
    std::unordered_set<Addr> reachable;
    std::vector<Addr> work;
    for (const Addr root : roots) {
        if (root != kNullAddr && heap.allocator().isAllocated(root) &&
            reachable.insert(root).second) {
            work.push_back(root);
        }
    }
    std::vector<Addr> refs;
    while (!work.empty()) {
        const Addr obj = work.back();
        work.pop_back();
        refs.clear();
        trace_refs(ctx, obj, refs);
        for (const Addr ref : refs) {
            if (ref != kNullAddr &&
                heap.allocator().isAllocated(ref) &&
                reachable.insert(ref).second) {
                work.push_back(ref);
            }
        }
    }

    // Sweep: free every allocated payload the mark never reached.
    GcStats stats;
    stats.reachable = reachable.size();
    std::vector<std::pair<Addr, std::size_t>> dead;
    heap.allocator().forEachAllocated(
        [&](Addr payload, std::size_t size) {
            if (!reachable.count(payload))
                dead.emplace_back(payload, size);
        });
    for (const auto &[payload, size] : dead) {
        heap.pfree(ctx, payload);
        stats.freed++;
        stats.bytesFreed += size;
    }
    return stats;
}

} // namespace whisper::mne

/**
 * @file
 * Garbage collection for leak-tolerant persistent heaps.
 *
 * Mnemosyne's allocator may leak blocks when a crash lands between
 * the bitmap update and the application linking the object; the paper
 * suggests exactly this remedy: "language and runtime support, such
 * as garbage collection of unreachable objects after a restart, could
 * similarly help reduce ordering points" (Consequence 8 discussion).
 *
 * collectGarbage() is a stop-the-world mark-and-sweep to be run after
 * recovery, before new mutators start: the application supplies its
 * persistent roots and a tracer that enumerates the payload offsets
 * an object references; everything allocated but unreached is freed.
 */

#ifndef WHISPER_TXLIB_GC_HH
#define WHISPER_TXLIB_GC_HH

#include <functional>
#include <vector>

#include "txlib/mnemosyne.hh"

namespace whisper::mne
{

/**
 * Enumerates the payload offsets directly referenced by the object at
 * @p payload, appending them to @p out. Offsets that are kNullAddr or
 * outside the heap are ignored by the collector.
 */
using TraceRefsFn =
    std::function<void(pm::PmContext &ctx, Addr payload,
                       std::vector<Addr> &out)>;

/** Result of one collection. */
struct GcStats
{
    std::uint64_t reachable = 0;
    std::uint64_t freed = 0;
    std::uint64_t bytesFreed = 0;
};

/**
 * Mark from @p roots via @p trace_refs, sweep the heap's allocator.
 * Must run single-threaded (post-recovery, pre-mutators).
 */
GcStats collectGarbage(MnemosyneHeap &heap, pm::PmContext &ctx,
                       const std::vector<Addr> &roots,
                       const TraceRefsFn &trace_refs);

} // namespace whisper::mne

#endif // WHISPER_TXLIB_GC_HH

/**
 * @file
 * Mnemosyne-style durable transactions (redo logging).
 *
 * Reproduces the discipline the paper describes for Mnemosyne:
 *
 *  - each transactional update appends a redo record to a per-thread
 *    log using non-temporal stores ordered by an sfence (one epoch per
 *    record — the paper's Figure 2 shows exactly this PM_MOVNTI +
 *    PM_FENCE pair), while the new data is kept in a volatile write
 *    set ("saves modified data to a temporary location");
 *  - commit writes a commit record (NTI + fence), then applies the
 *    write set to the real data structures with cacheable stores,
 *    flushes the modified lines and fences;
 *  - the log is then truncated by clearing each record in its own
 *    epoch — the behaviour the paper identifies as a major source of
 *    singleton epochs;
 *  - allocation comes from a SlabAllocator (pmalloc/pfree), which may
 *    leak on a crash but adds only one small epoch per object.
 *
 * Recovery: logs with a durable commit record are replayed (the crash
 * may have hit mid-flush of the real data); logs without one are
 * discarded — uncommitted transactions never touched live data.
 */

#ifndef WHISPER_TXLIB_MNEMOSYNE_HH
#define WHISPER_TXLIB_MNEMOSYNE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/slab_alloc.hh"
#include "pm/pm_context.hh"

namespace whisper::core
{
class VerifyReport;
}

namespace whisper::mne
{

/** Record kinds inside a redo log. */
enum class RedoKind : std::uint32_t
{
    End = 0,       //!< sentinel: no record here
    Update = 1,    //!< redo data for [addr, addr+size)
    Commit = 2,    //!< transaction committed
};

/**
 * Fixed header preceding every redo record. Each record carries its
 * transaction's sequence number; recovery only honours records whose
 * sequence matches the one published in the active-log cell, so a
 * stale record (e.g. an old commit marker) left in a reused segment
 * can never be mistaken for the current transaction's.
 */
struct RedoHeader
{
    std::uint32_t magic;     //!< kMagic
    RedoKind kind;
    Addr addr;               //!< target offset (Update only)
    std::uint32_t size;      //!< payload bytes (Update only)
    /**
     * CRC32 over the header (checksum field zeroed) plus the payload.
     * Covering the header lets recovery distinguish a record that was
     * never written from one the media tore or corrupted — the fault
     * model's "never persisted" vs "corrupted" split (DESIGN.md §9).
     */
    std::uint32_t checksum;
    std::uint64_t seq;       //!< owning transaction's sequence

    static constexpr std::uint32_t kMagic = 0x4D4E4531u; // "MNE1"
};

/**
 * A persistent heap with per-thread redo logs — one Mnemosyne
 * "segment" plus its logging machinery.
 */
class MnemosyneHeap
{
  public:
    /** Per-thread redo log area size. */
    static constexpr std::size_t kLogBytes = 1 << 20;

    /**
     * The log area behaves as a ring: consecutive transactions append
     * into rotating segments, so (as with the real library's
     * continuously appended logs) back-to-back transactions do not
     * rewrite the same cache lines. Recovery scans every segment;
     * cleared segments terminate immediately.
     */
    static constexpr unsigned kLogSegments = 16;

    static constexpr std::size_t
    segmentBytes()
    {
        return kLogBytes / kLogSegments;
    }

    /**
     * Format a heap over [base, base+size) supporting up to
     * @p max_threads concurrent transaction streams. The log areas
     * are carved from the front of the region.
     */
    MnemosyneHeap(pm::PmContext &ctx, Addr base, std::size_t size,
                  unsigned max_threads);

    /** Attach to an existing heap; call recover() next. */
    MnemosyneHeap(Addr base, std::size_t size, unsigned max_threads);

    /**
     * Replay or discard every per-thread log, then rebuild the
     * allocator index. Call once after a crash, single-threaded.
     */
    void recover(pm::PmContext &ctx);

    /** Non-transactional persistent allocation (pmalloc). */
    Addr pmalloc(pm::PmContext &ctx, std::size_t n);

    /** Non-transactional persistent free (pfree). */
    void pfree(pm::PmContext &ctx, Addr payload);

    alloc::SlabAllocator &allocator() { return *alloc_; }

    /** Offset of the root-pointer slot applications may use. */
    Addr rootOff() const { return rootOff_; }

    Addr logBase(unsigned slot) const;

    /** Segment base + sequence for this slot's next transaction. */
    std::pair<Addr, std::uint64_t> acquireLogSegment(unsigned slot);

    /** Per-slot cell naming the in-flight tx's segment (or null). */
    Addr activeCellOff(unsigned slot) const;

    /**
     * Recovery invariant: no slot may still publish an active redo
     * segment once recover() ran — a published cell means a committed
     * transaction was replayed but not retired, or recovery never
     * scanned the slot. Fills @p why on violation.
     */
    bool logsQuiescent(pm::PmContext &ctx, std::string *why) const;

    /**
     * Media-fault scrub (runs before recover()): poisoned active-log
     * cells are re-nulled (the in-flight — possibly committed —
     * transaction is discarded, degrading "mne-active-cell-lost"),
     * poisoned lines inside a *published* log segment degrade
     * "mne-log-record-lost" (recovery's CRC walk stops at the zeroed
     * record, so a later commit marker is unreachable), a poisoned
     * root line degrades "mne-root-lost", and unpublished log lines
     * are claimed silently (their content was already dead). Erases
     * every line handled from @p lines; heap lines are left for the
     * caller.
     */
    void scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
               core::VerifyReport &report);

    unsigned maxThreads() const { return maxThreads_; }

  private:
    friend class Transaction;

    Addr base_;
    std::size_t size_;
    unsigned maxThreads_;
    Addr rootOff_;
    Addr heapBase_;
    std::vector<std::uint64_t> segCursor_;
    std::unique_ptr<alloc::SlabAllocator> alloc_;
};

/**
 * One durable transaction. Not copyable; commit() or abort() must be
 * called exactly once.
 */
class Transaction
{
  public:
    /**
     * Begin a transaction on @p ctx's thread. The log slot is
     * ctx.tid() % maxThreads, mirroring per-thread logs.
     */
    Transaction(MnemosyneHeap &heap, pm::PmContext &ctx);
    ~Transaction();

    Transaction(const Transaction &) = delete;
    Transaction &operator=(const Transaction &) = delete;

    /** Transactional update of [off, off+n): logs redo + stages data. */
    void update(Addr off, const void *src, std::size_t n,
                pm::DataClass cls = pm::DataClass::User);

    /** Typed field update (field must live in the pool). */
    template <typename T>
    void
    set(T &field_in_pool, const T &value,
        pm::DataClass cls = pm::DataClass::User)
    {
        update(ctx_.pool().offsetOf(&field_in_pool), &value, sizeof(T),
               cls);
    }

    /**
     * Transactional read of [off, off+n): pool data overlaid with this
     * transaction's own staged writes (read-own-writes).
     */
    void read(Addr off, void *dst, std::size_t n);

    template <typename T>
    T
    get(const T &field_in_pool)
    {
        T out;
        read(ctx_.pool().offsetOf(&field_in_pool), &out, sizeof(T));
        return out;
    }

    /** Allocate inside the transaction (freed again on abort). */
    Addr pmalloc(std::size_t n);

    /** Free inside the transaction (deferred to commit). */
    void pfree(Addr payload);

    /** Make every staged update durable, atomically. */
    void commit();

    /** Discard staged updates; frees transactional allocations. */
    void abort();

    bool active() const { return state_ == State::Active; }

  private:
    enum class State { Active, Committed, Aborted };

    struct StagedWrite
    {
        Addr off;
        std::vector<std::uint8_t> bytes;
        pm::DataClass cls;
    };

    void appendRedo(RedoKind kind, Addr addr, const void *payload,
                    std::uint32_t size,
                    pm::FenceKind fence = pm::FenceKind::Ordering);
    void truncateLog();

    MnemosyneHeap &heap_;
    pm::PmContext &ctx_;
    TxId id_;
    State state_;
    std::uint64_t seq_ = 0;
    Addr logHead_;   //!< next free byte in this thread's log area
    Addr logStart_;
    std::vector<StagedWrite> writes_;
    std::vector<Addr> allocs_;
    std::vector<Addr> deferredFrees_;
};

/**
 * Payload checksum shared by the redo/undo/journal records — CRC32
 * (common/crc32.hh) so torn words and scrubbed regions are detected,
 * not just reordered bytes.
 */
std::uint32_t foldChecksum(const void *data, std::size_t n);

/** CRC32 of @p hdr (checksum field zeroed) extended over the payload. */
std::uint32_t redoCrc(const RedoHeader &hdr, const void *payload,
                      std::size_t n);

} // namespace whisper::mne

#endif // WHISPER_TXLIB_MNEMOSYNE_HH

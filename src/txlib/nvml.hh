/**
 * @file
 * NVML-style durable transactions (undo logging, pmemobj-like API).
 *
 * Reproduces the discipline the paper describes for NVML v1.0:
 *
 *  - before an object range is modified, its *old* contents are
 *    written to a per-thread undo log with cacheable stores, flushed
 *    and fenced (the undo record must be durable before the data may
 *    change) — this is why undo logging "fragments a transaction into
 *    a series of alternating epochs";
 *  - data updates then happen in place, unflushed; the fence after the
 *    next undo record sweeps them into that epoch, and the remaining
 *    flushes happen at commit (the paper observed exactly this
 *    modify-in-one-epoch / flush-in-another pattern for NVML);
 *  - commit flushes every modified range, fences, durably marks the
 *    transaction COMMITTED, then clears each log entry in its own
 *    epoch and finally resets the state to NONE;
 *  - allocation goes through the redo-logged NvmlAllocator and is
 *    additionally recorded in the undo log so that an abort (or crash)
 *    frees it — NVML never leaks, at the price of extra epochs.
 *
 * Recovery: ACTIVE logs are rolled back from the durable image
 * (restore old data, free transactional allocations); COMMITTED logs
 * are discarded; NONE means nothing was in flight.
 */

#ifndef WHISPER_TXLIB_NVML_HH
#define WHISPER_TXLIB_NVML_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/nvml_alloc.hh"
#include "pm/pm_context.hh"

namespace whisper::core
{
class VerifyReport;
}

namespace whisper::nvml
{

/** Undo-record kinds. */
enum class UndoKind : std::uint32_t
{
    End = 0,       //!< sentinel
    Snapshot = 1,  //!< old contents of [addr, addr+size)
    Alloc = 2,     //!< payload allocated in this transaction
};

/** Fixed header preceding every undo record. */
struct UndoHeader
{
    std::uint32_t magic;    //!< kMagic
    UndoKind kind;
    Addr addr;
    std::uint32_t size;
    std::uint32_t checksum;

    static constexpr std::uint32_t kMagic = 0x4E564D4Cu; // "NVML"
};

/** Per-thread transaction descriptor states. */
enum class TxState : std::uint64_t
{
    None = 0,
    Active = 1,
    Committed = 2,
};

/**
 * A pmemobj-like pool: allocator + per-thread undo logs + a root slot.
 */
class NvmlPool
{
  public:
    static constexpr std::size_t kLogBytes = 1 << 20;

    /** Rotating log segments (see MnemosyneHeap::kLogSegments). */
    static constexpr unsigned kLogSegments = 16;

    static constexpr std::size_t
    segmentBytes()
    {
        return kLogBytes / kLogSegments;
    }

    /** Format a pool over [base, base+size). */
    NvmlPool(pm::PmContext &ctx, Addr base, std::size_t size,
             unsigned max_threads);

    /** Attach after a crash; call recover() next. */
    NvmlPool(Addr base, std::size_t size, unsigned max_threads);

    /** Roll back/complete in-flight transactions; rebuild allocator. */
    void recover(pm::PmContext &ctx);

    alloc::NvmlAllocator &allocator() { return *alloc_; }

    /** Root-object slot (pmemobj_root). */
    Addr rootOff() const { return rootOff_; }

    Addr logBase(unsigned slot) const;
    Addr acquireLogSegment(unsigned slot);
    Addr stateOff(unsigned slot) const;
    unsigned maxThreads() const { return maxThreads_; }

    /**
     * Recovery invariant: every per-thread descriptor must be NONE
     * and every log segment must terminate at its first record —
     * an ACTIVE descriptor means a rollback was skipped, a COMMITTED
     * one that commit cleanup never finished and recovery did not
     * complete it. Fills @p why on violation.
     */
    bool logsQuiescent(pm::PmContext &ctx, std::string *why) const;

    /**
     * Media-fault scrub (runs before recover()): a poisoned
     * descriptor is rewritten ACTIVE — the zero-filled line would
     * read NONE and silently skip a pending rollback, so the scrub
     * forces the conservative path and degrades
     * "nvml-descriptor-lost". Poisoned lines in the log of an ACTIVE
     * slot degrade "nvml-undo-record-lost" (the CRC walk stops at the
     * hole; records past it are not rolled back); other log lines are
     * claimed silently. A poisoned root line degrades
     * "nvml-root-lost"; poisoned allocator-log lines degrade
     * "nvml-alloc-log-lost". Erases every line handled from @p lines.
     */
    void scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
               core::VerifyReport &report);

  private:
    friend class TxContext;

    Addr base_;
    std::size_t size_;
    unsigned maxThreads_;
    Addr rootOff_;
    Addr heapBase_;
    std::vector<std::uint32_t> segCursor_;
    std::unique_ptr<alloc::NvmlAllocator> alloc_;
};

/**
 * One undo-logged durable transaction (pmemobj_tx_*).
 */
class TxContext
{
  public:
    TxContext(NvmlPool &pool, pm::PmContext &ctx);
    ~TxContext();

    TxContext(const TxContext &) = delete;
    TxContext &operator=(const TxContext &) = delete;

    /**
     * pmemobj_tx_add_range: snapshot [off, off+n) into the undo log.
     * Must be called before modifying the range (unless the object
     * was allocated in this transaction).
     */
    void addRange(Addr off, std::size_t n);

    /** Snapshot + in-place store of a field. */
    template <typename T>
    void
    set(T &field_in_pool, const T &value,
        pm::DataClass cls = pm::DataClass::User)
    {
        const Addr off = ctx_.pool().offsetOf(&field_in_pool);
        addRange(off, sizeof(T));
        ctx_.store(off, &value, sizeof(T), cls);
        noteModified(off, sizeof(T));
    }

    /** In-place store without snapshot (new objects only). */
    void directStore(Addr off, const void *src, std::size_t n,
                     pm::DataClass cls = pm::DataClass::User);

    /** pmemobj_tx_alloc: logged allocation, freed on abort. */
    Addr txAlloc(std::size_t n);

    /** pmemobj_tx_free: deferred to commit. */
    void txFree(Addr payload);

    void commit();
    void abort();

    bool active() const { return state_ == State::Active; }

  private:
    enum class State { Active, Committed, Aborted };

    void appendUndo(UndoKind kind, Addr addr, const void *payload,
                    std::uint32_t size);
    void clearLog();
    void setTxState(TxState st);
    void noteModified(Addr off, std::size_t n);

    NvmlPool &pool_;
    pm::PmContext &ctx_;
    TxId id_;
    State state_;
    unsigned slot_;
    Addr logStart_;
    Addr logHead_;
    std::vector<std::pair<Addr, std::uint32_t>> modified_;
    std::vector<Addr> allocs_;
    std::vector<Addr> deferredFrees_;
};

} // namespace whisper::nvml

#endif // WHISPER_TXLIB_NVML_HH

#include "txlib/elision.hh"

#include <atomic>

namespace whisper::txlib
{

namespace
{
std::atomic<ElisionPolicy> g_policy{kElideNone};
} // namespace

ElisionPolicy
elisionPolicy()
{
    return g_policy.load(std::memory_order_relaxed);
}

void
setElisionPolicy(ElisionPolicy policy)
{
    g_policy.store(policy, std::memory_order_relaxed);
}

bool
elisionEnabled(ElisionPolicy bits)
{
    return (elisionPolicy() & bits) == bits;
}

const char *
elisionPolicyName(ElisionPolicy bit)
{
    switch (bit) {
      case kElideMneCommitApply:  return "mne-commit-apply";
      case kElideNvmlClearLog:    return "nvml-clear-log";
      case kElideNvmlCommitFence: return "nvml-commit-fence";
      default:                    return "?";
    }
}

} // namespace whisper::txlib

#include "txlib/mnemosyne.hh"

#include <cstring>

#include "common/logging.hh"

namespace whisper::mne
{

using pm::DataClass;
using pm::FenceKind;

std::uint32_t
foldChecksum(const void *data, std::size_t n)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t acc = 0x9e3779b9u;
    for (std::size_t i = 0; i < n; i++)
        acc = (acc << 5 | acc >> 27) ^ bytes[i];
    return acc;
}

MnemosyneHeap::MnemosyneHeap(pm::PmContext &ctx, Addr base,
                             std::size_t size, unsigned max_threads)
    : MnemosyneHeap(base, size, max_threads)
{
    // Format: null every active-segment cell (the per-record
    // sequence tags make segment contents self-describing).
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        const Addr none = kNullAddr;
        ctx.store(activeCellOff(slot), &none, 8, DataClass::TxMeta);
        ctx.flush(activeCellOff(slot), 8);
    }
    // Null root pointer.
    const Addr null_root = kNullAddr;
    ctx.store(rootOff_, &null_root, sizeof(null_root), DataClass::TxMeta);
    ctx.flush(rootOff_, sizeof(null_root));
    ctx.fence(FenceKind::Durability);
    alloc_ = std::make_unique<alloc::SlabAllocator>(ctx, heapBase_,
                                                    base_ + size_ -
                                                        heapBase_);
}

MnemosyneHeap::MnemosyneHeap(Addr base, std::size_t size,
                             unsigned max_threads)
    : base_(base), size_(size), maxThreads_(max_threads)
{
    panic_if(max_threads == 0, "heap needs at least one log slot");
    segCursor_.assign(maxThreads_, 0);
    // Layout: [active cells][per-thread logs][root][slab heap].
    const std::size_t cells_area = kCacheLineSize * maxThreads_;
    const std::size_t log_area = kLogBytes * maxThreads_;
    panic_if(size_ < cells_area + log_area + (1 << 16),
             "Mnemosyne heap region too small");
    rootOff_ = base_ + cells_area + log_area;
    heapBase_ = rootOff_ + kCacheLineSize;
    if (!alloc_) {
        alloc_ = std::make_unique<alloc::SlabAllocator>(
            heapBase_, base_ + size_ - heapBase_);
    }
}

Addr
MnemosyneHeap::activeCellOff(unsigned slot) const
{
    panic_if(slot >= maxThreads_, "cell slot out of range");
    return base_ + static_cast<Addr>(slot) * kCacheLineSize;
}

Addr
MnemosyneHeap::logBase(unsigned slot) const
{
    panic_if(slot >= maxThreads_, "log slot out of range");
    return base_ + kCacheLineSize * maxThreads_ +
           static_cast<Addr>(slot) * kLogBytes;
}

std::pair<Addr, std::uint64_t>
MnemosyneHeap::acquireLogSegment(unsigned slot)
{
    panic_if(slot >= maxThreads_, "log slot out of range");
    const std::uint64_t seq = ++segCursor_[slot];
    const Addr base = logBase(slot) +
                      static_cast<Addr>(seq % kLogSegments) *
                          segmentBytes();
    return {base, seq};
}

void
MnemosyneHeap::recover(pm::PmContext &ctx)
{
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        // Only a published (active) segment can hold an in-flight
        // transaction; everything else was retired by its commit's
        // cell write.
        struct { Addr base; std::uint64_t seq; } cell{};
        ctx.load(activeCellOff(slot), &cell, sizeof(cell));
        const Addr seg_base = cell.base;
        if (seg_base == kNullAddr)
            continue;
        Addr cursor = seg_base;
        const Addr limit = seg_base + segmentBytes();
        bool committed = false;
        std::vector<std::pair<Addr, std::uint32_t>> updates; // hdr offs
        while (cursor + sizeof(RedoHeader) <= limit) {
            RedoHeader hdr{};
            ctx.load(cursor, &hdr, sizeof(hdr));
            if (hdr.magic != RedoHeader::kMagic ||
                hdr.kind == RedoKind::End || hdr.seq != cell.seq) {
                break; // stale record from the segment's previous use
            }
            if (hdr.kind == RedoKind::Commit) {
                committed = true;
                break;
            }
            // Validate the payload against the checksum; a torn tail
            // record means the transaction never committed.
            const Addr payload = cursor + sizeof(RedoHeader);
            if (payload + hdr.size > limit ||
                foldChecksum(ctx.pool().at<std::uint8_t>(payload),
                             hdr.size) != hdr.checksum) {
                break;
            }
            updates.emplace_back(cursor, hdr.size);
            cursor = lineBase(payload + hdr.size + kCacheLineSize - 1);
        }

        if (committed) {
            // Replay: the crash may have interrupted the in-place
            // application of the write set.
            for (const auto &[hdr_off, size] : updates) {
                RedoHeader hdr{};
                ctx.load(hdr_off, &hdr, sizeof(hdr));
                std::vector<std::uint8_t> data(size);
                ctx.load(hdr_off + sizeof(RedoHeader), data.data(), size);
                ctx.store(hdr.addr, data.data(), size, DataClass::User);
                ctx.flush(hdr.addr, size);
                ctx.fence(FenceKind::Ordering);
            }
        }
        // Retire the segment either way: clear the cell.
        const Addr none = kNullAddr;
        ctx.store(activeCellOff(slot), &none, 8, DataClass::TxMeta);
        ctx.flush(activeCellOff(slot), 8);
        ctx.fence(FenceKind::Durability);
    }
    alloc_->recover(ctx);
}

bool
MnemosyneHeap::logsQuiescent(pm::PmContext &ctx, std::string *why) const
{
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        struct { Addr base; std::uint64_t seq; } cell{};
        ctx.load(activeCellOff(slot), &cell, sizeof(cell));
        if (cell.base != kNullAddr) {
            if (why) {
                *why = "Mnemosyne slot " + std::to_string(slot) +
                       " still publishes an active redo segment";
            }
            return false;
        }
    }
    return true;
}

Addr
MnemosyneHeap::pmalloc(pm::PmContext &ctx, std::size_t n)
{
    return alloc_->alloc(ctx, n);
}

void
MnemosyneHeap::pfree(pm::PmContext &ctx, Addr payload)
{
    alloc_->free(ctx, payload);
}

Transaction::Transaction(MnemosyneHeap &heap, pm::PmContext &ctx)
    : heap_(heap), ctx_(ctx), state_(State::Active)
{
    id_ = ctx_.txBegin();
    const unsigned slot = ctx_.tid() % heap_.maxThreads();
    std::tie(logStart_, seq_) = heap_.acquireLogSegment(slot);
    logHead_ = logStart_;
    // Publish {segment, sequence}. One small transaction-metadata
    // epoch — the same cell every transaction, one of the paper's
    // self-dependency sources ("transaction metadata"). The sequence
    // makes stale records in the reused segment unambiguous, so no
    // re-termination is needed.
    const struct { Addr base; std::uint64_t seq; } cell{logStart_,
                                                        seq_};
    ctx_.store(heap_.activeCellOff(slot), &cell, sizeof(cell),
               DataClass::TxMeta);
    ctx_.flush(heap_.activeCellOff(slot), sizeof(cell));
    ctx_.fence(FenceKind::Ordering);
}

Transaction::~Transaction()
{
    // A crash point unwinds through active transactions the way a
    // power cut kills a process mid-transaction: the destructor never
    // really runs, and recovery owns the published log segment.
    if (state_ == State::Active && ctx_.crashInjected())
        return;
    panic_if(state_ == State::Active,
             "Transaction destroyed without commit/abort");
}

void
Transaction::appendRedo(RedoKind kind, Addr addr, const void *payload,
                        std::uint32_t size)
{
    const Addr limit = logStart_ + MnemosyneHeap::segmentBytes();
    panic_if(logHead_ + sizeof(RedoHeader) + size +
                     sizeof(RedoHeader) > limit,
             "Mnemosyne redo log overflow");
    RedoHeader hdr{RedoHeader::kMagic, kind, addr, size,
                   foldChecksum(payload, size), seq_};
    // Log writes bypass the cache (log data is only read on recovery)
    // and each record is an epoch of its own: NTI ... sfence. This is
    // the dominant source of Mnemosyne's 5-50 epochs per transaction.
    ctx_.ntStore(logHead_, &hdr, sizeof(hdr), DataClass::Log);
    if (size) {
        ctx_.ntStore(logHead_ + sizeof(RedoHeader), payload, size,
                     DataClass::Log);
    }
    // Records are cache-line aligned so consecutive appends never
    // share a line.
    logHead_ = lineBase(logHead_ + sizeof(RedoHeader) + size +
                        kCacheLineSize - 1);
    ctx_.fence(FenceKind::Ordering);
}

void
Transaction::update(Addr off, const void *src, std::size_t n,
                    pm::DataClass cls)
{
    panic_if(state_ != State::Active, "update on a finished transaction");
    appendRedo(RedoKind::Update, off, src, static_cast<std::uint32_t>(n));
    StagedWrite w;
    w.off = off;
    w.bytes.assign(static_cast<const std::uint8_t *>(src),
                   static_cast<const std::uint8_t *>(src) + n);
    w.cls = cls;
    ctx_.vStore(w.bytes.data(), n); // staging buffer lives in DRAM
    writes_.push_back(std::move(w));
}

void
Transaction::read(Addr off, void *dst, std::size_t n)
{
    ctx_.load(off, dst, n);
    // Overlay staged writes, oldest first so the newest wins.
    for (const auto &w : writes_) {
        const Addr w_end = w.off + w.bytes.size();
        const Addr r_end = off + n;
        if (w.off >= r_end || w_end <= off)
            continue;
        const Addr lo = std::max(w.off, off);
        const Addr hi = std::min(w_end, r_end);
        std::memcpy(static_cast<std::uint8_t *>(dst) + (lo - off),
                    w.bytes.data() + (lo - w.off), hi - lo);
    }
}

Addr
Transaction::pmalloc(std::size_t n)
{
    const Addr payload = heap_.pmalloc(ctx_, n);
    if (payload != kNullAddr)
        allocs_.push_back(payload);
    return payload;
}

void
Transaction::pfree(Addr payload)
{
    deferredFrees_.push_back(payload);
}

void
Transaction::commit()
{
    panic_if(state_ != State::Active, "double commit");

    // Commit record makes the transaction durable: after this fence a
    // crash replays the log.
    appendRedo(RedoKind::Commit, 0, nullptr, 0);

    // Apply the write set in place with cacheable stores. Each log
    // entry is processed in its own epoch (the paper's observation
    // about Mnemosyne's log processing), with the final fence as the
    // transaction's durability point.
    for (std::size_t i = 0; i < writes_.size(); i++) {
        const StagedWrite &w = writes_[i];
        ctx_.store(w.off, w.bytes.data(), w.bytes.size(), w.cls);
        ctx_.flush(w.off, w.bytes.size());
        ctx_.fence(i + 1 < writes_.size() ? pm::FenceKind::Ordering
                                          : pm::FenceKind::Durability);
    }
    if (writes_.empty())
        ctx_.fence(pm::FenceKind::Durability);

    truncateLog();

    for (const Addr payload : deferredFrees_)
        heap_.pfree(ctx_, payload);

    state_ = State::Committed;
    ctx_.txEnd(id_);
}

void
Transaction::abort()
{
    panic_if(state_ != State::Active, "abort on a finished transaction");
    truncateLog();
    // Free transactional allocations; Mnemosyne can leak these on a
    // crash, but a clean abort returns them.
    for (const Addr payload : allocs_)
        heap_.pfree(ctx_, payload);
    state_ = State::Aborted;
    ctx_.txAbort(id_);
}

void
Transaction::truncateLog()
{
    // Retire the whole segment with one cell write (Mnemosyne
    // advances its log head rather than rewriting entries).
    const unsigned slot = ctx_.tid() % heap_.maxThreads();
    const Addr none = kNullAddr;
    ctx_.storeField(*ctx_.pool().at<Addr>(heap_.activeCellOff(slot)),
                    none, DataClass::TxMeta);
    ctx_.flush(heap_.activeCellOff(slot), 8);
    ctx_.fence(FenceKind::Ordering);
    logHead_ = logStart_;
}

} // namespace whisper::mne

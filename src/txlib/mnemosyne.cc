#include "txlib/mnemosyne.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "core/verify_report.hh"
#include "txlib/elision.hh"

namespace whisper::mne
{

using pm::DataClass;
using pm::FenceKind;

std::uint32_t
foldChecksum(const void *data, std::size_t n)
{
    return crc32(data, n);
}

std::uint32_t
redoCrc(const RedoHeader &hdr, const void *payload, std::size_t n)
{
    RedoHeader h = hdr;
    h.checksum = 0;
    std::uint32_t crc = crc32Update(0, &h, sizeof(h));
    if (n)
        crc = crc32Update(crc, payload, n);
    return crc;
}

MnemosyneHeap::MnemosyneHeap(pm::PmContext &ctx, Addr base,
                             std::size_t size, unsigned max_threads)
    : MnemosyneHeap(base, size, max_threads)
{
    // Format: null every active-segment cell (the per-record
    // sequence tags make segment contents self-describing).
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        const Addr none = kNullAddr;
        ctx.store(activeCellOff(slot), &none, 8, DataClass::TxMeta);
        ctx.flush(activeCellOff(slot), 8);
    }
    // Null root pointer.
    const Addr null_root = kNullAddr;
    ctx.store(rootOff_, &null_root, sizeof(null_root), DataClass::TxMeta);
    ctx.flush(rootOff_, sizeof(null_root));
    ctx.fence(FenceKind::Durability);
    alloc_ = std::make_unique<alloc::SlabAllocator>(ctx, heapBase_,
                                                    base_ + size_ -
                                                        heapBase_);
}

MnemosyneHeap::MnemosyneHeap(Addr base, std::size_t size,
                             unsigned max_threads)
    : base_(base), size_(size), maxThreads_(max_threads)
{
    panic_if(max_threads == 0, "heap needs at least one log slot");
    segCursor_.assign(maxThreads_, 0);
    // Layout: [active cells][per-thread logs][root][slab heap].
    const std::size_t cells_area = kCacheLineSize * maxThreads_;
    const std::size_t log_area = kLogBytes * maxThreads_;
    panic_if(size_ < cells_area + log_area + (1 << 16),
             "Mnemosyne heap region too small");
    rootOff_ = base_ + cells_area + log_area;
    heapBase_ = rootOff_ + kCacheLineSize;
    if (!alloc_) {
        alloc_ = std::make_unique<alloc::SlabAllocator>(
            heapBase_, base_ + size_ - heapBase_);
    }
}

Addr
MnemosyneHeap::activeCellOff(unsigned slot) const
{
    panic_if(slot >= maxThreads_, "cell slot out of range");
    return base_ + static_cast<Addr>(slot) * kCacheLineSize;
}

Addr
MnemosyneHeap::logBase(unsigned slot) const
{
    panic_if(slot >= maxThreads_, "log slot out of range");
    return base_ + kCacheLineSize * maxThreads_ +
           static_cast<Addr>(slot) * kLogBytes;
}

std::pair<Addr, std::uint64_t>
MnemosyneHeap::acquireLogSegment(unsigned slot)
{
    panic_if(slot >= maxThreads_, "log slot out of range");
    const std::uint64_t seq = ++segCursor_[slot];
    const Addr base = logBase(slot) +
                      static_cast<Addr>(seq % kLogSegments) *
                          segmentBytes();
    return {base, seq};
}

void
MnemosyneHeap::recover(pm::PmContext &ctx)
{
    pm::OriginScope origin(ctx, trace::Origin::MneRecovery);
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        // Only a published (active) segment can hold an in-flight
        // transaction; everything else was retired by its commit's
        // cell write.
        struct { Addr base; std::uint64_t seq; } cell{};
        ctx.load(activeCellOff(slot), &cell, sizeof(cell));
        const Addr seg_base = cell.base;
        if (seg_base == kNullAddr)
            continue;
        Addr cursor = seg_base;
        const Addr limit = seg_base + segmentBytes();
        bool committed = false;
        std::vector<std::pair<Addr, std::uint32_t>> updates; // hdr offs
        while (cursor + sizeof(RedoHeader) <= limit) {
            RedoHeader hdr{};
            ctx.load(cursor, &hdr, sizeof(hdr));
            if (hdr.magic != RedoHeader::kMagic ||
                hdr.kind == RedoKind::End || hdr.seq != cell.seq) {
                break; // stale record from the segment's previous use
            }
            if (hdr.kind == RedoKind::Commit) {
                // A torn or corrupted commit record never committed.
                committed = redoCrc(hdr, nullptr, 0) == hdr.checksum;
                break;
            }
            // Validate header + payload against the CRC; a torn tail
            // record means the transaction never committed.
            const Addr payload = cursor + sizeof(RedoHeader);
            if (payload + hdr.size > limit ||
                redoCrc(hdr, ctx.pool().at<std::uint8_t>(payload),
                        hdr.size) != hdr.checksum) {
                break;
            }
            updates.emplace_back(cursor, hdr.size);
            cursor = lineBase(payload + hdr.size + kCacheLineSize - 1);
        }

        if (committed) {
            // Replay: the crash may have interrupted the in-place
            // application of the write set.
            for (const auto &[hdr_off, size] : updates) {
                RedoHeader hdr{};
                ctx.load(hdr_off, &hdr, sizeof(hdr));
                std::vector<std::uint8_t> data(size);
                ctx.load(hdr_off + sizeof(RedoHeader), data.data(), size);
                ctx.store(hdr.addr, data.data(), size, DataClass::User);
                ctx.flush(hdr.addr, size);
                ctx.fence(FenceKind::Ordering);
            }
        }
        // Retire the segment either way: clear the cell.
        const Addr none = kNullAddr;
        ctx.store(activeCellOff(slot), &none, 8, DataClass::TxMeta);
        ctx.flush(activeCellOff(slot), 8);
        ctx.fence(FenceKind::Durability);
    }
    alloc_->recover(ctx);
}

bool
MnemosyneHeap::logsQuiescent(pm::PmContext &ctx, std::string *why) const
{
    for (unsigned slot = 0; slot < maxThreads_; slot++) {
        struct { Addr base; std::uint64_t seq; } cell{};
        ctx.load(activeCellOff(slot), &cell, sizeof(cell));
        if (cell.base != kNullAddr) {
            if (why) {
                *why = "Mnemosyne slot " + std::to_string(slot) +
                       " still publishes an active redo segment";
            }
            return false;
        }
    }
    return true;
}

void
MnemosyneHeap::scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
                     core::VerifyReport &report)
{
    if (lines.empty())
        return;
    const Addr cells_end = base_ + kCacheLineSize * maxThreads_;
    const Addr logs_end = rootOff_;
    const LineAddr root_line = lineOf(rootOff_);

    std::vector<LineAddr> cell_lost, log_lost, root_lost, rest;
    // Cells first: a re-nulled cell un-publishes its segment, so log
    // lines of the same slot are then dead and claimed silently.
    for (const LineAddr line : lines) {
        const Addr off = static_cast<Addr>(line) << kCacheLineBits;
        if (off >= base_ && off < cells_end) {
            // The zero-filled cell would read as {base=0, seq=0} —
            // a bogus published segment. Re-null it; the in-flight
            // transaction (committed or not) is gone.
            const struct { Addr base; std::uint64_t seq; } none{
                kNullAddr, 0};
            ctx.store(off, &none, sizeof(none), pm::DataClass::TxMeta);
            ctx.persist(off, sizeof(none));
            cell_lost.push_back(line);
        }
    }
    for (const LineAddr line : lines) {
        const Addr off = static_cast<Addr>(line) << kCacheLineBits;
        if (off >= base_ && off < cells_end)
            continue; // handled above
        if (off >= cells_end && off < logs_end) {
            const unsigned slot = static_cast<unsigned>(
                (off - cells_end) / kLogBytes);
            struct { Addr base; std::uint64_t seq; } cell{};
            ctx.load(activeCellOff(slot), &cell, sizeof(cell));
            if (cell.base != kNullAddr && off >= cell.base &&
                off < cell.base + segmentBytes()) {
                // Published segment damaged: the CRC walk in
                // recover() stops at the zeroed record, so the
                // transaction behind it (even a committed one whose
                // marker sits past the hole) is discarded.
                log_lost.push_back(line);
            }
            // Unpublished log content is dead either way: claimed.
        } else if (line == root_line) {
            root_lost.push_back(line);
        } else {
            rest.push_back(line);
        }
    }

    if (!cell_lost.empty()) {
        report.degrade("mne-active-cell-lost",
                       std::to_string(cell_lost.size()) +
                           " active-log cell(s) lost; in-flight "
                           "transactions discarded",
                       cell_lost);
    }
    if (!log_lost.empty()) {
        report.degrade("mne-log-record-lost",
                       std::to_string(log_lost.size()) +
                           " published redo-log line(s) lost; the "
                           "owning transaction is discarded",
                       log_lost);
    }
    if (!root_lost.empty()) {
        report.degrade("mne-root-lost",
                       "heap root pointer lost to media faults",
                       root_lost);
    }
    lines = std::move(rest);
}

Addr
MnemosyneHeap::pmalloc(pm::PmContext &ctx, std::size_t n)
{
    return alloc_->alloc(ctx, n);
}

void
MnemosyneHeap::pfree(pm::PmContext &ctx, Addr payload)
{
    alloc_->free(ctx, payload);
}

Transaction::Transaction(MnemosyneHeap &heap, pm::PmContext &ctx)
    : heap_(heap), ctx_(ctx), state_(State::Active)
{
    id_ = ctx_.txBegin();
    const unsigned slot = ctx_.tid() % heap_.maxThreads();
    std::tie(logStart_, seq_) = heap_.acquireLogSegment(slot);
    logHead_ = logStart_;
    // Publish {segment, sequence}. One small transaction-metadata
    // epoch — the same cell every transaction, one of the paper's
    // self-dependency sources ("transaction metadata"). The sequence
    // makes stale records in the reused segment unambiguous, so no
    // re-termination is needed.
    const struct { Addr base; std::uint64_t seq; } cell{logStart_,
                                                        seq_};
    pm::OriginScope origin(ctx_, trace::Origin::MneCellPublish);
    ctx_.store(heap_.activeCellOff(slot), &cell, sizeof(cell),
               DataClass::TxMeta);
    ctx_.flush(heap_.activeCellOff(slot), sizeof(cell));
    ctx_.fence(FenceKind::Ordering);
}

Transaction::~Transaction()
{
    // A crash point unwinds through active transactions the way a
    // power cut kills a process mid-transaction: the destructor never
    // really runs, and recovery owns the published log segment.
    if (state_ == State::Active && ctx_.crashInjected())
        return;
    panic_if(state_ == State::Active,
             "Transaction destroyed without commit/abort");
}

void
Transaction::appendRedo(RedoKind kind, Addr addr, const void *payload,
                        std::uint32_t size, pm::FenceKind fence)
{
    const Addr limit = logStart_ + MnemosyneHeap::segmentBytes();
    panic_if(logHead_ + sizeof(RedoHeader) + size +
                     sizeof(RedoHeader) > limit,
             "Mnemosyne redo log overflow");
    RedoHeader hdr{RedoHeader::kMagic, kind, addr, size, 0, seq_};
    hdr.checksum = redoCrc(hdr, payload, size);
    // Log writes bypass the cache (log data is only read on recovery)
    // and each record is an epoch of its own: NTI ... sfence. This is
    // the dominant source of Mnemosyne's 5-50 epochs per transaction.
    pm::OriginScope origin(ctx_, trace::Origin::MneLogAppend);
    ctx_.ntStore(logHead_, &hdr, sizeof(hdr), DataClass::Log);
    if (size) {
        ctx_.ntStore(logHead_ + sizeof(RedoHeader), payload, size,
                     DataClass::Log);
    }
    // Records are cache-line aligned so consecutive appends never
    // share a line.
    logHead_ = lineBase(logHead_ + sizeof(RedoHeader) + size +
                        kCacheLineSize - 1);
    ctx_.fence(fence);
}

void
Transaction::update(Addr off, const void *src, std::size_t n,
                    pm::DataClass cls)
{
    panic_if(state_ != State::Active, "update on a finished transaction");
    appendRedo(RedoKind::Update, off, src, static_cast<std::uint32_t>(n));
    StagedWrite w;
    w.off = off;
    w.bytes.assign(static_cast<const std::uint8_t *>(src),
                   static_cast<const std::uint8_t *>(src) + n);
    w.cls = cls;
    ctx_.vStore(w.bytes.data(), n); // staging buffer lives in DRAM
    writes_.push_back(std::move(w));
}

void
Transaction::read(Addr off, void *dst, std::size_t n)
{
    ctx_.load(off, dst, n);
    // Overlay staged writes, oldest first so the newest wins.
    for (const auto &w : writes_) {
        const Addr w_end = w.off + w.bytes.size();
        const Addr r_end = off + n;
        if (w.off >= r_end || w_end <= off)
            continue;
        const Addr lo = std::max(w.off, off);
        const Addr hi = std::min(w_end, r_end);
        std::memcpy(static_cast<std::uint8_t *>(dst) + (lo - off),
                    w.bytes.data() + (lo - w.off), hi - lo);
    }
}

Addr
Transaction::pmalloc(std::size_t n)
{
    const Addr payload = heap_.pmalloc(ctx_, n);
    if (payload != kNullAddr)
        allocs_.push_back(payload);
    return payload;
}

void
Transaction::pfree(Addr payload)
{
    deferredFrees_.push_back(payload);
}

void
Transaction::commit()
{
    panic_if(state_ != State::Active, "double commit");

    const bool elide = txlib::elisionEnabled(txlib::kElideMneCommitApply);

    // Commit record makes the transaction durable: after this fence a
    // crash replays the log. Under elision an empty write set takes
    // its durability point here instead of paying a separate fence
    // over an empty epoch (the optimizer's coalescible pair (d)).
    appendRedo(RedoKind::Commit, 0, nullptr, 0,
               elide && writes_.empty() ? pm::FenceKind::Durability
                                        : pm::FenceKind::Ordering);

    pm::OriginScope origin(ctx_, trace::Origin::MneCommitApply);
    if (elide) {
        // Coalesced application: the per-write ordering fences are the
        // optimizer's category (c) — consecutive apply epochs touch
        // the lines of unrelated staged writes. Dropping them is safe
        // because the redo log and commit record are already durable
        // and replay re-applies the whole write set idempotently; one
        // durability fence at the end is the transaction's commit
        // point.
        for (const StagedWrite &w : writes_)
            ctx_.store(w.off, w.bytes.data(), w.bytes.size(), w.cls);
        for (const StagedWrite &w : writes_)
            ctx_.flush(w.off, w.bytes.size());
        if (!writes_.empty())
            ctx_.fence(pm::FenceKind::Durability);
    } else {
        // Apply the write set in place with cacheable stores. Each log
        // entry is processed in its own epoch (the paper's observation
        // about Mnemosyne's log processing), with the final fence as
        // the transaction's durability point.
        for (std::size_t i = 0; i < writes_.size(); i++) {
            const StagedWrite &w = writes_[i];
            ctx_.store(w.off, w.bytes.data(), w.bytes.size(), w.cls);
            ctx_.flush(w.off, w.bytes.size());
            ctx_.fence(i + 1 < writes_.size()
                           ? pm::FenceKind::Ordering
                           : pm::FenceKind::Durability);
        }
        if (writes_.empty())
            ctx_.fence(pm::FenceKind::Durability);
    }

    truncateLog();

    for (const Addr payload : deferredFrees_)
        heap_.pfree(ctx_, payload);

    state_ = State::Committed;
    ctx_.txEnd(id_);
}

void
Transaction::abort()
{
    panic_if(state_ != State::Active, "abort on a finished transaction");
    truncateLog();
    // Free transactional allocations; Mnemosyne can leak these on a
    // crash, but a clean abort returns them.
    for (const Addr payload : allocs_)
        heap_.pfree(ctx_, payload);
    state_ = State::Aborted;
    ctx_.txAbort(id_);
}

void
Transaction::truncateLog()
{
    // Retire the whole segment with one cell write (Mnemosyne
    // advances its log head rather than rewriting entries).
    pm::OriginScope origin(ctx_, trace::Origin::MneTruncate);
    const unsigned slot = ctx_.tid() % heap_.maxThreads();
    const Addr none = kNullAddr;
    ctx_.storeField(*ctx_.pool().at<Addr>(heap_.activeCellOff(slot)),
                    none, DataClass::TxMeta);
    ctx_.flush(heap_.activeCellOff(slot), 8);
    ctx_.fence(FenceKind::Ordering);
    logHead_ = logStart_;
}

} // namespace whisper::mne

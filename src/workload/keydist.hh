/**
 * @file
 * Deterministic YCSB-style key distributions over one thread's
 * partition of the workload key space.
 *
 * Each worker thread owns a KeyChooser seeded from (seed, tid); all
 * randomness flows through the thread's private Rng stream, so the
 * key sequence depends only on the seed and thread count — never on
 * scheduling. Three request distributions are provided:
 *
 *  - uniform: every currently existing key (loaded + this thread's
 *    inserts so far) is equally likely;
 *  - zipfian: Gray et al. rejection-free zipfian (theta = 0.99) over
 *    the loaded partition, with the popularity ranks scattered across
 *    the key space by an FNV-1a scramble — YCSB's
 *    ScrambledZipfianGenerator. The domain stays fixed at the loaded
 *    size (inserted keys join the uniform/latest domains only), which
 *    keeps the zeta normalization constant O(1) per draw;
 *  - latest: zipfian over recency rank — rank-0 is the most recently
 *    inserted key (or the last loaded key before any insert), YCSB's
 *    SkewedLatestGenerator for mix D.
 */

#ifndef WHISPER_WORKLOAD_KEYDIST_HH
#define WHISPER_WORKLOAD_KEYDIST_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "core/app.hh"

namespace whisper::workload
{

/** Request distribution for choosing existing keys. */
enum class KeyDist
{
    Uniform,
    Zipfian,
    Latest,
};

const char *keyDistName(KeyDist dist);

/** Parse "uniform" / "zipfian" / "latest"; false on anything else. */
bool parseKeyDist(const std::string &s, KeyDist &out);

/**
 * One thread's key chooser. Draws existing keys (for reads, updates,
 * RMWs and scan starts) from the thread's partition; the driver
 * reports inserts via noteInsert() so uniform/latest cover them.
 */
class KeyChooser
{
  public:
    KeyChooser(KeyDist dist, const core::WorkloadKeymap &map,
               ThreadId tid, double zipf_theta = 0.99);

    /** Draw one existing key owned by this thread. */
    std::uint64_t next(Rng &rng);

    /** The thread inserted a new key (its id came from the keymap). */
    void noteInsert() { inserted_++; }

    std::uint64_t insertedCount() const { return inserted_; }

    /** FNV-1a scramble used to scatter zipfian ranks (exposed for
     *  tests asserting the skew shape). */
    static std::uint64_t scramble(std::uint64_t x);

  private:
    std::uint64_t indexToKey(std::uint64_t i) const;

    KeyDist dist_;
    core::WorkloadKeymap map_;
    ThreadId tid_;
    std::uint64_t loaded_;   //!< keys in this thread's loaded slice
    std::uint64_t inserted_ = 0;
    ZipfianGenerator zipf_;
};

} // namespace whisper::workload

#endif // WHISPER_WORKLOAD_KEYDIST_HH

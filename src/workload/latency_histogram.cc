#include "workload/latency_histogram.hh"

#include <cmath>

namespace whisper::workload
{

Tick
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; i++) {
        seen += counts_[i];
        if (seen >= rank)
            return bucketLowerBound(i);
    }
    return bucketLowerBound(kBuckets - 1);
}

std::uint64_t
LatencyHistogram::digest() const
{
    constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    std::uint64_t h = kOffset;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned b = 0; b < 8; b++) {
            h ^= (v >> (b * 8)) & 0xff;
            h *= kPrime;
        }
    };
    mix(count_);
    mix(sum_);
    mix(minValue());
    mix(maxValue());
    for (unsigned i = 0; i < kBuckets; i++) {
        if (counts_[i] == 0)
            continue;
        mix(i);
        mix(counts_[i]);
    }
    return h;
}

} // namespace whisper::workload

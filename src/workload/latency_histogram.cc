#include "workload/latency_histogram.hh"

#include <cmath>

namespace whisper::workload
{

Tick
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank = ceil(q * count) computed exactly in integers: write the
    // double q as M / 2^shift (M and shift from frexp, both exact),
    // so rank = ceil(M * count / 2^shift). The product fits 128 bits
    // (M < 2^53, count < 2^64) and q == 1.0 yields exactly count at
    // any count — double-precision ceil is off once counts pass 2^53.
    int exp = 0;
    const double frac = std::frexp(q, &exp); // q = frac * 2^exp
    const auto mant = static_cast<unsigned __int128>(
        std::ldexp(frac, 53)); // exact: frac has <= 53 mantissa bits
    const int shift = 53 - exp;
    const unsigned __int128 prod = mant * count_;
    std::uint64_t rank;
    if (shift >= 128) // tiny q: value < 2^-11, ceil is 0 or 1
        rank = prod != 0 ? 1 : 0;
    else
        rank = static_cast<std::uint64_t>(
            (prod >> shift) +
            ((prod & ((static_cast<unsigned __int128>(1) << shift) - 1))
                 ? 1
                 : 0));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; i++) {
        seen += counts_[i];
        if (seen >= rank)
            return bucketLowerBound(i);
    }
    return bucketLowerBound(kBuckets - 1);
}

std::uint64_t
LatencyHistogram::digest() const
{
    constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    std::uint64_t h = kOffset;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned b = 0; b < 8; b++) {
            h ^= (v >> (b * 8)) & 0xff;
            h *= kPrime;
        }
    };
    mix(count_);
    mix(sum_);
    mix(minValue());
    mix(maxValue());
    for (unsigned i = 0; i < kBuckets; i++) {
        if (counts_[i] == 0)
            continue;
        mix(i);
        mix(counts_[i]);
    }
    return h;
}

} // namespace whisper::workload

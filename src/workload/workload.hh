/**
 * @file
 * YCSB-style unified workload driver.
 *
 * Drives any registered WhisperApp that implements the per-op
 * workload surface (WhisperApp::supportsWorkload) with a generated
 * key-value workload: a YCSB mix (A–F, or custom ratios) over a
 * uniform / zipfian / latest key distribution, on T worker threads
 * reusing the runtime's concurrency machinery. Every generated
 * operation flows through the app's normal PmContext path, so a
 * workload run produces the same traces the §5 analysis pipeline and
 * amplification accounting consume.
 *
 * Determinism contract (see docs/WORKLOADS.md): at a fixed
 * (seed, threads) pair the run is bit-identical — op streams come
 * from per-thread Rng forks, keys from per-thread partitions backed
 * by per-thread structures, and latency from PmContext::localTicks()
 * deltas, none of which depend on thread interleaving. Per-thread
 * histograms merge by counter addition (any order, same result), the
 * discipline that makes `analyze --jobs N` byte-stable.
 */

#ifndef WHISPER_WORKLOAD_WORKLOAD_HH
#define WHISPER_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <string>

#include "core/app.hh"
#include "workload/keydist.hh"
#include "workload/latency_histogram.hh"

namespace whisper::workload
{

/**
 * Operation mix: fractions must sum to 1. The named YCSB mixes:
 *
 *  | mix | read | update | insert | rmw  | scan | pair with --dist |
 *  |-----|------|--------|--------|------|------|------------------|
 *  |  A  | 0.50 | 0.50   |        |      |      | zipfian          |
 *  |  B  | 0.95 | 0.05   |        |      |      | zipfian          |
 *  |  C  | 1.00 |        |        |      |      | zipfian          |
 *  |  D  | 0.95 |        | 0.05   |      |      | latest           |
 *  |  E  |      |        | 0.05   |      | 0.95 | zipfian          |
 *  |  F  | 0.50 |        |        | 0.50 |      | zipfian          |
 */
struct MixSpec
{
    std::string name = "A";
    double read = 0.5;
    double update = 0.5;
    double insert = 0.0;
    double rmw = 0.0;
    double scan = 0.0;
    /** Scan lengths are uniform in [1, scanLen]. */
    std::uint64_t scanLen = 16;

    /** The named YCSB mix @p mix ('A'..'F'); fatal() otherwise. */
    static MixSpec ycsb(char mix);

    /**
     * Parse "A".."F" (case-insensitive) or custom
     * "read:update:insert:rmw:scan" ratios (normalized; e.g.
     * "8:1:1:0:0"). Returns false on malformed input.
     */
    static bool parse(const std::string &s, MixSpec &out);
};

/** One workload invocation's knobs. */
struct WorkloadOptions
{
    std::string app;
    MixSpec mix;
    KeyDist dist = KeyDist::Zipfian;
    std::uint64_t keys = 100000;    //!< preloaded records, total
    unsigned threads = 4;
    std::uint64_t opsPerThread = 10000;
    std::uint64_t seed = 42;
    std::size_t poolBytes = 256 << 20;
    double zipfTheta = 0.99;
    /**
     * Record the op stream through the durable-linearizability
     * recorder and check it after the run (crash-free, so the check
     * degenerates to plain linearizability against the final probes).
     * Needs an app with the lincheck workload surface; installs a
     * seeded SchedGate schedule when threads > 1. Off by default —
     * a plain run's behavior and digest are untouched.
     */
    bool lincheck = false;
};

/** Per-op-type tallies (deterministic; part of the digest). */
struct OpCounts
{
    std::uint64_t reads = 0;
    std::uint64_t readsFound = 0;
    std::uint64_t updates = 0;
    std::uint64_t inserts = 0;
    std::uint64_t rmws = 0;
    std::uint64_t rmwsFound = 0;
    std::uint64_t scans = 0;
    std::uint64_t scannedKeys = 0;

    std::uint64_t
    total() const
    {
        return reads + updates + inserts + rmws + scans;
    }
};

/** Outcome of one workload run. */
struct WorkloadResult
{
    WorkloadOptions options;
    std::string layerName;
    OpCounts ops;
    /** Makespan: max over threads of that thread's tick sum. */
    Tick elapsedTicks = 0;
    /** Total work: sum over threads (serialized-equivalent ticks). */
    Tick totalTicks = 0;
    LatencyHistogram latency;     //!< merged over threads in tid order
    core::VerifyReport check;     //!< workloadCheck() outcome
    bool verified = false;

    /** @{ Linearizability check outcome (options.lincheck runs). */
    bool lincheckRan = false;
    bool lincheckBudget = false;       //!< some key hit the node budget
    std::uint64_t lincheckKeys = 0;    //!< keys with a checked verdict
    std::uint64_t lincheckViolations = 0; //!< keys lacking a witness
    /** @} */

    /** Keeps traces alive for the analysis pipeline. */
    std::shared_ptr<core::Runtime> runtime;

    /** Ops per simulated second (ticks are nanoseconds). */
    double throughputOpsPerSec() const;

    /**
     * Run fingerprint: FNV-1a over the op tallies, tick totals and
     * the latency histogram digest. Equal digests mean bit-identical
     * runs.
     */
    std::uint64_t digest() const;

    /** The documented JSON object (docs/WORKLOADS.md schema). */
    std::string json() const;
};

/**
 * Run one generated workload: create the app, build and preload the
 * per-thread partitions (workloadSetup), clear traces, run the mix on
 * every thread, merge histograms in tid order and validate. fatal()
 * if the app does not implement the workload surface.
 */
WorkloadResult runWorkload(const WorkloadOptions &opts);

} // namespace whisper::workload

#endif // WHISPER_WORKLOAD_WORKLOAD_HH

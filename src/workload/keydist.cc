#include "workload/keydist.hh"

#include "common/logging.hh"

namespace whisper::workload
{

const char *
keyDistName(KeyDist dist)
{
    switch (dist) {
      case KeyDist::Uniform: return "uniform";
      case KeyDist::Zipfian: return "zipfian";
      case KeyDist::Latest:  return "latest";
    }
    return "?";
}

bool
parseKeyDist(const std::string &s, KeyDist &out)
{
    if (s == "uniform") {
        out = KeyDist::Uniform;
        return true;
    }
    if (s == "zipfian") {
        out = KeyDist::Zipfian;
        return true;
    }
    if (s == "latest") {
        out = KeyDist::Latest;
        return true;
    }
    return false;
}

KeyChooser::KeyChooser(KeyDist dist, const core::WorkloadKeymap &map,
                       ThreadId tid, double zipf_theta)
    : dist_(dist), map_(map), tid_(tid), loaded_(map.perThread()),
      zipf_(map.perThread() ? map.perThread() : 1, zipf_theta)
{
    panic_if(loaded_ == 0,
             "workload partition is empty (keys < threads)");
}

std::uint64_t
KeyChooser::scramble(std::uint64_t x)
{
    // FNV-1a over the 8 little-endian bytes of x (YCSB's fnvhash64).
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned b = 0; b < 8; b++) {
        h ^= (x >> (b * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
KeyChooser::indexToKey(std::uint64_t i) const
{
    if (i < loaded_)
        return map_.lo(tid_) + i;
    return map_.insertKey(tid_, i - loaded_);
}

std::uint64_t
KeyChooser::next(Rng &rng)
{
    switch (dist_) {
      case KeyDist::Uniform:
        return indexToKey(rng.next(loaded_ + inserted_));
      case KeyDist::Zipfian: {
        const std::uint64_t rank = zipf_.next(rng);
        return indexToKey(scramble(rank) % loaded_);
      }
      case KeyDist::Latest: {
        // Recency rank 0 = newest element of the combined sequence
        // (loaded keys in order, then this thread's inserts).
        const std::uint64_t rank = zipf_.next(rng);
        return indexToKey(loaded_ + inserted_ - 1 - rank);
      }
    }
    panic("unreachable key distribution");
}

} // namespace whisper::workload

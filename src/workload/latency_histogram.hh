/**
 * @file
 * Mergeable fixed-bucket latency histogram (HDR-style log-linear).
 *
 * The workload driver records one latency sample per generated
 * operation, measured in logical-clock ticks (1 tick = 1 ns). Samples
 * land in log-linear buckets: 16 linear sub-buckets per power of two,
 * giving a worst-case quantile error of 1/16 (~6%) at any magnitude
 * with a small fixed footprint (976 counters). Because the bucket
 * boundaries are fixed — independent of the data — histograms merge
 * by plain counter addition: merging per-thread histograms in any
 * order yields bit-identical counters, the same discipline the
 * analysis pipeline uses for its sharded reductions. Quantiles are
 * reported as the lower bound of the bucket containing the requested
 * rank, so they too are merge-order independent.
 */

#ifndef WHISPER_WORKLOAD_LATENCY_HISTOGRAM_HH
#define WHISPER_WORKLOAD_LATENCY_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "common/types.hh"

namespace whisper::workload
{

class LatencyHistogram
{
  public:
    /** Linear sub-buckets per power of two (2^4 = 16). */
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSub = 1u << kSubBits;
    /** Buckets 0..kSub-1 are exact; 60 log groups of kSub follow. */
    static constexpr unsigned kBuckets = (64 - kSubBits) * kSub + kSub;

    /** Bucket index of tick value @p v. */
    static constexpr unsigned
    bucketIndex(Tick v)
    {
        if (v < kSub)
            return static_cast<unsigned>(v);
        const unsigned msb = 63 - std::countl_zero(
            static_cast<std::uint64_t>(v));
        const unsigned shift = msb - kSubBits;
        const unsigned sub =
            static_cast<unsigned>((v >> shift) & (kSub - 1));
        return (shift + 1) * kSub + sub;
    }

    /** Smallest tick value mapping to bucket @p idx. */
    static constexpr Tick
    bucketLowerBound(unsigned idx)
    {
        if (idx < kSub)
            return idx;
        const unsigned shift = idx / kSub - 1;
        const unsigned sub = idx % kSub;
        return static_cast<Tick>(kSub + sub) << shift;
    }

    void
    record(Tick v)
    {
        counts_[bucketIndex(v)]++;
        count_++;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Counter addition — associative and commutative. */
    void
    merge(const LatencyHistogram &o)
    {
        for (unsigned i = 0; i < kBuckets; i++)
            counts_[i] += o.counts_[i];
        count_ += o.count_;
        sum_ += o.sum_;
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    std::uint64_t count() const { return count_; }
    Tick minValue() const { return count_ ? min_ : 0; }
    Tick maxValue() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Lower bound of the bucket holding the sample of rank
     * ceil(q * count); q in [0, 1]. 0 for an empty histogram.
     */
    Tick quantile(double q) const;

    /**
     * FNV-1a 64 over (count, sum, min, max) and every non-empty
     * (index, count) pair — the run-comparison fingerprint: equal
     * digests mean bit-identical latency distributions.
     */
    std::uint64_t digest() const;

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Tick min_ = std::numeric_limits<Tick>::max();
    Tick max_ = 0;
};

} // namespace whisper::workload

#endif // WHISPER_WORKLOAD_LATENCY_HISTOGRAM_HH

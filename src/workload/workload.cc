#include "workload/workload.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "lincheck/checker.hh"
#include "lincheck/recorder.hh"

namespace whisper::workload
{

MixSpec
MixSpec::ycsb(char mix)
{
    MixSpec s;
    s.name = std::string(1, static_cast<char>(
        std::toupper(static_cast<unsigned char>(mix))));
    s.read = s.update = s.insert = s.rmw = s.scan = 0.0;
    switch (s.name[0]) {
      case 'A': s.read = 0.5;  s.update = 0.5;  break;
      case 'B': s.read = 0.95; s.update = 0.05; break;
      case 'C': s.read = 1.0;                   break;
      case 'D': s.read = 0.95; s.insert = 0.05; break;
      case 'E': s.scan = 0.95; s.insert = 0.05; break;
      case 'F': s.read = 0.5;  s.rmw = 0.5;     break;
      default:
        fatal("unknown YCSB mix '%c' (expected A..F)", mix);
    }
    return s;
}

bool
MixSpec::parse(const std::string &s, MixSpec &out)
{
    if (s.size() == 1) {
        const char c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(s[0])));
        if (c < 'A' || c > 'F')
            return false;
        out = ycsb(c);
        return true;
    }
    // Custom "read:update:insert:rmw:scan" ratios.
    double r[5] = {0, 0, 0, 0, 0};
    unsigned field = 0;
    std::size_t pos = 0;
    while (pos <= s.size() && field < 5) {
        const std::size_t colon = s.find(':', pos);
        const std::string part =
            s.substr(pos, colon == std::string::npos ? std::string::npos
                                                     : colon - pos);
        char *end = nullptr;
        r[field] = std::strtod(part.c_str(), &end);
        if (end == part.c_str() || *end != '\0' || r[field] < 0)
            return false;
        field++;
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    if (field != 5)
        return false;
    const double sum = r[0] + r[1] + r[2] + r[3] + r[4];
    if (sum <= 0)
        return false;
    out = MixSpec();
    out.name = s;
    out.read = r[0] / sum;
    out.update = r[1] / sum;
    out.insert = r[2] / sum;
    out.rmw = r[3] / sum;
    out.scan = r[4] / sum;
    return true;
}

double
WorkloadResult::throughputOpsPerSec() const
{
    if (elapsedTicks == 0)
        return 0.0;
    return static_cast<double>(ops.total()) * 1e9 /
           static_cast<double>(elapsedTicks);
}

std::uint64_t
WorkloadResult::digest() const
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned b = 0; b < 8; b++) {
            h ^= (v >> (b * 8)) & 0xff;
            h *= kPrime;
        }
    };
    mix(ops.reads);
    mix(ops.readsFound);
    mix(ops.updates);
    mix(ops.inserts);
    mix(ops.rmws);
    mix(ops.rmwsFound);
    mix(ops.scans);
    mix(ops.scannedKeys);
    mix(elapsedTicks);
    mix(totalTicks);
    mix(latency.digest());
    return h;
}

std::string
WorkloadResult::json() const
{
    char buf[256];
    std::string out = "{";
    auto str = [&out](const char *key, const std::string &val,
                      bool comma = true) {
        out += "\"";
        out += key;
        out += "\":\"";
        out += val;
        out += comma ? "\"," : "\"";
    };
    auto u64 = [&](const char *key, std::uint64_t val,
                   bool comma = true) {
        std::snprintf(buf, sizeof(buf), "\"%s\":%llu%s", key,
                      static_cast<unsigned long long>(val),
                      comma ? "," : "");
        out += buf;
    };
    auto dbl = [&](const char *key, double val, bool comma = true) {
        std::snprintf(buf, sizeof(buf), "\"%s\":%.6g%s", key, val,
                      comma ? "," : "");
        out += buf;
    };

    str("app", options.app);
    str("layer", layerName);
    str("mix", options.mix.name);
    out += "\"ratios\":{";
    dbl("read", options.mix.read);
    dbl("update", options.mix.update);
    dbl("insert", options.mix.insert);
    dbl("rmw", options.mix.rmw);
    dbl("scan", options.mix.scan, false);
    out += "},";
    str("dist", keyDistName(options.dist));
    u64("keys", options.keys);
    u64("threads", options.threads);
    u64("opsPerThread", options.opsPerThread);
    u64("seed", options.seed);
    u64("totalOps", ops.total());
    out += "\"ops\":{";
    u64("read", ops.reads);
    u64("readFound", ops.readsFound);
    u64("update", ops.updates);
    u64("insert", ops.inserts);
    u64("rmw", ops.rmws);
    u64("rmwFound", ops.rmwsFound);
    u64("scan", ops.scans);
    u64("scannedKeys", ops.scannedKeys, false);
    out += "},";
    u64("elapsedNs", elapsedTicks);
    u64("totalThreadNs", totalTicks);
    dbl("throughputOpsPerSec", throughputOpsPerSec());
    out += "\"latencyNs\":{";
    u64("min", latency.minValue());
    u64("p50", latency.quantile(0.50));
    u64("p90", latency.quantile(0.90));
    u64("p99", latency.quantile(0.99));
    u64("p999", latency.quantile(0.999));
    u64("max", latency.maxValue());
    dbl("mean", latency.mean(), false);
    out += "},";
    if (lincheckRan) {
        out += "\"lincheck\":{";
        u64("keys", lincheckKeys);
        u64("violations", lincheckViolations);
        out += lincheckBudget ? "\"budgetDegraded\":true},"
                              : "\"budgetDegraded\":false},";
    }
    std::snprintf(buf, sizeof(buf), "\"digest\":\"0x%016llx\",",
                  static_cast<unsigned long long>(digest()));
    out += buf;
    out += verified ? "\"verified\":true}" : "\"verified\":false}";
    return out;
}

WorkloadResult
runWorkload(const WorkloadOptions &opts)
{
    if (opts.keys == 0 || opts.threads == 0 || opts.opsPerThread == 0)
        fatal("workload needs keys > 0, threads > 0, ops > 0");
    if (opts.keys < opts.threads)
        fatal("workload needs keys >= threads (got %llu keys, "
              "%u threads)",
              static_cast<unsigned long long>(opts.keys),
              opts.threads);

    core::AppConfig cfg;
    cfg.threads = opts.threads;
    cfg.opsPerThread = opts.opsPerThread;
    cfg.seed = opts.seed;
    cfg.poolBytes = opts.poolBytes;

    WorkloadResult result;
    result.options = opts;
    result.runtime = std::make_shared<core::Runtime>(
        cfg.poolBytes, cfg.threads, cfg.recordVolatile);
    std::unique_ptr<core::WhisperApp> app =
        core::createApp(opts.app, cfg);
    result.layerName = core::accessLayerName(app->layer());
    if (!app->supportsWorkload())
        fatal("app '%s' does not support generated workloads "
              "(see `whisper_cli apps`)",
              opts.app.c_str());
    if (opts.lincheck && !app->supportsLincheck())
        fatal("--lincheck needs the lincheck workload surface, which "
              "app '%s' does not implement (use mod-hashmap, "
              "mod-vector or halo-hashmap)",
              opts.app.c_str());

    core::WorkloadKeymap map;
    map.keys = opts.keys;
    map.threads = opts.threads;
    map.insertsPerThread =
        opts.mix.insert > 0.0 ? opts.opsPerThread : 0;

    core::Runtime &rt = *result.runtime;
    app->workloadSetup(rt, map);

    // Recording mode: an unarmed crash plan (crashAt stays "never")
    // attaches a seeded SchedGate so every PM op runs under a
    // deterministic cross-thread schedule, and the recorder captures
    // each op's invoke/response plus fence coverage. The baseline
    // probes must precede the run and follow enable() — noteInitial()
    // is a no-op on a disabled recorder.
    lincheck::HistoryRecorder rec;
    if (opts.lincheck) {
        if (opts.threads > 1) {
            Rng gateRng(opts.seed ^ 0x11c0de5eedull);
            rt.installCrashPlan(opts.threads, gateRng());
        }
        rec.enable(opts.threads);
        for (unsigned t = 0; t < opts.threads; t++) {
            const ThreadId tid = static_cast<ThreadId>(t);
            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(tid) + i;
                std::uint64_t value = 0;
                const bool found =
                    app->workloadProbe(rt.ctx(tid), tid, key, value);
                rec.noteInitial(key, found, value);
            }
        }
        for (unsigned t = 0; t < opts.threads; t++)
            rt.ctx(static_cast<ThreadId>(t)).setFenceObserver(&rec);
    }
    rt.clearTraces();

    // Per-thread state, all derived on this thread in tid order so
    // the forked Rng streams are a pure function of (seed, threads).
    std::vector<Rng> rngs;
    std::vector<KeyChooser> choosers;
    std::vector<LatencyHistogram> hists(opts.threads);
    std::vector<OpCounts> counts(opts.threads);
    std::vector<Tick> ticks(opts.threads, 0);
    Rng master(opts.seed);
    for (unsigned t = 0; t < opts.threads; t++) {
        rngs.push_back(master.split());
        choosers.emplace_back(opts.dist, map,
                              static_cast<ThreadId>(t),
                              opts.zipfTheta);
    }

    const MixSpec &mix = opts.mix;
    const double cRead = mix.read;
    const double cUpdate = cRead + mix.update;
    const double cInsert = cUpdate + mix.insert;
    const double cRmw = cInsert + mix.rmw;

    rt.runThreads(opts.threads, [&](pm::PmContext &ctx, ThreadId tid) {
        Rng &rng = rngs[tid];
        KeyChooser &chooser = choosers[tid];
        LatencyHistogram &hist = hists[tid];
        OpCounts &c = counts[tid];
        const Tick start = ctx.localTicks();
        for (std::uint64_t i = 0; i < opts.opsPerThread; i++) {
            const double pick = rng.nextDouble();
            const Tick t0 = ctx.localTicks();
            if (pick < cRead) {
                const std::uint64_t key = chooser.next(rng);
                c.reads++;
                std::size_t h = 0;
                if (opts.lincheck)
                    h = rec.invoke(tid, lincheck::OpKind::Get, key, 0);
                const bool found = app->workloadGet(ctx, tid, key);
                if (found)
                    c.readsFound++;
                if (opts.lincheck) {
                    // The get answers presence only; re-probe for the
                    // value. Keys are thread-partitioned, so nothing
                    // wrote the key between the two reads.
                    std::uint64_t value = 0;
                    if (found)
                        app->workloadProbe(ctx, tid, key, value);
                    rec.response(tid, h, found, value);
                }
            } else if (pick < cUpdate) {
                const std::uint64_t key = chooser.next(rng);
                const std::uint64_t val = rng();
                c.updates++;
                std::size_t h = 0;
                if (opts.lincheck)
                    h = rec.invoke(tid, lincheck::OpKind::Put, key,
                                   val);
                app->workloadPut(ctx, tid, key, val);
                if (opts.lincheck)
                    rec.response(tid, h, false, 0);
            } else if (pick < cInsert) {
                const std::uint64_t key =
                    map.insertKey(tid, chooser.insertedCount());
                const std::uint64_t val = rng();
                c.inserts++;
                std::size_t h = 0;
                if (opts.lincheck)
                    h = rec.invoke(tid, lincheck::OpKind::Put, key,
                                   val);
                app->workloadPut(ctx, tid, key, val);
                if (opts.lincheck)
                    rec.response(tid, h, false, 0);
                chooser.noteInsert();
            } else if (pick < cRmw) {
                const std::uint64_t key = chooser.next(rng);
                const std::uint64_t delta = rng.next(1000) + 1;
                c.rmws++;
                std::size_t h = 0;
                if (opts.lincheck)
                    h = rec.invoke(tid, lincheck::OpKind::Rmw, key,
                                   delta);
                const bool found =
                    app->workloadRmw(ctx, tid, key, delta);
                if (found)
                    c.rmwsFound++;
                if (opts.lincheck)
                    rec.response(tid, h, found, 0);
            } else {
                // Scans stay unrecorded: the history model is
                // single-key, and a scan mutates nothing.
                const std::uint64_t key = chooser.next(rng);
                const std::uint64_t len =
                    rng.next(mix.scanLen ? mix.scanLen : 1) + 1;
                c.scans++;
                c.scannedKeys +=
                    app->workloadScan(ctx, tid, key, len);
            }
            hist.record(ctx.localTicks() - t0);
        }
        app->workloadThreadDone(ctx, tid);
        if (pm::SchedGate *gate = ctx.schedGate())
            gate->deactivate(tid);
        ticks[tid] = ctx.localTicks() - start;
    });

    for (unsigned t = 0; t < opts.threads; t++) {
        result.latency.merge(hists[t]);
        result.ops.reads += counts[t].reads;
        result.ops.readsFound += counts[t].readsFound;
        result.ops.updates += counts[t].updates;
        result.ops.inserts += counts[t].inserts;
        result.ops.rmws += counts[t].rmws;
        result.ops.rmwsFound += counts[t].rmwsFound;
        result.ops.scans += counts[t].scans;
        result.ops.scannedKeys += counts[t].scannedKeys;
        result.elapsedTicks = std::max(result.elapsedTicks, ticks[t]);
        result.totalTicks += ticks[t];
    }

    result.check = app->workloadCheck(rt);

    if (opts.lincheck) {
        for (unsigned t = 0; t < opts.threads; t++)
            rt.ctx(static_cast<ThreadId>(t)).setFenceObserver(nullptr);
        // Final probes over every key the run could have touched: the
        // loaded partitions plus each thread's actually-inserted keys
        // (a key absent from the probes reads as absent to the
        // checker, which would turn an unprobed put into a false
        // violation).
        for (unsigned t = 0; t < opts.threads; t++) {
            const ThreadId tid = static_cast<ThreadId>(t);
            auto probe = [&](std::uint64_t key) {
                std::uint64_t value = 0;
                const bool found =
                    app->workloadProbe(rt.ctx(tid), tid, key, value);
                rec.noteRecovered(key, found, value);
            };
            for (std::uint64_t i = 0; i < map.perThread(); i++)
                probe(map.lo(tid) + i);
            for (std::uint64_t j = 0; j < counts[t].inserts; j++)
                probe(map.insertKey(tid, j));
        }
        // crashed stays false: the cut must sit at the end of the
        // history, i.e. plain linearizability against the probes.
        const lincheck::History recorded = rec.finish();
        const lincheck::CheckResult lc = lincheck::check(recorded);
        result.lincheckRan = true;
        result.lincheckBudget = lc.budgetExhausted;
        result.lincheckKeys = lc.keys.size();
        for (const lincheck::KeyVerdict &kv : lc.keys) {
            if (kv.ok)
                continue;
            result.lincheckViolations++;
            char head[40];
            std::snprintf(head, sizeof(head), "key 0x%llx: ",
                          static_cast<unsigned long long>(kv.key));
            result.check.fail("lincheck", head + kv.why);
        }
        if (lc.budgetExhausted)
            result.check.degrade("lincheck-budget",
                                 "witness search budget exhausted; "
                                 "verdict incomplete, not a violation");
    }

    result.verified = result.check.ok();
    return result;
}

} // namespace whisper::workload

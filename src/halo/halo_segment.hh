/**
 * @file
 * PM segment and record layout of the Halo hybrid store, plus the
 * batching per-thread segment allocator.
 *
 * The Halo layer (DESIGN.md §12) keeps *all* index state in DRAM and
 * writes persistent memory only for the KV payload itself: the pool
 * is carved into fixed-size segments, each thread owns a static range
 * of them, and appends fill one "active" segment at a time. A record
 * occupies exactly one cache line and carries a sequence-stamped,
 * CRC32-protected header, so recovery can tell a committed (or at
 * least fully-written) record from a torn one without any PM log:
 * a record is visible after a crash iff its line survived whole and
 * its CRC matches — there is no in-place update, no link word, and no
 * persistent allocator metadata beyond one advisory header line per
 * segment.
 *
 * Durability is batched: record stores queue a clwb each, and a
 * single durability fence — one per segment *seal* (or explicit
 * durability point) — commits the whole batch. This is the "minimize
 * flushes and fences" discipline of the HLSH/HESH line of work the
 * roadmap names, and it is why the layer posts the lowest write
 * amplification in the suite: 16 header bytes per 32 payload bytes,
 * plus one 64-byte segment header per 63 records.
 */

#ifndef WHISPER_HALO_HALO_SEGMENT_HH
#define WHISPER_HALO_HALO_SEGMENT_HH

#include <cstdint>
#include <vector>

#include "common/dimm.hh"
#include "common/types.hh"
#include "pm/pm_context.hh"

namespace whisper::halo
{

/** One record per cache line: the crash-survival unit. */
constexpr std::size_t kRecordBytes = kCacheLineSize;

/** Fixed segment size (header line + kRecordsPerSegment records). */
constexpr std::size_t kSegmentBytes = 4096;

/** Record slots per segment (line 0 is the segment header). */
constexpr std::size_t kRecordsPerSegment =
    kSegmentBytes / kRecordBytes - 1;

/** Payload words per record. */
constexpr std::size_t kValWords = 3;

/** Record flags (a zero flags word marks a never-written slot). */
constexpr std::uint16_t kRecFlagPut = 0x1;
constexpr std::uint16_t kRecFlagTombstone = 0x2;

/** Segment-header magic ("HALO"). */
constexpr std::uint32_t kSegMagic = 0x484C4F31;

/**
 * One KV record. The CRC covers bytes [4, 48) — flags through vals —
 * so a torn 8-byte word anywhere in the written region is detected;
 * the reserved tail is never written and never covered (a recycled
 * slot may keep stale bytes there).
 *
 * seq encodes the owning thread in its top 16 bits and a per-thread
 * monotonic counter below, so sequence comparison is a total order
 * within a key's single-writer partition and record images stay
 * bit-identical under any thread interleaving.
 */
struct HaloRecord
{
    std::uint32_t crc;
    std::uint16_t flags;
    std::uint16_t owner;             //!< writing thread (diagnostics)
    std::uint64_t seq;               //!< (tid << 48) | counter
    std::uint64_t key;
    std::uint64_t vals[kValWords];   //!< zero for tombstones
    std::uint64_t rsvd[2];           //!< never written, never CRCed

    /** CRC32 over the covered region of this in-DRAM image. */
    std::uint32_t computeCrc() const;

    /** Flags valid, owner/seq consistent, CRC matches. */
    bool valid() const;

    bool tombstone() const { return flags == kRecFlagTombstone; }

    static ThreadId ownerOfSeq(std::uint64_t seq)
    {
        return static_cast<ThreadId>(seq >> 48);
    }
    static std::uint64_t counterOfSeq(std::uint64_t seq)
    {
        return seq & ((std::uint64_t(1) << 48) - 1);
    }
    static std::uint64_t makeSeq(ThreadId tid, std::uint64_t counter)
    {
        return (static_cast<std::uint64_t>(tid) << 48) | counter;
    }
};

static_assert(sizeof(HaloRecord) == kRecordBytes,
              "halo record must be exactly one cache line");

/** Bytes of a record store that are header (recovery metadata). */
constexpr std::size_t kRecHeaderBytes = 16;
/** Bytes of a record store that are payload (key + vals). */
constexpr std::size_t kRecPayloadBytes = 8 + kValWords * 8;

/**
 * Advisory per-segment header (line 0). Recovery never *depends* on
 * it — records self-validate — but it lets the scrub attribute a
 * poisoned line to a segment in use and gives the allocator a
 * cross-check that scan-rebuilt occupancy matches what was opened.
 */
struct HaloSegmentHeader
{
    std::uint32_t crc;
    std::uint32_t magic;
    std::uint64_t segIndex;   //!< global segment number
    std::uint64_t openSeq;    //!< owner's seq counter at open
    std::uint32_t owner;      //!< opening thread
    std::uint32_t rsvd0;
    std::uint64_t rsvd[4];

    std::uint32_t computeCrc() const;
    bool valid(std::uint64_t expect_index) const;
};

static_assert(sizeof(HaloSegmentHeader) == kCacheLineSize,
              "halo segment header must be exactly one cache line");

/**
 * Batching segment allocator with static per-thread ownership.
 *
 * Each thread owns a statically computed list of segments and opens
 * them in a fixed per-thread order — acquisition order, record
 * addresses and therefore the durable image never depend on how
 * threads interleave. Under Placement::Sequential (the default)
 * thread t owns segments [t*perThread, (t+1)*perThread), exactly the
 * historical layout; Placement::DimmSpread deals segments to threads
 * round-robin by home DIMM (HESH-style balanced placement), so each
 * thread's consecutive segments cycle the DIMMs and concurrent
 * threads start staggered on different DIMMs. Both placements are
 * pure functions of the configuration, so determinism guarantees are
 * unchanged. All bookkeeping (the allocation bitmap, cursors, the
 * active segment) is DRAM-only; the single persistent artifact is the
 * advisory header line written when a segment is opened.
 *
 * Fence discipline: appends only queue clwbs; seal() issues the one
 * durability fence that commits every record appended since the
 * previous seal. append() seals automatically when the active segment
 * fills — one fence per segment — and callers add explicit seals at
 * durability points and thread exit.
 */
class HaloSegmentAllocator
{
  public:
    /** Segment-to-thread placement policy. */
    enum class Placement
    {
        Sequential, //!< thread t owns [t*perThread, (t+1)*perThread)
        DimmSpread, //!< segments dealt round-robin by home DIMM
    };

    struct Config
    {
        Addr base = 0;           //!< segment area base (line-aligned)
        std::size_t bytes = 0;   //!< area size (multiple of segment)
        unsigned threads = 1;
        Placement placement = Placement::Sequential;
        /** Pool DIMM geometry (consulted by DimmSpread only). */
        DimmConfig dimms{};
    };

    explicit HaloSegmentAllocator(const Config &config);

    std::size_t segmentCount() const { return segments_; }
    std::size_t segmentsPerThread() const { return perThread_; }
    Addr base() const { return config_.base; }
    std::size_t bytes() const
    {
        return segments_ * kSegmentBytes;
    }

    /** First byte of segment @p seg. */
    Addr segmentAddr(std::uint64_t seg) const
    {
        return config_.base + seg * kSegmentBytes;
    }

    /** Record-slot address (slot < kRecordsPerSegment). */
    Addr slotAddr(std::uint64_t seg, std::uint64_t slot) const
    {
        return segmentAddr(seg) + (slot + 1) * kRecordBytes;
    }

    /** Segment containing @p addr, or ~0 if outside the area. */
    std::uint64_t segmentOf(Addr addr) const;

    /**
     * Reserve the next record slot for @p tid, sealing the full
     * active segment (one durability fence) and opening a fresh one
     * (header line written + queued for flush) as needed. Returns
     * kNullAddr when the thread's segment range is exhausted — the
     * active segment, if any, stays sealed-on-demand and intact.
     * @p sealed reports whether a seal fence was issued AND retired
     * against the crash plan, so the store can promote its batched
     * commit state (a dropped fence persisted nothing).
     */
    Addr append(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t open_seq, bool &sealed);

    /**
     * Durability point: drain this thread's queued clwbs with a
     * single durability fence. Idempotent when nothing is pending
     * (the fence is still issued and counted — the caller batches).
     *
     * @return the fence's retired status (PmContext::fence): callers
     *   must promote batched commit state off this value, never off a
     *   later crashInjected() read, which races with another thread
     *   firing the crash and breaks digest determinism.
     */
    bool seal(pm::PmContext &ctx, ThreadId tid);

    /** True iff segment @p seg is marked used in the DRAM bitmap. */
    bool segmentUsed(std::uint64_t seg) const;

    /** Owning thread of segment @p seg (by static placement). */
    ThreadId ownerOf(std::uint64_t seg) const
    {
        return ownerOf_[seg];
    }

    /** Home DIMM of segment @p seg under the configured geometry. */
    unsigned homeDimm(std::uint64_t seg) const
    {
        return config_.dimms.dimmOf(lineOf(segmentAddr(seg)));
    }

    /** Used-segment count per DIMM (placement diagnostics/goldens). */
    std::vector<std::uint64_t> dimmUsage() const;

    /**
     * Reset DRAM state from a recovery scan: @p used flags one bit
     * per segment. Cursors resume after the highest used segment of
     * each thread's range; there is no active segment until the next
     * append opens one.
     */
    void resetFromScan(const std::vector<bool> &used);

    /** @{ \name Counters (test goldens; sum of per-thread counts,
     *  read them only with the worker threads joined) */
    std::uint64_t sealFences() const;
    std::uint64_t segmentsOpened() const;
    std::uint64_t recordsAppended() const;
    /** @} */

  private:
    void openSegment(pm::PmContext &ctx, ThreadId tid,
                     std::uint64_t seg, std::uint64_t open_seq);

    /** Compute the static per-thread segment orders + owner map. */
    void buildPlacement();

    struct PerThread
    {
        std::uint64_t pos = 0;       //!< cursor into the order list
        std::uint64_t active = ~std::uint64_t(0);
        std::uint64_t slot = 0;      //!< next free slot in active
        std::uint64_t sealFences = 0;
        std::uint64_t opened = 0;
        std::uint64_t appended = 0;
    };

    Config config_;
    std::size_t segments_ = 0;
    std::size_t perThread_ = 0;
    std::vector<PerThread> threads_;
    /** Per-thread segment acquisition order (placement-defined). */
    std::vector<std::vector<std::uint64_t>> order_;
    /** Owning thread of every segment (inverse of order_). */
    std::vector<ThreadId> ownerOf_;
    /**
     * DRAM allocation map, one byte per segment (byte-granular so
     * concurrent owning threads never share a memory word).
     */
    std::vector<std::uint8_t> bitmap_;
};

} // namespace whisper::halo

#endif // WHISPER_HALO_HALO_SEGMENT_HH

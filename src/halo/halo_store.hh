/**
 * @file
 * HaloStore: hybrid DRAM-index / PM-data hash store.
 *
 * The fifth access layer of the suite (AccessLayer::Hybrid). Every
 * index structure — the extendible-hash directories, their bucket
 * fingerprint arrays, the segment allocation map — is volatile; the
 * only persistent bytes are append-only KV records in fixed-size
 * segments (halo_segment.hh). Updates never touch PM in place:
 * a put/remove appends one sequence-stamped, CRC32-protected record
 * and points the DRAM index at it, and durability is batched behind
 * one fence per segment seal (plus explicit durability points).
 *
 * Recovery (recoverScan) is a parallel segment scan: shard the
 * segment space, parse the CRC-valid records of each shard, then
 * replay them in address order — which per partition is sequence
 * order, because allocation is a per-thread monotone bump — applying
 * last-writer-wins with tombstones honored. The result is bit-
 * identical at any scan job count (shards merge in index order).
 *
 * Keys encode their owning thread in the top 16 bits (the MOD
 * layer's convention): mutations are single-writer per partition,
 * which keeps record images, sequence numbers and the rebuilt index
 * independent of thread interleaving; lookups may come from any
 * thread (reader-writer locked directories).
 *
 * The store also keeps a *volatile verification oracle* — per-thread
 * journals of every record written and of the batch promoted at each
 * successful fence — that survives the simulated crash (the process
 * lives on) and lets the crash fuzzer check the layer's recovery
 * invariant: every committed pair reachable after the index rebuild,
 * and nothing visible that was not genuinely written (no torn or
 * fabricated record). The oracle is test instrumentation, not
 * implementation state: recovery itself reads only PM.
 */

#ifndef WHISPER_HALO_HALO_STORE_HH
#define WHISPER_HALO_HALO_STORE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "halo/halo_directory.hh"
#include "halo/halo_segment.hh"
#include "pm/pm_pool.hh"

namespace whisper::halo
{

class HaloStore
{
  public:
    struct Config
    {
        Addr base = 0;          //!< segment area base (line-aligned)
        std::size_t bytes = 0;  //!< segment area size
        unsigned threads = 1;   //!< partitions (= writer threads)
        /** Segment placement (forwarded to the allocator). */
        HaloSegmentAllocator::Placement placement =
            HaloSegmentAllocator::Placement::Sequential;
        DimmConfig dimms{};     //!< pool geometry for DimmSpread
    };

    /** Last op accepted for a key at a durability fence. */
    struct CommitState
    {
        std::uint64_t seq = 0;
        bool tombstone = false;
        std::uint64_t vals[kValWords] = {};
        Addr addr = kNullAddr;
    };

    /** One journaled write (committed or not): the genuineness oracle. */
    struct WrittenOp
    {
        std::uint64_t key = 0;
        bool tombstone = false;
        std::uint64_t vals[kValWords] = {};
    };

    explicit HaloStore(const Config &config);

    /** Owning partition of @p key (top 16 bits). */
    static ThreadId
    partitionOf(std::uint64_t key)
    {
        return static_cast<ThreadId>(key >> 48);
    }

    /** Compose a key owned by @p tid. */
    static std::uint64_t
    makeKey(ThreadId tid, std::uint64_t k)
    {
        return (static_cast<std::uint64_t>(tid) << 48) | k;
    }

    /** @{ \name Mutations (owning thread only) */

    /**
     * Insert-or-update @p key := @p vals: append one record, update
     * the DRAM index. Durable only at the next seal/durability point.
     * Returns false when the thread's segment range is exhausted.
     */
    bool put(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
             const std::uint64_t vals[kValWords]);

    /** Append a tombstone and unlink @p key from the index. */
    bool remove(pm::PmContext &ctx, ThreadId tid, std::uint64_t key);

    /** Batched commit: one durability fence for everything pending. */
    void durabilityPoint(pm::PmContext &ctx, ThreadId tid);

    /** Per-thread epilogue (final durability point). */
    void
    threadExit(pm::PmContext &ctx, ThreadId tid)
    {
        durabilityPoint(ctx, tid);
    }

    /** @} */

    /** Point lookup (any thread): DRAM index probe + one PM load. */
    bool get(pm::PmContext &ctx, std::uint64_t key,
             std::uint64_t vals[kValWords]) const;

    /** @{ \name Recovery */

    /**
     * Rebuild every DRAM structure from a parallel scan of the
     * segment area with @p jobs workers (0 = hardware, 1 = inline
     * sequential). Pending (unfenced) batch state is discarded — the
     * power cut took it. The verification oracle is preserved.
     */
    void recoverScan(pm::PmPool &pool, unsigned jobs);

    /**
     * Deterministic fingerprint of the state recoverScan() rebuilt:
     * a fold over the sorted recovered entries (key, seq, vals,
     * addr), the used-segment map and the surviving tombstone
     * high-water marks. Bit-identical at any job count.
     */
    std::uint64_t rebuildDigest() const { return rebuildDigest_; }

    /** @} */
    /** @{ \name Verification surface (apps, tests, the fuzzer) */

    const std::unordered_map<std::uint64_t, CommitState> &
    committed(ThreadId tid) const
    {
        return threads_[tid].committed;
    }

    /** Journal lookup: the op @p tid wrote with seq counter @p ctr. */
    bool writtenOp(ThreadId tid, std::uint64_t ctr,
                   WrittenOp &out) const;

    /** Highest tombstone sequence the last scan applied, per key. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    recoveredTombstones(ThreadId tid) const
    {
        return threads_[tid].recoveredTombs;
    }

    /** Load + validate the record at @p addr (CRC, flags, owner). */
    bool recordAt(const pm::PmPool &pool, Addr addr,
                  HaloRecord &out) const;

    /** Index probe without the PM load. */
    bool indexLookup(std::uint64_t key, Addr &addr) const;

    /**
     * Visit every recovered index entry as (key, addr). Partitions
     * are visited in thread order; order within one is unordered.
     */
    template <typename Fn>
    void
    forEachIndexed(Fn &&fn) const
    {
        for (const auto &dir : dirs_)
            dir->forEach(fn);
    }

    /**
     * Record media-lost lines (scrub hook): committed records on
     * these lines are excused from reachability, their loss having
     * been degraded by name. Returns how many *record slots* the
     * lines held (header lines cost no records).
     */
    std::size_t noteLostLines(const std::vector<LineAddr> &lines);

    bool
    lineLost(LineAddr line) const
    {
        return lostLines_.count(line) != 0;
    }

    /** Next unissued seq counter of @p tid (monotonicity checks). */
    std::uint64_t
    nextCounter(ThreadId tid) const
    {
        return threads_[tid].nextCounter;
    }

    /** Highest seq counter the last scan recovered for @p tid. */
    std::uint64_t
    maxRecoveredCounter(ThreadId tid) const
    {
        return threads_[tid].maxRecoveredCounter;
    }

    const HaloSegmentAllocator &allocator() const { return alloc_; }
    const HaloDirectory &directory(ThreadId tid) const
    {
        return *dirs_[tid];
    }

    unsigned threads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** @} */

  private:
    struct Pending
    {
        std::uint64_t key;
        std::uint64_t seq;
        bool tombstone;
        std::uint64_t vals[kValWords];
        Addr addr;
    };

    struct PerThread
    {
        std::uint64_t nextCounter = 1;
        std::uint64_t maxRecoveredCounter = 0;
        std::vector<Pending> pending;
        std::unordered_map<std::uint64_t, CommitState> committed;
        std::unordered_map<std::uint64_t, WrittenOp> written;
        std::unordered_map<std::uint64_t, std::uint64_t> recoveredTombs;
    };

    bool appendRecord(pm::PmContext &ctx, ThreadId tid,
                      std::uint64_t key,
                      const std::uint64_t *vals, bool tombstone);

    /** Fence succeeded: everything pending is now durable. */
    void promote(ThreadId tid);

    Config config_;
    HaloSegmentAllocator alloc_;
    std::vector<std::unique_ptr<HaloDirectory>> dirs_;
    std::vector<PerThread> threads_;
    std::unordered_set<LineAddr> lostLines_;
    std::uint64_t rebuildDigest_ = 0;
};

} // namespace whisper::halo

#endif // WHISPER_HALO_HALO_STORE_HH

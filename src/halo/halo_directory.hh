/**
 * @file
 * Volatile extendible-hashing directory with bucket fingerprints.
 *
 * This is the Halo store's entire index: a classic extendible-hash
 * directory (2^globalDepth bucket pointers, buckets split on
 * overflow, the directory doubles when a splitting bucket is already
 * at global depth) mapping keys to PM record addresses. It lives
 * purely in DRAM and is *never* persisted — after a crash it is
 * rebuilt from a segment scan (HaloStore::recoverScan), which is why
 * losing it can never be a correctness loss (DESIGN.md §12).
 *
 * Each bucket keeps a one-byte fingerprint per slot (the top byte of
 * the key hash, independent of the directory index bits, which are
 * the low bits): a lookup compares fingerprints first and touches the
 * full key only on a fingerprint hit, the cache-friendly probe of the
 * HLSH/HESH designs. False fingerprint hits are correct (the key
 * compare rejects them) and counted, so tests can pin the path.
 *
 * Concurrency: one writer (the owning partition's thread) and any
 * number of concurrent readers, synchronized by a shared_mutex —
 * readers proceed in parallel and observe a consistent directory even
 * mid-doubling. Index operations touch no PM and therefore never
 * perturb trace or crash-op determinism.
 */

#ifndef WHISPER_HALO_HALO_DIRECTORY_HH
#define WHISPER_HALO_HALO_DIRECTORY_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/types.hh"

namespace whisper::halo
{

/**
 * Extendible-hash directory: key -> PM record address.
 */
class HaloDirectory
{
  public:
    /** Entries per bucket before it must split. */
    static constexpr unsigned kBucketSlots = 14;

    /** Hard depth ceiling (2^28 directory slots ~ safety net). */
    static constexpr unsigned kMaxDepth = 28;

    explicit HaloDirectory(unsigned initial_depth = 2);

    /** Insert or update @p key -> @p addr. */
    void upsert(std::uint64_t key, Addr addr);

    /** Remove @p key; returns whether it was present. */
    bool erase(std::uint64_t key);

    /** Point lookup; fills @p addr on hit. Safe from any thread. */
    bool lookup(std::uint64_t key, Addr &addr) const;

    /** Drop every entry, reset to @p initial depth. */
    void clear(unsigned initial_depth = 2);

    std::uint64_t size() const { return size_; }
    unsigned globalDepth() const { return globalDepth_; }
    std::uint64_t doubles() const { return doubles_; }
    std::uint64_t splits() const { return splits_; }

    /** Fingerprint matches rejected by the full-key compare. */
    std::uint64_t
    falseFingerprintHits() const
    {
        return fpFalseHits_.load(std::memory_order_relaxed);
    }

    /**
     * Visit every (key, addr) entry. Unordered; callers that need a
     * deterministic order sort. Takes the reader lock.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        for (const std::unique_ptr<Bucket> &b : pool_) {
            for (unsigned i = 0; i < b->count; i++)
                fn(b->keys[i], b->addrs[i]);
        }
    }

    /** Key hash (splitmix64 finalizer — low bits index, top byte fp). */
    static std::uint64_t hashKey(std::uint64_t key);
    static std::uint8_t
    fingerprintOf(std::uint64_t key)
    {
        return static_cast<std::uint8_t>(hashKey(key) >> 56);
    }

  private:
    struct Bucket
    {
        std::uint8_t localDepth = 0;
        std::uint8_t count = 0;
        std::uint8_t fps[kBucketSlots] = {};
        std::uint64_t keys[kBucketSlots] = {};
        Addr addrs[kBucketSlots] = {};
    };

    Bucket *bucketFor(std::uint64_t hash) const;
    Bucket *newBucket(unsigned depth);
    void splitBucket(std::uint64_t hash);

    mutable std::shared_mutex mu_;
    std::vector<Bucket *> dir_;   //!< 2^globalDepth_ slots
    std::vector<std::unique_ptr<Bucket>> pool_;
    unsigned globalDepth_ = 0;
    std::uint64_t size_ = 0;
    std::uint64_t doubles_ = 0;
    std::uint64_t splits_ = 0;
    mutable std::atomic<std::uint64_t> fpFalseHits_{0};
};

} // namespace whisper::halo

#endif // WHISPER_HALO_HALO_DIRECTORY_HH

#include "halo/halo_directory.hh"

#include <mutex>

#include "common/logging.hh"

namespace whisper::halo
{

std::uint64_t
HaloDirectory::hashKey(std::uint64_t key)
{
    // splitmix64 finalizer: full-avalanche, so the low index bits and
    // the top fingerprint byte are effectively independent.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

HaloDirectory::HaloDirectory(unsigned initial_depth)
{
    clear(initial_depth);
}

void
HaloDirectory::clear(unsigned initial_depth)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    panic_if(initial_depth > kMaxDepth, "halo: directory too deep");
    pool_.clear();
    dir_.assign(std::size_t(1) << initial_depth, nullptr);
    globalDepth_ = initial_depth;
    size_ = 0;
    doubles_ = 0;
    splits_ = 0;
    fpFalseHits_.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < dir_.size(); i++)
        dir_[i] = newBucket(initial_depth);
}

HaloDirectory::Bucket *
HaloDirectory::newBucket(unsigned depth)
{
    pool_.push_back(std::make_unique<Bucket>());
    pool_.back()->localDepth = static_cast<std::uint8_t>(depth);
    return pool_.back().get();
}

HaloDirectory::Bucket *
HaloDirectory::bucketFor(std::uint64_t hash) const
{
    return dir_[hash & ((std::uint64_t(1) << globalDepth_) - 1)];
}

void
HaloDirectory::splitBucket(std::uint64_t hash)
{
    Bucket *old = bucketFor(hash);
    if (old->localDepth == globalDepth_) {
        // Double the directory: each old slot fans out to two slots
        // naming the same bucket until a split diverges them.
        panic_if(globalDepth_ + 1 > kMaxDepth,
                 "halo: directory depth limit hit");
        const std::size_t half = dir_.size();
        dir_.resize(half * 2);
        for (std::size_t i = 0; i < half; i++)
            dir_[half + i] = dir_[i];
        globalDepth_++;
        doubles_++;
    }
    // Split on the bit one past the old local depth: entries whose
    // hash has it set move to the sibling bucket.
    const unsigned depth = old->localDepth + 1u;
    const std::uint64_t bit = std::uint64_t(1) << (depth - 1);
    Bucket *sib = newBucket(depth);
    old->localDepth = static_cast<std::uint8_t>(depth);
    splits_++;

    std::uint8_t keep = 0;
    for (unsigned i = 0; i < old->count; i++) {
        const std::uint64_t h = hashKey(old->keys[i]);
        if (h & bit) {
            sib->fps[sib->count] = old->fps[i];
            sib->keys[sib->count] = old->keys[i];
            sib->addrs[sib->count] = old->addrs[i];
            sib->count++;
        } else {
            old->fps[keep] = old->fps[i];
            old->keys[keep] = old->keys[i];
            old->addrs[keep] = old->addrs[i];
            keep++;
        }
    }
    old->count = keep;

    // Repoint every directory slot that addressed the old bucket and
    // has the distinguishing bit set.
    const std::uint64_t low_mask = bit - 1;
    const std::uint64_t base = hash & low_mask;
    const std::uint64_t stride = bit << 1;
    for (std::uint64_t i = base | bit; i < dir_.size(); i += stride)
        dir_[i] = sib;
}

void
HaloDirectory::upsert(std::uint64_t key, Addr addr)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    const std::uint64_t hash = hashKey(key);
    const std::uint8_t fp = static_cast<std::uint8_t>(hash >> 56);
    for (;;) {
        Bucket *b = bucketFor(hash);
        for (unsigned i = 0; i < b->count; i++) {
            if (b->fps[i] != fp)
                continue;
            if (b->keys[i] == key) {
                b->addrs[i] = addr;
                return;
            }
            fpFalseHits_.fetch_add(1, std::memory_order_relaxed);
        }
        if (b->count < kBucketSlots) {
            b->fps[b->count] = fp;
            b->keys[b->count] = key;
            b->addrs[b->count] = addr;
            b->count++;
            size_++;
            return;
        }
        splitBucket(hash);
    }
}

bool
HaloDirectory::erase(std::uint64_t key)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    const std::uint64_t hash = hashKey(key);
    const std::uint8_t fp = static_cast<std::uint8_t>(hash >> 56);
    Bucket *b = bucketFor(hash);
    for (unsigned i = 0; i < b->count; i++) {
        if (b->fps[i] != fp)
            continue;
        if (b->keys[i] != key) {
            fpFalseHits_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        b->count--;
        b->fps[i] = b->fps[b->count];
        b->keys[i] = b->keys[b->count];
        b->addrs[i] = b->addrs[b->count];
        size_--;
        return true;
    }
    return false;
}

bool
HaloDirectory::lookup(std::uint64_t key, Addr &addr) const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    const std::uint64_t hash = hashKey(key);
    const std::uint8_t fp = static_cast<std::uint8_t>(hash >> 56);
    const Bucket *b = bucketFor(hash);
    for (unsigned i = 0; i < b->count; i++) {
        if (b->fps[i] != fp)
            continue;
        if (b->keys[i] == key) {
            addr = b->addrs[i];
            return true;
        }
        fpFalseHits_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
}

} // namespace whisper::halo

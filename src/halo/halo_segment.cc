#include "halo/halo_segment.hh"

#include <algorithm>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace whisper::halo
{

using pm::DataClass;
using pm::FenceKind;

std::uint32_t
HaloRecord::computeCrc() const
{
    // Covered region: flags through vals ([4, 48)); the reserved tail
    // may hold stale bytes in a reused slot and is excluded.
    const std::uint8_t *bytes =
        reinterpret_cast<const std::uint8_t *>(this);
    return crc32(bytes + 4, kRecHeaderBytes - 4 + kRecPayloadBytes);
}

bool
HaloRecord::valid() const
{
    if (flags != kRecFlagPut && flags != kRecFlagTombstone)
        return false;
    if (ownerOfSeq(seq) != owner)
        return false;
    return crc == computeCrc();
}

std::uint32_t
HaloSegmentHeader::computeCrc() const
{
    const std::uint8_t *bytes =
        reinterpret_cast<const std::uint8_t *>(this);
    return crc32(bytes + 4, sizeof(*this) - 4);
}

bool
HaloSegmentHeader::valid(std::uint64_t expect_index) const
{
    return magic == kSegMagic && segIndex == expect_index &&
           crc == computeCrc();
}

HaloSegmentAllocator::HaloSegmentAllocator(const Config &config)
    : config_(config)
{
    panic_if(config.threads < 1, "halo: at least one thread");
    panic_if(config.base % kCacheLineSize != 0,
             "halo: segment area must be line-aligned");
    segments_ = config.bytes / kSegmentBytes;
    perThread_ = segments_ / config.threads;
    panic_if(perThread_ < 1,
             "halo: segment area too small for %u threads",
             config.threads);
    segments_ = perThread_ * config.threads; // drop the remainder
    threads_.resize(config.threads);
    bitmap_.assign(segments_, 0);
    buildPlacement();
}

void
HaloSegmentAllocator::buildPlacement()
{
    const unsigned T = config_.threads;
    order_.assign(T, {});
    ownerOf_.assign(segments_, 0);

    if (config_.placement == Placement::Sequential) {
        for (unsigned t = 0; t < T; t++) {
            order_[t].reserve(perThread_);
            const std::uint64_t base =
                static_cast<std::uint64_t>(t) * perThread_;
            for (std::uint64_t i = 0; i < perThread_; i++)
                order_[t].push_back(base + i);
        }
    } else {
        // DimmSpread: group segments by home DIMM, then deal them to
        // the threads one position at a time. Thread t's preferred
        // DIMM at position p is (t + p) % D — consecutive segments
        // of one thread cycle the DIMMs (its drain bursts spread),
        // and at any given position concurrent threads sit staggered
        // on different DIMMs. When the preferred group is empty the
        // deal falls through to the next DIMM, so every segment is
        // assigned exactly once.
        const unsigned D = config_.dimms.dimms();
        std::vector<std::vector<std::uint64_t>> by_dimm(D);
        for (std::uint64_t seg = 0; seg < segments_; seg++)
            by_dimm[homeDimm(seg)].push_back(seg);
        std::vector<std::size_t> cursor(D, 0);
        for (std::uint64_t pos = 0; pos < perThread_; pos++) {
            for (unsigned t = 0; t < T; t++) {
                const unsigned want = (t + pos) % D;
                for (unsigned k = 0; k < D; k++) {
                    const unsigned d = (want + k) % D;
                    if (cursor[d] < by_dimm[d].size()) {
                        order_[t].push_back(by_dimm[d][cursor[d]++]);
                        break;
                    }
                }
            }
        }
    }

    for (unsigned t = 0; t < T; t++) {
        for (const std::uint64_t seg : order_[t])
            ownerOf_[seg] = static_cast<ThreadId>(t);
    }
}

std::vector<std::uint64_t>
HaloSegmentAllocator::dimmUsage() const
{
    std::vector<std::uint64_t> used(config_.dimms.dimms(), 0);
    for (std::uint64_t seg = 0; seg < segments_; seg++) {
        if (bitmap_[seg])
            used[homeDimm(seg)]++;
    }
    return used;
}

std::uint64_t
HaloSegmentAllocator::segmentOf(Addr addr) const
{
    if (addr < config_.base)
        return ~std::uint64_t(0);
    const std::uint64_t seg = (addr - config_.base) / kSegmentBytes;
    return seg < segments_ ? seg : ~std::uint64_t(0);
}

void
HaloSegmentAllocator::openSegment(pm::PmContext &ctx, ThreadId tid,
                                  std::uint64_t seg,
                                  std::uint64_t open_seq)
{
    pm::OriginScope origin(ctx, trace::Origin::HaloSegOpen);
    HaloSegmentHeader hdr{};
    hdr.magic = kSegMagic;
    hdr.segIndex = seg;
    hdr.openSeq = open_seq;
    hdr.owner = tid;
    hdr.crc = hdr.computeCrc();
    const Addr off = segmentAddr(seg);
    ctx.store(off, &hdr, sizeof(hdr), DataClass::AllocMeta);
    ctx.flush(off, sizeof(hdr));
    bitmap_[seg] = 1;
    PerThread &pt = threads_[tid];
    pt.active = seg;
    pt.slot = 0;
    pt.opened++;
}

Addr
HaloSegmentAllocator::append(pm::PmContext &ctx, ThreadId tid,
                             std::uint64_t open_seq, bool &sealed)
{
    panic_if(tid >= threads_.size(), "halo: tid out of range");
    sealed = false;
    PerThread &pt = threads_[tid];
    if (pt.active != ~std::uint64_t(0) &&
        pt.slot >= kRecordsPerSegment) {
        // Active segment full: the one fence that commits its batch.
        sealed = seal(ctx, tid);
        pt.active = ~std::uint64_t(0);
    }
    if (pt.active == ~std::uint64_t(0)) {
        if (pt.pos >= perThread_)
            return kNullAddr; // thread's segment list exhausted
        openSegment(ctx, tid, order_[tid][pt.pos++], open_seq);
    }
    pt.appended++;
    return slotAddr(pt.active, pt.slot++);
}

bool
HaloSegmentAllocator::seal(pm::PmContext &ctx, ThreadId tid)
{
    panic_if(tid >= threads_.size(), "halo: tid out of range");
    pm::OriginScope origin(ctx, trace::Origin::HaloSeal);
    const bool retired = ctx.fence(FenceKind::Durability);
    threads_[tid].sealFences++;
    return retired;
}

bool
HaloSegmentAllocator::segmentUsed(std::uint64_t seg) const
{
    return seg < segments_ && bitmap_[seg] != 0;
}

void
HaloSegmentAllocator::resetFromScan(const std::vector<bool> &used)
{
    panic_if(used.size() != segments_,
             "halo: scan flag count mismatch");
    bitmap_.assign(segments_, 0);
    for (std::uint64_t seg = 0; seg < segments_; seg++)
        bitmap_[seg] = used[seg] ? 1 : 0;
    for (unsigned t = 0; t < threads_.size(); t++) {
        PerThread &pt = threads_[t];
        pt.active = ~std::uint64_t(0);
        pt.slot = 0;
        // Resume after the latest position (in the thread's static
        // acquisition order) the scan saw in use; a partially filled
        // survivor is abandoned, never reused (wasted slots, but no
        // way to mix live and stale records).
        std::uint64_t pos = 0;
        for (std::uint64_t p = 0; p < perThread_; p++) {
            if (bitmap_[order_[t][p]])
                pos = p + 1;
        }
        pt.pos = pos;
    }
}

std::uint64_t
HaloSegmentAllocator::sealFences() const
{
    std::uint64_t n = 0;
    for (const PerThread &pt : threads_)
        n += pt.sealFences;
    return n;
}

std::uint64_t
HaloSegmentAllocator::segmentsOpened() const
{
    std::uint64_t n = 0;
    for (const PerThread &pt : threads_)
        n += pt.opened;
    return n;
}

std::uint64_t
HaloSegmentAllocator::recordsAppended() const
{
    std::uint64_t n = 0;
    for (const PerThread &pt : threads_)
        n += pt.appended;
    return n;
}

} // namespace whisper::halo

#include "halo/halo_segment.hh"

#include <algorithm>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace whisper::halo
{

using pm::DataClass;
using pm::FenceKind;

std::uint32_t
HaloRecord::computeCrc() const
{
    // Covered region: flags through vals ([4, 48)); the reserved tail
    // may hold stale bytes in a reused slot and is excluded.
    const std::uint8_t *bytes =
        reinterpret_cast<const std::uint8_t *>(this);
    return crc32(bytes + 4, kRecHeaderBytes - 4 + kRecPayloadBytes);
}

bool
HaloRecord::valid() const
{
    if (flags != kRecFlagPut && flags != kRecFlagTombstone)
        return false;
    if (ownerOfSeq(seq) != owner)
        return false;
    return crc == computeCrc();
}

std::uint32_t
HaloSegmentHeader::computeCrc() const
{
    const std::uint8_t *bytes =
        reinterpret_cast<const std::uint8_t *>(this);
    return crc32(bytes + 4, sizeof(*this) - 4);
}

bool
HaloSegmentHeader::valid(std::uint64_t expect_index) const
{
    return magic == kSegMagic && segIndex == expect_index &&
           crc == computeCrc();
}

HaloSegmentAllocator::HaloSegmentAllocator(const Config &config)
    : config_(config)
{
    panic_if(config.threads < 1, "halo: at least one thread");
    panic_if(config.base % kCacheLineSize != 0,
             "halo: segment area must be line-aligned");
    segments_ = config.bytes / kSegmentBytes;
    perThread_ = segments_ / config.threads;
    panic_if(perThread_ < 1,
             "halo: segment area too small for %u threads",
             config.threads);
    segments_ = perThread_ * config.threads; // drop the remainder
    threads_.resize(config.threads);
    for (unsigned t = 0; t < config.threads; t++)
        threads_[t].next = static_cast<std::uint64_t>(t) * perThread_;
    bitmap_.assign(segments_, 0);
}

std::uint64_t
HaloSegmentAllocator::segmentOf(Addr addr) const
{
    if (addr < config_.base)
        return ~std::uint64_t(0);
    const std::uint64_t seg = (addr - config_.base) / kSegmentBytes;
    return seg < segments_ ? seg : ~std::uint64_t(0);
}

void
HaloSegmentAllocator::openSegment(pm::PmContext &ctx, ThreadId tid,
                                  std::uint64_t seg,
                                  std::uint64_t open_seq)
{
    pm::OriginScope origin(ctx, trace::Origin::HaloSegOpen);
    HaloSegmentHeader hdr{};
    hdr.magic = kSegMagic;
    hdr.segIndex = seg;
    hdr.openSeq = open_seq;
    hdr.owner = tid;
    hdr.crc = hdr.computeCrc();
    const Addr off = segmentAddr(seg);
    ctx.store(off, &hdr, sizeof(hdr), DataClass::AllocMeta);
    ctx.flush(off, sizeof(hdr));
    bitmap_[seg] = 1;
    PerThread &pt = threads_[tid];
    pt.active = seg;
    pt.slot = 0;
    pt.opened++;
}

Addr
HaloSegmentAllocator::append(pm::PmContext &ctx, ThreadId tid,
                             std::uint64_t open_seq, bool &sealed)
{
    panic_if(tid >= threads_.size(), "halo: tid out of range");
    sealed = false;
    PerThread &pt = threads_[tid];
    if (pt.active != ~std::uint64_t(0) &&
        pt.slot >= kRecordsPerSegment) {
        // Active segment full: the one fence that commits its batch.
        sealed = seal(ctx, tid);
        pt.active = ~std::uint64_t(0);
    }
    if (pt.active == ~std::uint64_t(0)) {
        const std::uint64_t limit =
            (static_cast<std::uint64_t>(tid) + 1) * perThread_;
        if (pt.next >= limit)
            return kNullAddr; // thread's segment range exhausted
        openSegment(ctx, tid, pt.next++, open_seq);
    }
    pt.appended++;
    return slotAddr(pt.active, pt.slot++);
}

bool
HaloSegmentAllocator::seal(pm::PmContext &ctx, ThreadId tid)
{
    panic_if(tid >= threads_.size(), "halo: tid out of range");
    pm::OriginScope origin(ctx, trace::Origin::HaloSeal);
    const bool retired = ctx.fence(FenceKind::Durability);
    threads_[tid].sealFences++;
    return retired;
}

bool
HaloSegmentAllocator::segmentUsed(std::uint64_t seg) const
{
    return seg < segments_ && bitmap_[seg] != 0;
}

void
HaloSegmentAllocator::resetFromScan(const std::vector<bool> &used)
{
    panic_if(used.size() != segments_,
             "halo: scan flag count mismatch");
    bitmap_.assign(segments_, 0);
    for (std::uint64_t seg = 0; seg < segments_; seg++)
        bitmap_[seg] = used[seg] ? 1 : 0;
    for (unsigned t = 0; t < threads_.size(); t++) {
        PerThread &pt = threads_[t];
        pt.active = ~std::uint64_t(0);
        pt.slot = 0;
        // Resume after the highest segment the scan saw in use;
        // a partially filled survivor is abandoned, never reused
        // (wasted slots, but no way to mix live and stale records).
        std::uint64_t next = static_cast<std::uint64_t>(t) * perThread_;
        const std::uint64_t limit = next + perThread_;
        for (std::uint64_t seg = next; seg < limit; seg++) {
            if (bitmap_[seg])
                next = seg + 1;
        }
        pt.next = next;
    }
}

std::uint64_t
HaloSegmentAllocator::sealFences() const
{
    std::uint64_t n = 0;
    for (const PerThread &pt : threads_)
        n += pt.sealFences;
    return n;
}

std::uint64_t
HaloSegmentAllocator::segmentsOpened() const
{
    std::uint64_t n = 0;
    for (const PerThread &pt : threads_)
        n += pt.opened;
    return n;
}

std::uint64_t
HaloSegmentAllocator::recordsAppended() const
{
    std::uint64_t n = 0;
    for (const PerThread &pt : threads_)
        n += pt.appended;
    return n;
}

} // namespace whisper::halo

#include "halo/halo_store.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace whisper::halo
{

using pm::DataClass;

namespace
{

/** splitmix64 finalizer for the rebuild digest chain. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    return mix64(h + v);
}

} // namespace

HaloStore::HaloStore(const Config &config)
    : config_(config),
      alloc_(HaloSegmentAllocator::Config{config.base, config.bytes,
                                          config.threads,
                                          config.placement,
                                          config.dimms})
{
    dirs_.reserve(config.threads);
    for (unsigned t = 0; t < config.threads; t++)
        dirs_.push_back(std::make_unique<HaloDirectory>());
    threads_.resize(config.threads);
}

bool
HaloStore::appendRecord(pm::PmContext &ctx, ThreadId tid,
                        std::uint64_t key, const std::uint64_t *vals,
                        bool tombstone)
{
    panic_if(tid >= threads_.size(), "halo: tid out of range");
    panic_if(partitionOf(key) != tid,
             "halo: thread %u mutating foreign key", tid);
    PerThread &pt = threads_[tid];

    bool sealed = false;
    const Addr slot = alloc_.append(ctx, tid, pt.nextCounter, sealed);
    if (sealed)
        promote(tid);
    if (slot == kNullAddr)
        return false;

    const std::uint64_t seq =
        HaloRecord::makeSeq(tid, pt.nextCounter);
    HaloRecord rec{};
    rec.flags = tombstone ? kRecFlagTombstone : kRecFlagPut;
    rec.owner = static_cast<std::uint16_t>(tid);
    rec.seq = seq;
    rec.key = key;
    if (!tombstone) {
        for (std::size_t i = 0; i < kValWords; i++)
            rec.vals[i] = vals[i];
    }
    rec.crc = rec.computeCrc();

    // Journal the op BEFORE touching PM: a crash mid-append can leave
    // a fully-written (CRC-valid) record on media via cache eviction,
    // and the genuineness oracle must know about it.
    WrittenOp w;
    w.key = key;
    w.tombstone = tombstone;
    for (std::size_t i = 0; i < kValWords; i++)
        w.vals[i] = rec.vals[i];
    pt.written.emplace(pt.nextCounter, w);
    pt.nextCounter++;

    {
        pm::OriginScope origin(ctx, trace::Origin::HaloAppend);
        // One record append is one durable transaction of the layer
        // (commit happens lazily at the batch's seal fence).
        const TxId tx = ctx.txBegin();
        // Header (recovery metadata) and payload carry their own
        // data classes so the amplification analysis separates them;
        // both land in the one line a single clwb covers.
        ctx.store(slot, &rec, kRecHeaderBytes, DataClass::TxMeta);
        ctx.store(slot + kRecHeaderBytes, &rec.key, kRecPayloadBytes,
                  DataClass::User);
        ctx.flush(slot, kRecordBytes);
        ctx.txEnd(tx);
    }

    // PM ops done (no crash): update the volatile index and batch.
    Pending p;
    p.key = key;
    p.seq = seq;
    p.tombstone = tombstone;
    for (std::size_t i = 0; i < kValWords; i++)
        p.vals[i] = rec.vals[i];
    p.addr = slot;
    pt.pending.push_back(p);
    if (tombstone)
        dirs_[tid]->erase(key);
    else
        dirs_[tid]->upsert(key, slot);
    ctx.vStore(dirs_[tid].get(), kCacheLineSize); // index bucket touch
    return true;
}

bool
HaloStore::put(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
               const std::uint64_t vals[kValWords])
{
    return appendRecord(ctx, tid, key, vals, false);
}

bool
HaloStore::remove(pm::PmContext &ctx, ThreadId tid, std::uint64_t key)
{
    return appendRecord(ctx, tid, key, nullptr, true);
}

void
HaloStore::durabilityPoint(pm::PmContext &ctx, ThreadId tid)
{
    panic_if(tid >= threads_.size(), "halo: tid out of range");
    // A fence dropped by a fired crash plan persisted nothing: the
    // batch must stay uncommitted in the oracle too. The retired
    // status is decided inside the gated fence op, so the promotion
    // is deterministic even when another thread fires concurrently.
    if (alloc_.seal(ctx, tid))
        promote(tid);
}

void
HaloStore::promote(ThreadId tid)
{
    PerThread &pt = threads_[tid];
    for (const Pending &p : pt.pending) {
        CommitState &c = pt.committed[p.key];
        c.seq = p.seq;
        c.tombstone = p.tombstone;
        for (std::size_t i = 0; i < kValWords; i++)
            c.vals[i] = p.vals[i];
        c.addr = p.addr;
    }
    pt.pending.clear();
}

bool
HaloStore::get(pm::PmContext &ctx, std::uint64_t key,
               std::uint64_t vals[kValWords]) const
{
    const ThreadId p = partitionOf(key);
    panic_if(p >= dirs_.size(), "halo: key names no partition");
    ctx.vLoad(dirs_[p].get(), kCacheLineSize); // index bucket probe
    Addr addr = kNullAddr;
    if (!dirs_[p]->lookup(key, addr))
        return false;
    HaloRecord rec;
    ctx.load(addr, &rec, sizeof(rec));
    if (!rec.valid() || rec.key != key || rec.tombstone())
        return false;
    for (std::size_t i = 0; i < kValWords; i++)
        vals[i] = rec.vals[i];
    return true;
}

bool
HaloStore::indexLookup(std::uint64_t key, Addr &addr) const
{
    const ThreadId p = partitionOf(key);
    if (p >= dirs_.size())
        return false;
    return dirs_[p]->lookup(key, addr);
}

bool
HaloStore::recordAt(const pm::PmPool &pool, Addr addr,
                    HaloRecord &out) const
{
    if (addr == kNullAddr ||
        alloc_.segmentOf(addr) == ~std::uint64_t(0))
        return false;
    pool.applyLoad(addr, &out, sizeof(out));
    return out.valid();
}

bool
HaloStore::writtenOp(ThreadId tid, std::uint64_t ctr,
                     WrittenOp &out) const
{
    if (tid >= threads_.size())
        return false;
    const auto it = threads_[tid].written.find(ctr);
    if (it == threads_[tid].written.end())
        return false;
    out = it->second;
    return true;
}

std::size_t
HaloStore::noteLostLines(const std::vector<LineAddr> &lines)
{
    std::size_t records = 0;
    for (const LineAddr line : lines) {
        const Addr addr = static_cast<Addr>(line) << kCacheLineBits;
        const std::uint64_t seg = alloc_.segmentOf(addr);
        if (seg == ~std::uint64_t(0))
            continue;
        lostLines_.insert(line);
        if (addr != alloc_.segmentAddr(seg))
            records++; // a record slot, not the advisory header
    }
    return records;
}

void
HaloStore::recoverScan(pm::PmPool &pool, unsigned jobs)
{
    // The rebuild starts from nothing: the power cut took every DRAM
    // structure. (The oracle journals survive — they belong to the
    // test harness, not the store.)
    for (auto &dir : dirs_)
        dir->clear();
    for (PerThread &pt : threads_) {
        pt.pending.clear();
        pt.recoveredTombs.clear();
        pt.maxRecoveredCounter = 0;
    }

    const std::size_t segs = alloc_.segmentCount();
    ThreadPool tp(jobs);
    const std::vector<ShardRange> shards =
        shardRanges(segs, tp.workerCount() * 4);

    struct ShardScan
    {
        std::vector<std::pair<Addr, HaloRecord>> records;
        std::vector<std::uint64_t> used;
    };
    const std::vector<ShardScan> scans = tp.map(
        shards.size(), [&](std::size_t i) {
            ShardScan out;
            for (std::uint64_t seg = shards[i].begin;
                 seg < shards[i].end; seg++) {
                const ThreadId owner = alloc_.ownerOf(seg);
                bool used = false;
                HaloSegmentHeader hdr;
                pool.applyLoad(alloc_.segmentAddr(seg), &hdr,
                               sizeof(hdr));
                if (hdr.valid(seg))
                    used = true;
                for (std::uint64_t slot = 0;
                     slot < kRecordsPerSegment; slot++) {
                    const Addr addr = alloc_.slotAddr(seg, slot);
                    HaloRecord rec;
                    pool.applyLoad(addr, &rec, sizeof(rec));
                    if (!rec.valid())
                        continue;
                    // A genuine record always sits in its writer's
                    // own range and names a key of that partition.
                    if (HaloRecord::ownerOfSeq(rec.seq) != owner ||
                        partitionOf(rec.key) != owner)
                        continue;
                    used = true;
                    out.records.emplace_back(addr, rec);
                }
                if (used)
                    out.used.push_back(seg);
            }
            return out;
        });

    // Merge in shard order == ascending segment order. Per thread
    // that is ascending sequence order (bump allocation), so a plain
    // replay is last-writer-wins with tombstones honored.
    std::vector<bool> used(segs, false);
    for (const ShardScan &scan : scans) {
        for (const std::uint64_t seg : scan.used)
            used[seg] = true;
        for (const auto &[addr, rec] : scan.records) {
            const ThreadId tid = HaloRecord::ownerOfSeq(rec.seq);
            PerThread &pt = threads_[tid];
            pt.maxRecoveredCounter =
                std::max(pt.maxRecoveredCounter,
                         HaloRecord::counterOfSeq(rec.seq));
            if (rec.tombstone()) {
                dirs_[tid]->erase(rec.key);
                pt.recoveredTombs[rec.key] = rec.seq;
            } else {
                dirs_[tid]->upsert(rec.key, addr);
            }
        }
    }
    alloc_.resetFromScan(used);

    // Seq counters resume strictly above everything ever issued (the
    // in-process counter already dominates the scan's maximum; a cold
    // restart would resume from the scan).
    for (PerThread &pt : threads_) {
        pt.nextCounter =
            std::max(pt.nextCounter, pt.maxRecoveredCounter + 1);
    }

    // Deterministic rebuild fingerprint: sorted entries, then the
    // used map and tombstone high-water marks.
    std::vector<std::pair<std::uint64_t, Addr>> entries;
    forEachIndexed([&](std::uint64_t key, Addr addr) {
        entries.emplace_back(key, addr);
    });
    std::sort(entries.begin(), entries.end());
    std::uint64_t h = 0x48414c4full;
    for (const auto &[key, addr] : entries) {
        HaloRecord rec;
        if (!recordAt(pool, addr, rec))
            continue; // unreachable: the scan just validated it
        h = fold(h, key);
        h = fold(h, addr);
        h = fold(h, rec.seq);
        for (std::size_t i = 0; i < kValWords; i++)
            h = fold(h, rec.vals[i]);
    }
    for (std::size_t seg = 0; seg < used.size(); seg++) {
        if (used[seg])
            h = fold(h, seg);
    }
    for (unsigned t = 0; t < threads_.size(); t++) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> tombs(
            threads_[t].recoveredTombs.begin(),
            threads_[t].recoveredTombs.end());
        std::sort(tombs.begin(), tombs.end());
        for (const auto &[key, seq] : tombs) {
            h = fold(h, key);
            h = fold(h, seq);
        }
    }
    rebuildDigest_ = h;
}

} // namespace whisper::halo

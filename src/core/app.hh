/**
 * @file
 * WHISPER application interface and registry.
 *
 * Each of the ten suite applications implements WhisperApp. The
 * harness (harness.hh) drives the common life cycle:
 *
 *   setup(runtime)            — format pool structures, load data
 *   [traces cleared]          — analysis covers steady state only
 *   run(ctx, tid) x threads   — the measured workload
 *   verify(runtime)           — application-level invariants
 *
 * and, for crash testing:
 *
 *   crash -> recover(runtime) -> verifyRecovered(runtime)
 */

#ifndef WHISPER_CORE_APP_HH
#define WHISPER_CORE_APP_HH

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hh"
#include "core/verify_report.hh"

namespace whisper::core
{

/** Knobs common to every application. */
struct AppConfig
{
    unsigned threads = 4;          //!< worker/client threads
    std::uint64_t opsPerThread = 10000;
    std::uint64_t seed = 42;
    std::size_t poolBytes = 256 << 20;
    bool recordVolatile = false;

    /**
     * Scale every op count by @p f (benches use small smoke runs).
     * Threads scale down with @p f too (never up) and are clamped to
     * the hardware concurrency, so smoke sweeps on small CI machines
     * never oversubscribe the cores they have.
     */
    AppConfig
    scaled(double f) const
    {
        AppConfig c = *this;
        c.opsPerThread =
            std::max<std::uint64_t>(1,
                static_cast<std::uint64_t>(
                    static_cast<double>(opsPerThread) * f));
        const double tf = std::min(f, 1.0);
        unsigned t = static_cast<unsigned>(
            static_cast<double>(threads) * tf + 0.5);
        const unsigned hw = std::thread::hardware_concurrency();
        if (hw > 0)
            t = std::min(t, hw);
        c.threads = std::max(1u, t);
        return c;
    }
};

/**
 * Paper access-layer taxonomy (Table 1 "Access Layer" column), plus
 * the post-paper layers the suite grows to quantify the paper's
 * Consequence 3/8 fixes: MOD (minimally ordered durable
 * datastructures) and Hybrid (DRAM index over PM data segments,
 * recovery by scan — src/halo/).
 */
enum class AccessLayer
{
    Native,
    LibNvml,
    LibMnemosyne,
    Filesystem,
    LibMod,
    Hybrid,
};

const char *accessLayerName(AccessLayer layer);

/**
 * Key-space partition convention shared by the workload driver
 * (src/workload/) and the per-app workload adapters.
 *
 * Determinism contract: at a fixed seed and thread count, a workload
 * run must produce bit-identical latency digests regardless of how
 * the OS interleaves the threads. Shared structures cannot give that
 * (chain lengths and allocator state would depend on insert order),
 * so the driver partitions the key space and every adapter backs each
 * thread's slice with *private* structure instances over disjoint
 * pool regions. This mirrors YCSB's one-client-per-thread model: a
 * thread only ever touches keys it owns.
 *
 *  - loaded keys:   thread t owns [lo(t), lo(t) + perThread())
 *  - inserted keys: the j-th key thread t inserts during the run is
 *    insertKey(t, j), disjoint from every loaded key and from every
 *    other thread's inserts.
 *
 * localIndex() folds any owned key (loaded or inserted) back to a
 * dense per-thread index in [0, perThread() + insertsPerThread), which
 * adapters use to address fixed-size per-thread slots.
 */
struct WorkloadKeymap
{
    std::uint64_t keys = 0;        //!< loaded keys, total
    unsigned threads = 1;          //!< worker threads (= partitions)
    std::uint64_t insertsPerThread = 0; //!< upper bound on run inserts

    std::uint64_t perThread() const { return keys / threads; }
    std::uint64_t lo(ThreadId tid) const
    {
        return static_cast<std::uint64_t>(tid) * perThread();
    }
    /** Globally unique id of thread @p tid's @p j-th inserted key. */
    std::uint64_t insertKey(ThreadId tid, std::uint64_t j) const
    {
        return keys + static_cast<std::uint64_t>(tid) *
                          insertsPerThread + j;
    }
    /** Dense per-thread slot index of an owned key. */
    std::uint64_t localIndex(ThreadId tid, std::uint64_t key) const
    {
        if (key < keys)
            return key - lo(tid);
        return perThread() +
               (key - keys -
                static_cast<std::uint64_t>(tid) * insertsPerThread);
    }
    /** Max slots any one thread can ever address. */
    std::uint64_t slotsPerThread() const
    {
        return perThread() + insertsPerThread;
    }
    /**
     * The @p j-th key of a scan starting at @p start_key: consecutive
     * key ids wrapping inside the thread's *loaded* slice (inserted
     * keys fold back onto it), so every adapter iterates ranges the
     * same way and scans never leave the partition.
     */
    std::uint64_t scanKey(ThreadId tid, std::uint64_t start_key,
                          std::uint64_t j) const
    {
        return lo(tid) +
               (localIndex(tid, start_key) + j) % perThread();
    }
};

/**
 * One WHISPER application.
 */
class WhisperApp
{
  public:
    explicit WhisperApp(AppConfig config) : config_(config) {}
    virtual ~WhisperApp() = default;

    virtual std::string name() const = 0;
    virtual AccessLayer layer() const = 0;

    /** Format persistent structures and load initial data. */
    virtual void setup(Runtime &rt) = 0;

    /** Per-thread measured workload body. */
    virtual void run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) = 0;

    /** Invariants after a clean run. */
    virtual VerifyReport verify(Runtime &rt) = 0;

    /** Re-mount and recover after a crash. */
    virtual void recover(Runtime &rt) = 0;

    /**
     * Media-fault scrub, run after a crash and BEFORE recover(): every
     * poisoned line is first zero-filled and un-poisoned at the device
     * (so no later read can take a PmMediaError), then the layer's
     * scrubLayer() hook repairs what its redundancy allows — rewrite a
     * CRC-protected root from attach parameters, drop a torn log tail,
     * truncate a chain at the first corrupt node — and degrades the
     * rest. Lines no layer claims are reported as "pm-line-lost"
     * (content irrecoverably gone, loss named). Returns the scrub
     * report; Degraded entries license matching verifyRecovered()
     * losses, Violations mean the scrub itself found corruption it
     * cannot even name.
     */
    VerifyReport
    scrubRecovered(Runtime &rt)
    {
        VerifyReport rep = report();
        std::vector<LineAddr> lines = rt.pool().poisonedLines();
        for (const LineAddr line : lines)
            rt.pool().scrubLine(line);
        if (!lines.empty())
            scrubLayer(rt, lines, rep);
        if (!lines.empty()) {
            rep.degrade("pm-line-lost",
                        std::to_string(lines.size()) +
                            " poisoned line(s) outside any scrubbed "
                            "structure; content lost",
                        lines);
        }
        return rep;
    }

    /**
     * Invariants that must hold after crash + recover: structural
     * consistency, no torn committed data. (Uncommitted work may be
     * absent — that is the contract.)
     */
    virtual VerifyReport verifyRecovered(Runtime &rt) = 0;

    /**
     * Access-layer recovery invariants, checked by the crash fuzzer
     * after recover() in addition to verifyRecovered(): redo logs
     * fully replayed and retired (Mnemosyne), undo logs rolled back
     * and descriptors NONE (NVML), journal FREE and fsck-clean (PMFS),
     * descriptor/status protocols settled (native), garbage lanes
     * quiescent and reachable nodes allocated (MOD). Default: no
     * layer-specific state to check.
     */
    virtual VerifyReport
    checkRecoveryInvariants(Runtime &rt)
    {
        (void)rt;
        return report();
    }

    /** @{ \name Generated-workload surface (src/workload/ driver)
     *
     * Applications that opt in (supportsWorkload()) expose per-op
     * get/put/rmw/scan entry points so the YCSB-style driver can run
     * generated key-value mixes against them. The driver calls
     * workloadSetup() once (single-threaded) with the key partition
     * plan; the adapter builds *per-thread* structure instances over
     * disjoint pool regions and preloads each thread's slice (see
     * WorkloadKeymap for why sharing would break determinism). The
     * per-op calls then run concurrently, thread @p tid only ever
     * receiving keys it owns. workloadThreadDone() is the per-thread
     * epilogue (e.g. MOD's threadExit); workloadCheck() validates
     * structural invariants after the run.
     */

    /** Whether this app implements the per-op workload surface. */
    virtual bool supportsWorkload() const { return false; }

    /** Build per-thread structures and preload every partition. */
    virtual void workloadSetup(Runtime &rt, const WorkloadKeymap &map);

    /** Point lookup; returns whether @p key was found. */
    virtual bool workloadGet(pm::PmContext &ctx, ThreadId tid,
                             std::uint64_t key);

    /** Insert-or-update @p key := @p value (durably). */
    virtual void workloadPut(pm::PmContext &ctx, ThreadId tid,
                             std::uint64_t key, std::uint64_t value);

    /** Read-modify-write: value += @p delta. Returns found. */
    virtual bool workloadRmw(pm::PmContext &ctx, ThreadId tid,
                             std::uint64_t key, std::uint64_t delta);

    /**
     * Range scan of up to @p len consecutive key ids starting at
     * @p key (wrapping inside the thread's partition); returns the
     * number of keys found. Hash-layer apps emulate it as YCSB does
     * on non-ordered stores: @p len point lookups.
     */
    virtual std::uint64_t workloadScan(pm::PmContext &ctx, ThreadId tid,
                                       std::uint64_t key,
                                       std::uint64_t len);

    /** Per-thread epilogue after its last generated op. */
    virtual void
    workloadThreadDone(pm::PmContext &ctx, ThreadId tid)
    {
        (void)ctx;
        (void)tid;
    }

    /** Structural invariants after a generated-workload run. */
    virtual VerifyReport
    workloadCheck(Runtime &rt)
    {
        (void)rt;
        return report();
    }

    /** @} */
    /** @{ \name Durable-linearizability surface (src/lincheck/)
     *
     * Apps that additionally opt in (supportsLincheck()) give the
     * history checker two things the generated-workload surface does
     * not: a pure state probe (value read with no padding work, no
     * durability cadence — usable before the run and after recovery)
     * and, where the structure has deletion, a tombstone op. The
     * crash fuzzer's lincheck dimension and the workload driver's
     * recording mode only accept apps with this surface.
     */

    /** Whether this app supports history recording + checking. */
    virtual bool supportsLincheck() const { return false; }

    /**
     * Pure point read of @p key into @p value (untouched when
     * absent); returns found. Must issue no gated PM ops.
     */
    virtual bool workloadProbe(pm::PmContext &ctx, ThreadId tid,
                               std::uint64_t key, std::uint64_t &value);

    /** Whether workloadRemove() is implemented. */
    virtual bool workloadHasRemove() const { return false; }

    /** Durable delete of @p key; returns whether it was present. */
    virtual bool workloadRemove(pm::PmContext &ctx, ThreadId tid,
                                std::uint64_t key);

    /** @} */

    const AppConfig &config() const { return config_; }

  protected:
    /**
     * Layer hook under scrubRecovered(): repair or degrade the
     * poisoned @p lines (already zero-filled and readable) and erase
     * every line handled from @p lines. Default: claim nothing.
     */
    virtual void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &report)
    {
        (void)rt;
        (void)lines;
        (void)report;
    }

    /** Empty report pre-stamped with this app's name and layer. */
    VerifyReport
    report() const
    {
        return VerifyReport(name(), accessLayerName(layer()));
    }

    AppConfig config_;
};

/** Factory signature for the registry. */
using AppFactory =
    std::function<std::unique_ptr<WhisperApp>(const AppConfig &)>;

/** Register an application under @p name (called once per app). */
void registerApp(const std::string &name, AppFactory factory);

/** Instantiate a registered application; fatal() on unknown name. */
std::unique_ptr<WhisperApp> createApp(const std::string &name,
                                      const AppConfig &config);

/** All registered names, sorted. */
std::vector<std::string> registeredApps();

/** Force-register the ten suite applications (idempotent). */
void registerSuiteApps();

} // namespace whisper::core

#endif // WHISPER_CORE_APP_HH

/**
 * @file
 * Structured verification results.
 *
 * Every WhisperApp verification hook — verify(), verifyRecovered()
 * and checkRecoveryInvariants() — returns a VerifyReport: an ok flag
 * plus a list of named invariant violations. The harness, the crash
 * fuzzer and whisper_cli all render the same named invariants, so a
 * fuzzer reproducer log and a CLI verification failure read alike.
 *
 * Media faults add a second severity: a *Degraded* entry records data
 * the scrub pass could not repair but did contain (a dropped torn log
 * record, an emptied hashmap bucket). Degraded entries carry the
 * poisoned line set, do not fail ok(), and license the follow-up
 * verifyRecovered() violations they explain — recovery never panics
 * on media loss, it names it.
 */

#ifndef WHISPER_CORE_VERIFY_REPORT_HH
#define WHISPER_CORE_VERIFY_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace whisper::core
{

/** How bad one report entry is. */
enum class Severity
{
    Violation, //!< invariant broken: recovery is wrong
    Degraded,  //!< data lost to media faults, loss contained and named
};

/** One violated invariant, attributed to an app and access layer. */
struct VerifyViolation
{
    std::string app;       //!< application name ("mod-hashmap", ...)
    std::string layer;     //!< access-layer name ("lib-mod", ...)
    std::string invariant; //!< short invariant name ("gc-quiescent")
    std::string detail;    //!< free-form diagnosis, may be empty
    Severity severity = Severity::Violation;
    /** PM lines implicated (poisoned line set for Degraded entries). */
    std::vector<LineAddr> lines;
};

/**
 * Result of one verification pass. Default-constructed reports are
 * ok; failures accumulate via fail()/check(). The app/layer seeds
 * (set by WhisperApp::report()) are stamped onto every violation.
 */
class VerifyReport
{
  public:
    VerifyReport() = default;
    VerifyReport(std::string app, std::string layer)
        : app_(std::move(app)), layer_(std::move(layer))
    {
    }

    /** True when no entry has Violation severity (Degraded is ok). */
    bool
    ok() const
    {
        for (const VerifyViolation &v : violations_)
            if (v.severity == Severity::Violation)
                return false;
        return true;
    }

    /** True when any entry has Degraded severity. */
    bool
    degraded() const
    {
        for (const VerifyViolation &v : violations_)
            if (v.severity == Severity::Degraded)
                return true;
        return false;
    }

    const std::vector<VerifyViolation> &
    violations() const
    {
        return violations_;
    }

    const std::string &app() const { return app_; }
    const std::string &layer() const { return layer_; }

    /** Record a violation of @p invariant. */
    void
    fail(std::string invariant, std::string detail = "",
         std::vector<LineAddr> lines = {})
    {
        violations_.push_back(VerifyViolation{
            app_, layer_, std::move(invariant), std::move(detail),
            Severity::Violation, std::move(lines)});
    }

    /**
     * Record contained media loss under @p invariant: the scrub could
     * not repair @p lines but bounded the damage. Does not fail ok().
     */
    void
    degrade(std::string invariant, std::string detail,
            std::vector<LineAddr> lines = {})
    {
        violations_.push_back(VerifyViolation{
            app_, layer_, std::move(invariant), std::move(detail),
            Severity::Degraded, std::move(lines)});
    }

    /** fail() unless @p ok_cond holds; returns @p ok_cond. */
    bool
    check(bool ok_cond, const std::string &invariant,
          const std::string &detail = "")
    {
        if (!ok_cond)
            fail(invariant, detail);
        return ok_cond;
    }

    /** Absorb another report's violations (e.g. sub-checks). */
    void
    merge(const VerifyReport &other)
    {
        violations_.insert(violations_.end(),
                           other.violations_.begin(),
                           other.violations_.end());
    }

    /**
     * One-line summary of the most severe entry — "invariant: detail"
     * — the crash fuzzer's deterministic `why` string. Violations win
     * over Degraded entries; empty when the report has no entries.
     */
    std::string
    brief() const
    {
        const VerifyViolation *pick = nullptr;
        for (const VerifyViolation &v : violations_) {
            if (v.severity == Severity::Violation) {
                pick = &v;
                break;
            }
            if (!pick)
                pick = &v;
        }
        if (!pick)
            return "";
        std::string out = pick->severity == Severity::Degraded
                              ? "degraded " + pick->invariant
                              : pick->invariant;
        if (!pick->detail.empty())
            out += ": " + pick->detail;
        return out;
    }

    /** Multi-line rendering of every violation. Empty when ok. */
    std::string
    describe() const
    {
        std::string out;
        for (const VerifyViolation &v : violations_) {
            if (!out.empty())
                out += "\n";
            out += v.app + "/" + v.layer + ": ";
            if (v.severity == Severity::Degraded)
                out += "degraded ";
            out += v.invariant;
            if (!v.detail.empty())
                out += " (" + v.detail + ")";
        }
        return out;
    }

  private:
    std::string app_;
    std::string layer_;
    std::vector<VerifyViolation> violations_;
};

/**
 * Render @p report as one line of JSON:
 * {"app":...,"layer":...,"ok":...,"degraded":...,"violations":[
 *   {"invariant":...,"detail":...,"severity":"violation"|"degraded",
 *    "lines":[...]},...]}
 * Stable field order; strings escaped per RFC 8259.
 */
std::string toJson(const VerifyReport &report);

/**
 * Parse a line produced by toJson() back into a report (round-trip
 * for tooling that consumes `crashfuzz --json` streams). Returns
 * false (leaving @p out default) on malformed input.
 */
bool fromJson(const std::string &text, VerifyReport &out);

} // namespace whisper::core

#endif // WHISPER_CORE_VERIFY_REPORT_HH

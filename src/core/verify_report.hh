/**
 * @file
 * Structured verification results.
 *
 * Every WhisperApp verification hook — verify(), verifyRecovered()
 * and checkRecoveryInvariants() — returns a VerifyReport: an ok flag
 * plus a list of named invariant violations. The harness, the crash
 * fuzzer and whisper_cli all render the same named invariants, so a
 * fuzzer reproducer log and a CLI verification failure read alike.
 */

#ifndef WHISPER_CORE_VERIFY_REPORT_HH
#define WHISPER_CORE_VERIFY_REPORT_HH

#include <string>
#include <utility>
#include <vector>

namespace whisper::core
{

/** One violated invariant, attributed to an app and access layer. */
struct VerifyViolation
{
    std::string app;       //!< application name ("mod-hashmap", ...)
    std::string layer;     //!< access-layer name ("lib-mod", ...)
    std::string invariant; //!< short invariant name ("gc-quiescent")
    std::string detail;    //!< free-form diagnosis, may be empty
};

/**
 * Result of one verification pass. Default-constructed reports are
 * ok; failures accumulate via fail()/check(). The app/layer seeds
 * (set by WhisperApp::report()) are stamped onto every violation.
 */
class VerifyReport
{
  public:
    VerifyReport() = default;
    VerifyReport(std::string app, std::string layer)
        : app_(std::move(app)), layer_(std::move(layer))
    {
    }

    bool ok() const { return violations_.empty(); }

    const std::vector<VerifyViolation> &
    violations() const
    {
        return violations_;
    }

    /** Record a violation of @p invariant. */
    void
    fail(std::string invariant, std::string detail = "")
    {
        violations_.push_back(VerifyViolation{
            app_, layer_, std::move(invariant), std::move(detail)});
    }

    /** fail() unless @p ok_cond holds; returns @p ok_cond. */
    bool
    check(bool ok_cond, const std::string &invariant,
          const std::string &detail = "")
    {
        if (!ok_cond)
            fail(invariant, detail);
        return ok_cond;
    }

    /** Absorb another report's violations (e.g. sub-checks). */
    void
    merge(const VerifyReport &other)
    {
        violations_.insert(violations_.end(),
                           other.violations_.begin(),
                           other.violations_.end());
    }

    /**
     * One-line summary of the first violation — "invariant: detail"
     * — the crash fuzzer's deterministic `why` string. Empty when ok.
     */
    std::string
    brief() const
    {
        if (violations_.empty())
            return "";
        const VerifyViolation &v = violations_.front();
        return v.detail.empty() ? v.invariant
                                : v.invariant + ": " + v.detail;
    }

    /** Multi-line rendering of every violation. Empty when ok. */
    std::string
    describe() const
    {
        std::string out;
        for (const VerifyViolation &v : violations_) {
            if (!out.empty())
                out += "\n";
            out += v.app + "/" + v.layer + ": " + v.invariant;
            if (!v.detail.empty())
                out += " (" + v.detail + ")";
        }
        return out;
    }

  private:
    std::string app_;
    std::string layer_;
    std::vector<VerifyViolation> violations_;
};

} // namespace whisper::core

#endif // WHISPER_CORE_VERIFY_REPORT_HH

#include "core/runtime.hh"

#include <thread>

#include "common/logging.hh"

namespace whisper::core
{

Runtime::Runtime(std::size_t pool_bytes, unsigned max_threads,
                 bool record_volatile)
    : pool_(std::make_unique<pm::PmPool>(pool_bytes)),
      traces_(record_volatile)
{
    panic_if(max_threads == 0, "runtime needs at least one thread");
    for (ThreadId tid = 0; tid < max_threads; tid++) {
        trace::TraceBuffer *buf = traces_.createBuffer(tid);
        contexts_.push_back(std::make_unique<pm::PmContext>(
            *pool_, clock_, tid, buf));
    }
}

pm::PmContext &
Runtime::ctx(ThreadId tid)
{
    panic_if(tid >= contexts_.size(), "tid %u beyond runtime threads",
             tid);
    return *contexts_[tid];
}

void
Runtime::runThreads(unsigned n,
                    const std::function<void(pm::PmContext &,
                                             ThreadId)> &fn)
{
    panic_if(n == 0 || n > contexts_.size(),
             "runThreads(%u) with %zu contexts", n, contexts_.size());
    std::vector<std::thread> threads;
    for (ThreadId tid = 1; tid < n; tid++) {
        threads.emplace_back(
            [this, &fn, tid] { fn(*contexts_[tid], tid); });
    }
    fn(*contexts_[0], 0);
    for (auto &t : threads)
        t.join();
}

void
Runtime::crash(std::uint64_t seed, double survival)
{
    Rng rng(seed);
    pool_->crash(rng, survival);
    for (auto &ctx : contexts_)
        ctx->resetPendingState();
}

void
Runtime::crashHard()
{
    pool_->crashHard();
    for (auto &ctx : contexts_)
        ctx->resetPendingState();
}

void
Runtime::crashWithSurvivors(const std::vector<LineAddr> &survivors)
{
    pool_->crashWithSurvivors(survivors);
    for (auto &ctx : contexts_)
        ctx->resetPendingState();
}

void
Runtime::crashWithFaults(const std::vector<LineAddr> &survivors,
                         const pm::FaultResolution &faults)
{
    pool_->crashWithFaults(survivors, faults);
    for (auto &ctx : contexts_)
        ctx->resetPendingState();
}

pm::CrashPlan &
Runtime::installCrashPlan(unsigned gate_threads,
                          std::uint64_t schedule_seed)
{
    crashPlan_ = std::make_unique<pm::CrashPlan>();
    if (gate_threads > 1) {
        panic_if(gate_threads > contexts_.size(),
                 "crash plan gates %u threads but runtime has %zu",
                 gate_threads, contexts_.size());
        schedGate_ =
            std::make_unique<pm::SchedGate>(gate_threads, schedule_seed);
        crashPlan_->gate = schedGate_.get();
    } else {
        schedGate_.reset();
    }
    for (auto &ctx : contexts_)
        ctx->setCrashPlan(crashPlan_.get());
    return *crashPlan_;
}

void
Runtime::armCrashPoint(std::uint64_t op_index)
{
    pm::CrashPlan &plan =
        crashPlan_ ? *crashPlan_ : installCrashPlan();
    plan.opsSeen.store(0, std::memory_order_relaxed);
    plan.fired.store(false, std::memory_order_relaxed);
    plan.crashAt = op_index;
    if (plan.gate)
        plan.gate->reset();
}

bool
Runtime::crashPointFired() const
{
    return crashPlan_ &&
           crashPlan_->fired.load(std::memory_order_relaxed);
}

std::uint64_t
Runtime::pmOpsSeen() const
{
    return crashPlan_
               ? crashPlan_->opsSeen.load(std::memory_order_relaxed)
               : 0;
}

} // namespace whisper::core

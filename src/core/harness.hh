/**
 * @file
 * Application life-cycle harness used by tests and every bench.
 */

#ifndef WHISPER_CORE_HARNESS_HH
#define WHISPER_CORE_HARNESS_HH

#include <memory>
#include <string>

#include "analysis/pipeline.hh"
#include "core/app.hh"

namespace whisper::core
{

/** Outcome of one harnessed run. */
struct RunResult
{
    std::string appName;
    AccessLayer layer{};
    bool verified = false;   //!< report.ok(), kept for convenience
    VerifyReport report;     //!< structured verify() outcome
    Tick firstTick = 0;
    Tick lastTick = 0;
    std::uint64_t totalOps = 0;

    /** Keeps the world alive so callers can analyze the traces. */
    std::shared_ptr<Runtime> runtime;
    std::unique_ptr<WhisperApp> app;
};

/**
 * Run one application: setup, clear traces, run threads, verify.
 * The returned RunResult owns the runtime (and thus the traces).
 */
RunResult runApp(const std::string &name, const AppConfig &config);

/** Parameters of one injected crash + recovery cycle. */
struct CrashOptions
{
    std::uint64_t seed = 0;     //!< survivor-set RNG seed
    double survival = 0.5;      //!< per-dirty-line survival chance
    unsigned threads = 1;       //!< racing threads (crash fuzzer)
    std::uint64_t schedule = 0; //!< deterministic PM-op schedule seed
};

/**
 * Crash-and-recover cycle on an already-run app: injects a crash per
 * @p opts (seed + survival), re-mounts via app.recover() and returns
 * app.verifyRecovered(). The threads/schedule fields describe
 * multi-threaded crash schedules and are consumed by the crash
 * fuzzer, which arms its own crash plans before running.
 */
VerifyReport crashAndVerify(RunResult &result,
                            const CrashOptions &opts);

/**
 * Run the full §5 analysis pipeline over a finished run's traces.
 * @p jobs fans the per-thread and per-line shards across cores
 * (1 = sequential, 0 = hardware concurrency); the result is
 * bit-identical at any job count.
 */
analysis::AnalysisResult analyzeRun(const RunResult &result,
                                    unsigned jobs = 1);

} // namespace whisper::core

#endif // WHISPER_CORE_HARNESS_HH

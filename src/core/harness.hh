/**
 * @file
 * Application life-cycle harness used by tests and every bench.
 */

#ifndef WHISPER_CORE_HARNESS_HH
#define WHISPER_CORE_HARNESS_HH

#include <memory>
#include <string>

#include "analysis/pipeline.hh"
#include "core/app.hh"

namespace whisper::core
{

/** Outcome of one harnessed run. */
struct RunResult
{
    std::string appName;
    AccessLayer layer{};
    bool verified = false;
    Tick firstTick = 0;
    Tick lastTick = 0;
    std::uint64_t totalOps = 0;

    /** Keeps the world alive so callers can analyze the traces. */
    std::shared_ptr<Runtime> runtime;
    std::unique_ptr<WhisperApp> app;
};

/**
 * Run one application: setup, clear traces, run threads, verify.
 * The returned RunResult owns the runtime (and thus the traces).
 */
RunResult runApp(const std::string &name, const AppConfig &config);

/**
 * Crash-and-recover cycle on an already-run app: injects a crash with
 * @p seed and @p survival, re-mounts via app.recover() and returns
 * app.verifyRecovered(). Used by the property tests.
 */
bool crashAndVerify(RunResult &result, std::uint64_t seed,
                    double survival = 0.5);

/**
 * Run the full §5 analysis pipeline over a finished run's traces.
 * @p jobs fans the per-thread and per-line shards across cores
 * (1 = sequential, 0 = hardware concurrency); the result is
 * bit-identical at any job count.
 */
analysis::AnalysisResult analyzeRun(const RunResult &result,
                                    unsigned jobs = 1);

} // namespace whisper::core

#endif // WHISPER_CORE_HARNESS_HH

/**
 * @file
 * The HOPS programming model (the paper's Figure 1e).
 *
 * HOPS applications never issue clwb: every PM store is tracked by
 * hardware persist buffers, `ofence` ends an epoch (ordering only —
 * a cheap, purely local timestamp bump), and `dfence` additionally
 * stalls until everything this thread buffered is durable.
 *
 * HopsContext gives that model on top of the software PmPool so that
 * applications written for HOPS run with correct crash semantics:
 * stores are tracked per thread, `ofence` emits an ordering fence
 * event (no flush traffic), and `dfence` drains the tracked ranges
 * into the durable image. Traces recorded through this context contain
 * stores and fences but no PmFlush events — exactly the instruction
 * stream a HOPS machine would see; the timing simulator's x86 models
 * synthesize the clwbs such code would otherwise have needed.
 */

#ifndef WHISPER_CORE_HOPS_HH
#define WHISPER_CORE_HOPS_HH

#include <vector>

#include "pm/pm_context.hh"

namespace whisper::core
{

/**
 * Per-thread HOPS front end: a software stand-in for the persist
 * buffer that tracks which lines the thread has stored since its last
 * durability point.
 */
class HopsContext
{
  public:
    explicit HopsContext(pm::PmContext &ctx) : ctx_(ctx) {}

    pm::PmContext &raw() { return ctx_; }

    /** PM store; tracked, not flushed. */
    void
    store(Addr off, const void *src, std::size_t n,
          pm::DataClass cls = pm::DataClass::User)
    {
        ctx_.store(off, src, n, cls);
        tracked_.emplace_back(off, static_cast<std::uint32_t>(n));
    }

    template <typename T>
    void
    set(T &field_in_pool, const T &value,
        pm::DataClass cls = pm::DataClass::User)
    {
        store(ctx_.pool().offsetOf(&field_in_pool), &value, sizeof(T),
              cls);
    }

    template <typename T>
    T
    get(const T &field_in_pool)
    {
        return ctx_.loadField(field_in_pool);
    }

    /**
     * Ordering fence: ends the current epoch. On HOPS hardware this
     * is a thread-local timestamp increment; no data moves.
     */
    void
    ofence()
    {
        ctx_.fence(pm::FenceKind::Ordering);
    }

    /**
     * Durability fence: everything stored by this thread since the
     * previous dfence is durable when this returns.
     */
    void
    dfence()
    {
        for (const auto &[off, n] : tracked_)
            ctx_.pool().persistRange(off, n);
        tracked_.clear();
        ctx_.fence(pm::FenceKind::Durability);
    }

    /** Outstanding (not yet durable) tracked ranges — test helper. */
    std::size_t pendingRanges() const { return tracked_.size(); }

  private:
    pm::PmContext &ctx_;
    std::vector<std::pair<Addr, std::uint32_t>> tracked_;
};

} // namespace whisper::core

#endif // WHISPER_CORE_HOPS_HH

#include "core/app.hh"

#include <algorithm>

#include "common/logging.hh"

namespace whisper::core
{

const char *
accessLayerName(AccessLayer layer)
{
    switch (layer) {
      case AccessLayer::Native:       return "Native";
      case AccessLayer::LibNvml:      return "Library/NVML";
      case AccessLayer::LibMnemosyne: return "Library/Mnemosyne";
      case AccessLayer::Filesystem:   return "FS/PMFS";
      case AccessLayer::LibMod:       return "Library/MOD";
    }
    return "?";
}

namespace
{
std::map<std::string, AppFactory> &
registry()
{
    static std::map<std::string, AppFactory> apps;
    return apps;
}
} // namespace

void
registerApp(const std::string &name, AppFactory factory)
{
    registry()[name] = std::move(factory);
}

std::unique_ptr<WhisperApp>
createApp(const std::string &name, const AppConfig &config)
{
    registerSuiteApps();
    auto it = registry().find(name);
    if (it == registry().end())
        fatal("unknown WHISPER application '%s'", name.c_str());
    return it->second(config);
}

std::vector<std::string>
registeredApps()
{
    registerSuiteApps();
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

} // namespace whisper::core

#include "core/app.hh"

#include <algorithm>

#include "common/logging.hh"

namespace whisper::core
{

const char *
accessLayerName(AccessLayer layer)
{
    switch (layer) {
      case AccessLayer::Native:       return "Native";
      case AccessLayer::LibNvml:      return "Library/NVML";
      case AccessLayer::LibMnemosyne: return "Library/Mnemosyne";
      case AccessLayer::Filesystem:   return "FS/PMFS";
      case AccessLayer::LibMod:       return "Library/MOD";
      case AccessLayer::Hybrid:       return "Hybrid/Halo";
    }
    return "?";
}

// Default workload surface: opting in requires overriding all five
// entry points, so reaching one of these bodies is a harness bug
// (the driver refuses apps whose supportsWorkload() is false).
void
WhisperApp::workloadSetup(Runtime &rt, const WorkloadKeymap &map)
{
    (void)rt;
    (void)map;
    fatal("app '%s' does not implement the workload surface",
          name().c_str());
}

bool
WhisperApp::workloadGet(pm::PmContext &ctx, ThreadId tid,
                        std::uint64_t key)
{
    (void)ctx;
    (void)tid;
    (void)key;
    fatal("app '%s' does not implement workloadGet", name().c_str());
}

void
WhisperApp::workloadPut(pm::PmContext &ctx, ThreadId tid,
                        std::uint64_t key, std::uint64_t value)
{
    (void)ctx;
    (void)tid;
    (void)key;
    (void)value;
    fatal("app '%s' does not implement workloadPut", name().c_str());
}

bool
WhisperApp::workloadRmw(pm::PmContext &ctx, ThreadId tid,
                        std::uint64_t key, std::uint64_t delta)
{
    (void)ctx;
    (void)tid;
    (void)key;
    (void)delta;
    fatal("app '%s' does not implement workloadRmw", name().c_str());
}

std::uint64_t
WhisperApp::workloadScan(pm::PmContext &ctx, ThreadId tid,
                         std::uint64_t key, std::uint64_t len)
{
    (void)ctx;
    (void)tid;
    (void)key;
    (void)len;
    fatal("app '%s' does not implement workloadScan", name().c_str());
}

bool
WhisperApp::workloadProbe(pm::PmContext &ctx, ThreadId tid,
                          std::uint64_t key, std::uint64_t &value)
{
    (void)ctx;
    (void)tid;
    (void)key;
    (void)value;
    fatal("app '%s' does not implement workloadProbe", name().c_str());
}

bool
WhisperApp::workloadRemove(pm::PmContext &ctx, ThreadId tid,
                           std::uint64_t key)
{
    (void)ctx;
    (void)tid;
    (void)key;
    fatal("app '%s' does not implement workloadRemove", name().c_str());
}

namespace
{
std::map<std::string, AppFactory> &
registry()
{
    static std::map<std::string, AppFactory> apps;
    return apps;
}
} // namespace

void
registerApp(const std::string &name, AppFactory factory)
{
    registry()[name] = std::move(factory);
}

std::unique_ptr<WhisperApp>
createApp(const std::string &name, const AppConfig &config)
{
    registerSuiteApps();
    auto it = registry().find(name);
    if (it == registry().end())
        fatal("unknown WHISPER application '%s'", name.c_str());
    return it->second(config);
}

std::vector<std::string>
registeredApps()
{
    registerSuiteApps();
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

} // namespace whisper::core

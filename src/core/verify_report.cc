#include "core/verify_report.hh"

#include <cctype>
#include <cstdint>

namespace whisper::core
{

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Minimal recursive-descent parser over exactly what toJson emits. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    bool
    literal(const char *lit)
    {
        skipWs();
        const std::size_t n = std::char_traits<char>::length(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        pos_++;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                return false;
            const char esc = s_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    return false;
                unsigned v = 0;
                for (int i = 0; i < 4; i++) {
                    const char h = s_[pos_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        v |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        v |= h - 'A' + 10;
                    else
                        return false;
                }
                if (v > 0x7f)
                    return false; // toJson only escapes control chars
                out += static_cast<char>(v);
                break;
            }
            default:
                return false;
            }
        }
        if (pos_ >= s_.size())
            return false;
        pos_++; // closing quote
        return true;
    }

    bool
    number(std::uint64_t &out)
    {
        skipWs();
        if (pos_ >= s_.size() || !std::isdigit(
                static_cast<unsigned char>(s_[pos_])))
            return false;
        out = 0;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            out = out * 10 + (s_[pos_++] - '0');
        return true;
    }

    bool
    boolean(bool &out)
    {
        if (literal("true")) {
            out = true;
            return true;
        }
        if (literal("false")) {
            out = false;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos_ < s_.size() && s_[pos_] == c;
    }

    bool
    done()
    {
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            pos_++;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
toJson(const VerifyReport &report)
{
    std::string out = "{\"app\":";
    appendEscaped(out, report.app());
    out += ",\"layer\":";
    appendEscaped(out, report.layer());
    out += ",\"ok\":";
    out += report.ok() ? "true" : "false";
    out += ",\"degraded\":";
    out += report.degraded() ? "true" : "false";
    out += ",\"violations\":[";
    bool first = true;
    for (const VerifyViolation &v : report.violations()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"app\":";
        appendEscaped(out, v.app);
        out += ",\"layer\":";
        appendEscaped(out, v.layer);
        out += ",\"invariant\":";
        appendEscaped(out, v.invariant);
        out += ",\"detail\":";
        appendEscaped(out, v.detail);
        out += ",\"severity\":";
        out += v.severity == Severity::Degraded ? "\"degraded\""
                                                : "\"violation\"";
        out += ",\"lines\":[";
        bool lfirst = true;
        for (const LineAddr line : v.lines) {
            if (!lfirst)
                out += ',';
            lfirst = false;
            out += std::to_string(line);
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

bool
fromJson(const std::string &text, VerifyReport &out)
{
    Parser p(text);
    std::string app, layer;
    bool ok_flag = false, degraded_flag = false;
    if (!p.literal("{") || !p.literal("\"app\"") || !p.literal(":") ||
        !p.string(app) || !p.literal(",") || !p.literal("\"layer\"") ||
        !p.literal(":") || !p.string(layer) || !p.literal(",") ||
        !p.literal("\"ok\"") || !p.literal(":") ||
        !p.boolean(ok_flag) || !p.literal(",") ||
        !p.literal("\"degraded\"") || !p.literal(":") ||
        !p.boolean(degraded_flag) || !p.literal(",") ||
        !p.literal("\"violations\"") || !p.literal(":") ||
        !p.literal("["))
        return false;

    VerifyReport parsed(app, layer);
    if (!p.peek(']')) {
        for (;;) {
            VerifyViolation v;
            std::string severity;
            if (!p.literal("{") || !p.literal("\"app\"") ||
                !p.literal(":") || !p.string(v.app) ||
                !p.literal(",") || !p.literal("\"layer\"") ||
                !p.literal(":") || !p.string(v.layer) ||
                !p.literal(",") || !p.literal("\"invariant\"") ||
                !p.literal(":") || !p.string(v.invariant) ||
                !p.literal(",") || !p.literal("\"detail\"") ||
                !p.literal(":") || !p.string(v.detail) ||
                !p.literal(",") || !p.literal("\"severity\"") ||
                !p.literal(":") || !p.string(severity) ||
                !p.literal(",") || !p.literal("\"lines\"") ||
                !p.literal(":") || !p.literal("["))
                return false;
            if (severity == "degraded")
                v.severity = Severity::Degraded;
            else if (severity == "violation")
                v.severity = Severity::Violation;
            else
                return false;
            if (!p.peek(']')) {
                for (;;) {
                    std::uint64_t line = 0;
                    if (!p.number(line))
                        return false;
                    v.lines.push_back(line);
                    if (p.literal(","))
                        continue;
                    break;
                }
            }
            if (!p.literal("]") || !p.literal("}"))
                return false;
            // Re-inject with the violation's own stamping (merge()d
            // entries keep foreign app/layer through the round-trip).
            VerifyReport one(v.app, v.layer);
            if (v.severity == Severity::Degraded)
                one.degrade(v.invariant, v.detail, v.lines);
            else
                one.fail(v.invariant, v.detail, v.lines);
            parsed.merge(one);
            if (p.literal(","))
                continue;
            break;
        }
    }
    if (!p.literal("]") || !p.literal("}") || !p.done())
        return false;
    // Consistency: the flags must match the reconstructed entries.
    if (parsed.ok() != ok_flag || parsed.degraded() != degraded_flag)
        return false;
    out = std::move(parsed);
    return true;
}

} // namespace whisper::core

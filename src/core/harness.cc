#include "core/harness.hh"

#include "common/logging.hh"

namespace whisper::core
{

RunResult
runApp(const std::string &name, const AppConfig &config)
{
    RunResult result;
    result.appName = name;
    result.runtime = std::make_shared<Runtime>(
        config.poolBytes, config.threads, config.recordVolatile);
    result.app = createApp(name, config);
    result.layer = result.app->layer();

    Runtime &rt = *result.runtime;
    result.app->setup(rt);
    rt.clearTraces();

    rt.runThreads(config.threads,
                  [&](pm::PmContext &ctx, ThreadId tid) {
                      result.app->run(rt, ctx, tid);
                  });

    result.report = result.app->verify(rt);
    result.verified = result.report.ok();
    result.firstTick = rt.traces().firstTick();
    result.lastTick = rt.traces().lastTick();
    result.totalOps =
        static_cast<std::uint64_t>(config.threads) * config.opsPerThread;
    return result;
}

VerifyReport
crashAndVerify(RunResult &result, const CrashOptions &opts)
{
    Runtime &rt = *result.runtime;
    rt.crash(opts.seed, opts.survival);
    // Media scrub before recovery: a no-op unless a fault plan
    // poisoned lines, in which case recovery must never read them raw.
    VerifyReport scrub = result.app->scrubRecovered(rt);
    result.app->recover(rt);
    VerifyReport verdict = result.app->verifyRecovered(rt);
    scrub.merge(verdict);
    return scrub;
}

analysis::AnalysisResult
analyzeRun(const RunResult &result, unsigned jobs)
{
    analysis::AnalysisOptions options;
    options.jobs = jobs;
    return analysis::analyzeTraces(result.runtime->traces(), options);
}

} // namespace whisper::core

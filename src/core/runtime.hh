/**
 * @file
 * Execution runtime tying the substrates together.
 *
 * A Runtime owns one simulated PM device (PmPool), the global logical
 * clock, the per-thread trace buffers and the per-thread PmContexts.
 * Applications are written against PmContext; the runtime provides
 * thread launch, crash injection and re-mount orchestration so that
 * every WHISPER app and every test drives the stack the same way.
 */

#ifndef WHISPER_CORE_RUNTIME_HH
#define WHISPER_CORE_RUNTIME_HH

#include <functional>
#include <memory>
#include <vector>

#include "pm/pm_context.hh"
#include "trace/trace_set.hh"

namespace whisper::core
{

/**
 * One application run's world: device, clock, traces, threads.
 */
class Runtime
{
  public:
    /**
     * @param pool_bytes size of the simulated PM device
     * @param max_threads contexts/trace buffers created up front
     * @param record_volatile store DRAM events (needed by the timing
     *        simulator and Figure 6), not just counters
     */
    Runtime(std::size_t pool_bytes, unsigned max_threads,
            bool record_volatile = false);

    pm::PmPool &pool() { return *pool_; }
    LogicalClock &clock() { return clock_; }
    trace::TraceSet &traces() { return traces_; }
    const trace::TraceSet &traces() const { return traces_; }

    unsigned maxThreads() const { return static_cast<unsigned>(
        contexts_.size()); }

    /** Per-thread instrumented context (tid < maxThreads). */
    pm::PmContext &ctx(ThreadId tid);

    /**
     * Run @p fn on @p n real threads (tid 0..n-1), joining all.
     * Thread 0's work runs on the calling thread.
     */
    void runThreads(unsigned n,
                    const std::function<void(pm::PmContext &,
                                             ThreadId)> &fn);

    /** Adversarial crash: each dirty line survives with p=survival. */
    void crash(std::uint64_t seed, double survival = 0.5);

    /** Crash where nothing un-persisted survives. */
    void crashHard();

    /** Crash where exactly @p survivors persist (crash fuzzer). */
    void crashWithSurvivors(const std::vector<LineAddr> &survivors);

    /**
     * Crash with media faults: @p survivors persist except as
     * @p faults dictates — torn lines keep only their masked 8-byte
     * words, poisoned lines are lost outright and must be scrubbed
     * before recovery reads them (see PmPool::crashWithFaults).
     */
    void crashWithFaults(const std::vector<LineAddr> &survivors,
                         const pm::FaultResolution &faults);

    /** @{ \name Crash-point injection (crash fuzzer)
     *
     * installCrashPlan() attaches a fresh op-counting CrashPlan to
     * every context (uninstalled runtimes pay no per-op overhead);
     * with @p gate_threads > 1 the plan also carries a SchedGate that
     * pins the interleaving of the racing threads' PM ops to the
     * seeded @p schedule_seed, making global op indices — and thus
     * crash points — deterministic. armCrashPoint() schedules a
     * CrashPointReached throw immediately before the PM op with
     * global index @p op_index, counted from the install/arm point.
     */
    pm::CrashPlan &installCrashPlan(unsigned gate_threads = 1,
                                    std::uint64_t schedule_seed = 0);
    void armCrashPoint(std::uint64_t op_index);
    bool crashPointFired() const;
    std::uint64_t pmOpsSeen() const;
    /** @} */

    /** Drop recorded trace events (e.g. after a setup phase). */
    void clearTraces() { traces_.clear(); }

  private:
    LogicalClock clock_;
    std::unique_ptr<pm::PmPool> pool_;
    trace::TraceSet traces_;
    std::vector<std::unique_ptr<pm::PmContext>> contexts_;
    std::unique_ptr<pm::CrashPlan> crashPlan_;
    std::unique_ptr<pm::SchedGate> schedGate_;
};

} // namespace whisper::core

#endif // WHISPER_CORE_RUNTIME_HH

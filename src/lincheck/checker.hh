/**
 * @file
 * Durable-linearizability checker over recorded KV histories.
 *
 * The checker searches for a witness linearization per key (Wing-Gong
 * style DFS with memoized state hashing): a total order of all
 * completed ops plus some subset of ops pending at the crash,
 * honoring per-key real-time order, in which every observed result is
 * legal for the sequential KV spec and some prefix — containing every
 * `durable` op — reproduces exactly the recovered state. For
 * histories without a crash the cut must sit at the very end, which
 * degenerates to plain linearizability against the final probes.
 *
 * Keys are checked independently (Herlihy-Wing locality). The cut may
 * differ between keys: the relaxed MOD/Halo models only buffer
 * durability per epoch, so a single global cut is deliberately not
 * required (see DESIGN.md section 14 for the caveat).
 *
 * The search is bounded by a per-key node budget; exhausting it
 * yields a `lincheck-budget` verdict (reported as Degraded, never a
 * hang or a false violation).
 */

#ifndef WHISPER_LINCHECK_CHECKER_HH
#define WHISPER_LINCHECK_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lincheck/history.hh"

namespace whisper::lincheck
{

struct CheckOptions {
    std::uint64_t nodeBudget = 1ull << 18; //!< DFS nodes per key
};

/** Outcome of the witness search for one key. */
struct KeyVerdict {
    std::uint64_t key = 0;
    bool ok = true;                //!< a witness linearization exists
    bool budgetExhausted = false;  //!< search bound hit; not a violation
    std::string why;               //!< empty unless ok == false
};

struct CheckResult {
    bool ok = true;               //!< no key lacks a witness
    bool budgetExhausted = false; //!< some key hit the node budget
    std::uint64_t nodesVisited = 0;
    std::vector<KeyVerdict> keys; //!< ascending key order

    /**
     * Deterministic fold of the per-key verdicts. Timestamps are
     * excluded on purpose: cross-thread timestamp draws are racy,
     * verdicts under a SchedGate schedule are not.
     */
    std::uint64_t digest() const;

    /** One-line summary ("ok", "violation key=...", ...). */
    std::string brief() const;
};

CheckResult check(const History &history, const CheckOptions &opts = {});

/**
 * ddmin-style history minimizer: returns a subset history (failing
 * keys only, greedily dropping ops) that the checker still rejects.
 * Only the checker re-runs; nothing is re-executed. Returns the input
 * unchanged when the history has no violation.
 */
History minimizeViolation(const History &history, const CheckOptions &opts = {});

} // namespace whisper::lincheck

#endif // WHISPER_LINCHECK_CHECKER_HH

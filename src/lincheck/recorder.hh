/**
 * @file
 * Invoke/response history recorder for KV-shaped workloads.
 *
 * One recorder serves all threads of a run: each thread appends to
 * its own log (no locks on the op path), timestamps come from one
 * monotone atomic counter, and fence coverage arrives through the
 * PmContext FenceObserver hook. When disabled every entry point is an
 * early-out, so the recorder costs nothing on un-instrumented runs.
 *
 * Durability classification (finish()): a completed mutation is
 * `durable` iff an *admitted* durability fence on the same thread has
 * a timestamp greater than the op's response. This under-approximates
 * (a fence inside the op's own trailing durability point fires before
 * the response is recorded, and any-kind fences also drain flushes in
 * this simulation) — which is sound: fewer MUST ops can only make the
 * checker accept more, never report a false violation. Gets are never
 * durable: a fence only drains the *issuing* thread's flushes, so a
 * read observing another thread's unfenced write must stay droppable.
 */

#ifndef WHISPER_LINCHECK_RECORDER_HH
#define WHISPER_LINCHECK_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "lincheck/history.hh"
#include "pm/pm_context.hh"

namespace whisper::lincheck
{

class HistoryRecorder : public pm::FenceObserver
{
  public:
    HistoryRecorder() = default;

    /** Arm the recorder for @p threads threads (clears prior state). */
    void enable(std::uint32_t threads);

    bool enabled() const { return enabled_; }

    /** Record an op invocation; returns a handle for response(). */
    std::size_t invoke(ThreadId tid, OpKind kind, std::uint64_t key,
                       std::uint64_t arg);

    /** Record the response of the op @p idx returned by invoke(). */
    void response(ThreadId tid, std::size_t idx, bool found,
                  std::uint64_t readValue);

    void onFence(ThreadId tid, trace::FenceKind kind,
                 bool admitted) override;

    /** Baseline per-key state, probed after setup (main thread). */
    void noteInitial(std::uint64_t key, bool present,
                     std::uint64_t value);

    /** Post-recovery per-key state (main thread). */
    void noteRecovered(std::uint64_t key, bool present,
                       std::uint64_t value);

    void setCrashed(bool crashed) { crashed_ = crashed; }

    /** Fold the per-thread logs into one classified History. */
    History finish();

  private:
    std::uint64_t tick() { return clock_.fetch_add(1) + 1; }

    struct alignas(64) PerThread {
        std::vector<Op> ops;
        std::uint64_t lastDurableFenceTs = 0;
    };

    bool enabled_ = false;
    bool crashed_ = false;
    std::atomic<std::uint64_t> clock_{0};
    std::vector<PerThread> threads_;
    std::map<std::uint64_t, KeyState> initial_;
    std::map<std::uint64_t, KeyState> recovered_;
};

} // namespace whisper::lincheck

#endif // WHISPER_LINCHECK_RECORDER_HH

#include "lincheck/history_io.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace whisper::lincheck
{

namespace
{

int
kindIndex(const char *name)
{
    for (int k = 0; k < 4; k++) {
        if (std::strcmp(name, opKindName(static_cast<OpKind>(k))) == 0)
            return k;
    }
    return -1;
}

} // namespace

bool
writeHistoryFile(const std::string &path, const History &history)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "whisper-lincheck-history v1\n");
    std::fprintf(f, "crashed %d\n", history.crashed ? 1 : 0);
    std::fprintf(f, "threads %" PRIu32 "\n", history.threads);
    for (const auto &[key, st] : history.initial) {
        std::fprintf(f, "initial %" PRIu64 " %d %" PRIu64 "\n", key,
                     st.present ? 1 : 0, st.value);
    }
    for (const auto &[key, st] : history.recovered) {
        std::fprintf(f, "recovered %" PRIu64 " %d %" PRIu64 "\n", key,
                     st.present ? 1 : 0, st.value);
    }
    for (const Op &op : history.ops) {
        std::fprintf(f,
                     "op %" PRIu32 " %s %" PRIu64 " %" PRIu64
                     " %d %d %" PRIu64 " %" PRIu64 " %" PRIu64 " %d\n",
                     op.thread, opKindName(op.kind), op.key, op.arg,
                     op.completed ? 1 : 0, op.found ? 1 : 0,
                     op.readValue, op.invokeTs, op.responseTs,
                     op.durable ? 1 : 0);
    }
    const bool ok = std::fclose(f) == 0;
    return ok;
}

bool
readHistoryFile(const std::string &path, History &out,
                std::string &error)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        error = "cannot open '" + path + "'";
        return false;
    }
    out = History{};
    char line[512];
    int lineno = 0;
    bool sawMagic = false;
    while (std::fgets(line, sizeof(line), f)) {
        lineno++;
        if (line[0] == '\n' || line[0] == '#')
            continue;
        if (!sawMagic) {
            if (std::strncmp(line, "whisper-lincheck-history v1", 27) !=
                0) {
                error = "missing history magic on line 1";
                std::fclose(f);
                return false;
            }
            sawMagic = true;
            continue;
        }
        int b0 = 0;
        if (std::sscanf(line, "crashed %d", &b0) == 1) {
            out.crashed = b0 != 0;
            continue;
        }
        if (std::sscanf(line, "threads %" SCNu32, &out.threads) == 1)
            continue;
        std::uint64_t key = 0, value = 0;
        int present = 0;
        if (std::sscanf(line, "initial %" SCNu64 " %d %" SCNu64, &key,
                        &present, &value) == 3) {
            out.initial[key] = KeyState{present != 0, value};
            continue;
        }
        if (std::sscanf(line, "recovered %" SCNu64 " %d %" SCNu64, &key,
                        &present, &value) == 3) {
            out.recovered[key] = KeyState{present != 0, value};
            continue;
        }
        char kind[16];
        Op op;
        int completed = 0, found = 0, durable = 0;
        if (std::sscanf(line,
                        "op %" SCNu32 " %15s %" SCNu64 " %" SCNu64
                        " %d %d %" SCNu64 " %" SCNu64 " %" SCNu64 " %d",
                        &op.thread, kind, &op.key, &op.arg, &completed,
                        &found, &op.readValue, &op.invokeTs,
                        &op.responseTs, &durable) == 10) {
            int k = kindIndex(kind);
            if (k < 0) {
                char buf[64];
                std::snprintf(buf, sizeof(buf),
                              "unknown op kind on line %d", lineno);
                error = buf;
                std::fclose(f);
                return false;
            }
            op.kind = static_cast<OpKind>(k);
            op.completed = completed != 0;
            op.found = found != 0;
            op.durable = durable != 0;
            out.ops.push_back(op);
            continue;
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "unparseable line %d", lineno);
        error = buf;
        std::fclose(f);
        return false;
    }
    std::fclose(f);
    if (!sawMagic) {
        error = "empty history file";
        return false;
    }
    return true;
}

} // namespace whisper::lincheck

#include "lincheck/recorder.hh"

#include "common/logging.hh"

namespace whisper::lincheck
{

void
HistoryRecorder::enable(std::uint32_t threads)
{
    enabled_ = true;
    crashed_ = false;
    clock_.store(0);
    threads_.assign(threads, PerThread{});
    initial_.clear();
    recovered_.clear();
}

std::size_t
HistoryRecorder::invoke(ThreadId tid, OpKind kind, std::uint64_t key,
                        std::uint64_t arg)
{
    if (!enabled_)
        return 0;
    panic_if(tid >= threads_.size(), "lincheck: tid out of range");
    Op op;
    op.thread = tid;
    op.kind = kind;
    op.key = key;
    op.arg = arg;
    op.invokeTs = tick();
    PerThread &pt = threads_[tid];
    pt.ops.push_back(op);
    return pt.ops.size() - 1;
}

void
HistoryRecorder::response(ThreadId tid, std::size_t idx, bool found,
                          std::uint64_t readValue)
{
    if (!enabled_)
        return;
    panic_if(tid >= threads_.size() || idx >= threads_[tid].ops.size(),
             "lincheck: bad response handle");
    Op &op = threads_[tid].ops[idx];
    op.completed = true;
    op.found = found;
    op.readValue = readValue;
    op.responseTs = tick();
}

void
HistoryRecorder::onFence(ThreadId tid, trace::FenceKind kind,
                         bool admitted)
{
    if (!enabled_ || !admitted || kind != trace::FenceKind::Durability)
        return;
    if (tid >= threads_.size())
        return;
    threads_[tid].lastDurableFenceTs = tick();
}

void
HistoryRecorder::noteInitial(std::uint64_t key, bool present,
                             std::uint64_t value)
{
    if (!enabled_)
        return;
    initial_[key] = KeyState{present, present ? value : 0};
}

void
HistoryRecorder::noteRecovered(std::uint64_t key, bool present,
                               std::uint64_t value)
{
    if (!enabled_)
        return;
    recovered_[key] = KeyState{present, present ? value : 0};
}

History
HistoryRecorder::finish()
{
    History h;
    h.crashed = crashed_;
    h.threads = static_cast<std::uint32_t>(threads_.size());
    for (PerThread &pt : threads_) {
        for (Op &op : pt.ops) {
            op.durable = op.completed && op.kind != OpKind::Get &&
                         op.responseTs < pt.lastDurableFenceTs;
            h.ops.push_back(op);
        }
    }
    h.initial = std::move(initial_);
    h.recovered = std::move(recovered_);
    return h;
}

} // namespace whisper::lincheck

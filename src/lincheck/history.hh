/**
 * @file
 * Operation-history model for the durable-linearizability checker.
 *
 * A History is the complete record of one KV-shaped concurrent
 * execution: per-thread invoke/response events with monotone
 * timestamps, the per-key state probed right after setup (the
 * baseline every linearization starts from), and the per-key state
 * probed after crash + recovery (the state a witness linearization
 * must explain). Ops marked `durable` were covered by an admitted
 * durability fence on their own thread after their response and MUST
 * appear in the pre-crash prefix of any witness; everything else MAY
 * be reordered past the crash cut or, if still pending, dropped
 * entirely.
 */

#ifndef WHISPER_LINCHECK_HISTORY_HH
#define WHISPER_LINCHECK_HISTORY_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"

namespace whisper::lincheck
{

enum class OpKind : std::uint8_t { Get = 0, Put = 1, Rmw = 2, Remove = 3 };

const char *opKindName(OpKind kind);

/** One invoke/response event pair (response absent when pending). */
struct Op {
    ThreadId thread = 0;
    OpKind kind = OpKind::Get;
    std::uint64_t key = 0;
    std::uint64_t arg = 0;       //!< put value / rmw delta
    bool completed = false;      //!< response was recorded
    bool found = false;          //!< get/rmw/remove result
    std::uint64_t readValue = 0; //!< value observed by a get
    std::uint64_t invokeTs = 0;
    std::uint64_t responseTs = 0; //!< 0 when pending
    bool durable = false;         //!< covered by a later admitted dfence
};

/** Sequential KV state for one key. */
struct KeyState {
    bool present = false;
    std::uint64_t value = 0;

    bool operator==(const KeyState &o) const
    {
        return present == o.present && (!present || value == o.value);
    }
    bool operator!=(const KeyState &o) const { return !(*this == o); }
};

/**
 * A complete recorded execution. Keys missing from `initial` or
 * `recovered` are treated as absent.
 */
struct History {
    bool crashed = false; //!< false: plain linearizability, cut at end
    std::uint32_t threads = 0;
    std::vector<Op> ops;
    std::map<std::uint64_t, KeyState> initial;
    std::map<std::uint64_t, KeyState> recovered;
};

} // namespace whisper::lincheck

#endif // WHISPER_LINCHECK_HISTORY_HH

#include "lincheck/checker.hh"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_set>

namespace whisper::lincheck
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Get:    return "get";
      case OpKind::Put:    return "put";
      case OpKind::Rmw:    return "rmw";
      case OpKind::Remove: return "remove";
    }
    return "?";
}

namespace
{

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Sequential KV spec. Returns false when the op's observed result is
 * illegal in state @p s; otherwise applies the op's effect. Pending
 * ops (no response) never constrain, they only mutate.
 */
bool
applyOp(const Op &op, KeyState &s)
{
    switch (op.kind) {
      case OpKind::Get:
        if (op.completed) {
            if (op.found != s.present)
                return false;
            if (op.found && op.readValue != s.value)
                return false;
        }
        return true;
      case OpKind::Put:
        s.present = true;
        s.value = op.arg;
        return true;
      case OpKind::Rmw:
        if (op.completed && op.found != s.present)
            return false;
        s.value = (s.present ? s.value : 0) + op.arg;
        s.present = true;
        return true;
      case OpKind::Remove:
        if (op.completed && op.found != s.present)
            return false;
        s.present = false;
        s.value = 0;
        return true;
    }
    return false;
}

KeyState
stateOf(const std::map<std::uint64_t, KeyState> &m, std::uint64_t key)
{
    auto it = m.find(key);
    return it == m.end() ? KeyState{} : it->second;
}

/** Wing-Gong witness search for one key's subhistory. */
struct KeySearch {
    std::vector<const Op *> ops; //!< sorted by (invokeTs, thread)
    KeyState init, target;
    bool crashed = false;
    std::uint64_t budget = 0;
    std::uint64_t visited = 0;
    bool exhausted = false;

    std::uint64_t mustMask = 0;
    std::uint64_t completedMask = 0;
    std::uint64_t activeMask = 0; //!< completed | chosen pending subset
    std::vector<std::uint64_t> pred;
    std::unordered_set<std::uint64_t> memo;

    bool run();
    int sequentialFastPath() const; //!< -1 n/a, 0 reject, 1 witness
    bool dfs(std::uint64_t placed, KeyState state, bool cutSeen);
};

/**
 * Single-threaded (or otherwise totally ordered) subhistories admit
 * exactly one linearization; simulate it directly so driver-mode
 * histories with thousands of ops per key never touch the DFS.
 */
int
KeySearch::sequentialFastPath() const
{
    const std::size_t n = ops.size();
    for (std::size_t i = 0; i < n; i++) {
        if (!ops[i]->completed)
            return -1;
        if (i + 1 < n && ops[i]->responseTs > ops[i + 1]->invokeTs)
            return -1;
    }
    std::size_t lastMustPos = 0;
    for (std::size_t i = 0; i < n; i++) {
        if (ops[i]->durable)
            lastMustPos = i + 1;
    }
    KeyState s = init;
    bool witness =
        lastMustPos == 0 && s == target && (crashed || n == 0);
    for (std::size_t i = 0; i < n; i++) {
        if (!applyOp(*ops[i], s))
            return 0;
        std::size_t cut = i + 1;
        if (cut >= lastMustPos && s == target && (crashed || cut == n))
            witness = true;
    }
    return witness ? 1 : 0;
}

bool
KeySearch::dfs(std::uint64_t placed, KeyState state, bool cutSeen)
{
    if (++visited > budget) {
        exhausted = true;
        return false;
    }
    // A crash cut is legal here when every durable op already sits in
    // the prefix and the prefix state matches the recovered probes.
    // Without a crash the only cut is the end of the history.
    if ((mustMask & ~placed) == 0 && state == target &&
        (crashed || placed == activeMask)) {
        cutSeen = true;
    }
    if (placed == activeMask)
        return cutSeen;
    std::uint64_t h = mix64(placed * 2 + (cutSeen ? 1 : 0)) ^
                      mix64(state.present ? state.value * 2 + 1 : 0);
    if (!memo.insert(h).second)
        return false;
    for (std::uint64_t rest = activeMask & ~placed; rest; rest &= rest - 1) {
        unsigned i = static_cast<unsigned>(__builtin_ctzll(rest));
        // Real-time order: all completed predecessors must be placed.
        if (pred[i] & ~placed)
            continue;
        KeyState next = state;
        if (!applyOp(*ops[i], next))
            continue;
        if (dfs(placed | (1ull << i), next, cutSeen))
            return true;
        if (exhausted)
            return false;
    }
    return false;
}

bool
KeySearch::run()
{
    const std::size_t n = ops.size();
    int fast = sequentialFastPath();
    if (fast >= 0) {
        visited += n + 1;
        return fast == 1;
    }
    if (n > 64) {
        exhausted = true;
        return false;
    }
    std::vector<unsigned> pending;
    for (std::size_t i = 0; i < n; i++) {
        const Op &op = *ops[i];
        if (op.completed)
            completedMask |= 1ull << i;
        else
            pending.push_back(static_cast<unsigned>(i));
        if (op.completed && op.durable)
            mustMask |= 1ull << i;
    }
    if (pending.size() > 12) {
        exhausted = true;
        return false;
    }
    pred.assign(n, 0);
    for (std::size_t i = 0; i < n; i++) {
        for (std::size_t j = 0; j < n; j++) {
            if (i != j && ops[j]->completed &&
                ops[j]->responseTs < ops[i]->invokeTs) {
                pred[i] |= 1ull << j;
            }
        }
    }
    // Any subset of the pending ops may have taken effect before the
    // crash; the rest are dropped as if never invoked.
    for (std::uint64_t sub = 0; sub < (1ull << pending.size()); sub++) {
        activeMask = completedMask;
        for (std::size_t b = 0; b < pending.size(); b++) {
            if (sub & (1ull << b))
                activeMask |= 1ull << pending[b];
        }
        memo.clear();
        if (dfs(0, init, false))
            return true;
        if (exhausted)
            return false;
    }
    return false;
}

} // namespace

std::uint64_t
CheckResult::digest() const
{
    std::uint64_t d = 0x11c4ec5ull;
    auto fold = [&d](std::uint64_t v) { d = mix64(d ^ v); };
    fold(keys.size());
    for (const KeyVerdict &v : keys) {
        fold(v.key);
        fold(v.ok ? 1 : 0);
        fold(v.budgetExhausted ? 1 : 0);
    }
    fold(ok ? 1 : 0);
    fold(budgetExhausted ? 1 : 0);
    return d;
}

std::string
CheckResult::brief() const
{
    std::size_t bad = 0;
    const KeyVerdict *first = nullptr;
    for (const KeyVerdict &v : keys) {
        if (!v.ok) {
            if (!first)
                first = &v;
            bad++;
        }
    }
    char buf[160];
    if (first) {
        std::snprintf(buf, sizeof(buf),
                      "violation: %zu of %zu keys lack a witness "
                      "(first key=0x%llx)",
                      bad, keys.size(),
                      static_cast<unsigned long long>(first->key));
    } else if (budgetExhausted) {
        std::snprintf(buf, sizeof(buf),
                      "ok with lincheck-budget degradation (%zu keys)",
                      keys.size());
    } else {
        std::snprintf(buf, sizeof(buf), "ok (%zu keys)", keys.size());
    }
    return buf;
}

CheckResult
check(const History &history, const CheckOptions &opts)
{
    CheckResult res;
    std::map<std::uint64_t, std::vector<const Op *>> byKey;
    for (const Op &op : history.ops)
        byKey[op.key].push_back(&op);
    std::set<std::uint64_t> keys;
    for (const auto &[key, ops] : byKey)
        keys.insert(key);
    for (const auto &[key, st] : history.initial)
        keys.insert(key);
    for (const auto &[key, st] : history.recovered)
        keys.insert(key);

    for (std::uint64_t key : keys) {
        KeySearch ks;
        auto it = byKey.find(key);
        if (it != byKey.end())
            ks.ops = it->second;
        std::stable_sort(ks.ops.begin(), ks.ops.end(),
                         [](const Op *a, const Op *b) {
                             if (a->invokeTs != b->invokeTs)
                                 return a->invokeTs < b->invokeTs;
                             return a->thread < b->thread;
                         });
        ks.init = stateOf(history.initial, key);
        ks.target = stateOf(history.recovered, key);
        ks.crashed = history.crashed;
        ks.budget = opts.nodeBudget;

        bool found = ks.run();
        res.nodesVisited += ks.visited;

        KeyVerdict v;
        v.key = key;
        if (found) {
            // witness found
        } else if (ks.exhausted) {
            v.budgetExhausted = true;
            v.why = "lincheck-budget";
            res.budgetExhausted = true;
        } else {
            std::size_t pending = 0, durable = 0;
            for (const Op *op : ks.ops) {
                pending += op->completed ? 0 : 1;
                durable += (op->completed && op->durable) ? 1 : 0;
            }
            char buf[160];
            if (ks.target.present) {
                std::snprintf(buf, sizeof(buf),
                              "no witness: %zu ops (%zu pending, %zu "
                              "durable), recovered=0x%llx",
                              ks.ops.size(), pending, durable,
                              static_cast<unsigned long long>(
                                  ks.target.value));
            } else {
                std::snprintf(buf, sizeof(buf),
                              "no witness: %zu ops (%zu pending, %zu "
                              "durable), recovered=absent",
                              ks.ops.size(), pending, durable);
            }
            v.ok = false;
            v.why = buf;
            res.ok = false;
        }
        res.keys.push_back(std::move(v));
    }
    return res;
}

History
minimizeViolation(const History &history, const CheckOptions &opts)
{
    CheckResult base = check(history, opts);
    if (base.ok)
        return history;

    std::set<std::uint64_t> bad;
    for (const KeyVerdict &v : base.keys) {
        if (!v.ok)
            bad.insert(v.key);
    }
    History m;
    m.crashed = history.crashed;
    m.threads = history.threads;
    for (const Op &op : history.ops) {
        if (bad.count(op.key))
            m.ops.push_back(op);
    }
    for (const auto &[key, st] : history.initial) {
        if (bad.count(key))
            m.initial[key] = st;
    }
    for (const auto &[key, st] : history.recovered) {
        if (bad.count(key))
            m.recovered[key] = st;
    }

    // Greedy one-op-at-a-time ddmin: cheap because only the checker
    // re-runs, never the execution.
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 8) {
        changed = false;
        for (std::size_t i = 0; i < m.ops.size(); i++) {
            History t = m;
            t.ops.erase(t.ops.begin() + static_cast<std::ptrdiff_t>(i));
            if (!check(t, opts).ok) {
                m = std::move(t);
                changed = true;
                if (i > 0)
                    i--;
            }
        }
    }
    return m;
}

} // namespace whisper::lincheck

/**
 * @file
 * Plain-text serialization of lincheck histories.
 *
 * The format is line-oriented and deterministic so dumped reproducers
 * diff cleanly and replay bit-identically through
 * `whisper_cli lincheck`:
 *
 *     whisper-lincheck-history v1
 *     crashed <0|1>
 *     threads <n>
 *     initial <key> <present> <value>
 *     recovered <key> <present> <value>
 *     op <thread> <kind> <key> <arg> <completed> <found> <readValue>
 *        <invokeTs> <responseTs> <durable>
 *
 * (each `op` record is one line; kind is get/put/rmw/remove).
 */

#ifndef WHISPER_LINCHECK_HISTORY_IO_HH
#define WHISPER_LINCHECK_HISTORY_IO_HH

#include <string>

#include "lincheck/history.hh"

namespace whisper::lincheck
{

/** Write @p history to @p path; returns false on I/O failure. */
bool writeHistoryFile(const std::string &path, const History &history);

/**
 * Parse @p path into @p out. Returns false and sets @p error on I/O
 * or syntax failure.
 */
bool readHistoryFile(const std::string &path, History &out,
                     std::string &error);

} // namespace whisper::lincheck

#endif // WHISPER_LINCHECK_HISTORY_IO_HH

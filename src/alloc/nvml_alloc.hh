/**
 * @file
 * Redo-logged slab allocator (the NVML design).
 *
 * Same slab geometry as SlabAllocator, but every bitmap mutation is
 * made atomic: the allocator (i) appends a redo record describing the
 * new bitmap word, (ii) applies the mutation, and (iii) clears the
 * record — each step persisted in its own epoch, which is exactly the
 * three-epoch, ~10x-amplification discipline the paper measures for
 * NVML ("logs the allocator state in a redo log before mutating it,
 * mutates the state after processing the redo log, sets/clears
 * transaction log entries"). Never leaks: recovery replays any redo
 * record that was persisted but not yet cleared.
 */

#ifndef WHISPER_ALLOC_NVML_ALLOC_HH
#define WHISPER_ALLOC_NVML_ALLOC_HH

#include "alloc/slab_alloc.hh"

namespace whisper::alloc
{

/** One persistent redo record for an allocator-state mutation. */
struct AllocRedoRecord
{
    Addr wordOff;           //!< bitmap word being mutated
    std::uint64_t newVal;   //!< value to (re)apply
    std::uint64_t seq;      //!< monotonically increasing sequence
    std::uint64_t valid;    //!< 1 while the record is live
};

/**
 * The NVML-style allocator.
 */
class NvmlAllocator : public SlabAllocator
{
  public:
    /** Redo-log capacity in records. */
    static constexpr std::uint64_t kLogSlots = 128;

    /** Bytes of pool space the redo log needs. */
    static constexpr std::size_t
    logBytes()
    {
        return kLogSlots * sizeof(AllocRedoRecord);
    }

    /**
     * Format a new allocator: slabs over [base, base+size), redo log
     * at [log_base, log_base+logBytes()).
     */
    NvmlAllocator(pm::PmContext &ctx, Addr base, std::size_t size,
                  Addr log_base);

    /** Attach after a crash; call recover() next. */
    NvmlAllocator(Addr base, std::size_t size, Addr log_base);

    void recover(pm::PmContext &ctx) override;

    /** Redo records currently valid (test helper). */
    std::uint64_t liveLogRecords(pm::PmContext &ctx);

  protected:
    void persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                           std::uint64_t new_val) override;

  private:
    Addr recordOff(std::uint64_t slot) const;

    Addr logBase_;
    std::uint64_t nextSlot_ = 0;
    std::uint64_t nextSeq_ = 1;
};

} // namespace whisper::alloc

#endif // WHISPER_ALLOC_NVML_ALLOC_HH

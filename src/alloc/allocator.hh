/**
 * @file
 * Common interface of the persistent allocators.
 *
 * The paper finds that allocator metadata — not user data — causes
 * most small epochs and much of the write amplification (their
 * Consequences 3, 8, 9). Each WHISPER access layer therefore gets the
 * allocator design the original system had:
 *
 *  - BuddyAllocator: N-store/Echo. One heap for every size; splits and
 *    coalesces write persistent headers; every block carries a
 *    FREE/VOLATILE/PERSISTENT state variable written up to three times
 *    per transaction.
 *  - SlabAllocator: Mnemosyne. Per-size-class slabs with a persistent
 *    allocation bitmap and a volatile free index; may leak on a crash
 *    (no logging), which keeps its epoch count low.
 *  - NvmlAllocator: NVML. Slab-based, but every bitmap mutation is
 *    redo-logged and the log entry cleared afterwards, each in its own
 *    epoch; never leaks.
 */

#ifndef WHISPER_ALLOC_ALLOCATOR_HH
#define WHISPER_ALLOC_ALLOCATOR_HH

#include <mutex>

#include "pm/pm_context.hh"

namespace whisper::alloc
{

/** Statistics all allocators expose. */
struct AllocStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t failedAllocs = 0;
    std::uint64_t splits = 0;      //!< buddy only
    std::uint64_t coalesces = 0;   //!< buddy only
    std::uint64_t bytesLive = 0;
};

/**
 * Abstract persistent allocator over a [base, base+size) region of a
 * pool. Offsets returned are payload offsets, usable with POff<T>.
 */
class PmAllocator
{
  public:
    virtual ~PmAllocator() = default;

    /**
     * Allocate @p n bytes.
     * @return payload offset, or kNullAddr when out of memory.
     */
    virtual Addr alloc(pm::PmContext &ctx, std::size_t n) = 0;

    /** Release a previously allocated payload. */
    virtual void free(pm::PmContext &ctx, Addr payload) = 0;

    /**
     * Rebuild volatile indexes from persistent allocator state after
     * a crash (called during re-mount, before any alloc/free).
     */
    virtual void recover(pm::PmContext &ctx) = 0;

    virtual const AllocStats &stats() const = 0;

    /** Typed convenience allocation (payload is zero-initialized). */
    template <typename T>
    pm::POff<T>
    allocT(pm::PmContext &ctx)
    {
        const Addr off = alloc(ctx, sizeof(T));
        return pm::POff<T>(off);
    }

  protected:
    /**
     * Serializes allocator-internal volatile state across application
     * threads. The real libraries' allocators are thread-safe the
     * same way (a lock around the heap).
     */
    std::mutex mtx_;
};

} // namespace whisper::alloc

#endif // WHISPER_ALLOC_ALLOCATOR_HH

#include "alloc/nvml_alloc.hh"

#include "common/logging.hh"

namespace whisper::alloc
{

using pm::DataClass;
using pm::FenceKind;

NvmlAllocator::NvmlAllocator(pm::PmContext &ctx, Addr base,
                             std::size_t size, Addr log_base)
    : SlabAllocator(ctx, base, size), logBase_(log_base)
{
    // Format the redo log: all records invalid.
    AllocRedoRecord empty{0, 0, 0, 0};
    for (std::uint64_t slot = 0; slot < kLogSlots; slot++) {
        ctx.store(recordOff(slot), &empty, sizeof(empty), DataClass::Log);
    }
    ctx.flush(logBase_, logBytes());
    ctx.fence(FenceKind::Durability);
}

NvmlAllocator::NvmlAllocator(Addr base, std::size_t size, Addr log_base)
    : SlabAllocator(base, size), logBase_(log_base)
{
}

Addr
NvmlAllocator::recordOff(std::uint64_t slot) const
{
    return logBase_ + slot * sizeof(AllocRedoRecord);
}

void
NvmlAllocator::persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                                 std::uint64_t new_val)
{
    const std::uint64_t slot = nextSlot_;
    nextSlot_ = (nextSlot_ + 1) % kLogSlots;

    // (i) Redo record, its own epoch.
    AllocRedoRecord rec{word_off, new_val, nextSeq_++, 1};
    ctx.store(recordOff(slot), &rec, sizeof(rec), DataClass::Log);
    ctx.flush(recordOff(slot), sizeof(rec));
    ctx.fence(FenceKind::Ordering);

    // (ii) Apply the mutation, its own epoch.
    ctx.store(word_off, &new_val, 8, DataClass::AllocMeta);
    ctx.flush(word_off, 8);
    ctx.fence(FenceKind::Ordering);

    // (iii) Clear the record, its own epoch (NVML clears each log
    // entry individually — the paper's singleton-epoch source).
    const std::uint64_t invalid = 0;
    auto *slot_rec = ctx.pool().at<AllocRedoRecord>(recordOff(slot));
    ctx.storeField(slot_rec->valid, invalid, DataClass::Log);
    ctx.flush(ctx.pool().offsetOf(&slot_rec->valid), 8);
    ctx.fence(FenceKind::Ordering);
}

void
NvmlAllocator::recover(pm::PmContext &ctx)
{
    // Replay redo records in sequence order, then clear them.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> live; // seq,slot
    for (std::uint64_t slot = 0; slot < kLogSlots; slot++) {
        AllocRedoRecord rec{};
        ctx.load(recordOff(slot), &rec, sizeof(rec));
        if (rec.valid == 1)
            live.emplace_back(rec.seq, slot);
    }
    std::sort(live.begin(), live.end());
    for (const auto &[seq, slot] : live) {
        AllocRedoRecord rec{};
        ctx.load(recordOff(slot), &rec, sizeof(rec));
        ctx.store(rec.wordOff, &rec.newVal, 8, DataClass::AllocMeta);
        ctx.flush(rec.wordOff, 8);
        ctx.fence(FenceKind::Ordering);
        const std::uint64_t invalid = 0;
        auto *slot_rec = ctx.pool().at<AllocRedoRecord>(recordOff(slot));
        ctx.storeField(slot_rec->valid, invalid, DataClass::Log);
        ctx.flush(ctx.pool().offsetOf(&slot_rec->valid), 8);
        ctx.fence(FenceKind::Ordering);
        if (!live.empty())
            nextSeq_ = std::max(nextSeq_, seq + 1);
    }
    SlabAllocator::recover(ctx);
}

std::uint64_t
NvmlAllocator::liveLogRecords(pm::PmContext &ctx)
{
    std::uint64_t n = 0;
    for (std::uint64_t slot = 0; slot < kLogSlots; slot++) {
        AllocRedoRecord rec{};
        ctx.load(recordOff(slot), &rec, sizeof(rec));
        n += rec.valid == 1;
    }
    return n;
}

} // namespace whisper::alloc

/**
 * @file
 * Single-heap persistent buddy allocator (the N-store / Echo design).
 *
 * All sizes come from one heap; allocation splits larger blocks and
 * freeing coalesces buddies, and every split/merge writes persistent
 * block headers. Each block carries a persistent state variable —
 * FREE, VOLATILE or PERSISTENT — that N-store-style applications write
 * up to three times per transaction (allocate as VOLATILE, commit as
 * PERSISTENT, later free as FREE), which is the paper's example of an
 * allocator-induced self-dependency (their Consequence 7 discussion).
 *
 * Crash behaviour: headers are persisted (flush + fence) before a
 * block is handed out, and recovery drops any block still VOLATILE,
 * so user code that crashes mid-transaction leaks nothing.
 */

#ifndef WHISPER_ALLOC_BUDDY_ALLOC_HH
#define WHISPER_ALLOC_BUDDY_ALLOC_HH

#include <cstdint>
#include <vector>

#include "alloc/allocator.hh"

namespace whisper::alloc
{

/** Persistent lifecycle state of a buddy block. */
enum class BlockState : std::uint16_t
{
    Free = 0xF1EE,
    Volatile = 0x401A,    //!< allocated, not yet committed persistent
    Persistent = 0x9E45,
};

/** Persistent header at the front of every buddy block (16 bytes). */
struct BuddyHeader
{
    std::uint32_t magic;     //!< kMagic when the header is valid
    std::uint16_t order;     //!< block size == kMinBlock << order
    std::uint16_t state;     //!< BlockState
    std::uint64_t reserved;  //!< keeps payloads 16-byte aligned

    static constexpr std::uint32_t kMagic = 0xB0DD1E5u;
};

/**
 * The allocator. Volatile free lists are an index only; the persistent
 * headers are the source of truth and recovery rebuilds the lists by
 * walking the heap.
 */
class BuddyAllocator : public PmAllocator
{
  public:
    /** Smallest block (one cache line). */
    static constexpr std::size_t kMinBlock = 64;

    /**
     * Manage [base, base+size) of the pool behind @p ctx's pool.
     * @p size is rounded down to a power of two multiple of kMinBlock.
     * Formats the heap (one giant free block).
     */
    BuddyAllocator(pm::PmContext &ctx, Addr base, std::size_t size);

    /**
     * Attach without formatting (after a crash); call recover() next.
     */
    BuddyAllocator(Addr base, std::size_t size);

    Addr alloc(pm::PmContext &ctx, std::size_t n) override;
    void free(pm::PmContext &ctx, Addr payload) override;
    void recover(pm::PmContext &ctx) override;
    const AllocStats &stats() const override { return stats_; }

    /**
     * Flip a block's persistent state variable (N-store's FREE /
     * VOLATILE / PERSISTENT protocol). One store + flush + fence.
     */
    void setState(pm::PmContext &ctx, Addr payload, BlockState st);

    /**
     * Read a block's state (from the architectural image). A payload
     * address outside the heap, or one whose header magic is gone
     * (media loss), answers Free — recovery walks treat that as "not
     * a persisted block" and prune the referrer.
     */
    BlockState state(pm::PmContext &ctx, Addr payload) const;

    std::size_t heapSize() const { return size_; }

    /** Count blocks on the volatile free lists (test helper). */
    std::uint64_t freeBlockCount() const;

  private:
    unsigned orderFor(std::size_t payload_bytes) const;
    Addr buddyOf(Addr block, unsigned order) const;
    void writeHeader(pm::PmContext &ctx, Addr block, unsigned order,
                     BlockState st, bool fence_now);
    BuddyHeader *header(pm::PmContext &ctx, Addr block) const;
    void pushFree(Addr block, unsigned order);
    bool removeFree(Addr block, unsigned order);

    Addr base_ = 0;
    std::size_t size_ = 0;
    unsigned maxOrder_ = 0;
    std::vector<std::vector<Addr>> freeLists_;
    AllocStats stats_;
};

} // namespace whisper::alloc

#endif // WHISPER_ALLOC_BUDDY_ALLOC_HH

#include "alloc/slab_alloc.hh"

#include "common/logging.hh"

namespace whisper::alloc
{

using pm::DataClass;
using pm::FenceKind;

SlabAllocator::SlabAllocator(pm::PmContext &ctx, Addr base,
                             std::size_t size)
{
    layout(base, size);
    // Format: zero every bitmap, persistently.
    for (auto &slab : slabs_) {
        const std::uint64_t words = (slab.blockCount + 63) / 64;
        const std::uint64_t zero = 0;
        for (std::uint64_t w = 0; w < words; w++) {
            ctx.store(slab.bitmapBase + w * 8, &zero, 8,
                      DataClass::AllocMeta);
        }
        ctx.flush(slab.bitmapBase, words * 8);
    }
    ctx.fence(FenceKind::Durability);
}

SlabAllocator::SlabAllocator(Addr base, std::size_t size)
{
    layout(base, size);
}

void
SlabAllocator::layout(Addr base, std::size_t size)
{
    // Give each class an equal share of the region; within a share,
    // bitmap first, then blocks.
    const std::size_t share = size / kClasses.size();
    Addr cursor = base;
    for (std::size_t c = 0; c < kClasses.size(); c++) {
        Slab &slab = slabs_[c];
        slab.blockSize = kClasses[c];
        // count * blockSize + count/8 <= share  (bitmap is 1 bit/block)
        slab.blockCount = (share * 8) / (slab.blockSize * 8 + 1);
        const std::uint64_t words = (slab.blockCount + 63) / 64;
        slab.bitmapBase = cursor;
        // Keep blocks cache-line aligned.
        slab.blocksBase = lineBase(cursor + words * 8 + kCacheLineSize - 1);
        slab.cursor = 0;
        slab.shadow.assign(words, 0);
        panic_if(slab.blockCount == 0, "slab class %zu has no blocks",
                 slab.blockSize);
        cursor += share;
    }
}

std::size_t
SlabAllocator::classFor(std::size_t n) const
{
    for (std::size_t c = 0; c < kClasses.size(); c++) {
        if (n <= kClasses[c])
            return c;
    }
    return kClasses.size();
}

bool
SlabAllocator::locate(Addr payload, std::size_t &cls,
                      std::uint64_t &bit) const
{
    for (std::size_t c = 0; c < kClasses.size(); c++) {
        const Slab &slab = slabs_[c];
        const Addr end = slab.blocksBase + slab.blockCount * slab.blockSize;
        if (payload >= slab.blocksBase && payload < end) {
            cls = c;
            bit = (payload - slab.blocksBase) / slab.blockSize;
            return true;
        }
    }
    return false;
}

void
SlabAllocator::persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                                 std::uint64_t new_val)
{
    // Mnemosyne discipline: write the word, flush, fence. One small
    // epoch per allocator mutation, no logging, may leak on crash.
    ctx.store(word_off, &new_val, 8, DataClass::AllocMeta);
    ctx.flush(word_off, 8);
    ctx.fence(FenceKind::Ordering);
}

void
SlabAllocator::enableDimmBalance(const DimmConfig &dimms)
{
    std::lock_guard<std::mutex> guard(mtx_);
    dimmBalance_ = true;
    dimms_ = dimms;
    recountDimmLive();
}

unsigned
SlabAllocator::dimmOfBlock(const Slab &slab, std::uint64_t bit) const
{
    return dimms_.dimmOf(lineOf(slab.blocksBase + bit * slab.blockSize));
}

std::uint64_t
SlabAllocator::balancedPick(pm::PmContext &ctx, const Slab &slab) const
{
    // One pass recording the first free block per DIMM; once a DIMM
    // has a candidate the scan jumps to the next interleave-chunk
    // boundary (all blocks until then share that DIMM).
    const unsigned dimm_count = dimms_.dimms();
    const std::uint64_t chunk_bytes =
        std::uint64_t(dimms_.interleaveLines ? dimms_.interleaveLines
                                             : 1) *
        kCacheLineSize;
    std::array<std::uint64_t, kMaxDimms> first_free;
    first_free.fill(slab.blockCount);
    unsigned found = 0;
    std::uint64_t last_word = ~std::uint64_t(0);
    for (std::uint64_t bit = 0;
         bit < slab.blockCount && found < dimm_count;) {
        const unsigned d = dimmOfBlock(slab, bit);
        if (first_free[d] < slab.blockCount) {
            const Addr addr = slab.blocksBase + bit * slab.blockSize;
            const Addr boundary =
                (addr / chunk_bytes + 1) * chunk_bytes;
            const std::uint64_t skip =
                (boundary - slab.blocksBase + slab.blockSize - 1) /
                slab.blockSize;
            bit = skip > bit ? skip : bit + 1;
            continue;
        }
        const std::uint64_t word = bit / 64;
        if (word != last_word) {
            ctx.vLoad(&slab.shadow[word], 8);
            last_word = word;
        }
        if (!(slab.shadow[word] & (1ull << (bit % 64)))) {
            first_free[d] = bit;
            found++;
        }
        bit++;
    }
    std::uint64_t best = slab.blockCount;
    std::uint64_t best_load = 0;
    for (unsigned d = 0; d < dimm_count; d++) {
        if (first_free[d] >= slab.blockCount)
            continue;
        if (best == slab.blockCount || dimmLive_[d] < best_load) {
            best = first_free[d];
            best_load = dimmLive_[d];
        }
    }
    return best;
}

Addr
SlabAllocator::alloc(pm::PmContext &ctx, std::size_t n)
{
    std::lock_guard<std::mutex> guard(mtx_);
    const std::size_t c = classFor(n);
    if (c == kClasses.size()) {
        stats_.failedAllocs++;
        return kNullAddr;
    }
    Slab &slab = slabs_[c];

    if (dimmBalance_) {
        const std::uint64_t bit = balancedPick(ctx, slab);
        if (bit >= slab.blockCount) {
            stats_.failedAllocs++;
            return kNullAddr;
        }
        const std::uint64_t word = bit / 64;
        slab.shadow[word] |= 1ull << (bit % 64);
        ctx.vStore(&slab.shadow[word], 8);
        persistBitmapWord(ctx, slab.bitmapBase + word * 8,
                          slab.shadow[word]);
        dimmLive_[dimmOfBlock(slab, bit)]++;
        stats_.allocs++;
        stats_.bytesLive += slab.blockSize;
        return slab.blocksBase + bit * slab.blockSize;
    }

    // Next-fit scan over the volatile shadow bitmap.
    for (std::uint64_t probe = 0; probe < slab.blockCount; probe++) {
        const std::uint64_t bit = (slab.cursor + probe) % slab.blockCount;
        const std::uint64_t word = bit / 64;
        const std::uint64_t mask = 1ull << (bit % 64);
        ctx.vLoad(&slab.shadow[word], 8);
        if (slab.shadow[word] & mask)
            continue;
        slab.shadow[word] |= mask;
        ctx.vStore(&slab.shadow[word], 8);
        slab.cursor = (bit + 1) % slab.blockCount;
        persistBitmapWord(ctx, slab.bitmapBase + word * 8,
                          slab.shadow[word]);
        stats_.allocs++;
        stats_.bytesLive += slab.blockSize;
        return slab.blocksBase + bit * slab.blockSize;
    }
    stats_.failedAllocs++;
    return kNullAddr;
}

void
SlabAllocator::free(pm::PmContext &ctx, Addr payload)
{
    std::lock_guard<std::mutex> guard(mtx_);
    std::size_t c = 0;
    std::uint64_t bit = 0;
    panic_if(!locate(payload, c, bit), "free of non-slab offset %llu",
             static_cast<unsigned long long>(payload));
    Slab &slab = slabs_[c];
    const std::uint64_t word = bit / 64;
    const std::uint64_t mask = 1ull << (bit % 64);
    panic_if(!(slab.shadow[word] & mask), "double free at %llu",
             static_cast<unsigned long long>(payload));
    slab.shadow[word] &= ~mask;
    ctx.vStore(&slab.shadow[word], 8);
    persistBitmapWord(ctx, slab.bitmapBase + word * 8, slab.shadow[word]);
    if (dimmBalance_)
        dimmLive_[dimmOfBlock(slab, bit)]--;
    stats_.frees++;
    stats_.bytesLive -= slab.blockSize;
}

void
SlabAllocator::recover(pm::PmContext &ctx)
{
    stats_.bytesLive = 0;
    for (auto &slab : slabs_) {
        const std::uint64_t words = (slab.blockCount + 63) / 64;
        for (std::uint64_t w = 0; w < words; w++) {
            std::uint64_t val = 0;
            ctx.load(slab.bitmapBase + w * 8, &val, 8);
            slab.shadow[w] = val;
        }
        slab.cursor = 0;
        for (std::uint64_t bit = 0; bit < slab.blockCount; bit++) {
            if (slab.shadow[bit / 64] & (1ull << (bit % 64)))
                stats_.bytesLive += slab.blockSize;
        }
    }
    if (dimmBalance_)
        recountDimmLive();
}

void
SlabAllocator::recountDimmLive()
{
    dimmLive_.fill(0);
    for (const auto &slab : slabs_) {
        for (std::uint64_t bit = 0; bit < slab.blockCount; bit++) {
            if (slab.shadow[bit / 64] & (1ull << (bit % 64)))
                dimmLive_[dimmOfBlock(slab, bit)]++;
        }
    }
}

std::uint64_t
SlabAllocator::allocatedIn(std::size_t cls) const
{
    panic_if(cls >= kClasses.size(), "bad class index");
    const Slab &slab = slabs_[cls];
    std::uint64_t n = 0;
    for (std::uint64_t bit = 0; bit < slab.blockCount; bit++) {
        if (slab.shadow[bit / 64] & (1ull << (bit % 64)))
            n++;
    }
    return n;
}

bool
SlabAllocator::isAllocated(Addr payload) const
{
    std::size_t c = 0;
    std::uint64_t bit = 0;
    if (!locate(payload, c, bit))
        return false;
    const Slab &slab = slabs_[c];
    return (slab.shadow[bit / 64] & (1ull << (bit % 64))) != 0;
}

void
SlabAllocator::forEachAllocated(
    const std::function<void(Addr, std::size_t)> &fn) const
{
    for (const auto &slab : slabs_) {
        for (std::uint64_t bit = 0; bit < slab.blockCount; bit++) {
            if (slab.shadow[bit / 64] & (1ull << (bit % 64)))
                fn(slab.blocksBase + bit * slab.blockSize, slab.blockSize);
        }
    }
}

} // namespace whisper::alloc

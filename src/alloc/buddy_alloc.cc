#include "alloc/buddy_alloc.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace whisper::alloc
{

using pm::DataClass;
using pm::FenceKind;

namespace
{
std::size_t
floorPow2(std::size_t v)
{
    return v ? std::size_t(1) << (63 - std::countl_zero(v)) : 0;
}
} // namespace

BuddyAllocator::BuddyAllocator(pm::PmContext &ctx, Addr base,
                               std::size_t size)
    : BuddyAllocator(base, size)
{
    // Format: the whole heap is one free block of maximum order.
    writeHeader(ctx, base_, maxOrder_, BlockState::Free, true);
    pushFree(base_, maxOrder_);
}

BuddyAllocator::BuddyAllocator(Addr base, std::size_t size)
    : base_(base)
{
    size_ = floorPow2(size);
    panic_if(size_ < kMinBlock, "buddy heap smaller than one block");
    maxOrder_ = static_cast<unsigned>(
        std::countr_zero(size_ / kMinBlock));
    freeLists_.resize(maxOrder_ + 1);
}

unsigned
BuddyAllocator::orderFor(std::size_t payload_bytes) const
{
    const std::size_t need = payload_bytes + sizeof(BuddyHeader);
    std::size_t block = kMinBlock;
    unsigned order = 0;
    while (block < need) {
        block <<= 1;
        order++;
    }
    return order;
}

Addr
BuddyAllocator::buddyOf(Addr block, unsigned order) const
{
    const Addr rel = block - base_;
    return base_ + (rel ^ (static_cast<Addr>(kMinBlock) << order));
}

BuddyHeader *
BuddyAllocator::header(pm::PmContext &ctx, Addr block) const
{
    return ctx.pool().at<BuddyHeader>(block);
}

void
BuddyAllocator::writeHeader(pm::PmContext &ctx, Addr block, unsigned order,
                            BlockState st, bool fence_now)
{
    BuddyHeader hdr{BuddyHeader::kMagic, static_cast<std::uint16_t>(order),
                    static_cast<std::uint16_t>(st), 0};
    ctx.store(block, &hdr, sizeof(hdr), DataClass::AllocMeta);
    ctx.flush(block, sizeof(hdr));
    if (fence_now)
        ctx.fence(FenceKind::Ordering);
}

void
BuddyAllocator::pushFree(Addr block, unsigned order)
{
    freeLists_[order].push_back(block);
}

bool
BuddyAllocator::removeFree(Addr block, unsigned order)
{
    auto &list = freeLists_[order];
    auto it = std::find(list.begin(), list.end(), block);
    if (it == list.end())
        return false;
    *it = list.back();
    list.pop_back();
    return true;
}

Addr
BuddyAllocator::alloc(pm::PmContext &ctx, std::size_t n)
{
    std::lock_guard<std::mutex> guard(mtx_);
    const unsigned want = orderFor(n);
    if (want > maxOrder_) {
        stats_.failedAllocs++;
        return kNullAddr;
    }

    // Find the smallest available order >= want.
    unsigned have = want;
    while (have <= maxOrder_ && freeLists_[have].empty())
        have++;
    if (have > maxOrder_) {
        stats_.failedAllocs++;
        return kNullAddr;
    }

    Addr block = freeLists_[have].back();
    freeLists_[have].pop_back();

    // Split down to the wanted order. Each split persists the new
    // buddy's header first, then shrinks the block in place — if we
    // crash mid-way the old (larger) header still describes a valid
    // free block and the half-written buddy is unreachable garbage
    // inside it.
    while (have > want) {
        have--;
        const Addr upper = block + (static_cast<Addr>(kMinBlock) << have);
        writeHeader(ctx, upper, have, BlockState::Free, false);
        writeHeader(ctx, block, have, BlockState::Free, true);
        pushFree(upper, have);
        stats_.splits++;
    }

    // Hand the block out in the VOLATILE state; the caller promotes it
    // to PERSISTENT when its transaction commits. A crash before that
    // promotion reclaims the block (see recover()).
    writeHeader(ctx, block, want, BlockState::Volatile, true);

    stats_.allocs++;
    stats_.bytesLive += static_cast<std::size_t>(kMinBlock) << want;
    return block + sizeof(BuddyHeader);
}

void
BuddyAllocator::free(pm::PmContext &ctx, Addr payload)
{
    std::lock_guard<std::mutex> guard(mtx_);
    Addr block = payload - sizeof(BuddyHeader);
    BuddyHeader *hdr = header(ctx, block);
    panic_if(hdr->magic != BuddyHeader::kMagic,
             "free of a non-block at %llu",
             static_cast<unsigned long long>(payload));
    unsigned order = hdr->order;
    panic_if(hdr->state == static_cast<std::uint16_t>(BlockState::Free),
             "double free at %llu",
             static_cast<unsigned long long>(payload));

    stats_.frees++;
    stats_.bytesLive -= static_cast<std::size_t>(kMinBlock) << order;

    writeHeader(ctx, block, order, BlockState::Free, true);

    // Coalesce with the buddy while possible. Every merge rewrites the
    // surviving header persistently — the metadata churn the paper
    // attributes to single-heap allocators.
    while (order < maxOrder_) {
        const Addr buddy = buddyOf(block, order);
        BuddyHeader *bh = header(ctx, buddy);
        if (bh->magic != BuddyHeader::kMagic || bh->order != order ||
            bh->state != static_cast<std::uint16_t>(BlockState::Free)) {
            break;
        }
        if (!removeFree(buddy, order))
            break;
        block = std::min(block, buddy);
        order++;
        writeHeader(ctx, block, order, BlockState::Free, true);
        stats_.coalesces++;
    }
    pushFree(block, order);
}

void
BuddyAllocator::recover(pm::PmContext &ctx)
{
    for (auto &list : freeLists_)
        list.clear();
    stats_.bytesLive = 0;

    Addr block = base_;
    const Addr end = base_ + size_;
    std::uint64_t reformatted = 0;
    Addr first_bad = 0;
    while (block < end) {
        BuddyHeader *hdr = header(ctx, block);
        if (hdr->magic != BuddyHeader::kMagic) {
            // Unreachable garbage (e.g. torn split, or a header line
            // zero-filled by the media-fault scrub); treat the region
            // as free. This mirrors a fsck-style conservative scan.
            // One summary warn per recovery: fault sweeps reformat
            // thousands of blocks and must not flood the log.
            if (reformatted++ == 0)
                first_bad = block;
            writeHeader(ctx, block, 0, BlockState::Free, true);
            pushFree(block, 0);
            block += kMinBlock;
            continue;
        }
        const unsigned order = hdr->order;
        const std::size_t bytes = static_cast<std::size_t>(kMinBlock)
                                  << order;
        if (hdr->state ==
            static_cast<std::uint16_t>(BlockState::Volatile)) {
            // Allocation that never committed: reclaim.
            writeHeader(ctx, block, order, BlockState::Free, true);
            pushFree(block, order);
        } else if (hdr->state ==
                   static_cast<std::uint16_t>(BlockState::Free)) {
            pushFree(block, order);
        } else {
            stats_.bytesLive += bytes;
        }
        block += bytes;
    }
    if (reformatted > 0) {
        warn("buddy recovery: %llu bad header(s) reformatted "
             "(first at %llu)",
             static_cast<unsigned long long>(reformatted),
             static_cast<unsigned long long>(first_bad));
    }
}

void
BuddyAllocator::setState(pm::PmContext &ctx, Addr payload, BlockState st)
{
    std::lock_guard<std::mutex> guard(mtx_);
    const Addr block = payload - sizeof(BuddyHeader);
    BuddyHeader *hdr = header(ctx, block);
    panic_if(hdr->magic != BuddyHeader::kMagic, "setState on non-block");
    const auto state_val = static_cast<std::uint16_t>(st);
    ctx.storeField(hdr->state, state_val, DataClass::AllocMeta);
    ctx.flush(ctx.pool().offsetOf(&hdr->state), sizeof(hdr->state));
    ctx.fence(FenceKind::Ordering);
}

BlockState
BuddyAllocator::state(pm::PmContext &ctx, Addr payload) const
{
    // Recovery walks hand this pointers read back from PM; after a
    // media fault a zero-filled line can yield an address outside the
    // heap (0 most commonly). Answer Free — "not a persisted block" —
    // instead of dereferencing a wild header, so recovery prunes the
    // referrer rather than panicking.
    if (payload < base_ + sizeof(BuddyHeader) ||
        payload >= base_ + size_) {
        return BlockState::Free;
    }
    const Addr block = payload - sizeof(BuddyHeader);
    const BuddyHeader *hdr = header(ctx, block);
    if (hdr->magic != BuddyHeader::kMagic)
        return BlockState::Free;
    return static_cast<BlockState>(hdr->state);
}

std::uint64_t
BuddyAllocator::freeBlockCount() const
{
    std::uint64_t n = 0;
    for (const auto &list : freeLists_)
        n += list.size();
    return n;
}

} // namespace whisper::alloc

/**
 * @file
 * Multi-slab bitmap allocator (the Mnemosyne design).
 *
 * The region is carved into one slab per size class; each slab keeps a
 * persistent bitmap of allocated blocks and a volatile next-fit cursor
 * that speeds allocation. An allocation writes exactly one bitmap word
 * (store + flush + fence), so the allocator contributes the paper's
 * measured Mnemosyne amplification (one 8-byte metadata write per
 * object, i.e. 300-600% for small objects) and far fewer epochs than
 * the logged NVML allocator.
 *
 * Crash behaviour: the bitmap write is not logged. If the application
 * crashes after the bitmap bit is set but before it links the object,
 * the block is leaked — the documented Mnemosyne trade-off ("allows
 * memory to leak during a failure"). leakCheck() reports such blocks
 * so tests and a GC extension can find them.
 */

#ifndef WHISPER_ALLOC_SLAB_ALLOC_HH
#define WHISPER_ALLOC_SLAB_ALLOC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "alloc/allocator.hh"
#include "common/dimm.hh"

namespace whisper::alloc
{

/**
 * The slab allocator.
 */
class SlabAllocator : public PmAllocator
{
  public:
    /** Block size classes, one slab each. */
    static constexpr std::array<std::size_t, 7> kClasses =
        {64, 128, 256, 512, 1024, 2048, 4096};

    /** Format a new allocator over [base, base+size). */
    SlabAllocator(pm::PmContext &ctx, Addr base, std::size_t size);

    /** Attach to an existing region (call recover() next). */
    SlabAllocator(Addr base, std::size_t size);

    Addr alloc(pm::PmContext &ctx, std::size_t n) override;
    void free(pm::PmContext &ctx, Addr payload) override;
    void recover(pm::PmContext &ctx) override;
    const AllocStats &stats() const override { return stats_; }

    /**
     * Opt in to HESH-style DIMM-balanced placement: alloc() picks
     * the first free block on the DIMM currently holding the fewest
     * of this allocator's live blocks (ties to the lower DIMM),
     * instead of plain next-fit order. Spreads consecutive
     * allocations — and therefore one transaction's flush burst —
     * across the DIMMs. Off by default; the default path stays
     * byte-identical to the historical next-fit allocator.
     */
    void enableDimmBalance(const DimmConfig &dimms);

    /** Live blocks per DIMM (all zero unless balance is enabled). */
    const std::array<std::uint64_t, kMaxDimms> &dimmLiveBlocks() const
    {
        return dimmLive_;
    }

    /** Number of allocated blocks in class @p cls (test helper). */
    std::uint64_t allocatedIn(std::size_t cls) const;

    /** Whether @p payload is currently allocated (recovery helper). */
    bool isAllocated(Addr payload) const;

    /**
     * Visit every allocated payload offset. A garbage collector (the
     * paper's suggested fix for allocator-induced epochs) would mark
     * from the application roots and free what this visits minus the
     * reachable set.
     */
    void forEachAllocated(
        const std::function<void(Addr payload, std::size_t size)> &fn)
        const;

  protected:
    struct Slab
    {
        Addr bitmapBase;        //!< persistent bitmap (8B words)
        Addr blocksBase;        //!< first block
        std::uint64_t blockCount;
        std::size_t blockSize;
        std::uint64_t cursor;   //!< volatile next-fit position
        std::vector<std::uint64_t> shadow; //!< volatile bitmap copy
    };

    /** Class index whose block size fits @p n; kClasses.size() if none. */
    std::size_t classFor(std::size_t n) const;

    /** Locate the slab/bit for a payload offset. */
    bool locate(Addr payload, std::size_t &cls,
                std::uint64_t &bit) const;

    /** Persist one bitmap word mutation. Overridden by NvmlAllocator. */
    virtual void persistBitmapWord(pm::PmContext &ctx, Addr word_off,
                                   std::uint64_t new_val);

    void layout(Addr base, std::size_t size);

    /** Home DIMM of block @p bit of @p slab (balance mode). */
    unsigned dimmOfBlock(const Slab &slab, std::uint64_t bit) const;

    /** Balanced candidate: first free block on the least-loaded
     *  DIMM, or blockCount when the slab is full. */
    std::uint64_t balancedPick(pm::PmContext &ctx,
                               const Slab &slab) const;

    /** Recount dimmLive_ from the shadow bitmaps. */
    void recountDimmLive();

    std::array<Slab, kClasses.size()> slabs_;
    AllocStats stats_;
    bool dimmBalance_ = false;
    DimmConfig dimms_{};
    std::array<std::uint64_t, kMaxDimms> dimmLive_{};
};

} // namespace whisper::alloc

#endif // WHISPER_ALLOC_SLAB_ALLOC_HH

/**
 * @file
 * DIMM interleaving geometry shared by the PM pool, the allocators
 * and the timing simulator's device model.
 *
 * Real PM platforms interleave the physical address space across the
 * DIMMs of a socket at a fixed granularity (4 KB on the Optane
 * systems measured by van Renen et al., "Persistent Memory I/O
 * Primitives", DaMoN'19 — but each DIMM internally operates on 256 B
 * blocks). The mapping is a pure function of the address and the
 * geometry, so every layer that needs it — pool traffic counters,
 * DIMM-balanced placement, per-DIMM service queues in the simulator —
 * can share this one struct without sharing any state.
 */

#ifndef WHISPER_COMMON_DIMM_HH
#define WHISPER_COMMON_DIMM_HH

#include "common/types.hh"

namespace whisper
{

/** Upper bound on modeled DIMMs (fixed-size per-DIMM counter arrays). */
constexpr unsigned kMaxDimms = 8;

/**
 * Address-to-DIMM mapping: @c count DIMMs, interleaved in runs of
 * @c interleaveLines cache lines. The default (one DIMM) makes the
 * mapping degenerate — everything lands on DIMM 0 — which keeps
 * single-device behavior and legacy statistics unchanged.
 */
struct DimmConfig
{
    unsigned count = 1;             //!< DIMMs (clamped to kMaxDimms)
    unsigned interleaveLines = 4;   //!< lines per interleave chunk

    /** Effective DIMM count (never 0, never above kMaxDimms). */
    unsigned
    dimms() const
    {
        const unsigned n = count ? count : 1;
        return n > kMaxDimms ? kMaxDimms : n;
    }

    /** Home DIMM of @p line: pure in (line, *this). */
    unsigned
    dimmOf(LineAddr line) const
    {
        const unsigned chunk = interleaveLines ? interleaveLines : 1;
        return static_cast<unsigned>((line / chunk) % dimms());
    }
};

} // namespace whisper

#endif // WHISPER_COMMON_DIMM_HH

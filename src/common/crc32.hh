/**
 * @file
 * CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * ranges — the media-fault detection code protecting every access
 * layer's critical metadata (DESIGN.md §9).
 *
 * Unlike the XOR-rotate fold it replaced, CRC32 detects all single-
 * and double-bit errors, any odd number of bit errors and every burst
 * up to 32 bits — the error classes a torn 8-byte word or a scrubbed
 * (zero-filled) region of a record produces. Record checksums are
 * computed over the record header with its checksum field zeroed,
 * extended over the payload, so header corruption is caught too.
 */

#ifndef WHISPER_COMMON_CRC32_HH
#define WHISPER_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace whisper
{

/** Incremental CRC32 update: feed ranges in order, seed with 0. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t n);

/** One-shot CRC32 of [data, data+n). */
inline std::uint32_t
crc32(const void *data, std::size_t n)
{
    return crc32Update(0, data, n);
}

} // namespace whisper

#endif // WHISPER_COMMON_CRC32_HH

/**
 * @file
 * Tiny declarative command-line flag parser.
 *
 * The whisper_cli subcommands used to hand-roll the same
 * strcmp/strtoull chains per command; this helper expresses each
 * subcommand as a table of flag bindings plus positional arguments.
 * It intentionally supports only what the CLI needs — `--flag value`
 * pairs (no `=` syntax, matching the historical surface), valueless
 * boolean switches, and free positionals — and reports the first
 * error as a message the caller prints before its usage text.
 */

#ifndef WHISPER_COMMON_FLAGS_HH
#define WHISPER_COMMON_FLAGS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace whisper
{

/** Parse a u64 (decimal, or hex with 0x); false on garbage. */
bool parseU64(const char *s, std::uint64_t &out);

/**
 * One subcommand's flag table. Bind flags, then parse():
 *
 *   FlagParser fp;
 *   fp.u64("--ops", &ops, 1).flag("--json", &json);
 *   if (!fp.parse(argc, argv)) { print fp.error(); return usage(); }
 *
 * Flags may interleave with positionals but each may be given at most
 * once — a repeated flag is an error, not a silent last-one-wins (a
 * doubled flag in a pasted reproducer command is almost always an
 * editing mistake worth hearing about). command() names the
 * subcommand so every error message says which flag table rejected
 * the input.
 */
class FlagParser
{
  public:
    /** Handler for custom(): parses the value, false = bad value. */
    using Handler = std::function<bool(const char *value)>;

    /** Subcommand name prefixed onto every error() message. */
    FlagParser &command(const char *name);

    /** Valueless switch: presence sets @p out to true. */
    FlagParser &flag(const char *name, bool *out);

    /** u64 value (parseU64 syntax), rejected when below @p min. */
    FlagParser &u64(const char *name, std::uint64_t *out,
                    std::uint64_t min = 0);

    /** Like u64() but narrowing into an unsigned. */
    FlagParser &u32(const char *name, unsigned *out,
                    unsigned min = 0);

    /** A size given in MiB, stored in bytes. */
    FlagParser &megabytes(const char *name, std::size_t *out,
                          std::size_t min_mb = 1);

    /** Raw string value. */
    FlagParser &str(const char *name, const char **out);

    /** Value handed to @p fn (validation/decoding on the caller). */
    FlagParser &custom(const char *name, Handler fn);

    /** Cap on positional (non-flag) arguments; default unlimited. */
    FlagParser &maxPositionals(std::size_t n);

    /**
     * Parse argv[start..argc). Returns false on an unknown flag, a
     * missing or invalid value, or excess positionals; error() then
     * describes the failure.
     */
    bool parse(int argc, char **argv, int start = 2);

    const std::vector<const char *> &positionals() const
    {
        return positionals_;
    }
    const std::string &error() const { return error_; }

  private:
    struct Spec
    {
        std::string name;
        bool takesValue = true;
        Handler handler;
        bool seen = false; //!< reset by parse(); repeats are errors
    };

    FlagParser &add(const char *name, bool takes_value, Handler fn);
    bool fail(std::string msg);

    std::vector<Spec> specs_;
    std::vector<const char *> positionals_;
    std::size_t maxPositionals_ = ~std::size_t(0);
    std::string command_;
    std::string error_;
};

} // namespace whisper

#endif // WHISPER_COMMON_FLAGS_HH

/**
 * @file
 * Small fork/join thread pool for sharded trace analysis.
 *
 * The pool exists to fan *deterministic* work out across cores: a
 * caller splits a pass into independently computable shards, the pool
 * runs shard bodies on its workers, and every shard writes only into
 * its own slot of a results vector. Reduction then happens on the
 * calling thread, in shard-index order, so the merged result is
 * bit-identical at any worker count — the property the parallel
 * analysis pipeline (analysis/pipeline.hh) relies on.
 */

#ifndef WHISPER_COMMON_THREAD_POOL_HH
#define WHISPER_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace whisper
{

/** One contiguous [begin, end) slice of a sharded index space. */
struct ShardRange
{
    std::size_t begin;
    std::size_t end;

    std::size_t size() const { return end - begin; }
};

/**
 * Split @p total items into at most @p shards near-equal contiguous
 * ranges (never empty; fewer ranges than @p shards when total is
 * small). The split depends only on (total, shards), never on timing.
 */
std::vector<ShardRange> shardRanges(std::size_t total,
                                    std::size_t shards);

/**
 * Fixed-size worker pool with a fork/join parallelFor.
 *
 * Workers are started once and reused across calls; parallelFor hands
 * out indices through an atomic counter, so shards are load-balanced
 * dynamically while results stay deterministic (each index owns its
 * output slot). A pool of <= 1 worker runs everything inline on the
 * calling thread — the jobs=1 path is genuinely sequential.
 */
class ThreadPool
{
  public:
    /** @p workers threads; 0 picks the hardware concurrency. */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (>= 1; 1 means inline execution). */
    unsigned workerCount() const { return workers_; }

    /**
     * Run @p body(i) for every i in [0, count), distributing indices
     * across the workers, and return once all calls finished. The
     * calling thread participates, so a 1-worker pool (or count <= 1)
     * degenerates to a plain sequential loop. Exceptions thrown by
     * @p body are rethrown on the calling thread after the join.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Deterministic map: run @p fn over [0, count) and collect the
     * per-index results in index order, whatever the execution
     * interleaving was. The canonical shard-then-join helper: callers
     * fold the returned vector front to back.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        std::vector<decltype(fn(std::size_t{0}))> out(count);
        parallelFor(count,
                    [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Reasonable default worker count for this machine (>= 1). */
    static unsigned defaultWorkers();

  private:
    struct Batch;

    void workerLoop();
    void runBatch(Batch &batch);

    unsigned workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::shared_ptr<Batch> batch_;  //!< current fork, null when idle
    std::uint64_t generation_ = 0;  //!< bumped per fork to wake workers
    bool stopping_ = false;
};

} // namespace whisper

#endif // WHISPER_COMMON_THREAD_POOL_HH

/**
 * @file
 * Deterministic random-number generation for workloads and crash tests.
 *
 * A small xoshiro256** engine keeps every experiment reproducible from
 * a single seed, independent of the standard library implementation.
 * ZipfianGenerator reproduces the skewed key popularity of YCSB.
 */

#ifndef WHISPER_COMMON_RNG_HH
#define WHISPER_COMMON_RNG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace whisper
{

/**
 * xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
 *
 * Seeded through splitmix64 so that nearby seeds give unrelated
 * streams. Satisfies UniformRandomBitGenerator.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t next(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial that succeeds with probability @p p. */
    bool chance(double p);

    /** Random printable-ASCII string of exactly @p len bytes. */
    std::string nextString(std::size_t len);

    /** Fork an independent stream (for per-thread generators). */
    Rng split();

  private:
    std::uint64_t s[4];
};

/**
 * Zipfian key-popularity generator over [0, n), YCSB-style.
 *
 * Uses the Gray et al. rejection-free method; theta defaults to the
 * YCSB constant 0.99.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw one key; hot keys are the small indices. */
    std::uint64_t next(Rng &rng) const;

    std::uint64_t itemCount() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;

    static double zeta(std::uint64_t n, double theta);
};

/**
 * Counter with a random starting point: generates each value in
 * [0, n) exactly once, in a scrambled order (for loads).
 *
 * The visit order is a true bijection for every domain size: a keyed
 * mix (odd multiply, xor-shift, add — each invertible modulo the next
 * power of two above @p n) is cycle-walked until it lands inside
 * [0, n). Since [0, n) covers at least half of the walked domain, the
 * walk takes two steps in expectation and always terminates (the
 * cycle containing a start below @p n re-enters [0, n) at the start
 * itself, at the latest).
 */
class ScrambledSequence
{
  public:
    ScrambledSequence(std::uint64_t n, Rng &rng);

    /** i-th element of the permutation; @p i must be below n. */
    std::uint64_t at(std::uint64_t i) const;

  private:
    std::uint64_t permute(std::uint64_t x) const;

    std::uint64_t n_;
    std::uint64_t mask_;
    std::uint64_t mult_;
    std::uint64_t add_;
    unsigned bits_;
};

} // namespace whisper

#endif // WHISPER_COMMON_RNG_HH

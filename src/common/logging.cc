#include "common/logging.hh"

#include <cstdarg>
#include <mutex>

namespace whisper
{

namespace
{
LogLevel threshold = LogLevel::Inform;
std::mutex logMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}
} // namespace

void
setLogThreshold(LogLevel level)
{
    threshold = level;
}

namespace detail
{

std::string
formatv(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(args);
    return out;
}

void
logNote(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(threshold))
        return;
    std::lock_guard<std::mutex> guard(logMutex);
    std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
}

void
logFatal(LogLevel level, const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(logMutex);
        std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level),
                     msg.c_str(), file, line);
    }
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace whisper

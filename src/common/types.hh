/**
 * @file
 * Fundamental types shared across the WHISPER reproduction.
 *
 * Addresses inside the persistent pool are plain 64-bit offsets from
 * the pool base (never raw pointers), so that persistent links remain
 * valid across simulated crashes and re-mounts.
 */

#ifndef WHISPER_COMMON_TYPES_HH
#define WHISPER_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace whisper
{

/** Byte offset into a persistent pool. */
using Addr = std::uint64_t;

/** Cache-line index (Addr >> 6). */
using LineAddr = std::uint64_t;

/** Logical timestamp in ticks; 1 tick == 1 ns of simulated time. */
using Tick = std::uint64_t;

/** Hardware-thread identifier. */
using ThreadId = std::uint32_t;

/** Transaction identifier, unique per thread trace. */
using TxId = std::uint64_t;

/** Cache-line size assumed throughout the suite (x86-64). */
constexpr std::size_t kCacheLineSize = 64;

/** log2 of the cache-line size. */
constexpr unsigned kCacheLineBits = 6;

/** Ticks per microsecond under the 1 tick == 1 ns convention. */
constexpr Tick kTicksPerUs = 1000;

/** Dependency window used by the paper's epoch analysis (50 us). */
constexpr Tick kDependencyWindow = 50 * kTicksPerUs;

/** Invalid/sentinel offset inside a persistent pool. */
constexpr Addr kNullAddr = ~static_cast<Addr>(0);

/** Map a byte offset to the cache line that contains it. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> kCacheLineBits;
}

/** First byte offset of the line containing @p addr. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~static_cast<Addr>(kCacheLineSize - 1);
}

/** Number of distinct cache lines touched by [addr, addr+size). */
constexpr std::uint64_t
linesSpanned(Addr addr, std::size_t size)
{
    if (size == 0)
        return 0;
    return lineOf(addr + size - 1) - lineOf(addr) + 1;
}

} // namespace whisper

#endif // WHISPER_COMMON_TYPES_HH

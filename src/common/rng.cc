#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace whisper
{

namespace
{
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::next(std::uint64_t bound)
{
    panic_if(bound == 0, "Rng::next(0)");
    // Lemire's multiply-shift bounded generation (no modulo bias for
    // the bound sizes used here).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    panic_if(lo > hi, "Rng::range with lo > hi");
    return lo + next(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

std::string
Rng::nextString(std::size_t len)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out(len, '\0');
    for (auto &c : out)
        c = alphabet[next(sizeof(alphabet) - 1)];
    return out;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    panic_if(n == 0, "ZipfianGenerator over empty domain");
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
}

ScrambledSequence::ScrambledSequence(std::uint64_t n, Rng &rng)
    : n_(n)
{
    panic_if(n == 0, "ScrambledSequence over empty domain");
    bits_ = 1;
    while (bits_ < 64 && (std::uint64_t(1) << bits_) < n)
        bits_++;
    mask_ = bits_ == 64 ? ~std::uint64_t(0)
                        : (std::uint64_t(1) << bits_) - 1;
    mult_ = rng() | 1;
    add_ = rng();
}

std::uint64_t
ScrambledSequence::permute(std::uint64_t x) const
{
    // Each step is invertible on the low bits_ bits: odd multiply and
    // add modulo 2^bits_, xor with a right shift of at least one.
    x = (x * mult_) & mask_;
    x ^= x >> (bits_ / 2 + 1);
    x = (x + add_) & mask_;
    x = (x * mult_) & mask_;
    x ^= x >> (bits_ / 3 + 1);
    return x;
}

std::uint64_t
ScrambledSequence::at(std::uint64_t i) const
{
    // Cycle-walk the keyed permutation of [0, 2^bits_) until it lands
    // inside [0, n): the first-return map is a bijection of [0, n).
    std::uint64_t x = i;
    do {
        x = permute(x);
    } while (x >= n_);
    return x;
}

} // namespace whisper

/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.
 *
 * Every bench binary prints the rows of one paper table or figure;
 * this formatter keeps their output aligned and diffable.
 */

#ifndef WHISPER_COMMON_TABLE_HH
#define WHISPER_COMMON_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace whisper
{

/**
 * Column-aligned text table with a title, header row and data rows.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title);

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append one data row (must match the header width). */
    void row(std::vector<std::string> cells);

    /** Render with padding, separators and the title banner. */
    std::string render() const;

    /** Render straight to stdout. */
    void print() const;

    /** Helpers for common cell types. */
    static std::string num(std::uint64_t v);
    static std::string fixed(double v, int decimals = 2);
    static std::string percent(double fraction, int decimals = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace whisper

#endif // WHISPER_COMMON_TABLE_HH

#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace whisper
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    panic_if(!header_.empty() && cells.size() != header_.size(),
             "table row width %zu != header width %zu",
             cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); i++)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream out;
    out << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); i++) {
            out << cells[i];
            if (i + 1 < cells.size()) {
                out << std::string(widths[i] - cells[i].size() + 2, ' ');
            }
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); i++)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

void
TextTable::print() const
{
    const std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
}

std::string
TextTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::fixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::percent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace whisper

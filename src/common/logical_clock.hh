/**
 * @file
 * Global logical clock stamping every trace event.
 *
 * The paper timestamps PM operations with ftrace's global clock and
 * defines epoch dependencies over a 50 us window. We use a process-wide
 * monotonic atomic counter where one tick nominally equals one
 * nanosecond; instrumented operations advance it by small costs so
 * that inter-thread windows and rates (Table 1 epochs/second) are
 * meaningful and fully deterministic.
 */

#ifndef WHISPER_COMMON_LOGICAL_CLOCK_HH
#define WHISPER_COMMON_LOGICAL_CLOCK_HH

#include <atomic>

#include "common/types.hh"

namespace whisper
{

/**
 * Monotonic, process-wide tick source.
 *
 * advance() models the cost of an instrumented operation; all threads
 * share the counter, so cross-thread timestamp comparisons are valid.
 */
class LogicalClock
{
  public:
    /** Current time without advancing. */
    Tick now() const { return ticks.load(std::memory_order_relaxed); }

    /** Advance by @p cost ticks and return the *new* time. */
    Tick
    advance(Tick cost)
    {
        return ticks.fetch_add(cost, std::memory_order_relaxed) + cost;
    }

    /** Reset to zero (only between experiments). */
    void reset() { ticks.store(0, std::memory_order_relaxed); }

    /** Nominal per-operation costs, in ticks (1 tick == 1 ns). */
    static constexpr Tick kStoreCost = 2;
    static constexpr Tick kLoadCost = 2;
    static constexpr Tick kFlushCost = 40;
    static constexpr Tick kFenceCost = 100;
    static constexpr Tick kNtStoreCost = 10;

  private:
    std::atomic<Tick> ticks{0};
};

} // namespace whisper

#endif // WHISPER_COMMON_LOGICAL_CLOCK_HH

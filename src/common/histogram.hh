/**
 * @file
 * Histograms and distribution summaries used by the trace analysis.
 *
 * The paper reports epoch-size and transaction-size results either as
 * fixed buckets (Figure 4: 1, 2, 3, 4, 5, 6-63, >=64) or as medians
 * (Figure 3), so both exact-value accumulation and custom bucketing
 * are supported.
 */

#ifndef WHISPER_COMMON_HISTOGRAM_HH
#define WHISPER_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace whisper
{

/**
 * Exact-valued histogram over non-negative integers.
 *
 * Keeps a map of value -> count; fine for the value ranges in this
 * suite (epoch sizes, epochs per transaction).
 */
class Histogram
{
  public:
    /** Record one sample. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** p-quantile in [0,1] by cumulative counts; 0 when empty. */
    std::uint64_t quantile(double p) const;

    /** Median, i.e. quantile(0.5). */
    std::uint64_t median() const { return quantile(0.5); }

    std::uint64_t minValue() const;
    std::uint64_t maxValue() const;

    /** Fraction of samples with exactly @p value. */
    double fractionAt(std::uint64_t value) const;

    /** Fraction of samples within [lo, hi] inclusive. */
    double fractionIn(std::uint64_t lo, std::uint64_t hi) const;

    const std::map<std::uint64_t, std::uint64_t> &values() const
    {
        return values_;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> values_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * One labelled bucket of a BucketedDistribution.
 */
struct Bucket
{
    std::string label;  //!< e.g. "6-63"
    std::uint64_t lo;   //!< inclusive
    std::uint64_t hi;   //!< inclusive
};

/**
 * Histogram folded into the paper's fixed Figure-4 buckets.
 */
class BucketedDistribution
{
  public:
    explicit BucketedDistribution(std::vector<Bucket> buckets);

    /** The Figure 4 bucketing: 1, 2, 3, 4, 5, 6-63, >=64. */
    static BucketedDistribution epochSizeBuckets();

    /** Fold @p hist into the buckets; returns per-bucket fractions. */
    std::vector<double> fractions(const Histogram &hist) const;

    const std::vector<Bucket> &buckets() const { return buckets_; }

  private:
    std::vector<Bucket> buckets_;
};

} // namespace whisper

#endif // WHISPER_COMMON_HISTOGRAM_HH

/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic() is for internal invariant violations (a bug in this suite);
 * fatal() is for user/configuration errors; warn()/inform() report
 * conditions without stopping execution.
 */

#ifndef WHISPER_COMMON_LOGGING_HH
#define WHISPER_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace whisper
{

/** Severity attached to each log record. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail
{
/** Emit one formatted record to stderr and handle termination. */
[[noreturn]] void logFatal(LogLevel level, const char *file, int line,
                           const std::string &msg);
void logNote(LogLevel level, const std::string &msg);
std::string formatv(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

/** Minimum level that is actually printed (tests silence Inform). */
void setLogThreshold(LogLevel level);

} // namespace whisper

/** Abort: an invariant inside the suite itself was violated. */
#define panic(...)                                                         \
    ::whisper::detail::logFatal(::whisper::LogLevel::Panic, __FILE__,      \
                                __LINE__,                                  \
                                ::whisper::detail::formatv(__VA_ARGS__))

/** Exit(1): the user asked for something unsupported or inconsistent. */
#define fatal(...)                                                         \
    ::whisper::detail::logFatal(::whisper::LogLevel::Fatal, __FILE__,      \
                                __LINE__,                                  \
                                ::whisper::detail::formatv(__VA_ARGS__))

/** Continue, but flag possibly incorrect behaviour. */
#define warn(...)                                                          \
    ::whisper::detail::logNote(::whisper::LogLevel::Warn,                  \
                               ::whisper::detail::formatv(__VA_ARGS__))

/** Continue; purely informational. */
#define inform(...)                                                        \
    ::whisper::detail::logNote(::whisper::LogLevel::Inform,                \
                               ::whisper::detail::formatv(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            panic(__VA_ARGS__);                                            \
    } while (0)

#endif // WHISPER_COMMON_LOGGING_HH

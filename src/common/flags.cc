#include "common/flags.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace whisper
{

bool
parseU64(const char *s, std::uint64_t &out)
{
    if (!s || !*s)
        return false;
    char *end = nullptr;
    errno = 0;
    // Base 0: plain decimal plus 0x-prefixed hex — crashfuzz replay
    // commands round-trip seeds and schedules in hex.
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (errno != 0 || end == s || *end != '\0')
        return false;
    out = v;
    return true;
}

FlagParser &
FlagParser::add(const char *name, bool takes_value, Handler fn)
{
    specs_.push_back(Spec{name, takes_value, std::move(fn)});
    return *this;
}

FlagParser &
FlagParser::flag(const char *name, bool *out)
{
    return add(name, false, [out](const char *) {
        *out = true;
        return true;
    });
}

FlagParser &
FlagParser::u64(const char *name, std::uint64_t *out, std::uint64_t min)
{
    return add(name, true, [out, min](const char *v) {
        std::uint64_t parsed = 0;
        if (!parseU64(v, parsed) || parsed < min)
            return false;
        *out = parsed;
        return true;
    });
}

FlagParser &
FlagParser::u32(const char *name, unsigned *out, unsigned min)
{
    return add(name, true, [out, min](const char *v) {
        std::uint64_t parsed = 0;
        if (!parseU64(v, parsed) || parsed < min ||
            parsed > ~0u)
            return false;
        *out = static_cast<unsigned>(parsed);
        return true;
    });
}

FlagParser &
FlagParser::megabytes(const char *name, std::size_t *out,
                      std::size_t min_mb)
{
    return add(name, true, [out, min_mb](const char *v) {
        std::uint64_t mb = 0;
        if (!parseU64(v, mb) || mb < min_mb)
            return false;
        *out = static_cast<std::size_t>(mb) << 20;
        return true;
    });
}

FlagParser &
FlagParser::str(const char *name, const char **out)
{
    return add(name, true, [out](const char *v) {
        *out = v;
        return true;
    });
}

FlagParser &
FlagParser::custom(const char *name, Handler fn)
{
    return add(name, true, std::move(fn));
}

FlagParser &
FlagParser::maxPositionals(std::size_t n)
{
    maxPositionals_ = n;
    return *this;
}

FlagParser &
FlagParser::command(const char *name)
{
    command_ = name;
    return *this;
}

bool
FlagParser::fail(std::string msg)
{
    error_ = command_.empty() ? std::move(msg)
                              : command_ + ": " + msg;
    return false;
}

bool
FlagParser::parse(int argc, char **argv, int start)
{
    positionals_.clear();
    error_.clear();
    for (Spec &s : specs_)
        s.seen = false;
    for (int i = start; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0) {
            if (positionals_.size() >= maxPositionals_)
                return fail(std::string("unexpected argument '") +
                            arg + "'");
            positionals_.push_back(arg);
            continue;
        }
        Spec *spec = nullptr;
        for (Spec &s : specs_) {
            if (s.name == arg) {
                spec = &s;
                break;
            }
        }
        if (!spec)
            return fail(std::string("unknown flag '") + arg + "'");
        if (spec->seen)
            return fail(std::string("flag '") + arg +
                        "' given twice");
        spec->seen = true;
        if (!spec->takesValue) {
            spec->handler(nullptr);
            continue;
        }
        if (i + 1 >= argc)
            return fail(std::string("missing value for ") + arg);
        const char *value = argv[++i];
        if (!spec->handler(value))
            return fail(std::string("bad value for ") + arg + ": '" +
                        value + "'");
    }
    return true;
}

} // namespace whisper

#include "common/crc32.hh"

#include <array>

namespace whisper
{

namespace
{

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t n)
{
    static const std::array<std::uint32_t, 256> table = makeTable();
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    crc ^= 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; i++)
        crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace whisper

#include "common/thread_pool.hh"

#include <exception>
#include <memory>

namespace whisper
{

std::vector<ShardRange>
shardRanges(std::size_t total, std::size_t shards)
{
    std::vector<ShardRange> out;
    if (total == 0 || shards == 0)
        return out;
    if (shards > total)
        shards = total;
    const std::size_t base = total / shards;
    const std::size_t extra = total % shards;
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shards; s++) {
        const std::size_t len = base + (s < extra ? 1 : 0);
        out.push_back({begin, begin + len});
        begin += len;
    }
    return out;
}

/**
 * One parallelFor invocation: shared index cursor plus join
 * bookkeeping. Heap-held via shared_ptr so a worker that drains the
 * cursor after the joiner already left cannot touch freed memory.
 */
struct ThreadPool::Batch
{
    std::size_t count = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<std::size_t> next{0};    //!< index hand-out cursor
    std::atomic<std::size_t> pending{0}; //!< indices not yet finished
    std::exception_ptr error;            //!< first failure, if any
    std::mutex errorMutex;
};

unsigned
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers > 0 ? workers : defaultWorkers())
{
    // The calling thread always participates in parallelFor, so only
    // workers_-1 helpers are needed.
    for (unsigned i = 1; i < workers_; i++)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::runBatch(Batch &batch)
{
    for (;;) {
        const std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.count)
            return;
        try {
            (*batch.body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(batch.errorMutex);
            if (!batch.error)
                batch.error = std::current_exception();
        }
        if (batch.pending.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            // Last index retired: wake the joiner.
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
            batch = batch_;
        }
        if (batch)
            runBatch(*batch);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_ <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; i++)
            body(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->count = count;
    batch->body = &body;
    batch->pending.store(count, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = batch;
        generation_++;
    }
    wake_.notify_all();

    runBatch(*batch);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return batch->pending.load(std::memory_order_acquire) ==
                   0;
        });
        batch_.reset();
    }
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace whisper

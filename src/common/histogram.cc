#include "common/histogram.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace whisper
{

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    values_[value] += weight;
    count_ += weight;
    sum_ += value * weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[value, weight] : other.values_)
        values_[value] += weight;
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
Histogram::quantile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (const auto &[value, weight] : values_) {
        seen += weight;
        if (seen > target)
            return value;
    }
    return values_.rbegin()->first;
}

std::uint64_t
Histogram::minValue() const
{
    return values_.empty() ? 0 : values_.begin()->first;
}

std::uint64_t
Histogram::maxValue() const
{
    return values_.empty() ? 0 : values_.rbegin()->first;
}

double
Histogram::fractionAt(std::uint64_t value) const
{
    if (count_ == 0)
        return 0.0;
    auto it = values_.find(value);
    if (it == values_.end())
        return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(count_);
}

double
Histogram::fractionIn(std::uint64_t lo, std::uint64_t hi) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t in = 0;
    for (auto it = values_.lower_bound(lo);
         it != values_.end() && it->first <= hi; ++it) {
        in += it->second;
    }
    return static_cast<double>(in) / static_cast<double>(count_);
}

BucketedDistribution::BucketedDistribution(std::vector<Bucket> buckets)
    : buckets_(std::move(buckets))
{
    panic_if(buckets_.empty(), "BucketedDistribution with no buckets");
}

BucketedDistribution
BucketedDistribution::epochSizeBuckets()
{
    const auto top = std::numeric_limits<std::uint64_t>::max();
    return BucketedDistribution({
        {"1", 1, 1}, {"2", 2, 2}, {"3", 3, 3}, {"4", 4, 4},
        {"5", 5, 5}, {"6-63", 6, 63}, {">=64", 64, top},
    });
}

std::vector<double>
BucketedDistribution::fractions(const Histogram &hist) const
{
    std::vector<double> out;
    out.reserve(buckets_.size());
    for (const auto &bucket : buckets_)
        out.push_back(hist.fractionIn(bucket.lo, bucket.hi));
    return out;
}

} // namespace whisper

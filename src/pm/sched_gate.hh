/**
 * @file
 * Deterministic PM-op schedule gate for multi-threaded crash fuzzing.
 *
 * A crash point is "the K-th persistent-memory operation the run
 * issues". With several threads racing, that global index is only
 * meaningful if the interleaving of PM ops is pinned. SchedGate pins
 * it: every PM op runs inside a gate *turn*, and turns are handed to
 * threads in a sequence derived purely from a seed — so the same
 * (case, schedule) pair always produces the same global op order, the
 * same crash prefix, and the same post-crash image. `crashfuzz
 * --replay ... --schedule 0x...` reproduces an interleaving exactly.
 *
 * Properties that keep the sequence deterministic regardless of
 * wall-clock timing:
 *  - The owner of turn k is draw(seed, slot) for an increasing slot
 *    counter, skipping threads that have left the schedule. A thread
 *    that was drawn and then found to have exited consumes exactly
 *    the slot a skip would have consumed, so arrival order of
 *    deactivate() calls cannot perturb the sequence.
 *  - Turns are reentrant (a durability point may span many PM ops as
 *    one turn).
 *  - Once the crash fires, open() turns the gate into a pass-through:
 *    the machine is off, remaining ops are dropped anyway.
 *
 * The gate deadlocks if a thread blocks on an application lock held
 * by a thread that is waiting for its turn; gated workloads must
 * therefore be partitioned (disjoint stripes, per-thread arenas).
 * A watchdog panics with a diagnosis instead of hanging forever.
 */

#ifndef WHISPER_PM_SCHED_GATE_HH
#define WHISPER_PM_SCHED_GATE_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hh"

namespace whisper::pm
{

class SchedGate
{
  public:
    SchedGate(unsigned threads, std::uint64_t seed);

    /** Back to the initial schedule (all threads active, slot 0). */
    void reset();

    /** Block until it is @p tid's turn. Reentrant. */
    void acquire(ThreadId tid);

    /** End @p tid's turn (outermost release picks the next owner). */
    void release(ThreadId tid);

    /** @p tid leaves the schedule (its workload is done). */
    void deactivate(ThreadId tid);

    /** Pass-through mode: every acquire returns immediately. */
    void open();

    unsigned threads() const { return threads_; }

  private:
    void pickLocked();

    const unsigned threads_;
    const std::uint64_t seed_;

    std::mutex m_;
    std::condition_variable cv_;
    std::uint64_t slot_ = 0;
    int owner_ = -1;
    unsigned depth_ = 0;
    std::vector<char> active_;
    bool open_ = false;
};

/**
 * RAII gate turn. Null-gate tolerant, so call sites can pass the gate
 * pointer straight from the crash plan (nullptr when ungated).
 */
class GateTurn
{
  public:
    GateTurn(SchedGate *gate, ThreadId tid) : gate_(gate), tid_(tid)
    {
        if (gate_)
            gate_->acquire(tid_);
    }

    ~GateTurn()
    {
        if (gate_)
            gate_->release(tid_);
    }

    GateTurn(const GateTurn &) = delete;
    GateTurn &operator=(const GateTurn &) = delete;

  private:
    SchedGate *gate_;
    ThreadId tid_;
};

} // namespace whisper::pm

#endif // WHISPER_PM_SCHED_GATE_HH

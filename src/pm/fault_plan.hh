/**
 * @file
 * Deterministic PM media-fault model.
 *
 * Real PM devices fail below the crash-consistency layer: a line can
 * come back unreadable after power loss (an uncorrectable media error
 * — the DIMM poisons the line and loads take a machine check), a line
 * caught mid-write can tear at the device's write granularity (8-byte
 * words on the platforms the paper measures, not whole cache lines),
 * and marginal cells produce transient read faults that succeed on
 * retry. A FaultPlan scripts all three from one seed so a crash-fuzz
 * case — (crash point x fault plan) — replays bit-identically.
 *
 * The model deliberately binds media damage to the crash: poison and
 * tearing are drawn from the *dirty* line set at crash time (lines
 * with writes in flight are the ones a power cut catches mid-program),
 * so the traced fast path sees no new PM operations and the paper's
 * fence/epoch counts are untouched. Transient read faults are the one
 * runtime effect: an occasional load retries internally, visible only
 * in the pool's fault counters.
 */

#ifndef WHISPER_PM_FAULT_PLAN_HH
#define WHISPER_PM_FAULT_PLAN_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace whisper::pm
{

/**
 * A poisoned line was read: the simulated DIMM raised an
 * uncorrectable media error. Recoverable — the scrub pass catches it,
 * clears the poison and repairs or degrades; nothing on the recovery
 * path may let it propagate as a panic.
 */
class PmMediaError : public std::runtime_error
{
  public:
    PmMediaError(Addr off, LineAddr line)
        : std::runtime_error("uncorrectable PM media error at offset " +
                             std::to_string(off) + " (line " +
                             std::to_string(line) + ")"),
          off(off), line(line)
    {
    }

    Addr off;      //!< faulting byte offset
    LineAddr line; //!< faulting cache line
};

/**
 * Seeded script of media faults, the fault-dimension analogue of
 * CrashPlan. Default-constructed plans inject nothing.
 */
struct FaultPlan
{
    std::uint64_t seed = 0;

    /** Lines lost outright at the crash (uncorrectable, poisoned). */
    std::uint32_t poisonCount = 0;

    /**
     * Probability that a surviving dirty line tears at 8-byte-word
     * granularity instead of persisting whole.
     */
    double tearProb = 0.0;

    /**
     * Every @c transientEvery-th load takes a transient (retryable)
     * read fault; 0 disables. Retries always succeed within
     * @c transientRetries attempts, so transients are invisible
     * outside the fault counters.
     */
    std::uint32_t transientEvery = 0;
    std::uint32_t transientRetries = 2;

    bool
    none() const
    {
        return poisonCount == 0 && tearProb == 0.0 &&
               transientEvery == 0;
    }
};

/** One torn line: only the masked 8-byte words reached the media. */
struct TornLine
{
    LineAddr line;
    std::uint8_t mask; //!< bit i set => word i (bytes [8i, 8i+8)) persisted
};

/**
 * A FaultPlan resolved against a concrete crash: which lines tear
 * (with their word masks) and which are poisoned. Deterministic in
 * (plan.seed, survivors, dirty set) — fold into fuzz digests and
 * replay verbatim.
 */
struct FaultResolution
{
    std::vector<TornLine> torn;
    std::vector<LineAddr> poisoned;

    bool
    none() const
    {
        return torn.empty() && poisoned.empty();
    }
};

} // namespace whisper::pm

#endif // WHISPER_PM_FAULT_PLAN_HH

/**
 * @file
 * Typed persistent offsets.
 *
 * Persistent data structures must not embed virtual addresses: after a
 * crash and re-mount the pool may live elsewhere. POff<T> is a 64-bit
 * pool offset with a typed deref, the moral equivalent of NVML's
 * PMEMoid or Mnemosyne's persistent pointers.
 */

#ifndef WHISPER_PM_POFF_HH
#define WHISPER_PM_POFF_HH

#include "pm/pm_pool.hh"

namespace whisper::pm
{

/**
 * Offset of a T inside a PmPool.
 *
 * Trivially copyable; the null value is kNullAddr so that zero-filled
 * PM is *not* accidentally a valid pointer — freshly allocated
 * structures must set their links explicitly.
 */
template <typename T>
struct POff
{
    Addr off = kNullAddr;

    POff() = default;
    explicit POff(Addr o) : off(o) {}

    static POff null() { return POff(); }

    bool isNull() const { return off == kNullAddr; }
    explicit operator bool() const { return !isNull(); }

    bool operator==(const POff &other) const { return off == other.off; }
    bool operator!=(const POff &other) const { return off != other.off; }

    /** Deref against a pool's architectural image. */
    T *get(PmPool &pool) const { return pool.at<T>(off); }
    const T *get(const PmPool &pool) const { return pool.at<T>(off); }

    /** Deref against the durable image (recovery inspection). */
    const T *
    durable(const PmPool &pool) const
    {
        return pool.durableAt<T>(off);
    }

};

/** Offset of a member of a POff-referenced struct (fine stores). */
template <typename T, typename M>
Addr
memberOff(PmPool &pool, const POff<T> &obj, const M T::*member)
{
    return pool.offsetOf(&(obj.get(pool)->*member));
}

} // namespace whisper::pm

#endif // WHISPER_PM_POFF_HH

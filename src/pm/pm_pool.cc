#include "pm/pm_pool.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace whisper::pm
{

PmPool::PmPool(std::size_t size, const DimmConfig &dimms)
    : size_(size),
      dimms_(dimms),
      arch_(size, 0),
      durable_(size, 0),
      lineStates_((size + kCacheLineSize - 1) / kCacheLineSize),
      poisoned_((size + kCacheLineSize - 1) / kCacheLineSize)
{
    panic_if(size == 0, "empty PmPool");
    for (auto &st : lineStates_)
        st.store(0, std::memory_order_relaxed);
    for (auto &p : poisoned_)
        p.store(0, std::memory_order_relaxed);
}

void
PmPool::boundsCheck(Addr off, std::size_t n) const
{
    panic_if(off > size_ || n > size_ - off,
             "PM access [%llu, +%zu) outside pool of %zu bytes",
             static_cast<unsigned long long>(off), n, size_);
}

Addr
PmPool::offsetOf(const void *p) const
{
    const auto *bytes = static_cast<const std::uint8_t *>(p);
    panic_if(!contains(p), "pointer does not point into the pool");
    return static_cast<Addr>(bytes - arch_.data());
}

bool
PmPool::contains(const void *p) const
{
    const auto *bytes = static_cast<const std::uint8_t *>(p);
    return bytes >= arch_.data() && bytes < arch_.data() + size_;
}

PmPool::ShardGuard::ShardGuard(const PmPool &pool, LineAddr first,
                               LineAddr last)
    : pool_(pool)
{
    // Collect the distinct shards of [first, last] and lock them in
    // ascending index order — the global lock order that keeps
    // concurrent multi-line stores deadlock-free.
    bool want[kLineShards] = {};
    if (last - first + 1 >= kLineShards) {
        for (std::size_t s = 0; s < kLineShards; s++)
            want[s] = true;
    } else {
        for (LineAddr line = first; line <= last; line++)
            want[pool.shardOf(line)] = true;
    }
    for (std::size_t s = 0; s < kLineShards; s++) {
        if (!want[s])
            continue;
        pool_.lineShards_[s].lock();
        shards_[count_++] = static_cast<std::uint8_t>(s);
    }
}

PmPool::ShardGuard::~ShardGuard()
{
    for (std::size_t i = count_; i-- > 0;)
        pool_.lineShards_[shards_[i]].unlock();
}

void
PmPool::applyStore(Addr off, const void *src, std::size_t n)
{
    boundsCheck(off, n);
    if (n == 0)
        return;
    const LineAddr first = lineOf(off);
    const LineAddr last = lineOf(off + n - 1);
    ShardGuard guard(*this, first, last);
    std::memcpy(arch_.data() + off, src, n);
    for (LineAddr line = first; line <= last; line++) {
        lineStates_[line].store(1, std::memory_order_relaxed);
        // Writing a poisoned line re-programs the failed cells (the
        // device remaps on write); the line is readable again.
        if (poisoned_[line].exchange(0, std::memory_order_relaxed))
            stats_.poisonCleared++;
    }
}

bool
PmPool::applyCas64(Addr off, std::uint64_t expected, std::uint64_t desired)
{
    boundsCheck(off, 8);
    panic_if(off % 8 != 0, "unaligned 8-byte CAS at %llu",
             static_cast<unsigned long long>(off));
    const LineAddr line = lineOf(off);
    ShardGuard guard(*this, line, line);
    std::uint64_t cur;
    std::memcpy(&cur, arch_.data() + off, 8);
    if (cur != expected)
        return false;
    std::memcpy(arch_.data() + off, &desired, 8);
    lineStates_[line].store(1, std::memory_order_relaxed);
    if (poisoned_[line].exchange(0, std::memory_order_relaxed))
        stats_.poisonCleared++;
    return true;
}

void
PmPool::applyLoad(Addr off, void *dst, std::size_t n) const
{
    boundsCheck(off, n);
    if (n == 0)
        return;
    const LineAddr first = lineOf(off);
    const LineAddr last = lineOf(off + n - 1);
    // Transient read fault: a marginal cell makes the load fail, the
    // (simulated) retry loop re-reads and succeeds within the plan's
    // retry bound. Visible only in the fault counters — no PM op is
    // emitted, so traced op counts and crash-point indices are
    // unaffected.
    if (faultPlan_.transientEvery != 0) {
        const std::uint64_t idx =
            loadIndex_.fetch_add(1, std::memory_order_relaxed);
        if (idx % faultPlan_.transientEvery ==
            faultPlan_.transientEvery - 1)
            stats_.transientFaults++;
    }
    ShardGuard guard(*this, first, last);
    for (LineAddr line = first; line <= last; line++) {
        if (poisoned_[line].load(std::memory_order_relaxed)) {
            // Uncorrectable: retries cannot help, the media lost the
            // line. Recoverable by scrubLine(); never a panic.
            stats_.mediaErrors++;
            const Addr base = line << kCacheLineBits;
            throw PmMediaError(base > off ? base : off, line);
        }
    }
    std::memcpy(dst, arch_.data() + off, n);
}

void
PmPool::persistLine(LineAddr line)
{
    panic_if(line >= lineStates_.size(), "persist of line %llu beyond pool",
             static_cast<unsigned long long>(line));
    ShardGuard guard(*this, line, line);
    persistLineLocked(line);
}

void
PmPool::persistLineLocked(LineAddr line)
{
    const Addr base = line << kCacheLineBits;
    const std::size_t n = std::min(kCacheLineSize, size_ - base);
    std::memcpy(durable_.data() + base, arch_.data() + base, n);
    lineStates_[line].store(0, std::memory_order_relaxed);
    stats_.linesPersisted++;
    stats_.dimmLinesPersisted[dimms_.dimmOf(line)]++;
}

void
PmPool::persistRange(Addr off, std::size_t n)
{
    if (n == 0)
        return;
    boundsCheck(off, n);
    const LineAddr first = lineOf(off);
    const LineAddr last = lineOf(off + n - 1);
    for (LineAddr line = first; line <= last; line++)
        persistLine(line);
}

bool
PmPool::lineDirty(LineAddr line) const
{
    panic_if(line >= lineStates_.size(), "line %llu beyond pool",
             static_cast<unsigned long long>(line));
    return lineStates_[line].load(std::memory_order_relaxed) != 0;
}

std::uint64_t
PmPool::dirtyLineCount() const
{
    std::uint64_t n = 0;
    for (const auto &st : lineStates_)
        n += st.load(std::memory_order_relaxed) != 0;
    return n;
}

std::vector<LineAddr>
PmPool::dirtyLines() const
{
    std::vector<LineAddr> lines;
    for (LineAddr line = 0; line < lineStates_.size(); line++) {
        if (lineStates_[line].load(std::memory_order_relaxed))
            lines.push_back(line);
    }
    return lines;
}

std::vector<LineAddr>
PmPool::pickSurvivors(Rng &rng, double survival) const
{
    std::vector<LineAddr> survivors;
    for (LineAddr line = 0; line < lineStates_.size(); line++) {
        if (lineStates_[line].load(std::memory_order_relaxed) &&
            rng.chance(survival)) {
            survivors.push_back(line);
        }
    }
    return survivors;
}

void
PmPool::crash(Rng &rng, double survival)
{
    crashWithSurvivors(pickSurvivors(rng, survival));
}

void
PmPool::crashWithSurvivors(const std::vector<LineAddr> &survivors)
{
    for (const LineAddr line : survivors) {
        if (!lineDirty(line))
            continue;
        persistLine(line);
        // Crash survivals are a separate phenomenon from cache
        // evictions; conflating them skewed every eviction-rate
        // report.
        stats_.linesSurvivedCrash++;
    }
    finishCrash();
}

void
PmPool::crashHard()
{
    finishCrash();
}

void
PmPool::finishCrash()
{
    arch_ = durable_;
    for (auto &st : lineStates_)
        st.store(0, std::memory_order_relaxed);
    stats_.crashes++;
}

FaultResolution
PmPool::resolveFaults(const FaultPlan &plan,
                      const std::vector<LineAddr> &survivors) const
{
    FaultResolution out;
    if (plan.none())
        return out;
    Rng rng(plan.seed);

    // Poison: up to poisonCount distinct dirty lines are lost
    // outright — drawn from the full dirty set (a write in flight is
    // exactly what a power cut catches mid-program on the media).
    if (plan.poisonCount != 0) {
        std::vector<LineAddr> dirty = dirtyLines();
        for (std::uint32_t i = 0;
             i < plan.poisonCount && !dirty.empty(); i++) {
            const std::size_t pick = rng.next(dirty.size());
            out.poisoned.push_back(dirty[pick]);
            dirty.erase(dirty.begin() +
                        static_cast<std::ptrdiff_t>(pick));
        }
        std::sort(out.poisoned.begin(), out.poisoned.end());
    }

    // Tearing: each surviving, non-poisoned line persists only a
    // proper subset of its 8-byte words with probability tearProb.
    if (plan.tearProb > 0.0) {
        for (const LineAddr line : survivors) {
            if (std::find(out.poisoned.begin(), out.poisoned.end(),
                          line) != out.poisoned.end())
                continue;
            if (!rng.chance(plan.tearProb))
                continue;
            // Masks 1..254: at least one word persists, at least one
            // is lost (0 == vanished, 255 == survived whole — both
            // already covered by the survivor dimension).
            out.torn.push_back(TornLine{
                line, static_cast<std::uint8_t>(rng.range(1, 254))});
        }
    }
    return out;
}

void
PmPool::crashWithFaults(const std::vector<LineAddr> &survivors,
                        const FaultResolution &faults)
{
    for (const LineAddr line : survivors) {
        if (!lineDirty(line))
            continue;
        if (std::find(faults.poisoned.begin(), faults.poisoned.end(),
                      line) != faults.poisoned.end())
            continue; // lost outright below
        const TornLine *torn = nullptr;
        for (const TornLine &t : faults.torn) {
            if (t.line == line) {
                torn = &t;
                break;
            }
        }
        if (!torn) {
            persistLine(line);
            stats_.linesSurvivedCrash++;
            continue;
        }
        // Torn: only the masked 8-byte words reached the media; the
        // rest keep their previous durable value.
        ShardGuard guard(*this, line, line);
        const Addr base = line << kCacheLineBits;
        for (unsigned w = 0; w < 8; w++) {
            if (!(torn->mask & (1u << w)))
                continue;
            const Addr word = base + w * 8;
            if (word + 8 > size_)
                break;
            std::memcpy(durable_.data() + word, arch_.data() + word,
                        8);
        }
        lineStates_[line].store(0, std::memory_order_relaxed);
        stats_.linesTorn++;
    }
    for (const LineAddr line : faults.poisoned) {
        panic_if(line >= lineStates_.size(),
                 "poison of line %llu beyond pool",
                 static_cast<unsigned long long>(line));
        ShardGuard guard(*this, line, line);
        const Addr base = line << kCacheLineBits;
        const std::size_t n = std::min(kCacheLineSize, size_ - base);
        std::memset(durable_.data() + base, 0, n);
        poisoned_[line].store(1, std::memory_order_relaxed);
        stats_.linesPoisoned++;
    }
    finishCrash();
}

void
PmPool::scrubLine(LineAddr line)
{
    panic_if(line >= lineStates_.size(), "scrub of line %llu beyond pool",
             static_cast<unsigned long long>(line));
    ShardGuard guard(*this, line, line);
    const Addr base = line << kCacheLineBits;
    const std::size_t n = std::min(kCacheLineSize, size_ - base);
    std::memset(arch_.data() + base, 0, n);
    std::memset(durable_.data() + base, 0, n);
    lineStates_[line].store(0, std::memory_order_relaxed);
    poisoned_[line].store(0, std::memory_order_relaxed);
    stats_.linesScrubbed++;
}

void
PmPool::poisonLine(LineAddr line)
{
    panic_if(line >= lineStates_.size(),
             "poison of line %llu beyond pool",
             static_cast<unsigned long long>(line));
    poisoned_[line].store(1, std::memory_order_relaxed);
    stats_.linesPoisoned++;
}

bool
PmPool::linePoisoned(LineAddr line) const
{
    panic_if(line >= lineStates_.size(), "line %llu beyond pool",
             static_cast<unsigned long long>(line));
    return poisoned_[line].load(std::memory_order_relaxed) != 0;
}

std::vector<LineAddr>
PmPool::poisonedLines() const
{
    std::vector<LineAddr> lines;
    for (LineAddr line = 0; line < poisoned_.size(); line++) {
        if (poisoned_[line].load(std::memory_order_relaxed))
            lines.push_back(line);
    }
    return lines;
}

void
PmPool::evictRandomLines(Rng &rng, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; i++) {
        const LineAddr line = rng.next(lineStates_.size());
        if (lineStates_[line].load(std::memory_order_relaxed)) {
            persistLine(line);
            stats_.linesEvicted++;
        }
    }
}

} // namespace whisper::pm

/**
 * @file
 * Per-thread instrumented access path to a PmPool.
 *
 * PmContext is the C++ equivalent of the paper's PM_* macros
 * (their Figure 2): every store, non-temporal store, flush and fence
 * goes through here, is applied to the pool with correct persistency
 * semantics, advances the global logical clock, and is appended to the
 * thread's trace buffer. Durable-transaction boundaries and volatile
 * (DRAM) accesses are traced through the same object so that one trace
 * carries everything the analyses and the timing simulator need.
 *
 * Persistency semantics implemented (x86-TSO):
 *  - a cacheable store only dirties the line; it becomes durable when
 *    some fence drains a flush of that line (or the "cache" evicts it
 *    at crash time);
 *  - flush() (clwb) enqueues lines on this thread's pending set;
 *  - ntStore() bypasses the cache: the data sits in a write-combining
 *    buffer until the next fence;
 *  - fence() (sfence) drains this thread's pending flushes and WC
 *    buffer into the durable image.
 */

#ifndef WHISPER_PM_PM_CONTEXT_HH
#define WHISPER_PM_PM_CONTEXT_HH

#include <atomic>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/logical_clock.hh"
#include "pm/poff.hh"
#include "pm/pm_pool.hh"
#include "pm/sched_gate.hh"
#include "trace/trace_buffer.hh"

namespace whisper::pm
{

using trace::DataClass;
using trace::EventKind;
using trace::FenceKind;

/**
 * Crash-point schedule shared by every PmContext of a runtime.
 *
 * The crash fuzzer counts the persistent-memory operations (store,
 * NT store, flush, fence) a run issues and injects a simulated power
 * cut immediately *before* the operation whose global index equals
 * @ref crashAt: the context throws CrashPointReached and ignores all
 * further persistent mutations, exactly as if the machine lost power
 * at that instant. With crashAt left at its default the plan only
 * counts (the fuzzer's profiling pass).
 *
 * Deterministic op indices require a deterministic op order. Fuzz
 * cases either run their workload single-threaded, or attach a
 * SchedGate that pins the interleaving of N racing threads to a
 * seeded schedule (every PM op runs inside a gate turn).
 */
struct CrashPlan
{
    /** Index of the PM op the power cut precedes (default: never). */
    std::uint64_t crashAt = ~std::uint64_t(0);
    /** Global count of PM ops attempted so far. */
    std::atomic<std::uint64_t> opsSeen{0};
    /** Set once the crash point was hit; poisons later PM mutations. */
    std::atomic<bool> fired{false};
    /**
     * Deterministic multi-thread schedule (owned by the Runtime);
     * nullptr when the run is single-threaded. Opened on fire so
     * racing threads drain without further serialization.
     */
    SchedGate *gate = nullptr;
};

/**
 * Thrown by PmContext when an armed crash point is reached. The fuzz
 * harness catches it at the run boundary and resolves the crash; it
 * unwinds through application code the way a power cut "unwinds" a
 * process — destructors must not touch persistent state (PmContext
 * drops such writes while the plan is fired).
 */
struct CrashPointReached
{
    std::uint64_t opIndex = 0; //!< index of the op that was cut short
};

/**
 * Observer notified of every fence this context issues, with the
 * admitted/dropped verdict the caller saw. The durable-linearizability
 * recorder uses it to learn which ops a durability fence covered; the
 * pointer defaults to null so the hook costs one predicted-false
 * branch per fence when unused. The verdict is decided inside the
 * gated op, so notifications are deterministic under seeded schedules.
 */
struct FenceObserver
{
    virtual ~FenceObserver() = default;
    virtual void onFence(ThreadId tid, FenceKind kind, bool admitted) = 0;
};

/**
 * One thread's view of the persistent memory system.
 */
class PmContext
{
  public:
    PmContext(PmPool &pool, LogicalClock &clock, ThreadId tid,
              trace::TraceBuffer *tb = nullptr);

    PmPool &pool() { return pool_; }
    ThreadId tid() const { return tid_; }
    trace::TraceBuffer *traceBuffer() { return tb_; }

    /** @{ \name Persistent stores */

    /** Cacheable store of @p n bytes at pool offset @p off. */
    void store(Addr off, const void *src, std::size_t n,
               DataClass cls = DataClass::User);

    /** Cacheable store of a value into a field living in the pool. */
    template <typename T>
    void
    storeField(T &dst_in_pool, const T &value,
               DataClass cls = DataClass::User)
    {
        store(pool_.offsetOf(&dst_in_pool), &value, sizeof(T), cls);
    }

    /**
     * Atomic 8-byte compare-and-swap commit (the MOD structures'
     * bucket/root-slot install). Counts as one PM store against the
     * crash plan and dirties the line like a store. Returns false iff
     * the current value was not @p expected; after a fired crash
     * plan the op is dropped and reports success (the machine is off
     * — unwinding code must not act on a fake CAS loss).
     */
    bool casStore(Addr off, std::uint64_t expected,
                  std::uint64_t desired,
                  DataClass cls = DataClass::User);

    /** Non-temporal store (paper: PM_MOVNTI / memcpy_nt). */
    void ntStore(Addr off, const void *src, std::size_t n,
                 DataClass cls = DataClass::User);

    /** PM_STRCPY: store a NUL-terminated string. */
    void strcpyPm(Addr off, const char *s,
                  DataClass cls = DataClass::User);

    /** @} */
    /** @{ \name Flush and fence */

    /** clwb every line overlapping [off, off+n). */
    void flush(Addr off, std::size_t n);

    /**
     * sfence; drains this thread's flushes and WC buffer.
     *
     * @return true when the fence retired (was admitted against the
     *   crash plan, or no plan is attached); false when a fired plan
     *   dropped it. Callers batching commit state must key promotion
     *   off this value — it is decided inside the gated op, so it is
     *   deterministic under seeded schedules, unlike a later
     *   crashInjected() read which races with another thread firing
     *   the crash.
     */
    bool fence(FenceKind kind = FenceKind::Ordering);

    /** Convenience: flush + durability fence (native-style persist). */
    void persist(Addr off, std::size_t n);

    /** @} */
    /** @{ \name Loads */

    void load(Addr off, void *dst, std::size_t n);

    template <typename T>
    T
    loadField(const T &src_in_pool)
    {
        T out;
        load(pool_.offsetOf(&src_in_pool), &out, sizeof(T));
        return out;
    }

    /** @} */
    /** @{ \name Transactions and volatile instrumentation */

    /** Mark a durable-transaction begin; returns its id. */
    TxId txBegin();

    /** Mark commit of @p tx. Does not itself fence. */
    void txEnd(TxId tx);

    /** Mark abort of @p tx. */
    void txAbort(TxId tx);

    /** Record a volatile load of @p n bytes at host pointer @p p. */
    void vLoad(const void *p, std::size_t n);

    /** Record a volatile store of @p n bytes at host pointer @p p. */
    void vStore(const void *p, std::size_t n);

    /**
     * Model a burst of volatile work: @p loads loads and @p stores
     * stores over the region at @p base spanning @p span bytes.
     * When the trace records volatile events, individual 8-byte
     * accesses with a scrambled stride are emitted (so the timing
     * simulator sees realistic DRAM traffic); otherwise only the
     * counters advance — either way the logical clock moves by the
     * full cost. PM-aware applications spend >96% of their accesses
     * in DRAM (paper Figure 6); this is how our reimplementations
     * model that work without megabytes of hand-written filler code.
     */
    void vBurst(const void *base, std::size_t span, unsigned loads,
                unsigned stores);

    /** Model @p ns nanoseconds of pure computation. */
    void compute(Tick ns);

    /** Current logical time (does not advance the clock). */
    Tick now() const { return clock_.now(); }

    /**
     * Ticks this context has contributed to the global clock. Unlike
     * now(), deltas of this counter are interleaving-independent: they
     * sum only the costs of *this thread's* operations, so per-op
     * latencies derived from them are deterministic for any schedule
     * of the other threads (the workload driver's latency source).
     */
    Tick localTicks() const { return localTicks_; }

    /** @} */

    /** Pending (unfenced) flushed lines — exposed for tests. */
    const std::vector<LineAddr> &pendingFlushes() const
    {
        return pendingFlush_;
    }

    /**
     * Origin tag stamped on every event this context emits until the
     * next setOrigin(). The txlib layers scope their log-management
     * code with OriginScope so the optimizer can attribute redundant
     * flushes/fences to a named site; application code leaves the
     * default (Origin::None).
     */
    void
    setOrigin(trace::Origin origin)
    {
        origin_ = static_cast<std::uint8_t>(origin);
    }

    trace::Origin
    origin() const
    {
        return static_cast<trace::Origin>(origin_);
    }

    /** Drop pending state without persisting (used after crash()). */
    void resetPendingState();

    /** @{ \name Crash-point injection (crash fuzzer) */

    /** Attach a fence observer (nullptr detaches). */
    void setFenceObserver(FenceObserver *obs) { fenceObs_ = obs; }

    /** Attach @p plan (nullptr detaches; no overhead when detached). */
    void setCrashPlan(CrashPlan *plan) { plan_ = plan; }

    CrashPlan *crashPlan() { return plan_; }

    /** The attached plan's schedule gate, or nullptr when ungated. */
    SchedGate *
    schedGate()
    {
        return plan_ ? plan_->gate : nullptr;
    }

    /**
     * True once the attached plan fired: the simulated machine is off,
     * so persistent mutations are dropped and transaction objects
     * unwinding through the crash must not complain about (or act on)
     * their un-finished state.
     */
    bool
    crashInjected() const
    {
        return plan_ && plan_->fired.load(std::memory_order_relaxed);
    }

    /**
     * PM ops this context dropped because the plan had fired. Unlike
     * crashInjected(), a delta of this counter around an operation is
     * deterministic under a seeded schedule: it only counts *this
     * thread's* drops, which the gate ordered. The lincheck workload
     * uses it to stop recording a thread the moment its effects stop
     * reaching the pool.
     */
    std::uint64_t droppedPmOps() const { return droppedPmOps_; }

    /** @} */

  private:
    void emit(EventKind kind, Addr addr, std::uint32_t size,
              DataClass cls, std::uint8_t aux, Tick cost);

    /**
     * Count one PM op against the crash plan; throws CrashPointReached
     * when the armed crash point is hit. Returns false when the op
     * must be dropped (plan already fired).
     */
    bool
    admitPmOp()
    {
        if (!plan_)
            return true;
        if (plan_->fired.load(std::memory_order_relaxed)) {
            droppedPmOps_++;
            return false;
        }
        const std::uint64_t idx =
            plan_->opsSeen.fetch_add(1, std::memory_order_relaxed);
        if (idx >= plan_->crashAt) {
            plan_->fired.store(true, std::memory_order_relaxed);
            if (plan_->gate)
                plan_->gate->open();
            throw CrashPointReached{idx};
        }
        return true;
    }

    PmPool &pool_;
    LogicalClock &clock_;
    ThreadId tid_;
    trace::TraceBuffer *tb_;
    CrashPlan *plan_ = nullptr;
    FenceObserver *fenceObs_ = nullptr;

    Tick localTicks_ = 0;
    std::uint64_t droppedPmOps_ = 0;
    std::uint8_t origin_ = 0;
    std::vector<LineAddr> pendingFlush_;
    /** Mirror of pendingFlush_ for O(1) duplicate suppression. */
    std::unordered_set<LineAddr> pendingFlushSet_;
    /** WC buffer contents: byte ranges written by NT stores. */
    std::vector<std::pair<Addr, std::uint32_t>> pendingNt_;
    TxId nextTx_;
};

/**
 * RAII origin tag: stamps every event the context emits inside the
 * scope with @p origin, restoring the previous tag on exit (scopes
 * nest — recovery code calling into append paths keeps its own tag
 * only where it emits directly).
 */
class OriginScope
{
  public:
    OriginScope(PmContext &ctx, trace::Origin origin)
        : ctx_(ctx), prev_(ctx.origin())
    {
        ctx_.setOrigin(origin);
    }

    ~OriginScope() { ctx_.setOrigin(prev_); }

    OriginScope(const OriginScope &) = delete;
    OriginScope &operator=(const OriginScope &) = delete;

  private:
    PmContext &ctx_;
    trace::Origin prev_;
};

} // namespace whisper::pm

#endif // WHISPER_PM_PM_CONTEXT_HH

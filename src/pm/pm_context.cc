#include "pm/pm_context.hh"

#include <algorithm>

#include "common/logging.hh"

namespace whisper::pm
{

PmContext::PmContext(PmPool &pool, LogicalClock &clock, ThreadId tid,
                     trace::TraceBuffer *tb)
    : pool_(pool), clock_(clock), tid_(tid), tb_(tb),
      // Spread tx ids across threads so they are globally unique.
      nextTx_(static_cast<TxId>(tid) << 40)
{
}

void
PmContext::emit(EventKind kind, Addr addr, std::uint32_t size,
                DataClass cls, std::uint8_t aux, Tick cost)
{
    localTicks_ += cost;
    const Tick now = clock_.advance(cost);
    if (tb_)
        tb_->push({now, addr, size, kind, cls, aux, origin_});
}

void
PmContext::store(Addr off, const void *src, std::size_t n, DataClass cls)
{
    GateTurn turn(schedGate(), tid_);
    if (!admitPmOp())
        return;
    pool_.applyStore(off, src, n);
    emit(EventKind::PmStore, off, static_cast<std::uint32_t>(n), cls, 0,
         LogicalClock::kStoreCost);
}

bool
PmContext::casStore(Addr off, std::uint64_t expected,
                    std::uint64_t desired, DataClass cls)
{
    GateTurn turn(schedGate(), tid_);
    if (!admitPmOp())
        return true;
    const bool swapped = pool_.applyCas64(off, expected, desired);
    emit(EventKind::PmStore, off, 8, cls, 0, LogicalClock::kStoreCost);
    return swapped;
}

void
PmContext::ntStore(Addr off, const void *src, std::size_t n, DataClass cls)
{
    GateTurn turn(schedGate(), tid_);
    if (!admitPmOp())
        return;
    pool_.applyStore(off, src, n);
    pendingNt_.emplace_back(off, static_cast<std::uint32_t>(n));
    emit(EventKind::PmNtStore, off, static_cast<std::uint32_t>(n), cls, 0,
         LogicalClock::kNtStoreCost);
}

void
PmContext::strcpyPm(Addr off, const char *s, DataClass cls)
{
    store(off, s, std::strlen(s) + 1, cls);
}

void
PmContext::flush(Addr off, std::size_t n)
{
    if (n == 0)
        return;
    GateTurn turn(schedGate(), tid_);
    if (!admitPmOp())
        return;
    const LineAddr first = lineOf(off);
    const LineAddr last = lineOf(off + n - 1);
    for (LineAddr line = first; line <= last; line++) {
        // clwb of a line already queued on this thread's pending set is
        // absorbed: hardware writes the line back once per drain, so
        // the stats and the trace cost count one writeback per line per
        // fence interval.
        if (!pendingFlushSet_.insert(line).second)
            continue;
        pendingFlush_.push_back(line);
        emit(EventKind::PmFlush, line << kCacheLineBits, kCacheLineSize,
             DataClass::None, 0, LogicalClock::kFlushCost);
    }
}

bool
PmContext::fence(FenceKind kind)
{
    GateTurn turn(schedGate(), tid_);
    if (!admitPmOp()) {
        if (fenceObs_)
            fenceObs_->onFence(tid_, kind, false);
        return false;
    }
    // sfence semantics: all of this thread's outstanding clwbs and
    // write-combining traffic reach the durable image before the fence
    // retires.
    for (const LineAddr line : pendingFlush_)
        pool_.persistLine(line);
    pendingFlush_.clear();
    pendingFlushSet_.clear();
    for (const auto &[off, n] : pendingNt_)
        pool_.persistRange(off, n);
    pendingNt_.clear();
    emit(EventKind::Fence, 0, 0, DataClass::None,
         static_cast<std::uint8_t>(kind), LogicalClock::kFenceCost);
    // Notified inside the gate turn, after the drain: an observer's
    // "covered by this fence" reasoning sees exactly what persisted.
    if (fenceObs_)
        fenceObs_->onFence(tid_, kind, true);
    return true;
}

void
PmContext::persist(Addr off, std::size_t n)
{
    flush(off, n);
    fence(FenceKind::Durability);
}

void
PmContext::load(Addr off, void *dst, std::size_t n)
{
    // Loads are not counted against crash plans (reads cannot lose
    // data), but they do go through the pool's line shards so a
    // lock-free reader never observes a torn 8-byte commit.
    pool_.applyLoad(off, dst, n);
    emit(EventKind::PmLoad, off, static_cast<std::uint32_t>(n),
         DataClass::None, 0, LogicalClock::kLoadCost);
}

TxId
PmContext::txBegin()
{
    const TxId tx = ++nextTx_;
    emit(EventKind::TxBegin, tx, 0, DataClass::None, 0, 1);
    return tx;
}

void
PmContext::txEnd(TxId tx)
{
    emit(EventKind::TxEnd, tx, 0, DataClass::None, 0, 1);
}

void
PmContext::txAbort(TxId tx)
{
    emit(EventKind::TxAbort, tx, 0, DataClass::None, 0, 1);
}

void
PmContext::vLoad(const void *p, std::size_t n)
{
    emit(EventKind::DramLoad, reinterpret_cast<Addr>(p),
         static_cast<std::uint32_t>(n), DataClass::None, 0,
         LogicalClock::kLoadCost);
}

void
PmContext::vStore(const void *p, std::size_t n)
{
    emit(EventKind::DramStore, reinterpret_cast<Addr>(p),
         static_cast<std::uint32_t>(n), DataClass::None, 0,
         LogicalClock::kStoreCost);
}

void
PmContext::vBurst(const void *base, std::size_t span, unsigned loads,
                  unsigned stores)
{
    const Tick cost =
        (static_cast<Tick>(loads) + stores) * LogicalClock::kLoadCost;
    if (tb_ && tb_->recordsVolatile()) {
        const Addr origin = reinterpret_cast<Addr>(base);
        std::uint64_t x = origin ^ 0x9e3779b97f4a7c15ull;
        const std::size_t lines = std::max<std::size_t>(1, span / 64);
        const unsigned total = loads + stores;
        for (unsigned i = 0; i < total; i++) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            const Addr addr = origin + (x >> 33) % lines * 64;
            emit(i < loads ? EventKind::DramLoad : EventKind::DramStore,
                 addr, 8, DataClass::None, 0, LogicalClock::kLoadCost);
        }
        return;
    }
    localTicks_ += cost;
    clock_.advance(cost);
    if (tb_)
        tb_->addVolatileBulk(loads, stores);
}

void
PmContext::compute(Tick ns)
{
    localTicks_ += ns;
    clock_.advance(ns);
}

void
PmContext::resetPendingState()
{
    pendingFlush_.clear();
    pendingFlushSet_.clear();
    pendingNt_.clear();
}

} // namespace whisper::pm

/**
 * @file
 * Software persistent-memory device.
 *
 * A PmPool holds two byte images of the same pool:
 *
 *  - the *architectural* image — what loads observe; updated by every
 *    store immediately (it plays the role of the cache hierarchy plus
 *    the memory), and
 *  - the *durable* image — what survives a simulated power failure;
 *    updated only when lines are persisted (flush + fence, NT store +
 *    fence, or explicit eviction).
 *
 * This split implements exactly the x86-64 persistency contract the
 * paper's applications program against: data is durable only once a
 * clwb/NT store has been fenced; anything merely dirty may or may not
 * survive a crash (write-back caches can evict at any time). The
 * crash() entry point resolves each such "may" with a seeded RNG, so
 * property tests can sweep adversarial crash outcomes.
 *
 * Persistent data structures store POff<T> offsets, never pointers;
 * offsets remain valid across crash()/recover().
 */

#ifndef WHISPER_PM_PM_POOL_HH
#define WHISPER_PM_PM_POOL_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/dimm.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "pm/fault_plan.hh"

namespace whisper::pm
{

/**
 * Statistics a pool keeps about persist traffic. Counters are atomic
 * because concurrent app threads persist lines in parallel; they read
 * as plain integers.
 */
struct PoolStats
{
    std::atomic<std::uint64_t> linesPersisted{0};     //!< drains to durable
    std::atomic<std::uint64_t> linesEvicted{0};       //!< random evictions
    std::atomic<std::uint64_t> linesSurvivedCrash{0}; //!< kept by a crash
    std::atomic<std::uint64_t> crashes{0};            //!< crash() calls
    std::atomic<std::uint64_t> linesTorn{0};          //!< word-torn at crash
    std::atomic<std::uint64_t> linesPoisoned{0};      //!< lost to media
    std::atomic<std::uint64_t> poisonCleared{0};      //!< re-programmed
    std::atomic<std::uint64_t> linesScrubbed{0};      //!< scrubLine() calls
    std::atomic<std::uint64_t> transientFaults{0};    //!< retried reads
    std::atomic<std::uint64_t> mediaErrors{0};        //!< PmMediaError raised
    /** Per-DIMM persist traffic (indexed by PmPool::dimmOf). */
    std::array<std::atomic<std::uint64_t>, kMaxDimms> dimmLinesPersisted{};
};

/**
 * The simulated PM device (one pool == one DAX mapping).
 */
class PmPool
{
  public:
    /**
     * Create a pool of @p size bytes, zero-filled and clean, spread
     * across @p dimms (the default geometry matches the simulator's
     * four-DIMM platform at 256 B interleaving; the mapping only
     * affects per-DIMM statistics and placement advice, never data).
     */
    explicit PmPool(std::size_t size,
                    const DimmConfig &dimms = DimmConfig{4, 4});

    std::size_t size() const { return size_; }
    std::size_t lineCount() const { return lineStates_.size(); }

    /** DIMM interleaving geometry of this pool. */
    const DimmConfig &dimmConfig() const { return dimms_; }

    /** Home DIMM of @p off: pure in (off, dimmConfig()). */
    unsigned dimmOf(Addr off) const
    {
        return dimms_.dimmOf(lineOf(off));
    }

    /** @{ Raw image access (bounds-checked in at()/durableAt()). */
    std::uint8_t *archBase() { return arch_.data(); }
    const std::uint8_t *archBase() const { return arch_.data(); }
    const std::uint8_t *durableBase() const { return durable_.data(); }
    /** @} */

    /**
     * Typed pointer into the architectural image.
     * Valid until the next crash()/recover().
     */
    template <typename T>
    T *
    at(Addr off)
    {
        boundsCheck(off, sizeof(T));
        return reinterpret_cast<T *>(arch_.data() + off);
    }

    template <typename T>
    const T *
    at(Addr off) const
    {
        boundsCheck(off, sizeof(T));
        return reinterpret_cast<const T *>(arch_.data() + off);
    }

    /** Typed pointer into the durable image (post-mortem inspection). */
    template <typename T>
    const T *
    durableAt(Addr off) const
    {
        boundsCheck(off, sizeof(T));
        return reinterpret_cast<const T *>(durable_.data() + off);
    }

    /** Offset of a pointer that is known to point into the arch image. */
    Addr offsetOf(const void *p) const;

    /** True if @p p points inside the architectural image. */
    bool contains(const void *p) const;

    /** @{ Device-level operations used by PmContext. */

    /** Apply a store to the architectural image; marks lines dirty. */
    void applyStore(Addr off, const void *src, std::size_t n);

    /**
     * Atomic 8-byte compare-and-swap on the architectural image: the
     * MOD structures' bucket/root-slot commit point. Succeeds (and
     * marks the line dirty) iff the current value equals @p expected.
     */
    bool applyCas64(Addr off, std::uint64_t expected,
                    std::uint64_t desired);

    /**
     * Read @p n bytes of the architectural image into @p dst, atomically
     * with respect to concurrent applyStore/applyCas64 on the same
     * lines (a reader never observes a torn 8-byte commit).
     */
    void applyLoad(Addr off, void *dst, std::size_t n) const;

    /** Copy one line arch -> durable and mark it clean. */
    void persistLine(LineAddr line);

    /** Persist every line overlapping [off, off+n). */
    void persistRange(Addr off, std::size_t n);

    /** @} */

    /** True if the line differs (dirty) from the durable image. */
    bool lineDirty(LineAddr line) const;

    /** Number of currently dirty lines (linear scan; test helper). */
    std::uint64_t dirtyLineCount() const;

    /** All currently dirty lines, ascending (crash-fuzz helper). */
    std::vector<LineAddr> dirtyLines() const;

    /**
     * Resolve a crash's "may survive" set without crashing: each
     * currently dirty line is kept with probability @p survival.
     * Depends only on (@p rng state, dirty set), so a fuzz case can
     * reproduce — or override — the exact survivor set.
     */
    std::vector<LineAddr> pickSurvivors(Rng &rng,
                                        double survival) const;

    /**
     * Simulate a power failure.
     *
     * Every dirty line independently persists with probability
     * @p survival (a write-back cache may have evicted it at any
     * point); everything else keeps its last durable value. The
     * architectural image is then reloaded from the durable image,
     * exactly as a re-mount after power-up would see it.
     */
    void crash(Rng &rng, double survival = 0.5);

    /**
     * Like crash() but nothing un-persisted survives: the strictest
     * legal outcome (also the most common in tests, since it makes
     * failures deterministic).
     */
    void crashHard();

    /**
     * Crash with an explicit survivor set: exactly the dirty lines in
     * @p survivors persist, everything else keeps its durable value.
     * The crash-fuzz shrinker uses this to search for the smallest
     * surviving-line set that still breaks recovery.
     */
    void crashWithSurvivors(const std::vector<LineAddr> &survivors);

    /** Randomly evict (persist) up to @p n dirty lines, like a cache. */
    void evictRandomLines(Rng &rng, std::uint64_t n);

    /** @{ Media-fault model (see fault_plan.hh). */

    /**
     * Install the fault plan for subsequent loads and crashes. The
     * default (empty) plan injects nothing; installing a plan never
     * emits PM operations, so traced op counts are unaffected.
     */
    void setFaultPlan(const FaultPlan &plan) { faultPlan_ = plan; }
    const FaultPlan &faultPlan() const { return faultPlan_; }

    /**
     * Resolve @p plan against the current dirty set and @p survivors
     * without crashing: up to plan.poisonCount dirty lines are
     * poisoned (lost outright) and each remaining survivor tears with
     * plan.tearProb. Deterministic in (plan.seed, dirty set,
     * @p survivors); feed the result to crashWithFaults() and fold it
     * into fuzz digests.
     */
    FaultResolution resolveFaults(const FaultPlan &plan,
                                  const std::vector<LineAddr> &survivors)
        const;

    /**
     * Crash with media faults: survivors persist as usual except that
     * lines named in @p faults.torn persist only their masked 8-byte
     * words, and lines in @p faults.poisoned are lost outright — the
     * durable image forgets them (zero-filled) and reads of the line
     * raise PmMediaError until it is scrubbed or re-programmed.
     */
    void crashWithFaults(const std::vector<LineAddr> &survivors,
                         const FaultResolution &faults);

    /**
     * Repair one media-lost line: zero-fill both images (its content
     * is gone; the scrub's caller restores what redundancy allows)
     * and clear the poison so subsequent loads succeed.
     */
    void scrubLine(LineAddr line);

    /** Poison one line directly (unit-test hook). */
    void poisonLine(LineAddr line);

    /** True if reads of @p line currently raise PmMediaError. */
    bool linePoisoned(LineAddr line) const;

    /** All currently poisoned lines, ascending (scrub work list). */
    std::vector<LineAddr> poisonedLines() const;

    /** @} */

    const PoolStats &stats() const { return stats_; }

  private:
    /**
     * Line-granular synchronization: every image access (applyStore,
     * applyCas64, applyLoad, persistLine) holds the shard lock(s) of
     * the lines it touches, so a concurrent 8-byte CAS commit and a
     * reader's load of the same slot never tear, and a fence draining
     * one thread's flush queue never races another thread's store to
     * a neighboring word in the same line.
     */
    static constexpr std::size_t kLineShards = 64;

    std::size_t shardOf(LineAddr line) const { return line % kLineShards; }

    /** Lock the shards of lines [first, last], deadlock-free. */
    class ShardGuard
    {
      public:
        ShardGuard(const PmPool &pool, LineAddr first, LineAddr last);
        ~ShardGuard();

      private:
        const PmPool &pool_;
        std::array<std::uint8_t, kLineShards> shards_{};
        std::size_t count_ = 0;
    };

    void boundsCheck(Addr off, std::size_t n) const;
    void finishCrash();
    void persistLineLocked(LineAddr line);

    std::size_t size_;
    DimmConfig dimms_;
    std::vector<std::uint8_t> arch_;
    std::vector<std::uint8_t> durable_;
    /** 1 == dirty. Atomic so concurrent app threads may mark freely. */
    std::vector<std::atomic<std::uint8_t>> lineStates_;
    /** 1 == poisoned: loads raise PmMediaError until scrubbed. */
    std::vector<std::atomic<std::uint8_t>> poisoned_;
    mutable std::array<std::mutex, kLineShards> lineShards_;
    FaultPlan faultPlan_;
    /** Global load index driving transient-fault injection. */
    mutable std::atomic<std::uint64_t> loadIndex_{0};
    /** Mutable: applyLoad() is const but counts faults it injects. */
    mutable PoolStats stats_;
};

} // namespace whisper::pm

#endif // WHISPER_PM_PM_POOL_HH

#include "pm/sched_gate.hh"

#include <chrono>

#include "common/logging.hh"

namespace whisper::pm
{

namespace
{

/** splitmix64 finalizer — the repo's standard cheap mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** How long a thread may wait for its turn before we call it a bug. */
constexpr auto kWatchdog = std::chrono::seconds(60);

} // namespace

SchedGate::SchedGate(unsigned threads, std::uint64_t seed)
    : threads_(threads), seed_(seed)
{
    panic_if(threads == 0, "SchedGate needs at least one thread");
    active_.assign(threads_, 1);
}

void
SchedGate::reset()
{
    std::lock_guard<std::mutex> lk(m_);
    slot_ = 0;
    owner_ = -1;
    depth_ = 0;
    active_.assign(threads_, 1);
    open_ = false;
    cv_.notify_all();
}

void
SchedGate::pickLocked()
{
    owner_ = -1;
    bool any = false;
    for (const char a : active_)
        any |= a != 0;
    if (!any)
        return;
    // Draw until an active thread comes up. A draw of an inactive
    // thread consumes its slot, exactly like a draw of a thread whose
    // deactivate() is still in flight (see deactivate()), keeping the
    // owner sequence independent of wall-clock arrival order.
    for (;;) {
        const unsigned cand = static_cast<unsigned>(
            mix64(seed_ ^ slot_++) % threads_);
        if (active_[cand]) {
            owner_ = static_cast<int>(cand);
            return;
        }
    }
}

void
SchedGate::acquire(ThreadId tid)
{
    std::unique_lock<std::mutex> lk(m_);
    if (open_)
        return;
    if (owner_ == static_cast<int>(tid)) {
        depth_++;
        return;
    }
    if (owner_ < 0)
        pickLocked();
    while (!open_ && owner_ != static_cast<int>(tid)) {
        if (cv_.wait_for(lk, kWatchdog) == std::cv_status::timeout) {
            panic("sched gate stalled: thread %u waited %llds for its "
                  "turn (owner=%d) — a gated thread is blocked outside "
                  "the gate (shared lock held across a turn?)",
                  static_cast<unsigned>(tid),
                  static_cast<long long>(kWatchdog.count()), owner_);
        }
    }
    if (open_)
        return;
    depth_ = 1;
}

void
SchedGate::release(ThreadId tid)
{
    std::lock_guard<std::mutex> lk(m_);
    if (open_)
        return;
    panic_if(owner_ != static_cast<int>(tid),
             "sched gate release by thread %u but owner is %d",
             static_cast<unsigned>(tid), owner_);
    panic_if(depth_ == 0, "sched gate release without acquire");
    if (--depth_ == 0) {
        pickLocked();
        cv_.notify_all();
    }
}

void
SchedGate::deactivate(ThreadId tid)
{
    std::lock_guard<std::mutex> lk(m_);
    if (open_)
        return;
    if (static_cast<std::size_t>(tid) >= active_.size())
        return;
    active_[tid] = 0;
    if (owner_ == static_cast<int>(tid)) {
        // The gate had drawn this thread for the next turn; it exits
        // instead. Redraw — the consumed slot matches what a skip
        // would have consumed had the flag already been clear.
        pickLocked();
        cv_.notify_all();
    }
}

void
SchedGate::open()
{
    std::lock_guard<std::mutex> lk(m_);
    open_ = true;
    owner_ = -1;
    depth_ = 0;
    cv_.notify_all();
}

} // namespace whisper::pm

/**
 * @file
 * Redis: an in-memory dictionary server persisted through NVML.
 *
 * Mirrors the third-party NVML-enhanced Redis the paper used: string
 * keys and values live in a chained hash table allocated from an NVML
 * pool, and every mutation runs in a pmemobj-style undo-logged
 * transaction. Redis is single-threaded: only client 0 executes
 * server commands; the other configured clients generate requests and
 * parse replies, which is volatile (DRAM) work — exactly why redis
 * shows one of the lowest PM fractions in the paper's Figure 6
 * (0.74%).
 *
 * The driving workload is an lru-test-like mix over a large key space
 * (SET-heavy so the LRU cycles), as in Table 1.
 */

#include <atomic>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "txlib/mnemosyne.hh" // foldChecksum
#include "txlib/nvml.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;

namespace
{

constexpr std::uint64_t kBuckets = 16384;
constexpr std::size_t kKeyBytes = 32;
constexpr std::size_t kValBytes = 64;

/** One dictionary entry (chained). */
struct DictEntry
{
    char key[kKeyBytes];
    char val[kValBytes];
    std::uint32_t keyLen;
    std::uint32_t valLen;
    std::uint32_t checksum;
    std::uint32_t pad;
    Addr next;
};

/** Persistent dictionary root. */
struct DictRoot
{
    std::uint64_t magic;
    Addr buckets[kBuckets];

    static constexpr std::uint64_t kMagic = 0x4245441500000000ull;
};

std::uint64_t
hashBytes(const char *s, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; i++) {
        h ^= static_cast<std::uint8_t>(s[i]);
        h *= 1099511628211ull;
    }
    return h;
}

std::uint32_t
entryChecksum(const DictEntry &e)
{
    return mne::foldChecksum(e.key, e.keyLen) ^
           mne::foldChecksum(e.val, e.valLen) ^ e.keyLen ^ e.valLen;
}

class RedisApp : public WhisperApp
{
  public:
    explicit RedisApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "redis"; }
    AccessLayer layer() const override { return AccessLayer::LibNvml; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        // Layout: the dict header (bucket array, too large for a slab
        // object) sits in front of the NVML pool, the way the NVML
        // Redis port lays out its dict region.
        dictOff_ = 0;
        const Addr pool_base =
            lineBase(sizeof(DictRoot) + kCacheLineSize);
        pool_ = std::make_unique<nvml::NvmlPool>(
            ctx, pool_base, config_.poolBytes - pool_base, 1);

        DictRoot root{};
        root.magic = DictRoot::kMagic;
        for (auto &b : root.buckets)
            b = kNullAddr;
        ctx.store(dictOff_, &root, sizeof(root), DataClass::User);
        ctx.flush(dictOff_, sizeof(root));
        ctx.fence(FenceKind::Durability);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 131 + tid);
        const std::uint64_t keyspace =
            std::max<std::uint64_t>(4096, config_.opsPerThread * 2);

        if (tid != 0) {
            // Client threads: format requests, parse replies — pure
            // DRAM traffic plus think time.
            std::vector<char> reqbuf(128);
            for (std::uint64_t op = 0; op < config_.opsPerThread;
                 op++) {
                const std::string key =
                    "key:" + std::to_string(rng.next(keyspace));
                std::snprintf(reqbuf.data(), reqbuf.size(),
                              "SET %s v", key.c_str());
                ctx.vStore(reqbuf.data(), key.size() + 6);
                for (int i = 0; i < 8; i++)
                    ctx.vLoad(reqbuf.data() + i * 8, 8);
                ctx.compute(150);
            }
            return;
        }

        // Server thread: the whole command stream of all clients is
        // serviced here (Redis's single event loop).
        const std::uint64_t total =
            config_.opsPerThread * config_.threads;
        for (std::uint64_t op = 0; op < total; op++) {
            const std::uint64_t knum = rng.next(keyspace);
            char key[kKeyBytes];
            const int klen = std::snprintf(key, sizeof(key), "key:%llu",
                static_cast<unsigned long long>(knum));
            // Event loop, protocol parsing, reply buffers: redis
            // is ~0.7% PM accesses in the paper's Figure 6.
            ctx.vBurst(key, 1 << 14, 500, 250);
            ctx.compute(3500);
            if (rng.chance(0.5)) {
                char val[kValBytes];
                const int vlen = std::snprintf(val, sizeof(val),
                    "value-%llu-%016llx",
                    static_cast<unsigned long long>(knum),
                    static_cast<unsigned long long>(rng()));
                setCmd(ctx, key, klen, val, vlen);
            } else {
                getCmd(ctx, key, klen);
            }
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkDict(rt, &why), "dict-intact", why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        pool_->recover(ctx);
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkDict(rt, &why), "dict-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(pool_->logsQuiescent(rt.ctx(0), &why),
                  "logs-quiescent", why);
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pool_->scrub(rt.ctx(0), lines, rep);
    }

    /** @{ \name Generated-workload surface
     *
     * Real deployments scale single-threaded Redis by running one
     * server instance per core (redis-cluster); the generated
     * workload models exactly that: every worker thread is its own
     * server shard — private dict + private NvmlPool over a disjoint
     * device slice — executing its clients' commands inline with the
     * run() event-loop padding per command.
     */

    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlShards_.clear();
        const std::size_t region =
            lineBase(config_.poolBytes / config_.threads);
        panic_if(region <= sizeof(DictRoot) + (2u << 20),
                 "redis: pool too small for per-thread workload "
                 "shards");
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlShard shard;
            shard.dictOff = static_cast<Addr>(t) * region;
            const Addr pool_base = lineBase(
                shard.dictOff + sizeof(DictRoot) + kCacheLineSize);
            shard.pool = std::make_unique<nvml::NvmlPool>(
                ctx, pool_base,
                shard.dictOff + region - pool_base, 1);
            DictRoot root{};
            root.magic = DictRoot::kMagic;
            for (auto &b : root.buckets)
                b = kNullAddr;
            ctx.store(shard.dictOff, &root, sizeof(root),
                      DataClass::User);
            ctx.flush(shard.dictOff, sizeof(root));
            ctx.fence(FenceKind::Durability);
            wlShards_.push_back(std::move(shard));
            const ThreadId tid = static_cast<ThreadId>(t);
            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t k = map.lo(tid) + i;
                char key[kKeyBytes], val[kValBytes];
                const int klen = formatKey(key, k);
                const int vlen = formatVal(
                    val, k * 0x9e3779b97f4a7c15ull);
                setCmdAt(ctx, *wlShards_[t].pool,
                         wlShards_[t].dictOff, key, klen, val, vlen);
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        char kbuf[kKeyBytes];
        const int klen = formatKey(kbuf, key);
        pad(ctx, kbuf);
        const Addr off =
            findAt(ctx, wlShards_[tid].dictOff, kbuf, klen);
        if (off != kNullAddr) {
            DictEntry e{};
            ctx.load(off, &e, sizeof(e));
        }
        ctx.compute(80); // reply formatting
        return off != kNullAddr;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        char kbuf[kKeyBytes], vbuf[kValBytes];
        const int klen = formatKey(kbuf, key);
        const int vlen = formatVal(vbuf, value);
        pad(ctx, kbuf);
        setCmdAt(ctx, *wlShards_[tid].pool, wlShards_[tid].dictOff,
                 kbuf, klen, vbuf, vlen);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        char kbuf[kKeyBytes], vbuf[kValBytes];
        const int klen = formatKey(kbuf, key);
        pad(ctx, kbuf);
        const Addr off =
            findAt(ctx, wlShards_[tid].dictOff, kbuf, klen);
        std::uint64_t fold = delta;
        if (off != kNullAddr) {
            DictEntry e{};
            ctx.load(off, &e, sizeof(e));
            fold += mne::foldChecksum(e.val, e.valLen);
        }
        const int vlen = formatVal(vbuf, fold);
        setCmdAt(ctx, *wlShards_[tid].pool, wlShards_[tid].dictOff,
                 kbuf, klen, vbuf, vlen);
        return off != kNullAddr;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        char kbuf[kKeyBytes];
        pad(ctx, kbuf);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const int klen =
                formatKey(kbuf, wlMap_.scanKey(tid, key, j));
            const Addr off =
                findAt(ctx, wlShards_[tid].dictOff, kbuf, klen);
            if (off != kNullAddr) {
                DictEntry e{};
                ctx.load(off, &e, sizeof(e));
                found++;
            }
        }
        ctx.compute(80);
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlShards_.size(); t++) {
            std::string why;
            rep.check(checkDictAt(rt, wlShards_[t].dictOff, &why),
                      "dict-intact",
                      "shard " + std::to_string(t) + ": " + why);
            rep.check(wlShards_[t].pool->logsQuiescent(rt.ctx(0),
                                                       &why),
                      "logs-quiescent", why);
        }
        return rep;
    }

    /** @} */

  private:
    struct WlShard
    {
        Addr dictOff = 0;
        std::unique_ptr<nvml::NvmlPool> pool;
    };

    static int
    formatKey(char *buf, std::uint64_t key)
    {
        return std::snprintf(buf, kKeyBytes, "key:%llu",
                             static_cast<unsigned long long>(key));
    }

    static int
    formatVal(char *buf, std::uint64_t v)
    {
        return std::snprintf(buf, kValBytes, "value-%016llx",
                             static_cast<unsigned long long>(v));
    }

    /** run()'s per-command event-loop padding (Fig. 6 proportions). */
    void
    pad(pm::PmContext &ctx, const void *base)
    {
        ctx.vBurst(base, 1 << 14, 500, 250);
        ctx.compute(3500);
    }

    DictRoot *dict(pm::PmContext &ctx) { return ctx.pool().at<DictRoot>(
        dictOff_); }

    Addr
    find(pm::PmContext &ctx, const char *key, std::size_t klen)
    {
        return findAt(ctx, dictOff_, key, klen);
    }

    Addr
    findAt(pm::PmContext &ctx, Addr dict_off, const char *key,
           std::size_t klen)
    {
        DictRoot *d = ctx.pool().at<DictRoot>(dict_off);
        Addr cur = d->buckets[hashBytes(key, klen) % kBuckets];
        while (cur != kNullAddr) {
            DictEntry probe{};
            ctx.load(cur, &probe, 48); // key prefix + lens
            const DictEntry *e = ctx.pool().at<DictEntry>(cur);
            if (e->keyLen == klen &&
                std::memcmp(e->key, key, klen) == 0) {
                return cur;
            }
            cur = e->next;
        }
        return kNullAddr;
    }

    void
    setCmd(pm::PmContext &ctx, const char *key, std::size_t klen,
           const char *val, std::size_t vlen)
    {
        setCmdAt(ctx, *pool_, dictOff_, key, klen, val, vlen);
    }

    void
    setCmdAt(pm::PmContext &ctx, nvml::NvmlPool &pool, Addr dict_off,
             const char *key, std::size_t klen, const char *val,
             std::size_t vlen)
    {
        const Addr existing = findAt(ctx, dict_off, key, klen);
        nvml::TxContext tx(pool, ctx);
        if (existing != kNullAddr) {
            // Overwrite in place: snapshot the value region, store.
            DictEntry *e = ctx.pool().at<DictEntry>(existing);
            tx.addRange(existing + offsetof(DictEntry, val),
                        kValBytes + 16);
            ctx.store(existing + offsetof(DictEntry, val), val, vlen,
                      DataClass::User);
            const auto vlen32 = static_cast<std::uint32_t>(vlen);
            ctx.store(existing + offsetof(DictEntry, valLen), &vlen32,
                      4, DataClass::User);
            const std::uint32_t sum = entryChecksum(*e);
            ctx.store(existing + offsetof(DictEntry, checksum), &sum,
                      4, DataClass::User);
            tx.commit();
            return;
        }
        const Addr off = tx.txAlloc(sizeof(DictEntry));
        if (off == kNullAddr) {
            tx.abort();
            return;
        }
        // Fresh object: direct stores, no snapshots needed.
        DictEntry e{};
        std::memcpy(e.key, key, klen);
        std::memcpy(e.val, val, vlen);
        e.keyLen = static_cast<std::uint32_t>(klen);
        e.valLen = static_cast<std::uint32_t>(vlen);
        e.checksum = entryChecksum(e);
        DictRoot *d = ctx.pool().at<DictRoot>(dict_off);
        Addr &bucket = d->buckets[hashBytes(key, klen) % kBuckets];
        e.next = bucket;
        tx.directStore(off, &e, sizeof(e), DataClass::User);
        // Linking mutates reachable state: snapshot the bucket head.
        tx.set(bucket, off, DataClass::User);
        tx.commit();
    }

    void
    getCmd(pm::PmContext &ctx, const char *key, std::size_t klen)
    {
        const Addr off = find(ctx, key, klen);
        if (off != kNullAddr) {
            DictEntry e{};
            ctx.load(off, &e, sizeof(e));
        }
        ctx.compute(80); // reply formatting
    }

    bool
    checkDict(Runtime &rt, std::string *why)
    {
        return checkDictAt(rt, dictOff_, why);
    }

    bool
    checkDictAt(Runtime &rt, Addr dict_off, std::string *why)
    {
        pm::PmContext &ctx = rt.ctx(0);
        DictRoot *d = ctx.pool().at<DictRoot>(dict_off);
        if (d->magic != DictRoot::kMagic) {
            if (why)
                *why = "bad dict magic";
            return false;
        }
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            Addr cur = d->buckets[b];
            std::uint64_t guard = 0;
            while (cur != kNullAddr) {
                if (++guard > 10'000'000) {
                    if (why)
                        *why = "bucket cycle";
                    return false;
                }
                const DictEntry *e = ctx.pool().at<DictEntry>(cur);
                if (e->keyLen == 0 || e->keyLen > kKeyBytes ||
                    e->valLen > kValBytes) {
                    if (why)
                        *why = "entry with invalid lengths";
                    return false;
                }
                if (e->checksum != entryChecksum(*e)) {
                    if (why)
                        *why = "entry checksum mismatch";
                    return false;
                }
                if (hashBytes(e->key, e->keyLen) % kBuckets != b) {
                    if (why)
                        *why = "entry in wrong bucket";
                    return false;
                }
                cur = e->next;
            }
        }
        return true;
    }

    std::unique_ptr<nvml::NvmlPool> pool_;
    Addr rootOff_ = kNullAddr;
    Addr dictOff_ = 0;
    WorkloadKeymap wlMap_;
    std::vector<WlShard> wlShards_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeRedisApp(const core::AppConfig &config)
{
    return std::make_unique<RedisApp>(config);
}

} // namespace whisper::apps

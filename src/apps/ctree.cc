/**
 * @file
 * C-tree: the NVML crit-bit tree micro-benchmark.
 *
 * A crit-bit (PATRICIA) tree over 64-bit keys, as shipped in NVML's
 * examples: internal nodes hold the critical bit position and two
 * children; leaves hold key and value. Inserts allocate one leaf and
 * (except for the first insert) one internal node per operation and
 * splice the internal node into the path — a pointer update inside an
 * undo-logged transaction. Four client threads perform INSERT
 * transactions (paper Table 1).
 */

#include <mutex>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "txlib/nvml.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;

namespace
{

/** Tagged pointer: low bit set == internal node. */
constexpr Addr kInternalTag = 1;

struct CtLeaf
{
    std::uint64_t key;
    std::uint64_t value;
    std::uint64_t checksum; //!< key ^ value ^ kSalt
    static constexpr std::uint64_t kSalt = 0xC17B17ull;
};

struct CtInternal
{
    std::uint32_t bit;      //!< critical bit index (63..0)
    std::uint32_t pad;
    Addr child[2];
};

struct CtRoot
{
    std::uint64_t magic;
    Addr top;               //!< tagged pointer or kNullAddr
    std::uint64_t count;    //!< committed inserts

    static constexpr std::uint64_t kMagic = 0xC7EEC7EEull;
};

bool
isInternal(Addr tagged)
{
    return tagged != kNullAddr && (tagged & kInternalTag);
}

Addr
untag(Addr tagged)
{
    return tagged & ~kInternalTag;
}

class CtreeApp : public WhisperApp
{
  public:
    explicit CtreeApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "ctree"; }
    AccessLayer layer() const override { return AccessLayer::LibNvml; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        rootOff_ = 0;
        const Addr pool_base = lineBase(sizeof(CtRoot) + kCacheLineSize);
        pool_ = std::make_unique<nvml::NvmlPool>(
            ctx, pool_base, config_.poolBytes - pool_base,
            config_.threads);
        CtRoot root{CtRoot::kMagic, kNullAddr, 0};
        ctx.store(rootOff_, &root, sizeof(root), DataClass::User);
        ctx.flush(rootOff_, sizeof(root));
        ctx.fence(FenceKind::Durability);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 73 + tid);
        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            // Unique keys per thread (clients insert disjoint ranges).
            const std::uint64_t key =
                (static_cast<std::uint64_t>(tid) << 48) | rng() >> 16;
            // Client-side key generation and buffers (paper Fig. 6:
            // ctree is ~3.3% PM accesses).
            ctx.vBurst(&rng, 1 << 14, 520, 220);
            ctx.compute(11000);
            insert(ctx, key, rng());
            // Occasional lookups between inserts.
            if (op % 4 == 0)
                lookup(ctx, key);
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkTree(rt, &why), "tree-intact", why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pool_->recover(rt.ctx(0));
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkTree(rt, &why), "tree-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(pool_->logsQuiescent(rt.ctx(0), &why),
                  "logs-quiescent", why);
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pool_->scrub(rt.ctx(0), lines, rep);
    }

    /** @{ \name Generated-workload surface
     *
     * One private crit-bit tree + NvmlPool per worker thread over a
     * disjoint device slice (tree depth — and so per-op latency — is
     * then a pure function of the thread's own key set). Scans follow
     * the suite convention for the generated workloads: consecutive
     * key ids, one point lookup each.
     */

    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlShards_.clear();
        const std::size_t region =
            lineBase(config_.poolBytes / config_.threads);
        panic_if(region <= sizeof(CtRoot) + (2u << 20),
                 "ctree: pool too small for per-thread workload "
                 "shards");
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlShard shard;
            shard.rootOff = static_cast<Addr>(t) * region;
            const Addr pool_base = lineBase(
                shard.rootOff + sizeof(CtRoot) + kCacheLineSize);
            shard.pool = std::make_unique<nvml::NvmlPool>(
                ctx, pool_base,
                shard.rootOff + region - pool_base, 1);
            CtRoot root{CtRoot::kMagic, kNullAddr, 0};
            ctx.store(shard.rootOff, &root, sizeof(root),
                      DataClass::User);
            ctx.flush(shard.rootOff, sizeof(root));
            ctx.fence(FenceKind::Durability);
            wlShards_.push_back(std::move(shard));
            const ThreadId tid = static_cast<ThreadId>(t);
            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(tid) + i;
                insertAt(ctx, *wlShards_[t].pool,
                         wlShards_[t].rootOff, key,
                         key * 0x9e3779b97f4a7c15ull);
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        pad(ctx);
        std::uint64_t value = 0;
        return findAt(ctx, wlShards_[tid].rootOff, key, value) !=
               kNullAddr;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        pad(ctx);
        insertAt(ctx, *wlShards_[tid].pool, wlShards_[tid].rootOff,
                 key, value);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        pad(ctx);
        std::uint64_t value = 0;
        const bool found =
            findAt(ctx, wlShards_[tid].rootOff, key, value) !=
            kNullAddr;
        insertAt(ctx, *wlShards_[tid].pool, wlShards_[tid].rootOff,
                 key, value + delta);
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        pad(ctx);
        std::uint64_t found = 0;
        std::uint64_t value = 0;
        for (std::uint64_t j = 0; j < len; j++)
            if (findAt(ctx, wlShards_[tid].rootOff,
                       wlMap_.scanKey(tid, key, j), value) !=
                kNullAddr)
                found++;
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlShards_.size(); t++) {
            std::string why;
            rep.check(checkTreeAt(rt, wlShards_[t].rootOff, &why),
                      "tree-intact",
                      "shard " + std::to_string(t) + ": " + why);
            rep.check(wlShards_[t].pool->logsQuiescent(rt.ctx(0),
                                                       &why),
                      "logs-quiescent", why);
        }
        return rep;
    }

    /** @} */

  private:
    struct WlShard
    {
        Addr rootOff = 0;
        std::unique_ptr<nvml::NvmlPool> pool;
    };

    CtRoot *root(pm::PmContext &ctx) { return ctx.pool().at<CtRoot>(
        rootOff_); }

    /** run()'s client-side DRAM padding (paper Fig. 6 proportions). */
    void
    pad(pm::PmContext &ctx)
    {
        ctx.vBurst(this, 1 << 14, 520, 220);
        ctx.compute(11000);
    }

    /** Descend to @p key's leaf; its offset (value out) or null. */
    Addr
    findAt(pm::PmContext &ctx, Addr root_off, std::uint64_t key,
           std::uint64_t &value)
    {
        Addr cur = ctx.pool().at<CtRoot>(root_off)->top;
        while (isInternal(cur)) {
            const CtInternal *node =
                ctx.pool().at<CtInternal>(untag(cur));
            CtInternal probe{};
            ctx.load(untag(cur), &probe, sizeof(probe));
            cur = node->child[(key >> node->bit) & 1];
        }
        if (cur == kNullAddr)
            return kNullAddr;
        CtLeaf leaf{};
        ctx.load(cur, &leaf, sizeof(leaf));
        if (leaf.key != key)
            return kNullAddr;
        value = leaf.value;
        return cur;
    }

    bool
    lookup(pm::PmContext &ctx, std::uint64_t key)
    {
        std::lock_guard<std::mutex> guard(treeLock_);
        std::uint64_t value = 0;
        return findAt(ctx, rootOff_, key, value) != kNullAddr;
    }

    void
    insert(pm::PmContext &ctx, std::uint64_t key, std::uint64_t value)
    {
        std::lock_guard<std::mutex> guard(treeLock_);
        insertAt(ctx, *pool_, rootOff_, key, value);
    }

    void
    insertAt(pm::PmContext &ctx, nvml::NvmlPool &pool, Addr root_off,
             std::uint64_t key, std::uint64_t value)
    {
        CtRoot *r = ctx.pool().at<CtRoot>(root_off);

        if (r->top == kNullAddr) {
            nvml::TxContext tx(pool, ctx);
            const Addr leaf_off = tx.txAlloc(sizeof(CtLeaf));
            if (leaf_off == kNullAddr) {
                tx.abort();
                return;
            }
            CtLeaf leaf{key, value, key ^ value ^ CtLeaf::kSalt};
            tx.directStore(leaf_off, &leaf, sizeof(leaf),
                           DataClass::User);
            tx.set(r->top, leaf_off, DataClass::User);
            const std::uint64_t n = r->count + 1;
            tx.set(r->count, n, DataClass::User);
            tx.commit();
            return;
        }

        // Find the existing leaf this key diverges from.
        Addr cur = r->top;
        while (isInternal(cur)) {
            const CtInternal *node =
                ctx.pool().at<CtInternal>(untag(cur));
            cur = node->child[(key >> node->bit) & 1];
        }
        const CtLeaf *other = ctx.pool().at<CtLeaf>(cur);
        const std::uint64_t diff = other->key ^ key;
        if (diff == 0) {
            // Key exists: update the value in place (logged).
            nvml::TxContext tx(pool, ctx);
            tx.set(ctx.pool().at<CtLeaf>(cur)->value, value,
                   DataClass::User);
            const std::uint64_t sum = key ^ value ^ CtLeaf::kSalt;
            tx.set(ctx.pool().at<CtLeaf>(cur)->checksum, sum,
                   DataClass::User);
            tx.commit();
            return;
        }
        const std::uint32_t crit =
            63 - static_cast<std::uint32_t>(__builtin_clzll(diff));

        nvml::TxContext tx(pool, ctx);
        const Addr leaf_off = tx.txAlloc(sizeof(CtLeaf));
        if (leaf_off == kNullAddr) {
            tx.abort();
            return;
        }
        CtLeaf leaf{key, value, key ^ value ^ CtLeaf::kSalt};
        tx.directStore(leaf_off, &leaf, sizeof(leaf), DataClass::User);

        // Build the new internal node (fresh: direct stores).
        const Addr inode_off = tx.txAlloc(sizeof(CtInternal));
        if (inode_off == kNullAddr) {
            tx.abort();
            return;
        }

        // Walk again to the splice point: the first link whose
        // subtree's critical bit is below ours.
        Addr *link = &r->top;
        Addr link_holder = root_off + offsetof(CtRoot, top);
        while (isInternal(*link)) {
            CtInternal *node = ctx.pool().at<CtInternal>(untag(*link));
            if (node->bit < crit)
                break;
            const unsigned dir = (key >> node->bit) & 1;
            link_holder = untag(*link) + offsetof(CtInternal, child) +
                          dir * sizeof(Addr);
            link = &node->child[dir];
        }

        CtInternal inode{};
        inode.bit = crit;
        inode.child[(key >> crit) & 1] = leaf_off;
        inode.child[((key >> crit) & 1) ^ 1] = *link;
        tx.directStore(inode_off, &inode, sizeof(inode),
                       DataClass::User);

        // Splice: one logged pointer update.
        tx.addRange(link_holder, 8);
        const Addr tagged = inode_off | kInternalTag;
        ctx.store(link_holder, &tagged, 8, DataClass::User);

        const std::uint64_t n = r->count + 1;
        tx.set(r->count, n, DataClass::User);
        tx.commit();
    }

    bool
    checkTree(Runtime &rt, std::string *why)
    {
        return checkTreeAt(rt, rootOff_, why);
    }

    bool
    checkTreeAt(Runtime &rt, Addr root_off, std::string *why)
    {
        pm::PmContext &ctx = rt.ctx(0);
        CtRoot *r = ctx.pool().at<CtRoot>(root_off);
        if (r->magic != CtRoot::kMagic) {
            if (why)
                *why = "bad root magic";
            return false;
        }
        std::uint64_t leaves = 0;
        bool ok = true;
        std::string err;
        // Iterative DFS validating structure and checksums.
        std::vector<std::pair<Addr, std::uint32_t>> stack; // node,max bit
        if (r->top != kNullAddr)
            stack.push_back({r->top, 64});
        std::uint64_t guard = 0;
        while (!stack.empty() && ok) {
            if (++guard > 50'000'000) {
                ok = false;
                err = "tree cycle";
                break;
            }
            auto [cur, maxbit] = stack.back();
            stack.pop_back();
            if (isInternal(cur)) {
                const CtInternal *node =
                    ctx.pool().at<CtInternal>(untag(cur));
                if (node->bit >= maxbit) {
                    ok = false;
                    err = "crit-bit order violated";
                    break;
                }
                stack.push_back({node->child[0], node->bit});
                stack.push_back({node->child[1], node->bit});
            } else {
                const CtLeaf *leaf = ctx.pool().at<CtLeaf>(cur);
                if (leaf->checksum !=
                    (leaf->key ^ leaf->value ^ CtLeaf::kSalt)) {
                    ok = false;
                    err = "leaf checksum mismatch";
                    break;
                }
                leaves++;
            }
        }
        if (ok && leaves < r->count) {
            ok = false;
            err = "fewer leaves than committed count";
        }
        if (!ok && why)
            *why = err;
        return ok;
    }

    std::unique_ptr<nvml::NvmlPool> pool_;
    Addr rootOff_ = 0;
    std::mutex treeLock_;
    WorkloadKeymap wlMap_;
    std::vector<WlShard> wlShards_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeCtreeApp(const core::AppConfig &config)
{
    return std::make_unique<CtreeApp>(config);
}

} // namespace whisper::apps

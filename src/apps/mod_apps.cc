/**
 * @file
 * The two MOD applications: mod-hashmap and mod-vector.
 *
 * Both run the suite's standard micro-benchmark shape (a DRAM-heavy
 * op loop in the paper's Figure 6 proportions) against the MOD access
 * layer (src/mod): every update shadow-copies the affected nodes,
 * orders them with a single ofence, and commits with an 8-byte root
 * swap; a dfence is issued only at durability points, every
 * kDurabilityInterval operations. They are the counterpart of
 * `hashmap` (NVML undo logging) and the array workloads of the
 * log-based layers, built so the analyses can put MOD's epochs/tx and
 * write amplification next to Mnemosyne's and NVML's on like-for-like
 * workloads.
 *
 * Thread discipline: the key space (top 16 bits = tid) and the vector
 * spine (a contiguous slot region per tid) are partitioned so each
 * thread only ever supersedes its own nodes — the per-thread garbage
 * lanes then reclaim strictly behind the owning thread's dfence, and
 * per-thread byte counts are independent of interleaving.
 */

#include "apps/apps.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "mod/mod_hashmap.hh"
#include "mod/mod_vector.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;

namespace
{

/** Ops between durability points (dfence + garbage reclaim). */
constexpr std::uint64_t kDurabilityInterval = 16;

/** Chain buckets per thread partition (load factor well under 1). */
constexpr std::uint64_t kBucketsPerPartition = 16384;

/** Vector spine slots per thread region. */
constexpr std::uint64_t kSlotsPerThread = 256;

/** Table at pool offset 0; the MOD heap fills the rest of the pool. */
constexpr Addr kTableOff = 0;

Addr
heapBase(std::size_t table_bytes)
{
    return lineBase(table_bytes + 2 * kCacheLineSize);
}

class ModHashmapApp : public WhisperApp
{
  public:
    explicit ModHashmapApp(const AppConfig &config) : WhisperApp(config)
    {
        buckets_ = kBucketsPerPartition * config_.threads;
        heapBase_ = heapBase(mod::ModHashmap::tableBytes(buckets_));
        panic_if(heapBase_ >= config_.poolBytes,
                 "mod-hashmap: pool too small for bucket table");
    }

    std::string name() const override { return "mod-hashmap"; }
    AccessLayer layer() const override { return AccessLayer::LibMod; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            ctx, heapBase_, config_.poolBytes - heapBase_,
            config_.threads);
        map_ = std::make_unique<mod::ModHashmap>(
            ctx, *heap_, kTableOff, buckets_, config_.threads);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 353 + tid);
        // Small enough that keys repeat: a healthy share of the puts
        // are updates, i.e. real shadow path copies.
        const std::uint64_t keyspace = config_.opsPerThread + 64;
        std::vector<std::uint64_t> inserted;
        inserted.reserve(config_.opsPerThread);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            // Paper Fig. 6 proportions: the op is mostly DRAM work.
            ctx.vBurst(inserted.data(), 1 << 14, 560, 240);
            ctx.compute(6500);

            if (!inserted.empty() && rng.chance(0.1)) {
                const std::size_t idx = rng.next(inserted.size());
                map_->remove(ctx, tid, inserted[idx]);
                inserted[idx] = inserted.back();
                inserted.pop_back();
                ctx.vStore(inserted.data() + idx, 8);
            } else {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(tid) << 48) |
                    rng.next(keyspace);
                std::uint64_t vals[mod::ModHashmap::kValWords] = {
                    rng(), rng(), rng()};
                bool was_insert = false;
                if (map_->put(ctx, tid, key, vals, was_insert) &&
                    was_insert) {
                    inserted.push_back(key);
                    ctx.vStore(&inserted.back(), 8);
                }
            }
            if ((op + 1) % kDurabilityInterval == 0)
                heap_->durabilityPoint(ctx, tid);
        }
        heap_->threadExit(ctx, tid);
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(rt.ctx(0)), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(map_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            heapBase_, config_.poolBytes - heapBase_, config_.threads);
        map_ = std::make_unique<mod::ModHashmap>(
            *heap_, kTableOff, buckets_, config_.threads);
        // Mark from the bucket table, then sweep: allocator occupancy
        // becomes exactly the reachable node set and the garbage lanes
        // are cleared (nothing on them can be reachable).
        std::vector<Addr> live;
        map_->reachable(ctx, live);
        heap_->recover(ctx, live);
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(map_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(ctx), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(heap_->gcQuiescent(ctx, &why), "gc-quiescent", why);
        // The MOD commit contract: every root (bucket head) names a
        // fully-persisted, still-allocated node — GC must never have
        // reclaimed anything a durable root can reach.
        std::vector<Addr> live;
        map_->reachable(ctx, live);
        for (const Addr node : live) {
            if (!rep.check(heap_->isLiveNode(node), "roots-allocated",
                           "reachable mod node not allocated"))
                break;
        }
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        // Structure first (bucket table repair + chain truncation
        // needs to see which node lines were hit), then the heap
        // claims the remaining arena/lane lines.
        map_->scrub(ctx, lines, rep);
        heap_->scrub(ctx, lines);
    }

  private:
    std::unique_ptr<mod::ModHeap> heap_;
    std::unique_ptr<mod::ModHashmap> map_;
    std::uint64_t buckets_ = 0;
    Addr heapBase_ = 0;
};

class ModVectorApp : public WhisperApp
{
  public:
    explicit ModVectorApp(const AppConfig &config) : WhisperApp(config)
    {
        slots_ = kSlotsPerThread * config_.threads;
        heapBase_ = heapBase(mod::ModVector::tableBytes(slots_));
        panic_if(heapBase_ >= config_.poolBytes,
                 "mod-vector: pool too small for spine table");
    }

    std::string name() const override { return "mod-vector"; }
    AccessLayer layer() const override { return AccessLayer::LibMod; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            ctx, heapBase_, config_.poolBytes - heapBase_,
            config_.threads);
        vec_ = std::make_unique<mod::ModVector>(
            ctx, *heap_, kTableOff, slots_);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 419 + tid);
        std::vector<std::uint64_t> scratch(2048);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            ctx.vBurst(scratch.data(), 1 << 14, 560, 240);
            ctx.compute(6500);

            // One MOD update in the thread's spine region: five fresh
            // elements at a random offset, the rest carried over by
            // the shadow copy.
            const std::uint64_t slot =
                tid * kSlotsPerThread + rng.next(kSlotsPerThread);
            const std::uint64_t first = rng.next(4);
            std::uint64_t vals[5] = {rng(), rng(), rng(), rng(),
                                     rng()};
            vec_->write(ctx, tid, slot, first, vals, 5,
                        mod::ModVector::kElems);
            ctx.vStore(scratch.data() + (slot % scratch.size()), 8);

            if ((op + 1) % kDurabilityInterval == 0)
                heap_->durabilityPoint(ctx, tid);
        }
        heap_->threadExit(ctx, tid);
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(rt.ctx(0)), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(vec_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            heapBase_, config_.poolBytes - heapBase_, config_.threads);
        vec_ = std::make_unique<mod::ModVector>(*heap_, kTableOff,
                                                slots_);
        std::vector<Addr> live;
        vec_->reachable(ctx, live);
        heap_->recover(ctx, live);
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(vec_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(ctx), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(heap_->gcQuiescent(ctx, &why), "gc-quiescent", why);
        std::vector<Addr> live;
        vec_->reachable(ctx, live);
        for (const Addr node : live) {
            if (!rep.check(heap_->isLiveNode(node), "roots-allocated",
                           "reachable mod chunk not allocated"))
                break;
        }
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        vec_->scrub(ctx, lines, rep);
        heap_->scrub(ctx, lines);
    }

  private:
    std::unique_ptr<mod::ModHeap> heap_;
    std::unique_ptr<mod::ModVector> vec_;
    std::uint64_t slots_ = 0;
    Addr heapBase_ = 0;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeModHashmapApp(const core::AppConfig &config)
{
    return std::make_unique<ModHashmapApp>(config);
}

std::unique_ptr<core::WhisperApp>
makeModVectorApp(const core::AppConfig &config)
{
    return std::make_unique<ModVectorApp>(config);
}

} // namespace whisper::apps

/**
 * @file
 * The two MOD applications: mod-hashmap and mod-vector.
 *
 * Both run the suite's standard micro-benchmark shape (a DRAM-heavy
 * op loop in the paper's Figure 6 proportions) against the MOD access
 * layer (src/mod): every update shadow-copies the affected nodes,
 * orders them with a single ofence, and commits with an 8-byte root
 * swap; a dfence is issued only at durability points, every
 * kDurabilityInterval operations. They are the counterpart of
 * `hashmap` (NVML undo logging) and the array workloads of the
 * log-based layers, built so the analyses can put MOD's epochs/tx and
 * write amplification next to Mnemosyne's and NVML's on like-for-like
 * workloads.
 *
 * Thread discipline: the key space (top 16 bits = tid) and the vector
 * spine (a contiguous slot region per tid) are partitioned so each
 * thread only ever supersedes its own nodes — the per-thread garbage
 * lanes then reclaim strictly behind the owning thread's dfence, and
 * per-thread byte counts are independent of interleaving.
 */

#include <algorithm>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "mod/mod_hashmap.hh"
#include "mod/mod_vector.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;

namespace
{

/** Ops between durability points (dfence + garbage reclaim). */
constexpr std::uint64_t kDurabilityInterval = 16;

/** Chain buckets per thread partition (load factor well under 1). */
constexpr std::uint64_t kBucketsPerPartition = 16384;

/** Vector spine slots per thread region. */
constexpr std::uint64_t kSlotsPerThread = 256;

/** Table at pool offset 0; the MOD heap fills the rest of the pool. */
constexpr Addr kTableOff = 0;

Addr
heapBase(std::size_t table_bytes)
{
    return lineBase(table_bytes + 2 * kCacheLineSize);
}

class ModHashmapApp : public WhisperApp
{
  public:
    explicit ModHashmapApp(const AppConfig &config) : WhisperApp(config)
    {
        buckets_ = kBucketsPerPartition * config_.threads;
        heapBase_ = heapBase(mod::ModHashmap::tableBytes(buckets_));
        panic_if(heapBase_ >= config_.poolBytes,
                 "mod-hashmap: pool too small for bucket table");
    }

    std::string name() const override { return "mod-hashmap"; }
    AccessLayer layer() const override { return AccessLayer::LibMod; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            ctx, heapBase_, config_.poolBytes - heapBase_,
            config_.threads);
        map_ = std::make_unique<mod::ModHashmap>(
            ctx, *heap_, kTableOff, buckets_, config_.threads);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 353 + tid);
        // Small enough that keys repeat: a healthy share of the puts
        // are updates, i.e. real shadow path copies.
        const std::uint64_t keyspace = config_.opsPerThread + 64;
        std::vector<std::uint64_t> inserted;
        inserted.reserve(config_.opsPerThread);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            // Paper Fig. 6 proportions: the op is mostly DRAM work.
            ctx.vBurst(inserted.data(), 1 << 14, 560, 240);
            ctx.compute(6500);

            if (!inserted.empty() && rng.chance(0.1)) {
                const std::size_t idx = rng.next(inserted.size());
                map_->remove(ctx, tid, inserted[idx]);
                inserted[idx] = inserted.back();
                inserted.pop_back();
                ctx.vStore(inserted.data() + idx, 8);
            } else {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(tid) << 48) |
                    rng.next(keyspace);
                std::uint64_t vals[mod::ModHashmap::kValWords] = {
                    rng(), rng(), rng()};
                bool was_insert = false;
                if (map_->put(ctx, tid, key, vals, was_insert) &&
                    was_insert) {
                    inserted.push_back(key);
                    ctx.vStore(&inserted.back(), 8);
                }
            }
            if ((op + 1) % kDurabilityInterval == 0)
                heap_->durabilityPoint(ctx, tid);
        }
        heap_->threadExit(ctx, tid);
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(rt.ctx(0)), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(map_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            heapBase_, config_.poolBytes - heapBase_, config_.threads);
        map_ = std::make_unique<mod::ModHashmap>(
            *heap_, kTableOff, buckets_, config_.threads);
        // Mark from the bucket table, then sweep: allocator occupancy
        // becomes exactly the reachable node set and the garbage lanes
        // are cleared (nothing on them can be reachable).
        std::vector<Addr> live;
        map_->reachable(ctx, live);
        heap_->recover(ctx, live);
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(map_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(ctx), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(heap_->gcQuiescent(ctx, &why), "gc-quiescent", why);
        // The MOD commit contract: every root (bucket head) names a
        // fully-persisted, still-allocated node — GC must never have
        // reclaimed anything a durable root can reach.
        std::vector<Addr> live;
        map_->reachable(ctx, live);
        for (const Addr node : live) {
            if (!rep.check(heap_->isLiveNode(node), "roots-allocated",
                           "reachable mod node not allocated"))
                break;
        }
        return rep;
    }

    /** @{ \name Generated-workload surface
     *
     * The MOD key convention carries over unchanged: thread @p tid
     * owns every key whose top 16 bits equal tid, so the striped
     * writer locks and per-thread garbage lanes see exactly the
     * partitioned traffic run() produces. Durability points keep the
     * run() cadence (every kDurabilityInterval ops).
     */

    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const WorkloadKeymap &map) override
    {
        wlMap_ = map;
        // One chain bucket per potential key keeps lookups O(1) even
        // at millions of keys (partition size must be a power of 2).
        std::uint64_t per = kBucketsPerPartition;
        while (per < map.slotsPerThread())
            per <<= 1;
        buckets_ = per * config_.threads;
        heapBase_ = heapBase(mod::ModHashmap::tableBytes(buckets_));
        panic_if(heapBase_ >= config_.poolBytes,
                 "mod-hashmap: pool too small for workload table");
        heap_ = std::make_unique<mod::ModHeap>(
            rt.ctx(0), heapBase_, config_.poolBytes - heapBase_,
            config_.threads);
        map_ = std::make_unique<mod::ModHashmap>(
            rt.ctx(0), *heap_, kTableOff, buckets_, config_.threads);
        scratch_.assign(config_.threads,
                        std::vector<std::uint64_t>(2048));
        wlOps_.assign(config_.threads, 0);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            const ThreadId tid = static_cast<ThreadId>(t);
            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(tid) + i;
                std::uint64_t vals[mod::ModHashmap::kValWords] = {
                    key * 0x9e3779b97f4a7c15ull, key, tid};
                bool inserted = false;
                panic_if(!map_->put(ctx, tid, modKey(tid, key), vals,
                                    inserted),
                         "mod-hashmap: heap exhausted during preload");
                if ((i + 1) % kDurabilityInterval == 0)
                    heap_->durabilityPoint(ctx, tid);
            }
            heap_->durabilityPoint(ctx, tid);
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        pad(ctx, tid);
        std::uint64_t vals[mod::ModHashmap::kValWords];
        const bool found = map_->lookup(ctx, modKey(tid, key), vals);
        opDone(ctx, tid);
        return found;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        pad(ctx, tid);
        std::uint64_t vals[mod::ModHashmap::kValWords] = {value, key,
                                                          tid};
        bool inserted = false;
        panic_if(!map_->put(ctx, tid, modKey(tid, key), vals,
                            inserted),
                 "mod-hashmap: heap exhausted");
        opDone(ctx, tid);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        pad(ctx, tid);
        std::uint64_t vals[mod::ModHashmap::kValWords] = {0, key, tid};
        const bool found = map_->lookup(ctx, modKey(tid, key), vals);
        vals[0] += delta;
        bool inserted = false;
        panic_if(!map_->put(ctx, tid, modKey(tid, key), vals,
                            inserted),
                 "mod-hashmap: heap exhausted");
        opDone(ctx, tid);
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        pad(ctx, tid);
        std::uint64_t found = 0;
        std::uint64_t vals[mod::ModHashmap::kValWords];
        for (std::uint64_t j = 0; j < len; j++) {
            const std::uint64_t k = wlMap_.scanKey(tid, key, j);
            if (map_->lookup(ctx, modKey(tid, k), vals))
                found++;
        }
        opDone(ctx, tid);
        return found;
    }

    void
    workloadThreadDone(pm::PmContext &ctx, ThreadId tid) override
    {
        heap_->threadExit(ctx, tid);
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        return verify(rt);
    }

    bool supportsLincheck() const override { return true; }

    bool
    workloadProbe(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                  std::uint64_t &value) override
    {
        std::uint64_t vals[mod::ModHashmap::kValWords];
        if (!map_->lookup(ctx, modKey(tid, key), vals))
            return false;
        value = vals[0];
        return true;
    }

    bool workloadHasRemove() const override { return true; }

    bool
    workloadRemove(pm::PmContext &ctx, ThreadId tid,
                   std::uint64_t key) override
    {
        pad(ctx, tid);
        const bool found = map_->remove(ctx, tid, modKey(tid, key));
        opDone(ctx, tid);
        return found;
    }

    /** @} */

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        // Structure first (bucket table repair + chain truncation
        // needs to see which node lines were hit), then the heap
        // claims the remaining arena/lane lines.
        map_->scrub(ctx, lines, rep);
        heap_->scrub(ctx, lines);
    }

  private:
    static std::uint64_t
    modKey(ThreadId tid, std::uint64_t key)
    {
        return (static_cast<std::uint64_t>(tid) << 48) | key;
    }

    /** run()'s per-op DRAM padding (paper Fig. 6 proportions). */
    void
    pad(pm::PmContext &ctx, ThreadId tid)
    {
        ctx.vBurst(scratch_[tid].data(), 1 << 14, 560, 240);
        ctx.compute(6500);
    }

    void
    opDone(pm::PmContext &ctx, ThreadId tid)
    {
        if (++wlOps_[tid] % kDurabilityInterval == 0)
            heap_->durabilityPoint(ctx, tid);
    }

    std::unique_ptr<mod::ModHeap> heap_;
    std::unique_ptr<mod::ModHashmap> map_;
    std::uint64_t buckets_ = 0;
    Addr heapBase_ = 0;
    WorkloadKeymap wlMap_;
    std::vector<std::vector<std::uint64_t>> scratch_;
    std::vector<std::uint64_t> wlOps_;
};

class ModVectorApp : public WhisperApp
{
  public:
    explicit ModVectorApp(const AppConfig &config) : WhisperApp(config)
    {
        slots_ = kSlotsPerThread * config_.threads;
        heapBase_ = heapBase(mod::ModVector::tableBytes(slots_));
        panic_if(heapBase_ >= config_.poolBytes,
                 "mod-vector: pool too small for spine table");
    }

    std::string name() const override { return "mod-vector"; }
    AccessLayer layer() const override { return AccessLayer::LibMod; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            ctx, heapBase_, config_.poolBytes - heapBase_,
            config_.threads);
        vec_ = std::make_unique<mod::ModVector>(
            ctx, *heap_, kTableOff, slots_);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 419 + tid);
        std::vector<std::uint64_t> scratch(2048);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            ctx.vBurst(scratch.data(), 1 << 14, 560, 240);
            ctx.compute(6500);

            // One MOD update in the thread's spine region: five fresh
            // elements at a random offset, the rest carried over by
            // the shadow copy.
            const std::uint64_t slot =
                tid * kSlotsPerThread + rng.next(kSlotsPerThread);
            const std::uint64_t first = rng.next(4);
            std::uint64_t vals[5] = {rng(), rng(), rng(), rng(),
                                     rng()};
            vec_->write(ctx, tid, slot, first, vals, 5,
                        mod::ModVector::kElems);
            ctx.vStore(scratch.data() + (slot % scratch.size()), 8);

            if ((op + 1) % kDurabilityInterval == 0)
                heap_->durabilityPoint(ctx, tid);
        }
        heap_->threadExit(ctx, tid);
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(rt.ctx(0)), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(vec_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        heap_ = std::make_unique<mod::ModHeap>(
            heapBase_, config_.poolBytes - heapBase_, config_.threads);
        vec_ = std::make_unique<mod::ModVector>(*heap_, kTableOff,
                                                slots_);
        std::vector<Addr> live;
        vec_->reachable(ctx, live);
        heap_->recover(ctx, live);
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(vec_->check(rt.ctx(0), &why), "structure-intact",
                  why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        rep.check(heap_->magicIntact(ctx), "heap-magic",
                  "mod heap magic lost");
        std::string why;
        rep.check(heap_->gcQuiescent(ctx, &why), "gc-quiescent", why);
        std::vector<Addr> live;
        vec_->reachable(ctx, live);
        for (const Addr node : live) {
            if (!rep.check(heap_->isLiveNode(node), "roots-allocated",
                           "reachable mod chunk not allocated"))
                break;
        }
        return rep;
    }

    /** @{ \name Generated-workload surface
     *
     * The vector is presented as a dense KV array: thread @p tid's
     * key with local index l lives in chunk tid*slotsPT + l/kElems at
     * element l%kElems — each thread owns a contiguous spine region
     * exactly as in run(), so shadow copies and garbage lanes stay
     * per-thread. Every key maps to a distinct element (no aliasing);
     * preloading fills whole chunks, one shadow write per chunk.
     */

    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const WorkloadKeymap &map) override
    {
        wlMap_ = map;
        slotsPT_ = (map.slotsPerThread() + mod::ModVector::kElems - 1) /
                   mod::ModVector::kElems;
        slotsPT_ = std::max<std::uint64_t>(slotsPT_, 1);
        // Round each thread's chunk region up to a whole writer
        // stripe. The stripe mutex is held across gated PM ops, so
        // two threads sharing a stripe deadlock under a SchedGate
        // schedule (owner blocked on the mutex, holder waiting for
        // its turn) — run() keeps the same invariant by making
        // kSlotsPerThread a stripe multiple.
        slotsPT_ = (slotsPT_ + mod::ModVector::kSlotsPerStripe - 1) /
                   mod::ModVector::kSlotsPerStripe *
                   mod::ModVector::kSlotsPerStripe;
        slots_ = slotsPT_ * config_.threads;
        heapBase_ = heapBase(mod::ModVector::tableBytes(slots_));
        panic_if(heapBase_ >= config_.poolBytes,
                 "mod-vector: pool too small for workload spine");
        heap_ = std::make_unique<mod::ModHeap>(
            rt.ctx(0), heapBase_, config_.poolBytes - heapBase_,
            config_.threads);
        vec_ = std::make_unique<mod::ModVector>(rt.ctx(0), *heap_,
                                                kTableOff, slots_);
        scratch_.assign(config_.threads,
                        std::vector<std::uint64_t>(2048));
        wlOps_.assign(config_.threads, 0);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            const ThreadId tid = static_cast<ThreadId>(t);
            std::uint64_t written = 0;
            std::uint64_t chunk = 0;
            while (written < map.perThread()) {
                const std::uint64_t k = std::min<std::uint64_t>(
                    mod::ModVector::kElems, map.perThread() - written);
                std::uint64_t vals[mod::ModVector::kElems];
                for (std::uint64_t e = 0; e < k; e++)
                    vals[e] = (map.lo(tid) + written + e) *
                              0x9e3779b97f4a7c15ull;
                panic_if(!vec_->write(ctx, tid,
                                      tid * slotsPT_ + chunk, 0, vals,
                                      k, k),
                         "mod-vector: heap exhausted during preload");
                written += k;
                chunk++;
                if (chunk % kDurabilityInterval == 0)
                    heap_->durabilityPoint(ctx, tid);
            }
            heap_->durabilityPoint(ctx, tid);
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        pad(ctx, tid);
        std::uint64_t out = 0;
        const bool found = vec_->get(ctx, slotOf(tid, key),
                                     idxOf(tid, key), out);
        opDone(ctx, tid);
        return found;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        pad(ctx, tid);
        writeElem(ctx, tid, key, value);
        opDone(ctx, tid);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        pad(ctx, tid);
        std::uint64_t out = 0;
        const bool found = vec_->get(ctx, slotOf(tid, key),
                                     idxOf(tid, key), out);
        writeElem(ctx, tid, key, out + delta);
        opDone(ctx, tid);
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        pad(ctx, tid);
        std::uint64_t found = 0;
        std::uint64_t out = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const std::uint64_t k = wlMap_.scanKey(tid, key, j);
            if (vec_->get(ctx, slotOf(tid, k), idxOf(tid, k), out))
                found++;
        }
        opDone(ctx, tid);
        return found;
    }

    void
    workloadThreadDone(pm::PmContext &ctx, ThreadId tid) override
    {
        heap_->threadExit(ctx, tid);
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        return verify(rt);
    }

    bool supportsLincheck() const override { return true; }

    bool
    workloadProbe(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                  std::uint64_t &value) override
    {
        std::uint64_t out = 0;
        if (!vec_->get(ctx, slotOf(tid, key), idxOf(tid, key), out))
            return false;
        value = out;
        return true;
    }

    // No workloadRemove: a MOD vector has no deletion; the history
    // workloads fold tombstone traffic into puts for this app.

    /** @} */

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        vec_->scrub(ctx, lines, rep);
        heap_->scrub(ctx, lines);
    }

  private:
    std::uint64_t
    slotOf(ThreadId tid, std::uint64_t key) const
    {
        return tid * slotsPT_ +
               wlMap_.localIndex(tid, key) / mod::ModVector::kElems;
    }

    std::uint64_t
    idxOf(ThreadId tid, std::uint64_t key) const
    {
        return wlMap_.localIndex(tid, key) % mod::ModVector::kElems;
    }

    void
    writeElem(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
              std::uint64_t value)
    {
        const std::uint64_t slot = slotOf(tid, key);
        const std::uint64_t idx = idxOf(tid, key);
        const std::uint64_t count =
            std::max<std::uint64_t>(vec_->chunkCount(ctx, slot),
                                    idx + 1);
        panic_if(!vec_->write(ctx, tid, slot, idx, &value, 1, count),
                 "mod-vector: heap exhausted");
    }

    void
    pad(pm::PmContext &ctx, ThreadId tid)
    {
        ctx.vBurst(scratch_[tid].data(), 1 << 14, 560, 240);
        ctx.compute(6500);
    }

    void
    opDone(pm::PmContext &ctx, ThreadId tid)
    {
        if (++wlOps_[tid] % kDurabilityInterval == 0)
            heap_->durabilityPoint(ctx, tid);
    }

    std::unique_ptr<mod::ModHeap> heap_;
    std::unique_ptr<mod::ModVector> vec_;
    std::uint64_t slots_ = 0;
    Addr heapBase_ = 0;
    WorkloadKeymap wlMap_;
    std::uint64_t slotsPT_ = 0;
    std::vector<std::vector<std::uint64_t>> scratch_;
    std::vector<std::uint64_t> wlOps_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeModHashmapApp(const core::AppConfig &config)
{
    return std::make_unique<ModHashmapApp>(config);
}

std::unique_ptr<core::WhisperApp>
makeModVectorApp(const core::AppConfig &config)
{
    return std::make_unique<ModVectorApp>(config);
}

} // namespace whisper::apps

#include "apps/apps.hh"

namespace whisper::core
{

void
registerSuiteApps()
{
    static const bool once = [] {
        using namespace whisper::apps;
        registerApp("echo", makeEchoApp);
        registerApp("ycsb", makeYcsbApp);
        registerApp("tpcc", makeTpccApp);
        registerApp("redis", makeRedisApp);
        registerApp("ctree", makeCtreeApp);
        registerApp("hashmap", makeHashmapApp);
        registerApp("vacation", makeVacationApp);
        registerApp("memcached", makeMemcachedApp);
        registerApp("nfs", makeNfsApp);
        registerApp("exim", makeEximApp);
        registerApp("mysql", makeMysqlApp);
        registerApp("mod-hashmap", makeModHashmapApp);
        registerApp("mod-vector", makeModVectorApp);
        registerApp("halo-hashmap", makeHaloHashmapApp);
        return true;
    }();
    (void)once;
}

} // namespace whisper::core

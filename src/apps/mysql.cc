/**
 * @file
 * MySQL: OLTP-complex (sysbench) over a PMFS-backed data directory
 * (paper §3.2.3).
 *
 * Models the PM-relevant behaviour of InnoDB on PMFS: a table file of
 * fixed-size rows, a secondary-index file, and a redo/binlog file.
 * Each sysbench OLTP-complex transaction mixes point selects, index
 * and non-index updates, and a delete+insert pair, ending with a log
 * append (the commit record) — every write reaching PM through file
 * syscalls. Row images carry checksums so torn row updates are
 * detectable after a crash (the database's own page checksums play
 * this role in real InnoDB).
 */

#include <atomic>
#include <mutex>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "pmfs/pmfs.hh"
#include "txlib/mnemosyne.hh" // foldChecksum

namespace whisper::apps
{

using namespace core;
using mne::foldChecksum;

namespace
{

constexpr std::size_t kRowBytes = 128;
constexpr std::size_t kRowPayload = 100;

/** One row image as stored in the table file. */
struct Row
{
    std::uint64_t id;
    std::uint64_t version;
    std::uint32_t checksum;
    std::uint32_t pad;
    std::uint8_t payload[kRowPayload];
    std::uint8_t tail[kRowBytes - 124];
};
static_assert(sizeof(Row) == kRowBytes, "Row layout drifted");

std::uint32_t
rowChecksum(const Row &row)
{
    return foldChecksum(row.payload, sizeof(row.payload)) ^
           static_cast<std::uint32_t>(row.id) ^
           static_cast<std::uint32_t>(row.version);
}

class MysqlApp : public WhisperApp
{
  public:
    explicit MysqlApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "mysql"; }
    AccessLayer layer() const override { return AccessLayer::Filesystem; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        fs_ = std::make_unique<pmfs::Pmfs>(ctx, 0, config_.poolBytes);
        fs_->mkdir(ctx, "/data");
        tableIno_ = fs_->create(ctx, "/data/sbtest.ibd");
        indexIno_ = fs_->create(ctx, "/data/sbtest_k.ibd");
        binlogIno_ = fs_->create(ctx, "/data/binlog.000001");
        panic_if(tableIno_ == pmfs::kInvalidIno ||
                     indexIno_ == pmfs::kInvalidIno ||
                     binlogIno_ == pmfs::kInvalidIno,
                 "mysql setup failed");

        rows_ = std::max<std::uint64_t>(
            512, std::min<std::uint64_t>(config_.opsPerThread * 4,
                                         16384));
        Rng rng(config_.seed);
        std::vector<Row> chunk(32);
        for (std::uint64_t r = 0; r < rows_; r += chunk.size()) {
            const std::uint64_t n =
                std::min<std::uint64_t>(chunk.size(), rows_ - r);
            for (std::uint64_t i = 0; i < n; i++) {
                Row &row = chunk[i];
                row = Row{};
                row.id = r + i;
                row.version = 0;
                for (auto &b : row.payload)
                    b = static_cast<std::uint8_t>(rng());
                row.checksum = rowChecksum(row);
            }
            fs_->write(ctx, tableIno_, r * kRowBytes, chunk.data(),
                       n * kRowBytes);
        }
        // Index file: one 16-byte entry per row.
        std::vector<std::uint64_t> idx(rows_ * 2);
        for (std::uint64_t r = 0; r < rows_; r++) {
            idx[r * 2] = r;
            idx[r * 2 + 1] = r * kRowBytes;
        }
        fs_->write(ctx, indexIno_, 0, idx.data(),
                   idx.size() * sizeof(std::uint64_t));
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 241 + tid);
        ZipfianGenerator zipf(rows_);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            // OLTP-complex: 10 point selects.
            for (int i = 0; i < 10; i++) {
                Row row{};
                readRow(ctx, zipf.next(rng), row);
                ctx.vStore(&row, 64); // result set buffering
            }
            // SQL parsing, optimizer, buffer-pool management,
            // client round trips: a sysbench OLTP-complex transaction
            // runs for around a millisecond end to end (Table 1:
            // only 60K epochs/second).
            ctx.vBurst(&rng, 1 << 14, 300, 120);
            ctx.compute(700'000);

            // 1 index update + 1 non-index update.
            std::lock_guard<std::mutex> guard(dbLock_);
            updateRow(ctx, zipf.next(rng), rng, true);
            updateRow(ctx, zipf.next(rng), rng, false);

            // Commit record to the binlog (group commit of one).
            char rec[64];
            const int n = std::snprintf(
                rec, sizeof(rec), "COMMIT tid=%u op=%llu\n", tid,
                static_cast<unsigned long long>(op));
            fs_->append(ctx, binlogIno_, rec,
                        static_cast<std::size_t>(n));
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkDb(rt, &why, false), "db-intact", why);
        return rep;
    }

    void recover(Runtime &rt) override { fs_->mount(rt.ctx(0)); }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkDb(rt, &why, true), "db-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->journalQuiescent(ctx, &why),
                  "journal-quiescent", why);
        why.clear();
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        fs_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    void
    readRow(pm::PmContext &ctx, std::uint64_t id, Row &row)
    {
        fs_->read(ctx, tableIno_, id * kRowBytes, &row, sizeof(row));
    }

    void
    updateRow(pm::PmContext &ctx, std::uint64_t id, Rng &rng,
              bool index_update)
    {
        // InnoDB writes whole pages: read the 4 KB page containing
        // the row, mutate the row image, write the page back. This
        // is what keeps MySQL's PMFS amplification near the other
        // filesystem applications' ~0.1x and its writes NTI-heavy.
        const std::uint64_t rows_per_page =
            pmfs::kBlockSize / kRowBytes;
        const std::uint64_t page = id / rows_per_page;
        alignas(64) std::uint8_t page_buf[pmfs::kBlockSize];
        fs_->read(ctx, tableIno_, page * pmfs::kBlockSize, page_buf,
                  sizeof(page_buf));
        auto *row = reinterpret_cast<Row *>(
            page_buf + (id % rows_per_page) * kRowBytes);
        for (int i = 0; i < 10; i++) {
            row->payload[rng.next(sizeof(row->payload))] =
                static_cast<std::uint8_t>(rng());
        }
        row->version++;
        row->checksum = rowChecksum(*row);
        fs_->write(ctx, tableIno_, page * pmfs::kBlockSize, page_buf,
                   sizeof(page_buf));
        if (index_update) {
            const std::uint64_t entry[2] = {id, id * kRowBytes};
            fs_->write(ctx, indexIno_, id * 16, entry, sizeof(entry));
        }
    }

    bool
    checkDb(Runtime &rt, std::string *why, bool post_crash)
    {
        pm::PmContext &ctx = rt.ctx(0);
        std::string fsck_why;
        if (!fs_->fsck(ctx, &fsck_why)) {
            if (why)
                *why = "fsck: " + fsck_why;
            return false;
        }
        // Row images are non-journaled user data; PMFS guarantees
        // metadata consistency only, so a crash can tear an in-flight
        // page write — exactly the PMFS contract. The filesystem
        // fences at every journal commit, which bounds the exposure
        // to the writes of the last in-flight transaction: the one
        // index and one non-index update, i.e. at most two rows. With
        // @p post_crash set that many invalid rows are tolerated (a
        // real InnoDB would rebuild them from its redo log); after a
        // *clean* run every row must validate.
        const std::uint64_t torn_budget = post_crash ? 2 : 0;
        std::uint64_t torn = 0;
        for (std::uint64_t r = 0; r < rows_; r++) {
            Row row{};
            readRow(ctx, r, row);
            if (row.id != r || row.checksum != rowChecksum(row)) {
                torn++;
                if (torn > torn_budget) {
                    if (why) {
                        *why = post_crash
                                   ? "more torn rows than one "
                                     "transaction can leave"
                                   : "row id/checksum mismatch";
                    }
                    return false;
                }
            }
        }
        // Binlog sanity: size grew monotonically and is readable.
        const std::uint64_t blog = fs_->fileSize(ctx, binlogIno_);
        if (blog > 0) {
            char c = 0;
            fs_->read(ctx, binlogIno_, blog - 1, &c, 1);
            if (c != '\n') {
                if (why)
                    *why = "binlog does not end at a record boundary";
                return false;
            }
        }
        return true;
    }

    // ---- Unified workload driver surface ------------------------------
    //
    // Each workload thread gets its own database instance — table,
    // secondary index and binlog on a private PMFS volume over a
    // disjoint pool slice (sysbench against per-core server shards).
    // A key is a row id; row slot = the keymap's dense local index.
    // Writes keep InnoDB's shape: read the 4 KB page, mutate the row
    // image, write the page back, update the index entry, append a
    // commit record to the binlog.

    struct WlDb
    {
        std::unique_ptr<pmfs::Pmfs> fs;
        pmfs::Ino table = pmfs::kInvalidIno;
        pmfs::Ino index = pmfs::kInvalidIno;
        pmfs::Ino binlog = pmfs::kInvalidIno;
        std::uint64_t commits = 0;
    };

    /**
     * Per-op SQL parsing / optimizer / round-trip share. run()'s
     * sysbench transaction (~13 operations) spends compute(700'000);
     * one KV op carries a proportional slice.
     */
    void
    wlPad(pm::PmContext &ctx, std::uint64_t key)
    {
        ctx.vStore(&key, 8);
        ctx.vBurst(&key, 1 << 14, 25, 10);
        ctx.compute(55'000);
    }

    static void
    wlFillRow(std::uint64_t key, std::uint64_t value, Row &row)
    {
        row = Row{};
        row.id = key;
        row.version = value;
        std::uint64_t seed = value;
        for (std::size_t i = 0; i + 8 <= sizeof(row.payload); i += 8) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            z ^= z >> 31;
            std::memcpy(row.payload + i, &z, 8);
        }
        row.checksum = rowChecksum(row);
    }

    /** Page-granularity row write, matching updateRow()'s shape. */
    void
    wlWriteRow(pm::PmContext &ctx, WlDb &db, std::uint64_t slot,
               const Row &row)
    {
        const std::uint64_t rows_per_page =
            pmfs::kBlockSize / kRowBytes;
        const std::uint64_t page = slot / rows_per_page;
        alignas(64) std::uint8_t page_buf[pmfs::kBlockSize] = {};
        if (page * pmfs::kBlockSize <
            db.fs->fileSize(ctx, db.table)) {
            db.fs->read(ctx, db.table, page * pmfs::kBlockSize,
                        page_buf, sizeof(page_buf));
        }
        std::memcpy(page_buf + (slot % rows_per_page) * kRowBytes,
                    &row, sizeof(row));
        db.fs->write(ctx, db.table, page * pmfs::kBlockSize, page_buf,
                     sizeof(page_buf));
        const std::uint64_t entry[2] = {row.id, slot * kRowBytes};
        db.fs->write(ctx, db.index, slot * 16, entry, sizeof(entry));
    }

    void
    wlCommit(pm::PmContext &ctx, WlDb &db, ThreadId tid)
    {
        char rec[64];
        const int n = std::snprintf(
            rec, sizeof(rec), "COMMIT tid=%u op=%llu\n", tid,
            static_cast<unsigned long long>(db.commits++));
        db.fs->append(ctx, db.binlog, rec,
                      static_cast<std::size_t>(n));
    }

  public:
    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const core::WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlDbs_.clear();
        wlDbs_.resize(map.threads);
        const Addr region = lineBase(config_.poolBytes / map.threads);
        panic_if(region <= (8u << 20),
                 "mysql workload: pool too small for %u volumes",
                 map.threads);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlDb &db = wlDbs_[t];
            db.fs = std::make_unique<pmfs::Pmfs>(
                ctx, static_cast<Addr>(t) * region, region);
            db.fs->mkdir(ctx, "/data");
            db.table = db.fs->create(ctx, "/data/sbtest.ibd");
            db.index = db.fs->create(ctx, "/data/sbtest_k.ibd");
            db.binlog = db.fs->create(ctx, "/data/binlog.000001");
            panic_if(db.table == pmfs::kInvalidIno ||
                         db.index == pmfs::kInvalidIno ||
                         db.binlog == pmfs::kInvalidIno,
                     "mysql workload setup failed");

            // Preload rows page by page (one syscall per 32 rows,
            // mirroring setup()'s chunked load).
            std::vector<Row> chunk(32);
            for (std::uint64_t s = 0; s < map.perThread();
                 s += chunk.size()) {
                const std::uint64_t n = std::min<std::uint64_t>(
                    chunk.size(), map.perThread() - s);
                for (std::uint64_t i = 0; i < n; i++) {
                    const std::uint64_t key = map.lo(t) + s + i;
                    wlFillRow(key, key * 0x9e3779b97f4a7c15ull,
                              chunk[i]);
                }
                db.fs->write(ctx, db.table, s * kRowBytes,
                             chunk.data(), n * kRowBytes);
            }
            std::vector<std::uint64_t> idx(map.perThread() * 2);
            for (std::uint64_t s = 0; s < map.perThread(); s++) {
                idx[s * 2] = map.lo(t) + s;
                idx[s * 2 + 1] = s * kRowBytes;
            }
            if (!idx.empty()) {
                db.fs->write(ctx, db.index, 0, idx.data(),
                             idx.size() * sizeof(std::uint64_t));
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        WlDb &db = wlDbs_[tid];
        wlPad(ctx, key);
        const std::uint64_t slot = wlMap_.localIndex(tid, key);
        Row row{};
        db.fs->read(ctx, db.table, slot * kRowBytes, &row,
                    sizeof(row));
        ctx.vStore(&row, 64); // result set buffering
        return row.id == key;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        WlDb &db = wlDbs_[tid];
        wlPad(ctx, key);
        Row row{};
        wlFillRow(key, value, row);
        wlWriteRow(ctx, db, wlMap_.localIndex(tid, key), row);
        wlCommit(ctx, db, tid);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        WlDb &db = wlDbs_[tid];
        wlPad(ctx, key);
        const std::uint64_t slot = wlMap_.localIndex(tid, key);
        Row row{};
        db.fs->read(ctx, db.table, slot * kRowBytes, &row,
                    sizeof(row));
        const bool found = row.id == key;
        wlFillRow(key, (found ? row.version : 0) + delta, row);
        wlWriteRow(ctx, db, slot, row);
        wlCommit(ctx, db, tid);
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        WlDb &db = wlDbs_[tid];
        wlPad(ctx, key);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const std::uint64_t k = wlMap_.scanKey(tid, key, j);
            Row row{};
            db.fs->read(ctx, db.table,
                        wlMap_.localIndex(tid, k) * kRowBytes, &row,
                        sizeof(row));
            if (row.id == k)
                found++;
        }
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlMap_.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlDb &db = wlDbs_[t];
            // A clean run leaves the descriptor COMMITTED (commit is
            // lazy about the FREE transition); mount-time recovery
            // retires it, exactly like the run path's recover().
            db.fs->mount(ctx);
            std::string why;
            rep.check(db.fs->journalQuiescent(ctx, &why),
                      "journal-quiescent", why);
            why.clear();
            rep.check(db.fs->fsck(ctx, &why), "fsck", why);
            // Every preloaded row must validate (clean-run contract).
            bool rows_ok = true;
            for (std::uint64_t s = 0;
                 rows_ok && s < wlMap_.perThread(); s++) {
                Row row{};
                db.fs->read(ctx, db.table, s * kRowBytes, &row,
                            sizeof(row));
                rows_ok = row.checksum == rowChecksum(row);
            }
            rep.check(rows_ok, "rows-intact",
                      "row checksum mismatch in shard " +
                          std::to_string(t));
        }
        return rep;
    }

  private:
    std::unique_ptr<pmfs::Pmfs> fs_;
    pmfs::Ino tableIno_ = pmfs::kInvalidIno;
    pmfs::Ino indexIno_ = pmfs::kInvalidIno;
    pmfs::Ino binlogIno_ = pmfs::kInvalidIno;
    std::uint64_t rows_ = 0;
    std::mutex dbLock_;
    core::WorkloadKeymap wlMap_;
    std::vector<WlDb> wlDbs_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeMysqlApp(const core::AppConfig &config)
{
    return std::make_unique<MysqlApp>(config);
}

} // namespace whisper::apps

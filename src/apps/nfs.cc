/**
 * @file
 * NFS: a file server exporting a PMFS volume (paper §3.2.3).
 *
 * Runs the filebench *fileserver* profile against the PMFS-like
 * filesystem: a directory tree of files; each loop iteration by each
 * of the 8 client threads performs create+write-whole-file, open+
 * append, read-whole-file, stat, and delete operations, with file
 * sizes drawn around the profile's mean. Everything reaches PM
 * through the filesystem's syscall-style interface — the lowest
 * epoch rate in the suite (Table 1) because each syscall is one
 * journal transaction and most traffic is 4 KB NTI block writes.
 */

#include <atomic>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "pmfs/pmfs.hh"

namespace whisper::apps
{

using namespace core;

namespace
{

class NfsApp : public WhisperApp
{
  public:
    explicit NfsApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "nfs"; }
    AccessLayer layer() const override { return AccessLayer::Filesystem; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        fs_ = std::make_unique<pmfs::Pmfs>(ctx, 0, config_.poolBytes);
        // Export tree: /export/dirNN/ with a starting fileset.
        fs_->mkdir(ctx, "/export");
        for (unsigned d = 0; d < kDirs; d++)
            fs_->mkdir(ctx, dirPath(d));
        Rng rng(config_.seed);
        std::vector<std::uint8_t> buf(kMeanFileBytes);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng());
        for (unsigned d = 0; d < kDirs; d++) {
            for (unsigned f = 0; f < kInitialFilesPerDir; f++) {
                const pmfs::Ino ino =
                    fs_->create(ctx, filePath(d, f));
                panic_if(ino == pmfs::kInvalidIno,
                         "nfs setup create failed");
                fs_->write(ctx, ino, 0, buf.data(), buf.size());
            }
        }
        nextFile_.store(kInitialFilesPerDir);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 101 + tid);
        std::vector<std::uint8_t> buf(4 * kMeanFileBytes);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng());

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            const unsigned d = static_cast<unsigned>(rng.next(kDirs));
            const double pick = rng.nextDouble();
            // RPC round trip + server-side request handling keep
            // NFS at ~250K epochs/second (Table 1).
            ctx.vStore(buf.data(), 64);
            ctx.vBurst(buf.data(), 1 << 14, 200, 80);
            ctx.compute(60'000);

            if (pick < 0.25) {
                // createfile + writewholefile + close
                const std::uint64_t id = nextFile_.fetch_add(1);
                const pmfs::Ino ino = fs_->create(
                    ctx, filePath(d, static_cast<unsigned>(id)));
                if (ino != pmfs::kInvalidIno) {
                    const std::size_t n = fileBytes(rng);
                    fs_->write(ctx, ino, 0, buf.data(), n);
                }
            } else if (pick < 0.45) {
                // open + appendfile
                const pmfs::Ino ino = pickFile(ctx, d, rng);
                if (ino != pmfs::kInvalidIno) {
                    fs_->append(ctx, ino, buf.data(),
                                kAppendBytes);
                }
            } else if (pick < 0.80) {
                // open + readwholefile
                const pmfs::Ino ino = pickFile(ctx, d, rng);
                if (ino != pmfs::kInvalidIno) {
                    std::vector<std::uint8_t> rbuf(
                        fs_->fileSize(ctx, ino));
                    if (!rbuf.empty()) {
                        fs_->read(ctx, ino, 0, rbuf.data(),
                                  rbuf.size());
                        ctx.vStore(rbuf.data(),
                                   std::min<std::size_t>(
                                       rbuf.size(), 256));
                    }
                }
            } else if (pick < 0.92) {
                // statfile
                const pmfs::Ino ino = pickFile(ctx, d, rng);
                if (ino != pmfs::kInvalidIno)
                    fs_->fileSize(ctx, ino);
            } else {
                // deletefile
                const auto names = fs_->readdir(ctx, dirPath(d));
                if (!names.empty()) {
                    const auto &name =
                        names[rng.next(names.size())];
                    fs_->unlink(ctx, dirPath(d) + "/" + name);
                }
            }
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->fsck(rt.ctx(0), &why), "fsck", why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        fs_->mount(rt.ctx(0));
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        return verify(rt);
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->journalQuiescent(ctx, &why),
                  "journal-quiescent", why);
        why.clear();
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        fs_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    static constexpr unsigned kDirs = 8;
    static constexpr unsigned kInitialFilesPerDir = 8;
    static constexpr std::size_t kMeanFileBytes = 16 << 10;
    static constexpr std::size_t kAppendBytes = 8 << 10;

    static std::string
    dirPath(unsigned d)
    {
        return "/export/dir" + std::to_string(d);
    }

    static std::string
    filePath(unsigned d, unsigned f)
    {
        return dirPath(d) + "/f" + std::to_string(f);
    }

    std::size_t
    fileBytes(Rng &rng) const
    {
        // Rough gamma-ish spread around the 16 KB mean.
        return (kMeanFileBytes / 2) + rng.next(kMeanFileBytes);
    }

    pmfs::Ino
    pickFile(pm::PmContext &ctx, unsigned d, Rng &rng)
    {
        const auto names = fs_->readdir(ctx, dirPath(d));
        if (names.empty())
            return pmfs::kInvalidIno;
        const auto &name = names[rng.next(names.size())];
        return fs_->lookup(ctx, dirPath(d) + "/" + name);
    }

    std::unique_ptr<pmfs::Pmfs> fs_;
    std::atomic<std::uint64_t> nextFile_{0};
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeNfsApp(const core::AppConfig &config)
{
    return std::make_unique<NfsApp>(config);
}

} // namespace whisper::apps

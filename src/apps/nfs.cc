/**
 * @file
 * NFS: a file server exporting a PMFS volume (paper §3.2.3).
 *
 * Runs the filebench *fileserver* profile against the PMFS-like
 * filesystem: a directory tree of files; each loop iteration by each
 * of the 8 client threads performs create+write-whole-file, open+
 * append, read-whole-file, stat, and delete operations, with file
 * sizes drawn around the profile's mean. Everything reaches PM
 * through the filesystem's syscall-style interface — the lowest
 * epoch rate in the suite (Table 1) because each syscall is one
 * journal transaction and most traffic is 4 KB NTI block writes.
 */

#include <atomic>
#include <cstring>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "pmfs/pmfs.hh"

namespace whisper::apps
{

using namespace core;

namespace
{

class NfsApp : public WhisperApp
{
  public:
    explicit NfsApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "nfs"; }
    AccessLayer layer() const override { return AccessLayer::Filesystem; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        fs_ = std::make_unique<pmfs::Pmfs>(ctx, 0, config_.poolBytes);
        // Export tree: /export/dirNN/ with a starting fileset.
        fs_->mkdir(ctx, "/export");
        for (unsigned d = 0; d < kDirs; d++)
            fs_->mkdir(ctx, dirPath(d));
        Rng rng(config_.seed);
        std::vector<std::uint8_t> buf(kMeanFileBytes);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng());
        for (unsigned d = 0; d < kDirs; d++) {
            for (unsigned f = 0; f < kInitialFilesPerDir; f++) {
                const pmfs::Ino ino =
                    fs_->create(ctx, filePath(d, f));
                panic_if(ino == pmfs::kInvalidIno,
                         "nfs setup create failed");
                fs_->write(ctx, ino, 0, buf.data(), buf.size());
            }
        }
        nextFile_.store(kInitialFilesPerDir);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 101 + tid);
        std::vector<std::uint8_t> buf(4 * kMeanFileBytes);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng());

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            const unsigned d = static_cast<unsigned>(rng.next(kDirs));
            const double pick = rng.nextDouble();
            // RPC round trip + server-side request handling keep
            // NFS at ~250K epochs/second (Table 1).
            ctx.vStore(buf.data(), 64);
            ctx.vBurst(buf.data(), 1 << 14, 200, 80);
            ctx.compute(60'000);

            if (pick < 0.25) {
                // createfile + writewholefile + close
                const std::uint64_t id = nextFile_.fetch_add(1);
                const pmfs::Ino ino = fs_->create(
                    ctx, filePath(d, static_cast<unsigned>(id)));
                if (ino != pmfs::kInvalidIno) {
                    const std::size_t n = fileBytes(rng);
                    fs_->write(ctx, ino, 0, buf.data(), n);
                }
            } else if (pick < 0.45) {
                // open + appendfile
                const pmfs::Ino ino = pickFile(ctx, d, rng);
                if (ino != pmfs::kInvalidIno) {
                    fs_->append(ctx, ino, buf.data(),
                                kAppendBytes);
                }
            } else if (pick < 0.80) {
                // open + readwholefile
                const pmfs::Ino ino = pickFile(ctx, d, rng);
                if (ino != pmfs::kInvalidIno) {
                    std::vector<std::uint8_t> rbuf(
                        fs_->fileSize(ctx, ino));
                    if (!rbuf.empty()) {
                        fs_->read(ctx, ino, 0, rbuf.data(),
                                  rbuf.size());
                        ctx.vStore(rbuf.data(),
                                   std::min<std::size_t>(
                                       rbuf.size(), 256));
                    }
                }
            } else if (pick < 0.92) {
                // statfile
                const pmfs::Ino ino = pickFile(ctx, d, rng);
                if (ino != pmfs::kInvalidIno)
                    fs_->fileSize(ctx, ino);
            } else {
                // deletefile
                const auto names = fs_->readdir(ctx, dirPath(d));
                if (!names.empty()) {
                    const auto &name =
                        names[rng.next(names.size())];
                    fs_->unlink(ctx, dirPath(d) + "/" + name);
                }
            }
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->fsck(rt.ctx(0), &why), "fsck", why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        fs_->mount(rt.ctx(0));
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        return verify(rt);
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->journalQuiescent(ctx, &why),
                  "journal-quiescent", why);
        why.clear();
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        fs_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    static constexpr unsigned kDirs = 8;
    static constexpr unsigned kInitialFilesPerDir = 8;
    static constexpr std::size_t kMeanFileBytes = 16 << 10;
    static constexpr std::size_t kAppendBytes = 8 << 10;

    static std::string
    dirPath(unsigned d)
    {
        return "/export/dir" + std::to_string(d);
    }

    static std::string
    filePath(unsigned d, unsigned f)
    {
        return dirPath(d) + "/f" + std::to_string(f);
    }

    std::size_t
    fileBytes(Rng &rng) const
    {
        // Rough gamma-ish spread around the 16 KB mean.
        return (kMeanFileBytes / 2) + rng.next(kMeanFileBytes);
    }

    pmfs::Ino
    pickFile(pm::PmContext &ctx, unsigned d, Rng &rng)
    {
        const auto names = fs_->readdir(ctx, dirPath(d));
        if (names.empty())
            return pmfs::kInvalidIno;
        const auto &name = names[rng.next(names.size())];
        return fs_->lookup(ctx, dirPath(d) + "/" + name);
    }

    // ---- Unified workload driver surface ------------------------------
    //
    // Each workload thread exports its own PMFS volume over a disjoint
    // pool slice (one server instance per client, as a scaled-out
    // filer would shard exports). Keys map to fixed-size 512-byte
    // records striped across one extent file per directory; every
    // write is a journaled syscall into the volume, preserving the
    // filesystem layer's access shape at KV-op granularity.

    static constexpr std::size_t kWlRecordBytes = 512;

    struct WlVolume
    {
        std::unique_ptr<pmfs::Pmfs> fs;
        pmfs::Ino files[kDirs] = {};
    };

    /** RPC round trip + request handling, matching run()'s shape. */
    void
    wlPad(pm::PmContext &ctx, std::uint64_t key)
    {
        std::uint8_t buf[64] = {};
        std::memcpy(buf, &key, 8);
        ctx.vStore(buf, sizeof(buf));
        ctx.vBurst(buf, 1 << 14, 200, 80);
        ctx.compute(60'000);
    }

    /** Deterministic record image for (key, value). */
    static void
    wlFillRecord(std::uint64_t key, std::uint64_t value,
                 std::uint8_t out[kWlRecordBytes])
    {
        std::uint64_t words[kWlRecordBytes / 8];
        words[0] = key;
        words[1] = value;
        words[2] = key ^ value;
        std::uint64_t seed = value;
        for (std::size_t i = 3; i < kWlRecordBytes / 8; i++) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            words[i] = z ^ (z >> 31);
        }
        std::memcpy(out, words, kWlRecordBytes);
    }

    /** localIndex -> (extent file, record slot) striping. */
    static void
    wlSlot(std::uint64_t local_index, unsigned &file,
           std::uint64_t &slot)
    {
        file = static_cast<unsigned>(local_index % kDirs);
        slot = local_index / kDirs;
    }

  public:
    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const core::WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlVols_.clear();
        wlVols_.resize(map.threads);
        const Addr region = lineBase(config_.poolBytes / map.threads);
        panic_if(region <= (8u << 20),
                 "nfs workload: pool too small for %u volumes",
                 map.threads);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlVolume &vol = wlVols_[t];
            vol.fs = std::make_unique<pmfs::Pmfs>(
                ctx, static_cast<Addr>(t) * region, region);
            vol.fs->mkdir(ctx, "/export");
            for (unsigned d = 0; d < kDirs; d++) {
                vol.fs->mkdir(ctx, dirPath(d));
                vol.files[d] =
                    vol.fs->create(ctx, dirPath(d) + "/data");
                panic_if(vol.files[d] == pmfs::kInvalidIno,
                         "nfs workload create failed");
            }
            // Preload each extent file in bounded syscalls: every
            // write is one journal transaction, and each appended
            // block journals allocator/block-map metadata, so a
            // whole-file write at large key counts would overflow a
            // journal segment. 128 KiB per call stays well inside it.
            constexpr std::uint64_t kPreloadChunkBytes = 128u << 10;
            std::vector<std::uint8_t> buf;
            for (unsigned d = 0; d < kDirs; d++) {
                const std::uint64_t recs =
                    map.perThread() / kDirs +
                    (d < map.perThread() % kDirs ? 1 : 0);
                if (recs == 0)
                    continue;
                buf.resize(recs * kWlRecordBytes);
                for (std::uint64_t s = 0; s < recs; s++) {
                    const std::uint64_t key =
                        map.lo(t) + s * kDirs + d;
                    wlFillRecord(key, key * 0x9e3779b97f4a7c15ull,
                                 buf.data() + s * kWlRecordBytes);
                }
                for (std::uint64_t off = 0; off < buf.size();
                     off += kPreloadChunkBytes) {
                    const std::uint64_t n = std::min<std::uint64_t>(
                        kPreloadChunkBytes, buf.size() - off);
                    vol.fs->write(ctx, vol.files[d], off,
                                  buf.data() + off, n);
                }
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        unsigned file = 0;
        std::uint64_t slot = 0;
        wlSlot(wlMap_.localIndex(tid, key), file, slot);
        std::uint8_t rec[kWlRecordBytes];
        vol.fs->read(ctx, vol.files[file], slot * kWlRecordBytes, rec,
                     sizeof(rec));
        std::uint64_t stored = 0;
        std::memcpy(&stored, rec, 8);
        return stored == key;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        unsigned file = 0;
        std::uint64_t slot = 0;
        wlSlot(wlMap_.localIndex(tid, key), file, slot);
        std::uint8_t rec[kWlRecordBytes];
        wlFillRecord(key, value, rec);
        vol.fs->write(ctx, vol.files[file], slot * kWlRecordBytes, rec,
                      sizeof(rec));
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        unsigned file = 0;
        std::uint64_t slot = 0;
        wlSlot(wlMap_.localIndex(tid, key), file, slot);
        std::uint8_t rec[kWlRecordBytes];
        vol.fs->read(ctx, vol.files[file], slot * kWlRecordBytes, rec,
                     sizeof(rec));
        std::uint64_t stored = 0, value = 0;
        std::memcpy(&stored, rec, 8);
        std::memcpy(&value, rec + 8, 8);
        const bool found = stored == key;
        wlFillRecord(key, (found ? value : 0) + delta, rec);
        vol.fs->write(ctx, vol.files[file], slot * kWlRecordBytes, rec,
                      sizeof(rec));
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const std::uint64_t k = wlMap_.scanKey(tid, key, j);
            unsigned file = 0;
            std::uint64_t slot = 0;
            wlSlot(wlMap_.localIndex(tid, k), file, slot);
            std::uint8_t rec[kWlRecordBytes];
            vol.fs->read(ctx, vol.files[file], slot * kWlRecordBytes,
                         rec, sizeof(rec));
            std::uint64_t stored = 0;
            std::memcpy(&stored, rec, 8);
            if (stored == k)
                found++;
        }
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlMap_.threads; t++) {
            // A clean run leaves the descriptor COMMITTED (commit is
            // lazy about the FREE transition); mount-time recovery
            // retires it, exactly like the run path's recover().
            wlVols_[t].fs->mount(rt.ctx(t));
            std::string why;
            rep.check(wlVols_[t].fs->journalQuiescent(rt.ctx(t), &why),
                      "journal-quiescent", why);
            why.clear();
            rep.check(wlVols_[t].fs->fsck(rt.ctx(t), &why), "fsck",
                      why);
        }
        return rep;
    }

  private:
    std::unique_ptr<pmfs::Pmfs> fs_;
    std::atomic<std::uint64_t> nextFile_{0};
    core::WorkloadKeymap wlMap_;
    std::vector<WlVolume> wlVols_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeNfsApp(const core::AppConfig &config)
{
    return std::make_unique<NfsApp>(config);
}

} // namespace whisper::apps

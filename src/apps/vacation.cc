/**
 * @file
 * Vacation: the STAMP travel-reservation OLTP system, persisted with
 * Mnemosyne (paper §3.2.2).
 *
 * Three item tables (cars, flights, rooms) implemented as persistent
 * binary search trees, a customer table with per-customer reservation
 * lists, and — exactly as the paper calls out — *global counters* of
 * reservations that every client transaction updates, the suite's
 * main source of cross-thread epoch dependencies.
 *
 * Each reservation/cancellation is a Mnemosyne durable transaction:
 * updates are redo-logged with NTI+fence, applied at commit with
 * cacheable stores + flushes, and the log is truncated entry by
 * entry. Reservation nodes come from pmalloc inside the transaction;
 * on a crash Mnemosyne may leak them (the documented trade-off), but
 * the tables stay consistent.
 */

#include <bit>
#include <mutex>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "txlib/mnemosyne.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;

namespace
{

constexpr std::uint64_t kItemSalt = 0x57AC4710ull;

enum ItemType : std::uint32_t { kCar = 0, kFlight = 1, kRoom = 2 };

/** BST node for one reservable item. */
struct Item
{
    std::uint64_t id;
    std::uint32_t numFree;
    std::uint32_t numTotal;
    std::uint64_t price;
    std::uint64_t checksum;
    Addr left;
    Addr right;
};

std::uint64_t
itemChecksum(const Item &it)
{
    return it.id ^ it.numFree ^
           (static_cast<std::uint64_t>(it.numTotal) << 32) ^ it.price ^
           kItemSalt;
}

/** One reservation held by a customer. */
struct Reservation
{
    std::uint32_t type;
    std::uint32_t pad;
    std::uint64_t itemId;
    std::uint64_t price;
    Addr next;
};

/** Customer record (fixed array, pre-created). */
struct Customer
{
    std::uint64_t id;
    Addr reservations;
};

/** Persistent root. */
struct VacationRoot
{
    std::uint64_t magic;
    Addr itemTrees[3];
    std::uint64_t totalReserved[3]; //!< the shared global counters
    Addr customersOff;
    std::uint64_t customerCount;

    static constexpr std::uint64_t kMagic = 0x57AC57ACull;
};

class VacationApp : public WhisperApp
{
  public:
    explicit VacationApp(const AppConfig &config) : WhisperApp(config)
    {
    }

    std::string name() const override { return "vacation"; }
    AccessLayer
    layer() const override
    {
        return AccessLayer::LibMnemosyne;
    }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        rootOff_ = 0;
        const Addr heap_base =
            lineBase(sizeof(VacationRoot) + kCacheLineSize);
        heap_ = std::make_unique<mne::MnemosyneHeap>(
            ctx, heap_base, config_.poolBytes - heap_base,
            config_.threads);

        // Power of two so the scrambled load order is a bijection
        // (no duplicate item ids).
        itemCount_ = std::bit_floor(std::max<std::uint64_t>(
            256, std::min<std::uint64_t>(config_.opsPerThread * 2,
                                         16384)));
        customerCount_ = std::max<std::uint64_t>(64, itemCount_ / 4);

        VacationRoot root{};
        root.magic = VacationRoot::kMagic;
        for (auto &t : root.itemTrees)
            t = kNullAddr;
        root.customerCount = customerCount_;
        ctx.store(rootOff_, &root, sizeof(root), DataClass::User);
        ctx.flush(rootOff_, sizeof(root));
        ctx.fence(FenceKind::Durability);

        // Customer table: a contiguous persistent array.
        const Addr cust_off =
            heap_->pmalloc(ctx, customerCount_ * sizeof(Customer));
        panic_if(cust_off == kNullAddr, "vacation: customer table");
        for (std::uint64_t c = 0; c < customerCount_; c++) {
            Customer cust{c, kNullAddr};
            ctx.store(cust_off + c * sizeof(Customer), &cust,
                      sizeof(cust), DataClass::User);
        }
        ctx.flush(cust_off, customerCount_ * sizeof(Customer));
        VacationRoot *r = this->root(ctx);
        ctx.storeField(r->customersOff, cust_off, DataClass::User);
        ctx.flush(rootOff_ + offsetof(VacationRoot, customersOff), 8);
        ctx.fence(FenceKind::Durability);

        // Populate the three item trees (setup phase; plain persists).
        Rng rng(config_.seed);
        for (int t = 0; t < 3; t++) {
            ScrambledSequence order(itemCount_, rng);
            for (std::uint64_t i = 0; i < itemCount_; i++) {
                insertItemSetup(ctx, static_cast<ItemType>(t),
                                order.at(i), 4 + rng.next(4),
                                50 + rng.next(450));
            }
        }
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 17 + tid);
        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            const auto type = static_cast<ItemType>(rng.next(3));
            const std::uint64_t item_id = rng.next(itemCount_);
            const std::uint64_t cust_id = rng.next(customerCount_);
            // Client-side query planning and STAMP's volatile
            // manager tables (paper Fig. 6: vacation is the most
            // DRAM-heavy app at ~0.4% PM accesses).
            ctx.vBurst(&item_id, 1 << 15, 2100, 900);
            ctx.compute(9000);
            if (rng.chance(0.8))
                makeReservation(ctx, type, item_id, cust_id);
            else
                cancelReservation(ctx, type, cust_id);
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkAll(rt, &why), "tables-intact", why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        heap_->recover(rt.ctx(0));
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkAll(rt, &why), "tables-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(heap_->logsQuiescent(rt.ctx(0), &why),
                  "logs-quiescent", why);
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        heap_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    VacationRoot *root(pm::PmContext &ctx) { return ctx.pool()
        .at<VacationRoot>(rootOff_); }

    /** Setup-phase BST insert (persist as we go, no transactions). */
    void
    insertItemSetup(pm::PmContext &ctx, ItemType type,
                    std::uint64_t id, std::uint32_t total,
                    std::uint64_t price)
    {
        const Addr off = heap_->pmalloc(ctx, sizeof(Item));
        panic_if(off == kNullAddr, "vacation heap exhausted");
        Item it{};
        it.id = id;
        it.numFree = total;
        it.numTotal = total;
        it.price = price;
        it.left = it.right = kNullAddr;
        it.checksum = itemChecksum(it);
        ctx.store(off, &it, sizeof(it), DataClass::User);
        ctx.flush(off, sizeof(it));
        ctx.fence(FenceKind::Ordering);

        VacationRoot *r = root(ctx);
        Addr *link = &r->itemTrees[type];
        Addr link_off = rootOff_ + offsetof(VacationRoot, itemTrees) +
                        type * sizeof(Addr);
        while (*link != kNullAddr) {
            Item *node = ctx.pool().at<Item>(*link);
            if (id < node->id) {
                link_off = *link + offsetof(Item, left);
                link = &node->left;
            } else {
                link_off = *link + offsetof(Item, right);
                link = &node->right;
            }
        }
        ctx.store(link_off, &off, 8, DataClass::User);
        ctx.flush(link_off, 8);
        ctx.fence(FenceKind::Ordering);
    }

    Addr
    findItem(pm::PmContext &ctx, ItemType type, std::uint64_t id)
    {
        Addr cur = root(ctx)->itemTrees[type];
        while (cur != kNullAddr) {
            Item probe{};
            ctx.load(cur, &probe, sizeof(probe));
            if (probe.id == id)
                return cur;
            cur = id < probe.id ? probe.left : probe.right;
        }
        return kNullAddr;
    }

    Customer *
    customer(pm::PmContext &ctx, std::uint64_t cust_id)
    {
        const Addr base = root(ctx)->customersOff;
        return ctx.pool().at<Customer>(base +
                                       cust_id * sizeof(Customer));
    }

    void
    makeReservation(pm::PmContext &ctx, ItemType type,
                    std::uint64_t item_id, std::uint64_t cust_id)
    {
        std::lock_guard<std::mutex> guard(tableLock_);
        const Addr item_off = findItem(ctx, type, item_id);
        if (item_off == kNullAddr)
            return;

        mne::Transaction tx(*heap_, ctx);
        const std::uint32_t num_free =
            tx.get(ctx.pool().at<Item>(item_off)->numFree);
        if (num_free == 0) {
            tx.abort();
            return;
        }

        // Reserve: decrement availability + fix the checksum, one
        // logged update covering the contiguous fields.
        Item staged{};
        tx.read(item_off, &staged, sizeof(staged));
        staged.numFree = num_free - 1;
        staged.checksum = itemChecksum(staged);
        tx.update(item_off + offsetof(Item, numFree),
                  reinterpret_cast<const std::uint8_t *>(&staged) +
                      offsetof(Item, numFree),
                  offsetof(Item, left) - offsetof(Item, numFree),
                  DataClass::User);

        // Record the reservation on the customer.
        const Addr res_off = tx.pmalloc(sizeof(Reservation));
        if (res_off == kNullAddr) {
            tx.abort();
            return;
        }
        Customer *cust = customer(ctx, cust_id);
        Reservation res{static_cast<std::uint32_t>(type), 0, item_id,
                        staged.price, tx.get(cust->reservations)};
        tx.update(res_off, &res, sizeof(res), DataClass::User);
        tx.set(cust->reservations, res_off, DataClass::User);

        // The global counter: every thread's transactions write this
        // one cache line (the paper's cross-dependency source).
        VacationRoot *r = root(ctx);
        const std::uint64_t count = tx.get(r->totalReserved[type]) + 1;
        tx.set(r->totalReserved[type], count, DataClass::User);

        tx.commit();
    }

    void
    cancelReservation(pm::PmContext &ctx, ItemType type,
                      std::uint64_t cust_id)
    {
        std::lock_guard<std::mutex> guard(tableLock_);
        Customer *cust = customer(ctx, cust_id);
        // Find the first reservation of this type.
        Addr holder = ctx.pool().offsetOf(&cust->reservations);
        Addr cur = cust->reservations;
        while (cur != kNullAddr) {
            Reservation probe{};
            ctx.load(cur, &probe, sizeof(probe));
            if (probe.type == static_cast<std::uint32_t>(type))
                break;
            holder = cur + offsetof(Reservation, next);
            cur = probe.next;
        }
        if (cur == kNullAddr)
            return;
        const Reservation *res = ctx.pool().at<Reservation>(cur);
        const Addr item_off = findItem(ctx, type, res->itemId);
        if (item_off == kNullAddr)
            return;

        mne::Transaction tx(*heap_, ctx);
        Item staged{};
        tx.read(item_off, &staged, sizeof(staged));
        staged.numFree++;
        staged.checksum = itemChecksum(staged);
        tx.update(item_off + offsetof(Item, numFree),
                  reinterpret_cast<const std::uint8_t *>(&staged) +
                      offsetof(Item, numFree),
                  offsetof(Item, left) - offsetof(Item, numFree),
                  DataClass::User);

        // Unlink + release the node.
        tx.update(holder, &res->next, 8, DataClass::User);
        tx.pfree(cur);

        VacationRoot *r = root(ctx);
        const std::uint64_t count = tx.get(r->totalReserved[type]) - 1;
        tx.set(r->totalReserved[type], count, DataClass::User);

        tx.commit();
    }

    bool
    checkAll(Runtime &rt, std::string *why)
    {
        pm::PmContext &ctx = rt.ctx(0);
        VacationRoot *r = root(ctx);
        if (r->magic != VacationRoot::kMagic) {
            if (why)
                *why = "bad root magic";
            return false;
        }

        // 1. Item trees: BST order + checksums + per-item capacity.
        std::uint64_t reserved_by_items[3] = {0, 0, 0};
        for (int t = 0; t < 3; t++) {
            std::vector<std::pair<Addr, std::pair<std::uint64_t,
                                                  std::uint64_t>>>
                stack;
            if (r->itemTrees[t] != kNullAddr) {
                stack.push_back({r->itemTrees[t],
                                 {0, ~std::uint64_t(0)}});
            }
            while (!stack.empty()) {
                auto [off, range] = stack.back();
                stack.pop_back();
                const Item *it = ctx.pool().at<Item>(off);
                if (it->checksum != itemChecksum(*it)) {
                    if (why)
                        *why = "item checksum mismatch";
                    return false;
                }
                if (it->id < range.first || it->id > range.second) {
                    if (why)
                        *why = "BST order violated";
                    return false;
                }
                if (it->numFree > it->numTotal) {
                    if (why)
                        *why = "numFree above capacity";
                    return false;
                }
                reserved_by_items[t] += it->numTotal - it->numFree;
                if (it->left != kNullAddr) {
                    stack.push_back(
                        {it->left, {range.first, it->id - 1}});
                }
                if (it->right != kNullAddr) {
                    stack.push_back(
                        {it->right, {it->id + 1, range.second}});
                }
            }
        }

        // 2. Customer reservation lists vs the counters and items.
        std::uint64_t reserved_by_lists[3] = {0, 0, 0};
        for (std::uint64_t c = 0; c < customerCount_; c++) {
            Addr cur = customer(ctx, c)->reservations;
            std::uint64_t guard = 0;
            while (cur != kNullAddr) {
                if (++guard > 10'000'000) {
                    if (why)
                        *why = "reservation list cycle";
                    return false;
                }
                const Reservation *res =
                    ctx.pool().at<Reservation>(cur);
                if (res->type > 2) {
                    if (why)
                        *why = "reservation with bad type";
                    return false;
                }
                reserved_by_lists[res->type]++;
                cur = res->next;
            }
        }
        for (int t = 0; t < 3; t++) {
            if (reserved_by_lists[t] != r->totalReserved[t] ||
                reserved_by_items[t] != r->totalReserved[t]) {
                if (why)
                    *why = "reservation counters out of sync";
                return false;
            }
        }
        return true;
    }

    // ---- Unified workload driver surface ------------------------------
    //
    // The KV workload maps onto the item tables: a key is an item id in
    // a per-thread car tree, the value is its price. Each workload
    // thread owns a private root + Mnemosyne heap over a disjoint pool
    // slice (the STAMP suite's data-partitioned client mode), so op
    // costs do not depend on cross-thread interleaving. Customers and
    // the global counters stay a run()-only feature; the workload check
    // validates tree shape and checksums instead.

    /** DRAM-side query planning, matching run()'s per-op shape. */
    void
    wlPad(pm::PmContext &ctx, std::uint64_t key)
    {
        ctx.vBurst(&key, 1 << 15, 2100, 900);
        ctx.compute(9000);
    }

    Addr
    findItemAt(pm::PmContext &ctx, Addr root_off, std::uint64_t id)
    {
        Addr cur = ctx.pool().at<VacationRoot>(root_off)
                       ->itemTrees[kCar];
        while (cur != kNullAddr) {
            Item probe{};
            ctx.load(cur, &probe, sizeof(probe));
            if (probe.id == id)
                return cur;
            cur = id < probe.id ? probe.left : probe.right;
        }
        return kNullAddr;
    }

    /** Preload-phase insert into a shard tree (plain persists). */
    void
    insertItemSetupAt(pm::PmContext &ctx, mne::MnemosyneHeap &heap,
                      Addr root_off, std::uint64_t id,
                      std::uint64_t price)
    {
        const Addr off = heap.pmalloc(ctx, sizeof(Item));
        panic_if(off == kNullAddr, "vacation workload heap exhausted");
        Item it{};
        it.id = id;
        it.numFree = 4;
        it.numTotal = 4;
        it.price = price;
        it.left = it.right = kNullAddr;
        it.checksum = itemChecksum(it);
        ctx.store(off, &it, sizeof(it), DataClass::User);
        ctx.flush(off, sizeof(it));
        ctx.fence(FenceKind::Ordering);

        Addr link_off = root_off + offsetof(VacationRoot, itemTrees) +
                        kCar * sizeof(Addr);
        Addr cur = *ctx.pool().at<Addr>(link_off);
        while (cur != kNullAddr) {
            const Item *node = ctx.pool().at<Item>(cur);
            link_off = cur + (id < node->id ? offsetof(Item, left)
                                            : offsetof(Item, right));
            cur = *ctx.pool().at<Addr>(link_off);
        }
        ctx.store(link_off, &off, 8, DataClass::User);
        ctx.flush(link_off, 8);
        ctx.fence(FenceKind::Ordering);
    }

    /** Durable-transaction insert used for workload inserts. */
    void
    insertItemTx(pm::PmContext &ctx, mne::MnemosyneHeap &heap,
                 Addr root_off, std::uint64_t id, std::uint64_t price)
    {
        mne::Transaction tx(heap, ctx);
        const Addr off = tx.pmalloc(sizeof(Item));
        if (off == kNullAddr) {
            tx.abort();
            panic("vacation workload heap exhausted");
        }
        Item it{};
        it.id = id;
        it.numFree = 4;
        it.numTotal = 4;
        it.price = price;
        it.left = it.right = kNullAddr;
        it.checksum = itemChecksum(it);
        tx.update(off, &it, sizeof(it), DataClass::User);

        Addr link_off = root_off + offsetof(VacationRoot, itemTrees) +
                        kCar * sizeof(Addr);
        Addr cur = tx.get(*ctx.pool().at<Addr>(link_off));
        while (cur != kNullAddr) {
            const Item *node = ctx.pool().at<Item>(cur);
            link_off = cur + (id < node->id ? offsetof(Item, left)
                                            : offsetof(Item, right));
            cur = tx.get(*ctx.pool().at<Addr>(link_off));
        }
        tx.update(link_off, &off, 8, DataClass::User);
        tx.commit();
    }

    /** Durable-transaction price update (existing item). */
    void
    updatePriceTx(pm::PmContext &ctx, mne::MnemosyneHeap &heap,
                  Addr item_off, std::uint64_t price)
    {
        mne::Transaction tx(heap, ctx);
        Item staged{};
        tx.read(item_off, &staged, sizeof(staged));
        staged.price = price;
        staged.checksum = itemChecksum(staged);
        tx.update(item_off + offsetof(Item, price), &staged.price, 8,
                  DataClass::User);
        tx.set(ctx.pool().at<Item>(item_off)->checksum,
               staged.checksum, DataClass::User);
        tx.commit();
    }

  public:
    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const core::WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlShards_.clear();
        wlShards_.resize(map.threads);
        const Addr region = lineBase(config_.poolBytes / map.threads);
        panic_if(region <= sizeof(VacationRoot) + (2u << 20),
                 "vacation workload: pool too small for %u shards",
                 map.threads);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlShard &sh = wlShards_[t];
            sh.rootOff = static_cast<Addr>(t) * region;
            const Addr heap_base = lineBase(
                sh.rootOff + sizeof(VacationRoot) + kCacheLineSize);
            sh.heap = std::make_unique<mne::MnemosyneHeap>(
                ctx, heap_base, sh.rootOff + region - heap_base, 1);

            VacationRoot root{};
            root.magic = VacationRoot::kMagic;
            for (auto &tree : root.itemTrees)
                tree = kNullAddr;
            root.customersOff = kNullAddr;
            ctx.store(sh.rootOff, &root, sizeof(root), DataClass::User);
            ctx.flush(sh.rootOff, sizeof(root));
            ctx.fence(FenceKind::Durability);

            // Scrambled insertion order keeps the BST shallow
            // (sequential order would degrade it to a linked list).
            Rng order_rng(config_.seed ^ (0xace1ull + t));
            ScrambledSequence order(map.perThread(), order_rng);
            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(t) + order.at(i);
                insertItemSetupAt(ctx, *sh.heap, sh.rootOff, key,
                                  key * 0x9e3779b97f4a7c15ull);
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        return findItemAt(ctx, sh.rootOff, key) != kNullAddr;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        const Addr off = findItemAt(ctx, sh.rootOff, key);
        if (off != kNullAddr)
            updatePriceTx(ctx, *sh.heap, off, value);
        else
            insertItemTx(ctx, *sh.heap, sh.rootOff, key, value);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        const Addr off = findItemAt(ctx, sh.rootOff, key);
        if (off == kNullAddr) {
            insertItemTx(ctx, *sh.heap, sh.rootOff, key, delta);
            return false;
        }
        std::uint64_t price = 0;
        ctx.load(off + offsetof(Item, price), &price, 8);
        updatePriceTx(ctx, *sh.heap, off, price + delta);
        return true;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            if (findItemAt(ctx, sh.rootOff,
                           wlMap_.scanKey(tid, key, j)) != kNullAddr)
                found++;
        }
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlMap_.threads; t++) {
            std::string why;
            rep.check(checkShardTree(rt.ctx(t), wlShards_[t].rootOff,
                                     &why),
                      "tree-intact", why);
            rep.check(wlShards_[t].heap->logsQuiescent(rt.ctx(t), &why),
                      "logs-quiescent", why);
        }
        return rep;
    }

  private:
    /** Shard tree walk: BST order + checksums. */
    bool
    checkShardTree(pm::PmContext &ctx, Addr root_off, std::string *why)
    {
        const VacationRoot *r = ctx.pool().at<VacationRoot>(root_off);
        if (r->magic != VacationRoot::kMagic) {
            if (why)
                *why = "bad root magic";
            return false;
        }
        std::vector<std::pair<Addr, std::pair<std::uint64_t,
                                              std::uint64_t>>>
            stack;
        if (r->itemTrees[kCar] != kNullAddr)
            stack.push_back({r->itemTrees[kCar], {0, ~std::uint64_t(0)}});
        while (!stack.empty()) {
            auto [off, range] = stack.back();
            stack.pop_back();
            const Item *it = ctx.pool().at<Item>(off);
            if (it->checksum != itemChecksum(*it)) {
                if (why)
                    *why = "item checksum mismatch";
                return false;
            }
            if (it->id < range.first || it->id > range.second) {
                if (why)
                    *why = "BST order violated";
                return false;
            }
            if (it->left != kNullAddr)
                stack.push_back({it->left, {range.first, it->id - 1}});
            if (it->right != kNullAddr)
                stack.push_back({it->right, {it->id + 1, range.second}});
        }
        return true;
    }

    struct WlShard
    {
        Addr rootOff = 0;
        std::unique_ptr<mne::MnemosyneHeap> heap;
    };

    std::unique_ptr<mne::MnemosyneHeap> heap_;
    Addr rootOff_ = 0;
    std::uint64_t itemCount_ = 0;
    std::uint64_t customerCount_ = 0;
    std::mutex tableLock_;
    core::WorkloadKeymap wlMap_;
    std::vector<WlShard> wlShards_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeVacationApp(const core::AppConfig &config)
{
    return std::make_unique<VacationApp>(config);
}

} // namespace whisper::apps

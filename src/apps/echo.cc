/**
 * @file
 * Echo: a scalable persistent key-value store (native access layer).
 *
 * Follows the design the paper describes (§3.2.1): a *master*
 * persistent KVS — a hash table whose entries hold chronologically
 * ordered version lists — plus per-client *volatile* local stores.
 * Clients batch updates, append the batch to a per-client persistent
 * log, and the master moves the updates into the persistent KVS.
 * Each batch is one durable transaction, which is why Echo has the
 * largest transactions in the suite (median 307 epochs in the paper's
 * Figure 3).
 *
 * Faithful behavioural details:
 *  - allocation via the single-heap BuddyAllocator with the
 *    FREE/VOLATILE/PERSISTENT state protocol (allocator-induced
 *    self-dependencies);
 *  - every data structure carries a descriptor whose status moves
 *    INPROGRESS -> CREATED in two consecutive epochs on the same
 *    cache line — the paper's example of an application-level
 *    self-dependency;
 *  - client log entries carry an 'applied' flag so recovery can
 *    re-apply a batch the crash interrupted (idempotently, using
 *    per-version timestamps).
 */

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "alloc/buddy_alloc.hh"
#include "apps/apps.hh"
#include "common/logging.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;
using pm::POff;

namespace
{

constexpr std::uint64_t kBuckets = 4096;
constexpr std::uint64_t kBatchSize = 48;
constexpr std::uint64_t kLogEntriesPerClient = 64;

/** Descriptor status protocol (paper: INPROGRESS -> CREATED). */
enum EchoStatus : std::uint64_t
{
    kInProgress = 0x111,
    kCreated = 0x222,
};

/** One version of a value, newest first in the chain. */
struct Version
{
    std::uint64_t value;
    std::uint64_t ts;       //!< batch timestamp (logical)
    std::uint64_t checksum; //!< value ^ ts ^ key
    Addr next;              //!< older version (kNullAddr at tail)
    std::uint64_t key;
};

/** Hash bucket head. */
struct Bucket
{
    Addr head; //!< newest Entry offset or kNullAddr
};

/** One key's entry: key + version chain + descriptor. */
struct Entry
{
    std::uint64_t key;
    std::uint64_t status;  //!< EchoStatus descriptor
    Addr versions;         //!< newest Version
    Addr next;             //!< next entry in bucket
};

/** Client log entry (fixed slots, reused round-robin per batch). */
struct LogEntry
{
    std::uint64_t key;
    std::uint64_t value;
    std::uint64_t ts;
    std::uint64_t applied; //!< 0/1
};

/** Persistent root of the whole store. */
struct EchoRoot
{
    std::uint64_t magic;
    std::uint64_t nextTs;           //!< global batch timestamp
    Bucket buckets[kBuckets];

    static constexpr std::uint64_t kMagic = 0xEC40EC40ull;
};

std::uint64_t
hashKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
}

class EchoApp : public WhisperApp
{
  public:
    explicit EchoApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "echo"; }
    AccessLayer layer() const override { return AccessLayer::Native; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        // Layout: [root][client logs][buddy heap].
        rootOff_ = 0;
        const Addr logs_off =
            lineBase(sizeof(EchoRoot) + kCacheLineSize);
        logsOff_ = logs_off;
        const std::size_t logs_bytes = config_.threads *
                                       kLogEntriesPerClient *
                                       sizeof(LogEntry);
        heapOff_ = lineBase(logs_off + logs_bytes + kCacheLineSize);
        heap_ = std::make_unique<alloc::BuddyAllocator>(
            ctx, heapOff_, config_.poolBytes - heapOff_);

        EchoRoot root{};
        root.magic = EchoRoot::kMagic;
        root.nextTs = 1;
        for (auto &bucket : root.buckets)
            bucket.head = kNullAddr;
        ctx.store(rootOff_, &root, sizeof(root), DataClass::User);
        ctx.flush(rootOff_, sizeof(root));

        LogEntry empty{0, 0, 0, 1};
        for (std::uint64_t i = 0;
             i < config_.threads * kLogEntriesPerClient; i++) {
            ctx.store(logsOff_ + i * sizeof(LogEntry), &empty,
                      sizeof(empty), DataClass::Log);
        }
        ctx.flush(logsOff_, logs_bytes);
        ctx.fence(FenceKind::Durability);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        Rng rng(config_.seed + tid * 7919);
        const std::uint64_t key_space =
            std::max<std::uint64_t>(1024, config_.opsPerThread);
        // Volatile local store: the client-side cache Echo uses to
        // service local reads (the bulk of DRAM traffic).
        std::unordered_map<std::uint64_t, std::uint64_t> local;
        local.reserve(key_space / 4);

        std::uint64_t done = 0;
        while (done < config_.opsPerThread) {
            const std::uint64_t batch =
                std::min<std::uint64_t>(kBatchSize,
                                        config_.opsPerThread - done);
            // Stage the batch in the volatile store first.
            std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
            ops.reserve(batch);
            for (std::uint64_t i = 0; i < batch; i++) {
                const std::uint64_t key = rng.next(key_space);
                const std::uint64_t value = rng();
                local[key] = value;
                ctx.vStore(&local[key], 8);
                // Local read mix: clients mostly read their own store.
                for (int r = 0; r < 6; r++) {
                    const std::uint64_t probe = rng.next(key_space);
                    auto it = local.find(probe);
                    ctx.vLoad(&probe, 8);
                    if (it != local.end())
                        ctx.vLoad(&it->second, 8);
                }
                ops.emplace_back(key, value);
                // Client-side batching/serialization (paper Fig. 6:
                // Echo is ~5.5% PM accesses).
                ctx.vBurst(&local, 1 << 16, 160, 70);
                ctx.compute(3200);
            }
            submitBatch(rt, ctx, tid, ops);
            done += batch;
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkStore(rt, &why), "store-intact", why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        // Before the heap reclaims VOLATILE blocks, unlink anything
        // the crash left half-published: entries whose descriptor
        // never reached CREATED (or whose block never reached
        // PERSISTENT) and version-chain heads still VOLATILE.
        EchoRoot *r = root(ctx);
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            Bucket &bucket = r->buckets[b];
            // Prune the chain head while it is unfinished.
            while (bucket.head != kNullAddr) {
                Entry *ent = ctx.pool().at<Entry>(bucket.head);
                if (ent->status == kCreated &&
                    heap_->state(ctx, bucket.head) ==
                        alloc::BlockState::Persistent) {
                    break;
                }
                ctx.storeField(bucket.head, ent->next, DataClass::User);
                ctx.flush(ctx.pool().offsetOf(&bucket.head), 8);
                ctx.fence(FenceKind::Ordering);
            }
            // Interior entries were linked before any newer head, so
            // only the head can be unfinished; still scan versions.
            for (Addr cur = bucket.head; cur != kNullAddr;) {
                Entry *ent = ctx.pool().at<Entry>(cur);
                while (ent->versions != kNullAddr &&
                       heap_->state(ctx, ent->versions) !=
                           alloc::BlockState::Persistent) {
                    const Version *ver =
                        ctx.pool().at<Version>(ent->versions);
                    ctx.storeField(ent->versions, ver->next,
                                   DataClass::User);
                    ctx.flush(cur + offsetof(Entry, versions), 8);
                    ctx.fence(FenceKind::Ordering);
                }
                cur = ent->next;
            }
        }
        heap_->recover(ctx);
        // Re-apply any batch whose log entries were durable but not
        // yet marked applied (idempotent thanks to the version ts).
        for (unsigned client = 0; client < config_.threads; client++) {
            for (std::uint64_t slot = 0; slot < kLogEntriesPerClient;
                 slot++) {
                const Addr off = logOff(client, slot);
                LogEntry ent{};
                ctx.load(off, &ent, sizeof(ent));
                if (ent.applied || ent.ts == 0)
                    continue;
                if (ent.key ^ ent.value ^ ent.ts) {
                    // Entry is well-formed only if a matching version
                    // is absent; apply then mark.
                    if (!versionExists(rt, ctx, ent.key, ent.ts))
                        applyUpdate(rt, ctx, ent.key, ent.value,
                                    ent.ts);
                }
                const std::uint64_t one = 1;
                auto *slot_ent = ctx.pool().at<LogEntry>(off);
                ctx.storeField(slot_ent->applied, one, DataClass::Log);
                ctx.flush(off + offsetof(LogEntry, applied), 8);
                ctx.fence(FenceKind::Ordering);
            }
        }
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkStore(rt, &why), "store-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        // Descriptor/state protocol: after recovery every reachable
        // entry and version must have finished INPROGRESS -> CREATED
        // and VOLATILE -> PERSISTENT; recover() prunes stragglers.
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        EchoRoot *r = root(ctx);
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            for (Addr cur = r->buckets[b].head; cur != kNullAddr;) {
                const Entry *ent = ctx.pool().at<Entry>(cur);
                if (!rep.check(ent->status == kCreated &&
                                   heap_->state(ctx, cur) ==
                                       alloc::BlockState::Persistent,
                               "descriptors-settled",
                               "echo entry with unsettled descriptor"))
                    return rep;
                for (Addr v = ent->versions; v != kNullAddr;) {
                    if (!rep.check(heap_->state(ctx, v) ==
                                       alloc::BlockState::Persistent,
                                   "versions-persistent",
                                   "echo version still VOLATILE"))
                        return rep;
                    v = ctx.pool().at<Version>(v)->next;
                }
                cur = ent->next;
            }
        }
        return rep;
    }

  protected:
    /**
     * Media scrub (WhisperApp::scrubRecovered). Poisoned lines arrive
     * zero-filled, and 0 is not kNullAddr: a zeroed bucket head or
     * chain pointer would send recovery's walks to offset 0 and from
     * there out of the heap. Repair what the layout makes
     * reconstructible — the magic, pointer nulls, nextTs from the
     * surviving versions — truncate chains at lost nodes, and declare
     * everything cut as a named Degraded loss. Heap lines need no
     * repair of their own: BuddyAllocator::recover reformats any
     * block whose header was zeroed.
     */
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        const Addr logs_end =
            logsOff_ + static_cast<Addr>(config_.threads) *
                           kLogEntriesPerClient * sizeof(LogEntry);
        std::vector<LineAddr> root_lines, log_lines, heap_lines, rest;
        for (const LineAddr line : lines) {
            const Addr off = static_cast<Addr>(line) << kCacheLineBits;
            if (off < rootOff_ + sizeof(EchoRoot))
                root_lines.push_back(line);
            else if (off >= logsOff_ && off < logs_end)
                log_lines.push_back(line);
            else if (off >= heapOff_ &&
                     off < heapOff_ + heap_->heapSize())
                heap_lines.push_back(line);
            else
                rest.push_back(line);
        }

        // Root lines: every word is the magic, the timestamp or a
        // bucket head. Re-null the heads (their chains are gone) and
        // restore the magic; nextTs is recomputed from the walk below.
        bool ts_lost = false;
        for (const LineAddr line : root_lines) {
            const Addr lo = static_cast<Addr>(line) << kCacheLineBits;
            const Addr hi = std::min<Addr>(
                lo + kCacheLineSize, rootOff_ + sizeof(EchoRoot));
            for (Addr w = lo; w < hi; w += 8) {
                if (w == rootOff_ + offsetof(EchoRoot, magic)) {
                    const std::uint64_t magic = EchoRoot::kMagic;
                    ctx.store(w, &magic, 8, DataClass::User);
                } else if (w ==
                           rootOff_ + offsetof(EchoRoot, nextTs)) {
                    ts_lost = true;
                } else {
                    const Addr null = kNullAddr;
                    ctx.store(w, &null, 8, DataClass::User);
                }
            }
            ctx.persist(lo, hi - lo);
        }

        // Chain truncation: a node is lost when any of its lines was
        // poisoned or its address no longer lands inside the heap
        // (the referrer's pointer word itself was zeroed).
        const auto node_lost = [&](Addr off, std::size_t n) {
            if (off < heapOff_ + sizeof(alloc::BuddyHeader) ||
                off + n > heapOff_ + heap_->heapSize())
                return true;
            for (LineAddr l = lineOf(off); l <= lineOf(off + n - 1);
                 l++) {
                if (std::find(heap_lines.begin(), heap_lines.end(),
                              l) != heap_lines.end())
                    return true;
            }
            return false;
        };
        const auto cut = [&](Addr slot) {
            const Addr null = kNullAddr;
            ctx.store(slot, &null, 8, DataClass::User);
            ctx.persist(slot, 8);
        };
        std::uint64_t chains_cut = 0;
        std::uint64_t max_ts = 0;
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            Addr slot = rootOff_ + offsetof(EchoRoot, buckets) +
                        b * sizeof(Bucket);
            Addr cur = 0;
            ctx.load(slot, &cur, 8);
            while (cur != kNullAddr) {
                if (node_lost(cur, sizeof(Entry))) {
                    cut(slot);
                    chains_cut++;
                    break;
                }
                const Entry *ent = ctx.pool().at<Entry>(cur);
                Addr vslot = cur + offsetof(Entry, versions);
                Addr v = ent->versions;
                while (v != kNullAddr) {
                    if (node_lost(v, sizeof(Version))) {
                        cut(vslot);
                        chains_cut++;
                        break;
                    }
                    const Version *ver =
                        ctx.pool().at<Version>(v);
                    max_ts = std::max(max_ts, ver->ts);
                    vslot = v + offsetof(Version, next);
                    v = ver->next;
                }
                slot = cur + offsetof(Entry, next);
                cur = ent->next;
            }
        }
        if (ts_lost) {
            const std::uint64_t next_ts = max_ts + 1;
            ctx.store(rootOff_ + offsetof(EchoRoot, nextTs), &next_ts,
                      8, DataClass::User);
            ctx.persist(rootOff_ + offsetof(EchoRoot, nextTs), 8);
        }

        if (!root_lines.empty()) {
            rep.degrade("echo-root-lost",
                        "bucket heads re-nulled on zero-filled root "
                        "lines; their chains are unreachable",
                        root_lines);
        }
        if (chains_cut > 0) {
            rep.degrade("echo-chain-lost",
                        std::to_string(chains_cut) +
                            " entry/version chain(s) truncated at "
                            "media-lost nodes",
                        heap_lines);
        }
        if (!log_lines.empty()) {
            // A zeroed LogEntry reads ts == 0 and recovery skips the
            // slot; the batch it held can no longer be re-applied.
            rep.degrade("echo-log-lost",
                        "client log slots zero-filled; their batches "
                        "cannot be re-applied",
                        log_lines);
        }
        lines = std::move(rest);
    }

  private:
    Addr
    logOff(unsigned client, std::uint64_t slot) const
    {
        return logsOff_ +
               (static_cast<Addr>(client) * kLogEntriesPerClient +
                slot) * sizeof(LogEntry);
    }

    EchoRoot *root(pm::PmContext &ctx) { return ctx.pool().at<EchoRoot>(
        rootOff_); }

    /** Find (or create) the Entry for @p key; master lock held. */
    Addr
    findOrCreateEntry(Runtime &rt, pm::PmContext &ctx,
                      std::uint64_t key)
    {
        (void)rt;
        return findOrCreateEntryAt(ctx, *heap_, rootOff_, key);
    }

    Addr
    findOrCreateEntryAt(pm::PmContext &ctx,
                        alloc::BuddyAllocator &heap, Addr root_off,
                        std::uint64_t key)
    {
        EchoRoot *r = ctx.pool().at<EchoRoot>(root_off);
        Bucket &bucket = r->buckets[hashKey(key) % kBuckets];
        Addr cur = ctx.loadField(bucket.head);
        while (cur != kNullAddr) {
            Entry *ent = ctx.pool().at<Entry>(cur);
            if (ctx.loadField(ent->key) == key)
                return cur;
            cur = ent->next;
        }
        // Create: buddy alloc (VOLATILE) -> init with descriptor
        // INPROGRESS -> link -> CREATED -> PERSISTENT. The status
        // double-write on one line is the paper's Echo self-dep.
        const Addr off = heap.alloc(ctx, sizeof(Entry));
        panic_if(off == kNullAddr, "echo heap exhausted");
        Entry ent{key, kInProgress, kNullAddr,
                  ctx.loadField(bucket.head)};
        ctx.store(off, &ent, sizeof(ent), DataClass::User);
        ctx.flush(off, sizeof(ent));
        ctx.fence(FenceKind::Ordering);
        ctx.storeField(bucket.head, off, DataClass::User);
        ctx.flush(ctx.pool().offsetOf(&bucket.head), 8);
        ctx.fence(FenceKind::Ordering);
        Entry *pent = ctx.pool().at<Entry>(off);
        const std::uint64_t created = kCreated;
        ctx.storeField(pent->status, created, DataClass::User);
        ctx.flush(off + offsetof(Entry, status), 8);
        ctx.fence(FenceKind::Ordering);
        heap.setState(ctx, off, alloc::BlockState::Persistent);
        return off;
    }

    /** Read-only bucket walk: Entry for @p key or kNullAddr. */
    Addr
    findEntryAt(pm::PmContext &ctx, Addr root_off, std::uint64_t key)
    {
        const EchoRoot *r = ctx.pool().at<EchoRoot>(root_off);
        Addr cur = r->buckets[hashKey(key) % kBuckets].head;
        while (cur != kNullAddr) {
            std::uint64_t probe = 0;
            ctx.load(cur + offsetof(Entry, key), &probe, 8);
            if (probe == key)
                return cur;
            cur = ctx.pool().at<Entry>(cur)->next;
        }
        return kNullAddr;
    }

    void
    applyUpdate(Runtime &rt, pm::PmContext &ctx, std::uint64_t key,
                std::uint64_t value, std::uint64_t ts)
    {
        (void)rt;
        applyUpdateAt(ctx, *heap_, rootOff_, key, value, ts);
    }

    void
    applyUpdateAt(pm::PmContext &ctx, alloc::BuddyAllocator &heap,
                  Addr root_off, std::uint64_t key,
                  std::uint64_t value, std::uint64_t ts)
    {
        const Addr entry_off =
            findOrCreateEntryAt(ctx, heap, root_off, key);
        const Addr voff = heap.alloc(ctx, sizeof(Version));
        panic_if(voff == kNullAddr, "echo heap exhausted");
        Entry *ent = ctx.pool().at<Entry>(entry_off);
        Version ver{value, ts, value ^ ts ^ key,
                    ctx.loadField(ent->versions), key};
        ctx.store(voff, &ver, sizeof(ver), DataClass::User);
        ctx.flush(voff, sizeof(ver));
        ctx.fence(FenceKind::Ordering);
        // Publish: single 8-byte pointer flip.
        ctx.storeField(ent->versions, voff, DataClass::User);
        ctx.flush(entry_off + offsetof(Entry, versions), 8);
        ctx.fence(FenceKind::Ordering);
        heap.setState(ctx, voff, alloc::BlockState::Persistent);
    }

    bool
    versionExists(Runtime &rt, pm::PmContext &ctx, std::uint64_t key,
                  std::uint64_t ts)
    {
        (void)rt;
        EchoRoot *r = root(ctx);
        Addr cur = r->buckets[hashKey(key) % kBuckets].head;
        while (cur != kNullAddr) {
            Entry *ent = ctx.pool().at<Entry>(cur);
            if (ent->key == key) {
                Addr v = ent->versions;
                while (v != kNullAddr) {
                    const Version *ver = ctx.pool().at<Version>(v);
                    if (ver->ts == ts)
                        return true;
                    v = ver->next;
                }
                return false;
            }
            cur = ent->next;
        }
        return false;
    }

    void
    submitBatch(
        Runtime &rt, pm::PmContext &ctx, ThreadId tid,
        const std::vector<std::pair<std::uint64_t, std::uint64_t>> &ops)
    {
        std::lock_guard<std::mutex> guard(masterLock_);
        const TxId tx = ctx.txBegin();

        EchoRoot *r = root(ctx);
        const std::uint64_t ts = ctx.loadField(r->nextTs);
        const std::uint64_t next_ts = ts + 1;
        // Global timestamp bump: a shared persistent variable written
        // by every client — the cross-dependency source.
        ctx.storeField(r->nextTs, next_ts, DataClass::User);
        ctx.flush(offsetof(EchoRoot, nextTs), 8);
        ctx.fence(FenceKind::Ordering);

        // 1. Persist the batch into this client's log slots.
        for (std::size_t i = 0; i < ops.size(); i++) {
            LogEntry ent{ops[i].first, ops[i].second, ts, 0};
            ctx.ntStore(logOff(tid, i), &ent, sizeof(ent),
                        DataClass::Log);
        }
        ctx.fence(FenceKind::Ordering);

        // 2. Master applies each update to the persistent KVS.
        for (const auto &[key, value] : ops)
            applyUpdate(rt, ctx, key, value, ts);

        // 3. Mark the log entries applied (one epoch for the batch).
        for (std::size_t i = 0; i < ops.size(); i++) {
            const std::uint64_t one = 1;
            auto *ent = ctx.pool().at<LogEntry>(logOff(tid, i));
            ctx.storeField(ent->applied, one, DataClass::Log);
            ctx.flush(logOff(tid, i) + offsetof(LogEntry, applied), 8);
        }
        ctx.fence(FenceKind::Durability);
        ctx.txEnd(tx);
    }

    /** Structural + checksum walk over the whole persistent store. */
    bool
    checkStore(Runtime &rt, std::string *why)
    {
        return checkStoreAt(rt.ctx(0), rootOff_, why);
    }

    bool
    checkStoreAt(pm::PmContext &ctx, Addr root_off, std::string *why)
    {
        EchoRoot *r = ctx.pool().at<EchoRoot>(root_off);
        if (r->magic != EchoRoot::kMagic) {
            if (why)
                *why = "bad root magic";
            return false;
        }
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            Addr cur = r->buckets[b].head;
            std::uint64_t guard = 0;
            while (cur != kNullAddr) {
                if (++guard > 10'000'000) {
                    if (why)
                        *why = "bucket chain cycle";
                    return false;
                }
                const Entry *ent = ctx.pool().at<Entry>(cur);
                if (ent->status != kCreated) {
                    if (why)
                        *why = "entry with unfinished descriptor";
                    return false;
                }
                if (hashKey(ent->key) % kBuckets != b) {
                    if (why)
                        *why = "entry in wrong bucket";
                    return false;
                }
                std::uint64_t prev_ts = ~std::uint64_t(0);
                Addr v = ent->versions;
                while (v != kNullAddr) {
                    const Version *ver = ctx.pool().at<Version>(v);
                    if (ver->checksum !=
                        (ver->value ^ ver->ts ^ ver->key)) {
                        if (why)
                            *why = "version checksum mismatch";
                        return false;
                    }
                    if (ver->key != ent->key || ver->ts > prev_ts) {
                        if (why)
                            *why = "version chain out of order";
                        return false;
                    }
                    prev_ts = ver->ts;
                    v = ver->next;
                }
                cur = ent->next;
            }
        }
        return true;
    }

    // ---- Unified workload driver surface ------------------------------
    //
    // Echo's client/master split maps naturally onto partitioned
    // workload threads: each thread is a client *and* the master for
    // its own key range, with a private root, client log, and buddy
    // heap over a disjoint pool slice. Every put keeps Echo's
    // log-then-apply shape (persist the update into a log slot, apply
    // it as a new version, mark the slot applied), so the access mix
    // matches run()'s single-update granularity.

    /** Client-side staging work, matching run()'s per-op shape. */
    void
    wlPad(pm::PmContext &ctx, std::uint64_t key)
    {
        std::uint64_t probe = key;
        ctx.vStore(&probe, 8);
        for (int r = 0; r < 6; r++)
            ctx.vLoad(&probe, 8);
        ctx.vBurst(&probe, 1 << 16, 160, 70);
        ctx.compute(3200);
    }

  public:
    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const core::WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlShards_.clear();
        wlShards_.resize(map.threads);
        const Addr region = lineBase(config_.poolBytes / map.threads);
        const Addr logs_bytes =
            kLogEntriesPerClient * sizeof(LogEntry);
        panic_if(region <= sizeof(EchoRoot) + logs_bytes + (4u << 20),
                 "echo workload: pool too small for %u shards",
                 map.threads);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlShard &sh = wlShards_[t];
            sh.rootOff = static_cast<Addr>(t) * region;
            sh.logsOff =
                lineBase(sh.rootOff + sizeof(EchoRoot) + kCacheLineSize);
            const Addr heap_off =
                lineBase(sh.logsOff + logs_bytes + kCacheLineSize);
            sh.heap = std::make_unique<alloc::BuddyAllocator>(
                ctx, heap_off, sh.rootOff + region - heap_off);

            EchoRoot root{};
            root.magic = EchoRoot::kMagic;
            root.nextTs = 1;
            for (auto &bucket : root.buckets)
                bucket.head = kNullAddr;
            ctx.store(sh.rootOff, &root, sizeof(root), DataClass::User);
            ctx.flush(sh.rootOff, sizeof(root));
            LogEntry empty{0, 0, 0, 1};
            for (std::uint64_t i = 0; i < kLogEntriesPerClient; i++) {
                ctx.store(sh.logsOff + i * sizeof(LogEntry), &empty,
                          sizeof(empty), DataClass::Log);
            }
            ctx.flush(sh.logsOff, logs_bytes);
            ctx.fence(FenceKind::Durability);

            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(t) + i;
                applyUpdateAt(ctx, *sh.heap, sh.rootOff, key,
                              key * 0x9e3779b97f4a7c15ull, 1);
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        const Addr ent = findEntryAt(ctx, sh.rootOff, key);
        if (ent == kNullAddr)
            return false;
        Addr voff = 0;
        ctx.load(ent + offsetof(Entry, versions), &voff, 8);
        if (voff != kNullAddr) {
            Version ver{};
            ctx.load(voff, &ver, sizeof(ver));
        }
        return true;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        EchoRoot *r = ctx.pool().at<EchoRoot>(sh.rootOff);
        const std::uint64_t ts = ctx.loadField(r->nextTs);
        ctx.storeField(r->nextTs, ts + 1, DataClass::User);
        ctx.flush(sh.rootOff + offsetof(EchoRoot, nextTs), 8);
        ctx.fence(FenceKind::Ordering);

        // Log-then-apply, a one-update batch in run()'s terms.
        const Addr slot_off =
            sh.logsOff + (sh.logCursor++ % kLogEntriesPerClient) *
                             sizeof(LogEntry);
        LogEntry ent{key, value, ts, 0};
        ctx.ntStore(slot_off, &ent, sizeof(ent), DataClass::Log);
        ctx.fence(FenceKind::Ordering);
        applyUpdateAt(ctx, *sh.heap, sh.rootOff, key, value, ts);
        const std::uint64_t one = 1;
        auto *slot = ctx.pool().at<LogEntry>(slot_off);
        ctx.storeField(slot->applied, one, DataClass::Log);
        ctx.flush(slot_off + offsetof(LogEntry, applied), 8);
        ctx.fence(FenceKind::Durability);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        WlShard &sh = wlShards_[tid];
        const Addr ent = findEntryAt(ctx, sh.rootOff, key);
        std::uint64_t value = 0;
        bool found = false;
        if (ent != kNullAddr) {
            Addr voff = 0;
            ctx.load(ent + offsetof(Entry, versions), &voff, 8);
            if (voff != kNullAddr) {
                ctx.load(voff + offsetof(Version, value), &value, 8);
                found = true;
            }
        }
        workloadPut(ctx, tid, key, value + delta);
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const Addr ent = findEntryAt(
                ctx, sh.rootOff, wlMap_.scanKey(tid, key, j));
            if (ent == kNullAddr)
                continue;
            Addr voff = 0;
            ctx.load(ent + offsetof(Entry, versions), &voff, 8);
            if (voff != kNullAddr) {
                Version ver{};
                ctx.load(voff, &ver, sizeof(ver));
            }
            found++;
        }
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlMap_.threads; t++) {
            std::string why;
            rep.check(checkStoreAt(rt.ctx(t), wlShards_[t].rootOff,
                                   &why),
                      "store-intact", why);
        }
        return rep;
    }

  private:
    struct WlShard
    {
        Addr rootOff = 0;
        Addr logsOff = 0;
        std::uint64_t logCursor = 0;
        std::unique_ptr<alloc::BuddyAllocator> heap;
    };

    Addr rootOff_ = 0;
    Addr logsOff_ = 0;
    Addr heapOff_ = 0;
    std::unique_ptr<alloc::BuddyAllocator> heap_;
    std::mutex masterLock_;
    core::WorkloadKeymap wlMap_;
    std::vector<WlShard> wlShards_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeEchoApp(const core::AppConfig &config)
{
    return std::make_unique<EchoApp>(config);
}

} // namespace whisper::apps

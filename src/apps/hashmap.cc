/**
 * @file
 * Hashmap: the NVML persistent-hashmap micro-benchmark.
 *
 * Open-chained hashmap over 64-bit keys as in NVML's hashmap_tx
 * example: a persistent bucket array object plus chained entries,
 * every INSERT running in an undo-logged transaction. Four client
 * threads perform INSERT (and some REMOVE) transactions (Table 1).
 */

#include <mutex>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "txlib/nvml.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;

namespace
{

constexpr std::uint64_t kBuckets = 16384;

struct MapEntry
{
    std::uint64_t key;
    std::uint64_t value;
    std::uint64_t checksum; //!< key ^ value ^ kSalt
    Addr next;
    static constexpr std::uint64_t kSalt = 0x4A5471ull;
};

struct MapRoot
{
    std::uint64_t magic;
    std::uint64_t count;
    Addr buckets[kBuckets];

    static constexpr std::uint64_t kMagic = 0x4A5244AAull;
};

std::uint64_t
hashKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ull;
    key ^= key >> 33;
    return key;
}

class HashmapApp : public WhisperApp
{
  public:
    explicit HashmapApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "hashmap"; }
    AccessLayer layer() const override { return AccessLayer::LibNvml; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        rootOff_ = 0;
        const Addr pool_base =
            lineBase(sizeof(MapRoot) + kCacheLineSize);
        pool_ = std::make_unique<nvml::NvmlPool>(
            ctx, pool_base, config_.poolBytes - pool_base,
            config_.threads);
        MapRoot root{};
        root.magic = MapRoot::kMagic;
        for (auto &b : root.buckets)
            b = kNullAddr;
        ctx.store(rootOff_, &root, sizeof(root), DataClass::User);
        ctx.flush(rootOff_, sizeof(root));
        ctx.fence(FenceKind::Durability);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 271 + tid);
        const std::uint64_t keyspace = config_.opsPerThread * 4 + 64;
        std::vector<std::uint64_t> inserted;
        inserted.reserve(config_.opsPerThread);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            // Paper Fig. 6: hashmap is ~2.6% PM accesses.
            ctx.vBurst(inserted.data(), 1 << 14, 560, 240);
            ctx.compute(6500);
            if (!inserted.empty() && rng.chance(0.1)) {
                // REMOVE a previously inserted key.
                const std::size_t idx = rng.next(inserted.size());
                remove(ctx, inserted[idx]);
                inserted[idx] = inserted.back();
                inserted.pop_back();
                ctx.vStore(inserted.data() + idx, 8);
            } else {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(tid) << 48) |
                    rng.next(keyspace);
                if (insert(ctx, key, rng())) {
                    inserted.push_back(key);
                    ctx.vStore(&inserted.back(), 8);
                }
            }
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkMap(rt, &why), "map-intact", why);
        return rep;
    }

    void recover(Runtime &rt) override { pool_->recover(rt.ctx(0)); }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkMap(rt, &why), "map-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(pool_->logsQuiescent(rt.ctx(0), &why),
                  "logs-quiescent", why);
        return rep;
    }

    /** @{ \name Generated-workload surface
     *
     * One private NvmlPool + bucket array per worker thread over a
     * disjoint slice of the device — the YCSB one-client-per-thread
     * model. Partitioning keeps chain walks (and thus latencies)
     * independent of scheduling; the undo-log discipline per op is
     * identical to run()'s.
     */

    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlShards_.clear();
        scratch_.assign(config_.threads,
                        std::vector<std::uint64_t>(2048));
        const std::size_t region =
            lineBase(config_.poolBytes / config_.threads);
        panic_if(region <= sizeof(MapRoot) + (2u << 20),
                 "hashmap: pool too small for per-thread workload "
                 "shards");
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlShard shard;
            shard.rootOff = static_cast<Addr>(t) * region;
            const Addr pool_base = lineBase(
                shard.rootOff + sizeof(MapRoot) + kCacheLineSize);
            shard.pool = std::make_unique<nvml::NvmlPool>(
                ctx, pool_base,
                shard.rootOff + region - pool_base, 1);
            MapRoot root{};
            root.magic = MapRoot::kMagic;
            for (auto &b : root.buckets)
                b = kNullAddr;
            ctx.store(shard.rootOff, &root, sizeof(root),
                      DataClass::User);
            ctx.flush(shard.rootOff, sizeof(root));
            ctx.fence(FenceKind::Durability);
            wlShards_.push_back(std::move(shard));
            const ThreadId tid = static_cast<ThreadId>(t);
            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(tid) + i;
                wlPut(ctx, tid, key, key * 0x9e3779b97f4a7c15ull);
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        pad(ctx, tid);
        std::uint64_t value = 0;
        return wlFind(ctx, tid, key, value) != kNullAddr;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        pad(ctx, tid);
        wlPut(ctx, tid, key, value);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        pad(ctx, tid);
        std::uint64_t value = 0;
        const Addr off = wlFind(ctx, tid, key, value);
        if (off == kNullAddr) {
            wlPut(ctx, tid, key, delta);
            return false;
        }
        nvml::TxContext tx(*wlShards_[tid].pool, ctx);
        MapEntry *e = ctx.pool().at<MapEntry>(off);
        const std::uint64_t nv = value + delta;
        tx.set(e->value, nv, DataClass::User);
        const std::uint64_t sum = key ^ nv ^ MapEntry::kSalt;
        tx.set(e->checksum, sum, DataClass::User);
        tx.commit();
        return true;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        pad(ctx, tid);
        std::uint64_t found = 0;
        std::uint64_t value = 0;
        for (std::uint64_t j = 0; j < len; j++)
            if (wlFind(ctx, tid, wlMap_.scanKey(tid, key, j),
                       value) != kNullAddr)
                found++;
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlShards_.size(); t++) {
            std::string why;
            rep.check(checkMapAt(rt, wlShards_[t].rootOff, &why),
                      "map-intact",
                      "shard " + std::to_string(t) + ": " + why);
            rep.check(wlShards_[t].pool->logsQuiescent(rt.ctx(0),
                                                       &why),
                      "logs-quiescent", why);
        }
        return rep;
    }

    /** @} */

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pool_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    /** Per-worker workload shard: private root + private pool. */
    struct WlShard
    {
        Addr rootOff = 0;
        std::unique_ptr<nvml::NvmlPool> pool;
    };

    void
    pad(pm::PmContext &ctx, ThreadId tid)
    {
        ctx.vBurst(scratch_[tid].data(), 1 << 14, 560, 240);
        ctx.compute(6500);
    }

    /** Chain walk in @p tid's shard; entry offset or kNullAddr. */
    Addr
    wlFind(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
           std::uint64_t &value)
    {
        const MapRoot *r =
            ctx.pool().at<MapRoot>(wlShards_[tid].rootOff);
        Addr cur = r->buckets[hashKey(key) % kBuckets];
        while (cur != kNullAddr) {
            MapEntry probe{};
            ctx.load(cur, &probe, sizeof(probe));
            if (probe.key == key) {
                value = probe.value;
                return cur;
            }
            cur = probe.next;
        }
        return kNullAddr;
    }

    /** Insert-or-update in @p tid's shard (run()'s insert(), minus
     *  the shared-map lock the partitioning makes unnecessary). */
    void
    wlPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
          std::uint64_t value)
    {
        WlShard &shard = wlShards_[tid];
        MapRoot *r = ctx.pool().at<MapRoot>(shard.rootOff);
        Addr &bucket = r->buckets[hashKey(key) % kBuckets];
        std::uint64_t old = 0;
        const Addr existing = wlFind(ctx, tid, key, old);
        if (existing != kNullAddr) {
            nvml::TxContext tx(*shard.pool, ctx);
            MapEntry *e = ctx.pool().at<MapEntry>(existing);
            tx.set(e->value, value, DataClass::User);
            const std::uint64_t sum = key ^ value ^ MapEntry::kSalt;
            tx.set(e->checksum, sum, DataClass::User);
            tx.commit();
            return;
        }
        nvml::TxContext tx(*shard.pool, ctx);
        const Addr off = tx.txAlloc(sizeof(MapEntry));
        panic_if(off == kNullAddr, "hashmap: workload shard full");
        MapEntry e{key, value, key ^ value ^ MapEntry::kSalt, bucket};
        tx.directStore(off, &e, sizeof(e), DataClass::User);
        tx.set(bucket, off, DataClass::User);
        const std::uint64_t n = r->count + 1;
        tx.set(r->count, n, DataClass::User);
        tx.commit();
    }

    MapRoot *root(pm::PmContext &ctx) { return ctx.pool().at<MapRoot>(
        rootOff_); }

    bool
    insert(pm::PmContext &ctx, std::uint64_t key, std::uint64_t value)
    {
        std::lock_guard<std::mutex> guard(mapLock_);
        MapRoot *r = root(ctx);
        Addr &bucket = r->buckets[hashKey(key) % kBuckets];

        // Existing key: transactional value overwrite.
        for (Addr cur = bucket; cur != kNullAddr;) {
            MapEntry probe{};
            ctx.load(cur, &probe, sizeof(probe));
            if (probe.key == key) {
                nvml::TxContext tx(*pool_, ctx);
                MapEntry *e = ctx.pool().at<MapEntry>(cur);
                tx.set(e->value, value, DataClass::User);
                const std::uint64_t sum =
                    key ^ value ^ MapEntry::kSalt;
                tx.set(e->checksum, sum, DataClass::User);
                tx.commit();
                return false;
            }
            cur = probe.next;
        }

        nvml::TxContext tx(*pool_, ctx);
        const Addr off = tx.txAlloc(sizeof(MapEntry));
        if (off == kNullAddr) {
            tx.abort();
            return false;
        }
        MapEntry e{key, value, key ^ value ^ MapEntry::kSalt, bucket};
        tx.directStore(off, &e, sizeof(e), DataClass::User);
        tx.set(bucket, off, DataClass::User);
        const std::uint64_t n = r->count + 1;
        tx.set(r->count, n, DataClass::User);
        tx.commit();
        return true;
    }

    void
    remove(pm::PmContext &ctx, std::uint64_t key)
    {
        std::lock_guard<std::mutex> guard(mapLock_);
        MapRoot *r = root(ctx);
        Addr holder =
            rootOff_ + offsetof(MapRoot, buckets) +
            (hashKey(key) % kBuckets) * sizeof(Addr);
        Addr cur = *ctx.pool().at<Addr>(holder);
        while (cur != kNullAddr) {
            MapEntry probe{};
            ctx.load(cur, &probe, sizeof(probe));
            if (probe.key == key) {
                nvml::TxContext tx(*pool_, ctx);
                tx.addRange(holder, 8);
                ctx.store(holder, &probe.next, 8, DataClass::User);
                tx.txFree(cur);
                const std::uint64_t n = r->count - 1;
                tx.set(r->count, n, DataClass::User);
                tx.commit();
                return;
            }
            holder = cur + offsetof(MapEntry, next);
            cur = probe.next;
        }
    }

    bool
    checkMap(Runtime &rt, std::string *why)
    {
        return checkMapAt(rt, rootOff_, why);
    }

    bool
    checkMapAt(Runtime &rt, Addr root_off, std::string *why)
    {
        pm::PmContext &ctx = rt.ctx(0);
        MapRoot *r = ctx.pool().at<MapRoot>(root_off);
        if (r->magic != MapRoot::kMagic) {
            if (why)
                *why = "bad root magic";
            return false;
        }
        std::uint64_t seen = 0;
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            Addr cur = r->buckets[b];
            std::uint64_t guard = 0;
            while (cur != kNullAddr) {
                if (++guard > 10'000'000) {
                    if (why)
                        *why = "bucket cycle";
                    return false;
                }
                const MapEntry *e = ctx.pool().at<MapEntry>(cur);
                if (e->checksum !=
                    (e->key ^ e->value ^ MapEntry::kSalt)) {
                    if (why)
                        *why = "entry checksum mismatch";
                    return false;
                }
                if (hashKey(e->key) % kBuckets != b) {
                    if (why)
                        *why = "entry in wrong bucket";
                    return false;
                }
                seen++;
                cur = e->next;
            }
        }
        if (seen != r->count) {
            if (why)
                *why = "count does not match reachable entries";
            return false;
        }
        return true;
    }

    std::unique_ptr<nvml::NvmlPool> pool_;
    Addr rootOff_ = 0;
    std::mutex mapLock_;
    WorkloadKeymap wlMap_;
    std::vector<WlShard> wlShards_;
    std::vector<std::vector<std::uint64_t>> scratch_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeHashmapApp(const core::AppConfig &config)
{
    return std::make_unique<HashmapApp>(config);
}

} // namespace whisper::apps

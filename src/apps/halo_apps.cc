/**
 * @file
 * The Hybrid-layer application: halo-hashmap.
 *
 * Runs the suite's standard micro-benchmark shape (the paper's
 * Figure 6 DRAM-heavy op loop) against the Halo hybrid store
 * (src/halo): every put/remove appends one CRC32-protected,
 * sequence-stamped record to a per-thread PM segment and updates a
 * DRAM-only extendible-hash directory; durability is one fence per
 * segment seal plus explicit durability points every
 * kDurabilityInterval ops. There is no PM log of any kind — recovery
 * is a parallel segment scan that rebuilds the directory from the
 * surviving records (last-writer-wins by sequence, tombstones
 * honored).
 *
 * The crash-recovery invariant this app checks is the hybrid layer's
 * contract (DESIGN.md §12): after the scan rebuild, every committed
 * pair is reachable (or its loss is a named media degradation), and
 * nothing is visible that was not genuinely written — the store's
 * volatile oracle journals every record written, so a torn or
 * fabricated record that slips past the CRC is still caught by
 * comparison against the journal.
 *
 * Thread discipline matches the MOD apps: keys carry their owning
 * thread in the top 16 bits and mutations are single-writer per
 * partition, so record images and the rebuilt index are independent
 * of thread interleaving (bit-identical fuzz digests).
 */

#include <algorithm>
#include <string>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "halo/halo_store.hh"

namespace whisper::apps
{

using namespace core;
using halo::HaloRecord;
using halo::HaloStore;

namespace
{

/** Ops between durability points (one batched fence each). */
constexpr std::uint64_t kDurabilityInterval = 16;

LineAddr
lineOf(Addr addr)
{
    return static_cast<LineAddr>(addr >> kCacheLineBits);
}

class HaloHashmapApp : public WhisperApp
{
  public:
    explicit HaloHashmapApp(const AppConfig &config)
        : WhisperApp(config)
    {
        panic_if(config_.poolBytes <
                     config_.threads * 2 * halo::kSegmentBytes,
                 "halo-hashmap: pool too small for one segment range "
                 "per thread");
    }

    std::string name() const override { return "halo-hashmap"; }
    AccessLayer layer() const override { return AccessLayer::Hybrid; }

    void
    setup(Runtime &rt) override
    {
        (void)rt;
        // Nothing persistent to format: every index structure is
        // DRAM, and segment headers are written lazily at first open.
        store_ = std::make_unique<HaloStore>(storeConfig());
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 467 + tid);
        // Small enough that keys repeat: most puts are updates, and
        // the 10% removes leave tombstones the recovery scan must
        // honor.
        const std::uint64_t keyspace = config_.opsPerThread + 64;
        std::vector<std::uint64_t> inserted;
        inserted.reserve(config_.opsPerThread);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            // Paper Fig. 6 proportions: the op is mostly DRAM work.
            ctx.vBurst(inserted.data(), 1 << 14, 560, 240);
            ctx.compute(6500);

            if (!inserted.empty() && rng.chance(0.1)) {
                const std::size_t idx = rng.next(inserted.size());
                panic_if(!store_->remove(ctx, tid, inserted[idx]),
                         "halo-hashmap: segment area exhausted");
                inserted[idx] = inserted.back();
                inserted.pop_back();
                ctx.vStore(inserted.data() + idx, 8);
            } else {
                const std::uint64_t key =
                    HaloStore::makeKey(tid, rng.next(keyspace));
                Addr prior = kNullAddr;
                const bool was_insert =
                    !store_->indexLookup(key, prior);
                const std::uint64_t vals[halo::kValWords] = {
                    rng(), rng(), rng()};
                panic_if(!store_->put(ctx, tid, key, vals),
                         "halo-hashmap: segment area exhausted");
                if (was_insert) {
                    inserted.push_back(key);
                    ctx.vStore(&inserted.back(), 8);
                }
            }
            if ((op + 1) % kDurabilityInterval == 0)
                store_->durabilityPoint(ctx, tid);
        }
        store_->threadExit(ctx, tid);
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        pm::PmContext &ctx = rt.ctx(0);
        for (unsigned t = 0; t < store_->threads(); t++) {
            const ThreadId tid = static_cast<ThreadId>(t);
            rep.check(store_->nextCounter(tid) > 0, "seq-monotonic",
                      "sequence counter wrapped");
            // After threadExit every batch has been fenced.
            for (const auto &[key, c] : store_->committed(tid)) {
                std::uint64_t vals[halo::kValWords];
                const bool found = store_->get(ctx, key, vals);
                if (c.tombstone) {
                    if (!rep.check(!found, "tombstone-respected",
                                   "removed key still readable"))
                        break;
                } else if (!rep.check(found &&
                                          std::equal(vals, vals +
                                                         halo::kValWords,
                                                     c.vals),
                                      "committed-pair-readable",
                                      "key " + std::to_string(key)))
                    break;
            }
        }
        checkIndexBacking(rt, rep);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        store_->recoverScan(rt.pool(), 1);
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        const pm::PmPool &pool = rt.pool();

        // Committed pairs reachable. A fenced record's line is always
        // in the durable image; only a media fault can take it, and
        // the scrub has already degraded that loss by name.
        for (unsigned t = 0; t < store_->threads(); t++) {
            const ThreadId tid = static_cast<ThreadId>(t);
            for (const auto &[key, c] : store_->committed(tid)) {
                if (c.addr != kNullAddr &&
                    store_->lineLost(lineOf(c.addr)))
                    continue; // excused: pm-line-lost degradation
                if (!checkCommitted(pool, tid, key, c, rep))
                    break;
            }
        }

        // Nothing visible that was not genuinely written: every index
        // entry and every applied tombstone must match the oracle's
        // journal of real writes bit for bit.
        bool more = true;
        store_->forEachIndexed([&](std::uint64_t key, Addr addr) {
            if (more)
                more = checkGenuine(pool, key, addr, rep);
        });
        for (unsigned t = 0; t < store_->threads() && more; t++) {
            const ThreadId tid = static_cast<ThreadId>(t);
            for (const auto &[key, seq] :
                 store_->recoveredTombstones(tid)) {
                HaloStore::WrittenOp w;
                if (!rep.check(
                        HaloRecord::ownerOfSeq(seq) == tid &&
                            store_->writtenOp(
                                tid, HaloRecord::counterOfSeq(seq),
                                w) &&
                            w.tombstone && w.key == key,
                        "phantom-tombstone",
                        "recovered tombstone never written")) {
                    more = false;
                    break;
                }
            }
        }
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < store_->threads(); t++) {
            const ThreadId tid = static_cast<ThreadId>(t);
            rep.check(store_->nextCounter(tid) >
                          store_->maxRecoveredCounter(tid),
                      "seq-monotonic",
                      "sequence counter resumed at or below a "
                      "recovered record");
        }
        checkIndexBacking(rt, rep);
        return rep;
    }

    /** @{ \name Generated-workload surface
     *
     * The MOD key convention carries over: thread @p tid owns every
     * key whose top 16 bits equal tid, matching the store's
     * single-writer partitions. Durability points keep the run()
     * cadence (every kDurabilityInterval ops).
     */

    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const WorkloadKeymap &map) override
    {
        wlMap_ = map;
        store_ = std::make_unique<HaloStore>(storeConfig());
        const std::uint64_t capacity =
            store_->allocator().segmentsPerThread() *
            halo::kRecordsPerSegment;
        panic_if(capacity < map.slotsPerThread(),
                 "halo-hashmap: pool too small for workload keys");
        scratch_.assign(config_.threads,
                        std::vector<std::uint64_t>(2048));
        wlOps_.assign(config_.threads, 0);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            const ThreadId tid = static_cast<ThreadId>(t);
            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(tid) + i;
                const std::uint64_t vals[halo::kValWords] = {
                    key * 0x9e3779b97f4a7c15ull, key, tid};
                panic_if(!store_->put(ctx, tid,
                                      HaloStore::makeKey(tid, key),
                                      vals),
                         "halo-hashmap: segment area exhausted "
                         "during preload");
                if ((i + 1) % kDurabilityInterval == 0)
                    store_->durabilityPoint(ctx, tid);
            }
            store_->durabilityPoint(ctx, tid);
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        pad(ctx, tid);
        std::uint64_t vals[halo::kValWords];
        const bool found =
            store_->get(ctx, HaloStore::makeKey(tid, key), vals);
        opDone(ctx, tid);
        return found;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        pad(ctx, tid);
        const std::uint64_t vals[halo::kValWords] = {value, key, tid};
        panic_if(!store_->put(ctx, tid, HaloStore::makeKey(tid, key),
                              vals),
                 "halo-hashmap: segment area exhausted");
        opDone(ctx, tid);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        pad(ctx, tid);
        std::uint64_t vals[halo::kValWords] = {0, key, tid};
        const bool found =
            store_->get(ctx, HaloStore::makeKey(tid, key), vals);
        vals[0] += delta;
        panic_if(!store_->put(ctx, tid, HaloStore::makeKey(tid, key),
                              vals),
                 "halo-hashmap: segment area exhausted");
        opDone(ctx, tid);
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        pad(ctx, tid);
        std::uint64_t found = 0;
        std::uint64_t vals[halo::kValWords];
        for (std::uint64_t j = 0; j < len; j++) {
            const std::uint64_t k = wlMap_.scanKey(tid, key, j);
            if (store_->get(ctx, HaloStore::makeKey(tid, k), vals))
                found++;
        }
        opDone(ctx, tid);
        return found;
    }

    void
    workloadThreadDone(pm::PmContext &ctx, ThreadId tid) override
    {
        store_->threadExit(ctx, tid);
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        return verify(rt);
    }

    bool supportsLincheck() const override { return true; }

    bool
    workloadProbe(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                  std::uint64_t &value) override
    {
        std::uint64_t vals[halo::kValWords];
        if (!store_->get(ctx, HaloStore::makeKey(tid, key), vals))
            return false;
        value = vals[0];
        return true;
    }

    bool workloadHasRemove() const override { return true; }

    bool
    workloadRemove(pm::PmContext &ctx, ThreadId tid,
                   std::uint64_t key) override
    {
        pad(ctx, tid);
        // The store's remove() reports segment exhaustion, not
        // presence (it always appends a tombstone); answer the
        // KV-level "was it there" from the index first.
        std::uint64_t vals[halo::kValWords];
        const bool found =
            store_->get(ctx, HaloStore::makeKey(tid, key), vals);
        panic_if(!store_->remove(ctx, tid, HaloStore::makeKey(tid, key)),
                 "halo-hashmap: segment area exhausted");
        opDone(ctx, tid);
        return found;
    }

    /** @} */

    /** The store, for tests that inspect layer internals. */
    HaloStore &store() { return *store_; }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        (void)rt;
        // Claim every line inside the segment area. There is nothing
        // to repair — records are independent, so a lost line costs
        // exactly the records it held — but the loss is noted so
        // verifyRecovered() can excuse those records, and degraded
        // here with its record count.
        std::vector<LineAddr> claimed;
        auto inArea = [&](LineAddr line) {
            const Addr addr = static_cast<Addr>(line)
                              << kCacheLineBits;
            return store_->allocator().segmentOf(addr) !=
                   ~std::uint64_t(0);
        };
        for (const LineAddr line : lines) {
            if (inArea(line))
                claimed.push_back(line);
        }
        if (claimed.empty())
            return;
        const std::size_t records = store_->noteLostLines(claimed);
        lines.erase(std::remove_if(lines.begin(), lines.end(),
                                   inArea),
                    lines.end());
        rep.degrade("pm-line-lost",
                    std::to_string(claimed.size()) +
                        " segment line(s) lost to media faults (" +
                        std::to_string(records) +
                        " record slot(s)); affected records dropped "
                        "from the rebuild",
                    claimed);
    }

  private:
    HaloStore::Config
    storeConfig() const
    {
        HaloStore::Config cfg;
        cfg.base = 0;
        cfg.bytes = config_.poolBytes;
        cfg.threads = config_.threads;
        return cfg;
    }

    /** Every index entry names a valid record in a used segment. */
    void
    checkIndexBacking(Runtime &rt, VerifyReport &rep)
    {
        const pm::PmPool &pool = rt.pool();
        bool more = true;
        store_->forEachIndexed([&](std::uint64_t key, Addr addr) {
            if (!more)
                return;
            HaloRecord rec;
            if (!rep.check(store_->recordAt(pool, addr, rec) &&
                               rec.key == key,
                           "index-record-match",
                           "index entry names no valid record")) {
                more = false;
                return;
            }
            const std::uint64_t seg =
                store_->allocator().segmentOf(addr);
            more = rep.check(store_->allocator().segmentUsed(seg),
                             "index-addr-allocated",
                             "index entry in an unused segment");
        });
    }

    /** One committed key's post-recovery obligation. */
    bool
    checkCommitted(const pm::PmPool &pool, ThreadId tid,
                   std::uint64_t key, const HaloStore::CommitState &c,
                   VerifyReport &rep)
    {
        Addr addr = kNullAddr;
        const bool present = store_->indexLookup(key, addr);
        if (c.tombstone) {
            if (!present)
                return true;
            HaloRecord rec;
            if (!rep.check(store_->recordAt(pool, addr, rec),
                           "index-dangling",
                           "index entry unreadable after rebuild"))
                return false;
            // A later genuine write may legitimately revive the key
            // (a fully-written unfenced record can survive via cache
            // eviction); an older one beaten by the tombstone cannot.
            return rep.check(rec.seq > c.seq, "tombstone-resurrected",
                             "committed remove undone by an older "
                             "record");
        }
        if (!present) {
            const auto &tombs = store_->recoveredTombstones(tid);
            const auto it = tombs.find(key);
            if (it != tombs.end() && it->second > c.seq)
                return true; // later tombstone survived: legitimate
            return rep.check(false, "committed-pair-missing",
                             "committed key " + std::to_string(key) +
                                 " unreachable after rebuild");
        }
        HaloRecord rec;
        if (!rep.check(store_->recordAt(pool, addr, rec),
                       "index-dangling",
                       "index entry unreadable after rebuild"))
            return false;
        if (!rep.check(rec.seq >= c.seq, "committed-pair-stale",
                       "rebuild surfaced a record older than the "
                       "committed one"))
            return false;
        if (rec.seq > c.seq)
            return true; // later genuine write won; checked by sweep
        return rep.check(!rec.tombstone() && addr == c.addr &&
                             std::equal(rec.vals,
                                        rec.vals + halo::kValWords,
                                        c.vals),
                         "committed-pair-torn",
                         "committed key " + std::to_string(key) +
                             " recovered with wrong content");
    }

    /** One index entry's genuineness against the written journal. */
    bool
    checkGenuine(const pm::PmPool &pool, std::uint64_t key, Addr addr,
                 VerifyReport &rep)
    {
        HaloRecord rec;
        if (!rep.check(store_->recordAt(pool, addr, rec),
                       "index-dangling",
                       "index entry unreadable after rebuild"))
            return false;
        const ThreadId tid = HaloRecord::ownerOfSeq(rec.seq);
        HaloStore::WrittenOp w;
        return rep.check(
            tid < store_->threads() && rec.key == key &&
                HaloStore::partitionOf(key) == tid &&
                store_->writtenOp(
                    tid, HaloRecord::counterOfSeq(rec.seq), w) &&
                w.key == key && !w.tombstone &&
                std::equal(w.vals, w.vals + halo::kValWords,
                           rec.vals),
            "phantom-record",
            "visible record was never genuinely written");
    }

    void
    pad(pm::PmContext &ctx, ThreadId tid)
    {
        ctx.vBurst(scratch_[tid].data(), 1 << 14, 560, 240);
        ctx.compute(6500);
    }

    void
    opDone(pm::PmContext &ctx, ThreadId tid)
    {
        if (++wlOps_[tid] % kDurabilityInterval == 0)
            store_->durabilityPoint(ctx, tid);
    }

    std::unique_ptr<HaloStore> store_;
    WorkloadKeymap wlMap_;
    std::vector<std::vector<std::uint64_t>> scratch_;
    std::vector<std::uint64_t> wlOps_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeHaloHashmapApp(const core::AppConfig &config)
{
    return std::make_unique<HaloHashmapApp>(config);
}

} // namespace whisper::apps

/**
 * @file
 * N-store: a persistent-memory RDBMS (native access layer), with the
 * OPTWAL engine and YCSB-like / TPC-C-like drivers.
 *
 * Faithful behavioural details (paper §3.2.1):
 *  - the database is partitioned; each client thread owns one
 *    partition and executes transactions on it independently;
 *  - OPTWAL keeps tables and indexes in PM segments from a global
 *    allocator and uses a per-thread *undo log*: the old tuple image
 *    is logged (store + flush + fence) before each in-place update,
 *    updates are cacheable stores flushed at commit, and the log
 *    entries are cleared one per epoch;
 *  - the single-heap BuddyAllocator supplies tuples; N-store tags
 *    every block FREE / VOLATILE / PERSISTENT, writing the state
 *    variable up to three times per transaction (the paper's
 *    allocator self-dependency example);
 *  - every tuple carries a checksum over its payload, updated in the
 *    same transaction — after any crash + rollback, every reachable
 *    tuple's checksum must validate.
 *
 * The YCSB-like driver issues zipfian single-partition transactions
 * of four operations at 80% writes; the TPC-C-like driver issues
 * new-order (insert order + 5..15 order lines + stock updates),
 * payment, and order-status transactions at 40% writes overall.
 */

#include <algorithm>
#include <unordered_map>

#include "alloc/buddy_alloc.hh"
#include "apps/apps.hh"
#include "common/logging.hh"
#include "txlib/mnemosyne.hh" // foldChecksum

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;
using mne::foldChecksum;

namespace
{

constexpr std::size_t kTupleValueBytes = 96;
constexpr std::uint64_t kIndexBuckets = 8192;
constexpr std::size_t kUndoLogBytes = 512 << 10;
constexpr unsigned kUndoSegments = 32;
constexpr std::size_t kUndoSegmentBytes = kUndoLogBytes / kUndoSegments;

/** One table row. */
struct Tuple
{
    std::uint64_t key;
    std::uint64_t seq;        //!< bumped each committed update
    std::uint32_t checksum;   //!< folds key, seq and value
    std::uint32_t pad;
    std::uint8_t value[kTupleValueBytes];
    Addr next;                //!< index bucket chain
};

/** Per-partition persistent header. */
struct Partition
{
    std::uint64_t magic;
    std::uint64_t tupleCount;
    /**
     * Offset of the undo-log segment of the in-flight transaction
     * (kNullAddr when none) and its sequence number. OPTWAL is an
     * *optimized* WAL: instead of clearing every record, commit
     * retires the whole log with this single pointer write — one of
     * the reasons the native engines outrun the libraries in Table 1.
     */
    Addr activeLog;
    std::uint64_t activeSeq;
    Addr index[kIndexBuckets];

    static constexpr std::uint64_t kMagic = 0x4E53544Full; // "NSTO"
};

/**
 * Per-partition undo-log record, cache-line aligned. OPTWAL never
 * clears records; instead every record carries the transaction's
 * sequence number and recovery only honours records whose sequence
 * matches the published one — stale records from the segment's
 * previous use fail the check.
 */
struct UndoRec
{
    std::uint32_t magic;
    std::uint32_t size;
    Addr addr;
    std::uint32_t checksum;
    std::uint32_t pad;
    std::uint64_t seq;

    static constexpr std::uint32_t kMagic = 0x4F505457u; // "OPTW"
};

std::uint64_t
hashKey(std::uint64_t key)
{
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    return key;
}

std::uint32_t
tupleChecksum(const Tuple &t)
{
    return foldChecksum(&t.value, sizeof(t.value)) ^
           static_cast<std::uint32_t>(t.key) ^
           static_cast<std::uint32_t>(t.seq);
}

/** Which driver shapes the transactions. */
enum class NstoreWorkload { Ycsb, Tpcc };

class NstoreApp : public WhisperApp
{
  public:
    NstoreApp(const AppConfig &config, NstoreWorkload workload)
        : WhisperApp(config), workload_(workload)
    {
    }

    std::string
    name() const override
    {
        return workload_ == NstoreWorkload::Ycsb ? "ycsb" : "tpcc";
    }

    AccessLayer layer() const override { return AccessLayer::Native; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        // Layout: [partition headers][undo logs][global buddy heap].
        const std::size_t part_bytes =
            lineBase(sizeof(Partition) + kCacheLineSize);
        partitionBytes_ = part_bytes;
        partitionsOff_ = 0;
        undoOff_ = partitionsOff_ +
                   static_cast<Addr>(config_.threads) * part_bytes;
        heapOff_ = lineBase(
            undoOff_ + static_cast<Addr>(config_.threads) *
                           kUndoLogBytes + kCacheLineSize);
        heap_ = std::make_unique<alloc::BuddyAllocator>(
            ctx, heapOff_, config_.poolBytes - heapOff_);

        for (unsigned p = 0; p < config_.threads; p++) {
            Partition hdr{};
            hdr.magic = Partition::kMagic;
            hdr.activeLog = kNullAddr;
            for (auto &slot : hdr.index)
                slot = kNullAddr;
            ctx.store(partOff(p), &hdr, sizeof(hdr), DataClass::User);
            ctx.flush(partOff(p), sizeof(hdr));
            UndoRec end{UndoRec::kMagic, 0, 0, 0, 0, 0};
            ctx.store(undoLogOff(p), &end, sizeof(end),
                      DataClass::Log);
            ctx.flush(undoLogOff(p), sizeof(end));
        }
        segCursor_.assign(config_.threads, 0);
        txSeq_.assign(config_.threads, 1);
        ctx.fence(FenceKind::Durability);

        // Load phase: each partition gets its initial tuples.
        const std::uint64_t rows = initialRows();
        for (unsigned p = 0; p < config_.threads; p++) {
            pm::PmContext &pctx = rt.ctx(0);
            Rng rng(config_.seed + p);
            for (std::uint64_t k = 0; k < rows; k++)
                insertTuple(pctx, partRef(p), k, rng, nullptr);
        }
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 31 + tid);
        const std::uint64_t rows = initialRows();
        ZipfianGenerator zipf(rows);

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            // Query parsing, plan caching, client buffers: N-store
            // YCSB is ~8.7% PM accesses in the paper's Figure 6.
            ctx.vBurst(&zipf, 1 << 16, 1000, 420);
            ctx.compute(2500);
            if (workload_ == NstoreWorkload::Ycsb)
                ycsbTx(ctx, tid, rng, zipf);
            else
                tpccTx(ctx, tid, rng, zipf, op);
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkAll(rt, &why), "tables-intact", why);
        return rep;
    }

    void
    recover(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        // Roll back every partition's in-flight transaction, then
        // prune half-inserted (VOLATILE) tuples, then let the heap
        // reclaim.
        for (unsigned p = 0; p < config_.threads; p++)
            rollbackUndo(ctx, partRef(p));
        for (unsigned p = 0; p < config_.threads; p++) {
            Partition *part = partition(ctx, p);
            for (auto &slot : part->index) {
                while (slot != kNullAddr &&
                       heap_->state(ctx, slot) !=
                           alloc::BlockState::Persistent) {
                    const Tuple *t = ctx.pool().at<Tuple>(slot);
                    ctx.storeField(slot, t->next, DataClass::User);
                    ctx.flush(ctx.pool().offsetOf(&slot), 8);
                    ctx.fence(FenceKind::Ordering);
                }
            }
        }
        heap_->recover(ctx);
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkAll(rt, &why), "tables-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        // OPTWAL descriptor state: recovery must retire every
        // partition's active undo log (the single pointer write that
        // commits or rolls back the in-flight transaction).
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        for (unsigned p = 0; p < config_.threads; p++) {
            const Partition *part = partition(ctx, p);
            if (!rep.check(part->activeLog == kNullAddr,
                           "undo-retired",
                           "partition " + std::to_string(p) +
                               " still publishes an active undo log"))
                break;
        }
        return rep;
    }

  protected:
    /**
     * Media scrub (WhisperApp::scrubRecovered). Partition headers are
     * all reconstructible words (magic, counters, pointer slots): a
     * zero-filled line gets its magic back, its index slots re-nulled
     * (0 is not kNullAddr and recovery would chase it) and a lost
     * activeLog descriptor retired — the in-flight transaction can no
     * longer roll back, which the tuple checksums then surface under
     * this Degraded marker. Index chains are truncated at tuples with
     * lost lines, and tupleCount is recounted when its word was hit.
     */
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        const Addr undo_end = undoOff_ +
                              static_cast<Addr>(config_.threads) *
                                  kUndoLogBytes;
        std::vector<LineAddr> part_lines, undo_lines, heap_lines,
            rest;
        for (const LineAddr line : lines) {
            const Addr off = static_cast<Addr>(line) << kCacheLineBits;
            if (off >= partitionsOff_ && off < undoOff_)
                part_lines.push_back(line);
            else if (off >= undoOff_ && off < undo_end)
                undo_lines.push_back(line);
            else if (off >= heapOff_ &&
                     off < heapOff_ + heap_->heapSize())
                heap_lines.push_back(line);
            else
                rest.push_back(line);
        }

        std::vector<bool> recount(config_.threads, false);
        bool undo_lost = false;
        for (const LineAddr line : part_lines) {
            const Addr lo = static_cast<Addr>(line) << kCacheLineBits;
            const unsigned p = static_cast<unsigned>(
                (lo - partitionsOff_) / partitionBytes_);
            const Addr base = partOff(p);
            const Addr hi =
                std::min<Addr>(lo + kCacheLineSize,
                               base + sizeof(Partition));
            for (Addr w = lo; w < hi; w += 8) {
                const Addr rel = w - base;
                if (rel == offsetof(Partition, magic)) {
                    const std::uint64_t magic = Partition::kMagic;
                    ctx.store(w, &magic, 8, DataClass::User);
                } else if (rel == offsetof(Partition, tupleCount)) {
                    recount[p] = true;
                } else if (rel == offsetof(Partition, activeLog)) {
                    const Addr null = kNullAddr;
                    ctx.store(w, &null, 8, DataClass::TxMeta);
                    undo_lost = true;
                } else if (rel == offsetof(Partition, activeSeq)) {
                    // Zero is fine once activeLog is retired.
                } else if (rel >= offsetof(Partition, index)) {
                    const Addr null = kNullAddr;
                    ctx.store(w, &null, 8, DataClass::User);
                }
            }
            if (hi > lo)
                ctx.persist(lo, hi - lo);
        }

        // Undo records matter only inside a published segment; a
        // zero-filled record there stops rollback's walk early and
        // later in-flight updates may persist torn (the checksums
        // report it, covered by the Degraded entry below).
        std::vector<LineAddr> active_lost;
        for (const LineAddr line : undo_lines) {
            const Addr off = static_cast<Addr>(line) << kCacheLineBits;
            const unsigned p = static_cast<unsigned>(
                (off - undoOff_) / kUndoLogBytes);
            const Addr seg = partition(ctx, p)->activeLog;
            if (seg != kNullAddr && off >= seg &&
                off < seg + kUndoSegmentBytes) {
                active_lost.push_back(line);
            }
        }

        const auto node_lost = [&](Addr off, std::size_t n) {
            if (off < heapOff_ + sizeof(alloc::BuddyHeader) ||
                off + n > heapOff_ + heap_->heapSize())
                return true;
            for (LineAddr l = lineOf(off); l <= lineOf(off + n - 1);
                 l++) {
                if (std::find(heap_lines.begin(), heap_lines.end(),
                              l) != heap_lines.end())
                    return true;
            }
            return false;
        };
        std::uint64_t chains_cut = 0;
        for (unsigned p = 0; p < config_.threads; p++) {
            std::uint64_t reachable = 0;
            for (std::uint64_t b = 0; b < kIndexBuckets; b++) {
                Addr slot = partOff(p) + offsetof(Partition, index) +
                            b * sizeof(Addr);
                Addr cur = 0;
                ctx.load(slot, &cur, 8);
                while (cur != kNullAddr) {
                    if (node_lost(cur, sizeof(Tuple))) {
                        const Addr null = kNullAddr;
                        ctx.store(slot, &null, 8, DataClass::User);
                        ctx.persist(slot, 8);
                        chains_cut++;
                        break;
                    }
                    reachable++;
                    const Tuple *t = ctx.pool().at<Tuple>(cur);
                    slot = cur + offsetof(Tuple, next);
                    cur = t->next;
                }
            }
            if (recount[p]) {
                const Addr w =
                    partOff(p) + offsetof(Partition, tupleCount);
                ctx.store(w, &reachable, 8, DataClass::User);
                ctx.persist(w, 8);
            }
        }

        if (!part_lines.empty()) {
            rep.degrade(
                "nstore-partition-lost",
                undo_lost
                    ? "partition header repaired; a published undo "
                      "descriptor was lost, so the in-flight "
                      "transaction cannot roll back"
                    : "partition header words repaired on "
                      "zero-filled lines",
                part_lines);
        }
        if (!active_lost.empty()) {
            rep.degrade("nstore-undo-record-lost",
                        "records in a published undo segment "
                        "zero-filled; rollback stops at the first "
                        "lost record",
                        active_lost);
        }
        if (chains_cut > 0) {
            rep.degrade("nstore-chain-lost",
                        std::to_string(chains_cut) +
                            " index chain(s) truncated at "
                            "media-lost tuples",
                        heap_lines);
        }
        lines = std::move(rest);
    }

  private:
    std::uint64_t
    initialRows() const
    {
        return std::max<std::uint64_t>(
            512, std::min<std::uint64_t>(config_.opsPerThread, 16384));
    }

    Addr
    partOff(unsigned p) const
    {
        return partitionsOff_ + static_cast<Addr>(p) * partitionBytes_;
    }

    Addr
    undoLogOff(unsigned p) const
    {
        return undoOff_ + static_cast<Addr>(p) * kUndoLogBytes;
    }

    /**
     * Everything an OPTWAL partition operation needs: the header and
     * undo-log offsets, the backing allocator and the volatile per-
     * partition cursors. The run path wires these to the global layout
     * via partRef(); workload shards supply fully private instances.
     */
    struct PartRef
    {
        Addr part;
        Addr undo;
        alloc::BuddyAllocator *heap;
        std::uint32_t *segCursor;
        std::uint64_t *txSeq;
    };

    PartRef
    partRef(unsigned p)
    {
        return {partOff(p), undoLogOff(p), heap_.get(),
                &segCursor_[p], &txSeq_[p]};
    }

    /** Rotating log segment for this partition's next transaction. */
    Addr
    acquireUndoSegment(const PartRef &pr)
    {
        const unsigned seg = (*pr.segCursor)++ % kUndoSegments;
        return pr.undo + static_cast<Addr>(seg) * kUndoSegmentBytes;
    }

    Partition *
    partition(pm::PmContext &ctx, unsigned p)
    {
        return ctx.pool().at<Partition>(partOff(p));
    }

    Partition *
    partitionAt(pm::PmContext &ctx, const PartRef &pr)
    {
        return ctx.pool().at<Partition>(pr.part);
    }

    /** @{ \name OPTWAL undo logging (per partition) */

    void
    undoAppend(pm::PmContext &ctx, const PartRef &pr, Addr &head,
               Addr addr, std::uint32_t size, std::uint64_t seq)
    {
        const Addr seg_base =
            pr.undo +
            (head - pr.undo) / kUndoSegmentBytes * kUndoSegmentBytes;
        panic_if(head + sizeof(UndoRec) + size >
                         seg_base + kUndoSegmentBytes,
                 "OPTWAL undo log overflow");
        std::vector<std::uint8_t> old(size);
        ctx.load(addr, old.data(), size);
        UndoRec rec{UndoRec::kMagic, size, addr,
                    foldChecksum(old.data(), size), 0, seq};
        ctx.store(head, &rec, sizeof(rec), DataClass::Log);
        ctx.store(head + sizeof(rec), old.data(), size, DataClass::Log);
        ctx.flush(head, sizeof(rec) + size);
        // Records are cache-line aligned (as PMFS-era logs are), so
        // consecutive appends never share a line.
        head = lineBase(head + sizeof(rec) + size + kCacheLineSize - 1);
        ctx.fence(FenceKind::Ordering);
    }

    /** Publish the in-flight transaction's log segment + sequence. */
    std::uint64_t
    undoActivate(pm::PmContext &ctx, const PartRef &pr, Addr seg_base)
    {
        Partition *part = partitionAt(ctx, pr);
        const std::uint64_t seq = (*pr.txSeq)++;
        const struct { Addr log; std::uint64_t seq; } cell{seg_base,
                                                           seq};
        ctx.store(ctx.pool().offsetOf(&part->activeLog), &cell,
                  sizeof(cell), DataClass::TxMeta);
        ctx.flush(ctx.pool().offsetOf(&part->activeLog), sizeof(cell));
        ctx.fence(FenceKind::Ordering);
        return seq;
    }

    /** Retire the whole log with one pointer write (OPTWAL). */
    void
    undoRetire(pm::PmContext &ctx, const PartRef &pr)
    {
        Partition *part = partitionAt(ctx, pr);
        const Addr none = kNullAddr;
        ctx.storeField(part->activeLog, none, DataClass::TxMeta);
        ctx.flush(ctx.pool().offsetOf(&part->activeLog), 8);
        ctx.fence(FenceKind::Ordering);
    }

    void
    rollbackUndo(pm::PmContext &ctx, const PartRef &pr)
    {
        // Only the published segment (if any) is live, and only
        // records tagged with the published sequence belong to it.
        Partition *part = partitionAt(ctx, pr);
        const Addr seg_base = part->activeLog;
        const std::uint64_t seq = part->activeSeq;
        if (seg_base == kNullAddr)
            return;
        struct Rec { Addr addr; std::uint32_t size; Addr payload; };
        std::vector<Rec> recs;
        {
        Addr cursor = seg_base;
        const Addr limit = seg_base + kUndoSegmentBytes;
        while (cursor + sizeof(UndoRec) <= limit) {
            UndoRec rec{};
            ctx.load(cursor, &rec, sizeof(rec));
            if (rec.magic != UndoRec::kMagic || rec.size == 0 ||
                rec.seq != seq) {
                break; // stale record from a previous use
            }
            const Addr payload = cursor + sizeof(UndoRec);
            if (payload + rec.size > limit ||
                foldChecksum(ctx.pool().at<std::uint8_t>(payload),
                             rec.size) != rec.checksum) {
                break; // torn tail; its target was never modified
            }
            recs.push_back({rec.addr, rec.size, payload});
            cursor = lineBase(payload + rec.size + kCacheLineSize - 1);
        }
        }
        for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
            std::vector<std::uint8_t> old(it->size);
            ctx.load(it->payload, old.data(), it->size);
            ctx.store(it->addr, old.data(), it->size, DataClass::User);
            ctx.flush(it->addr, it->size);
            ctx.fence(FenceKind::Ordering);
        }
        undoRetire(ctx, pr);
        ctx.fence(FenceKind::Durability);
    }

    /** @} */

    Addr
    findTuple(pm::PmContext &ctx, const PartRef &pr, std::uint64_t key)
    {
        Partition *part = partitionAt(ctx, pr);
        Addr cur = part->index[hashKey(key) % kIndexBuckets];
        while (cur != kNullAddr) {
            std::uint64_t probe_key = 0;
            ctx.load(cur + offsetof(Tuple, key), &probe_key, 8);
            if (probe_key == key)
                return cur;
            cur = ctx.pool().at<Tuple>(cur)->next;
        }
        return kNullAddr;
    }

    /**
     * Insert a fresh tuple. When @p undo_head is non-null the insert
     * runs inside a transaction (index link journaled); during the
     * load phase it is null and only the allocator's protocol runs.
     */
    Addr
    insertTuple(pm::PmContext &ctx, const PartRef &pr,
                std::uint64_t key, Rng &rng, Addr *undo_head,
                std::uint64_t seq = 0)
    {
        const Addr off = pr.heap->alloc(ctx, sizeof(Tuple));
        panic_if(off == kNullAddr, "nstore heap exhausted");
        Partition *part = partitionAt(ctx, pr);
        Addr &slot = part->index[hashKey(key) % kIndexBuckets];

        Tuple t{};
        t.key = key;
        t.seq = 0;
        for (auto &b : t.value)
            b = static_cast<std::uint8_t>(rng());
        t.checksum = tupleChecksum(t);
        t.next = ctx.loadField(slot);
        ctx.store(off, &t, sizeof(t), DataClass::User);
        ctx.flush(off, sizeof(t));
        ctx.fence(FenceKind::Ordering);

        if (undo_head) {
            undoAppend(ctx, pr, *undo_head,
                       ctx.pool().offsetOf(&slot), 8, seq);
        }
        ctx.storeField(slot, off, DataClass::User);
        ctx.flush(ctx.pool().offsetOf(&slot), 8);
        ctx.fence(FenceKind::Ordering);
        pr.heap->setState(ctx, off, alloc::BlockState::Persistent);

        const std::uint64_t n = ctx.loadField(part->tupleCount) + 1;
        if (undo_head) {
            undoAppend(ctx, pr, *undo_head,
                       ctx.pool().offsetOf(&part->tupleCount), 8,
                       seq);
        }
        ctx.storeField(part->tupleCount, n, DataClass::User);
        ctx.flush(ctx.pool().offsetOf(&part->tupleCount), 8);
        return off;
    }

    /**
     * In-place update of @p cols columns under the undo log. N-store
     * logs each attribute mutation separately (set_varchar in the
     * paper's Figure 2 is per-column), so an update of several
     * columns fragments into that many undo/data epoch pairs — the
     * alternating-epoch pattern the paper attributes to undo logging.
     */
    void
    updateTuple(pm::PmContext &ctx, const PartRef &pr, Addr off,
                Rng &rng, Addr &undo_head, std::uint64_t seq,
                unsigned cols,
                std::vector<std::pair<Addr, std::uint32_t>> &dirty)
    {
        Tuple *t = ctx.pool().at<Tuple>(off);
        for (unsigned c = 0; c < cols; c++) {
            const std::uint64_t field =
                rng.next(kTupleValueBytes / 10);
            const Addr field_off =
                off + offsetof(Tuple, value) + field * 10;
            undoAppend(ctx, pr, undo_head, field_off, 10, seq);
            std::uint8_t bytes[10];
            for (auto &b : bytes)
                b = static_cast<std::uint8_t>(rng());
            ctx.store(field_off, bytes, sizeof(bytes),
                      DataClass::User);
            dirty.emplace_back(field_off, 10);
        }
        // Header (seq + checksum) under one more record.
        undoAppend(ctx, pr, undo_head, off + offsetof(Tuple, seq), 16,
                   seq);
        const std::uint64_t tuple_seq = t->seq + 1;
        ctx.storeField(t->seq, tuple_seq, DataClass::User);
        const std::uint32_t sum = tupleChecksum(*t);
        ctx.storeField(t->checksum, sum, DataClass::User);
        dirty.emplace_back(off + offsetof(Tuple, seq), 16);
    }

    void
    ycsbTx(pm::PmContext &ctx, unsigned p, Rng &rng,
           const ZipfianGenerator &zipf)
    {
        const PartRef pr = partRef(p);
        const TxId tx = ctx.txBegin();
        const Addr undo_seg = acquireUndoSegment(pr);
        const std::uint64_t undo_seq = undoActivate(ctx, pr, undo_seg);
        Addr undo_head = undo_seg;
        std::vector<std::pair<Addr, std::uint32_t>> dirty;

        // Four YCSB operations per transaction, 80% writes.
        for (int op = 0; op < 4; op++) {
            const std::uint64_t key = zipf.next(rng);
            const Addr off = findTuple(ctx, pr, key);
            if (off == kNullAddr)
                continue;
            if (rng.chance(0.8)) {
                // A YCSB update rewrites the whole 10-field value.
                updateTuple(ctx, pr, off, rng, undo_head, undo_seq, 9,
                            dirty);
            } else {
                Tuple t{};
                ctx.load(off, &t, sizeof(t));
                ctx.compute(40);
            }
        }

        // Commit: flush updated tuples, fence once, clear the log.
        for (const auto &[off, n] : dirty)
            ctx.flush(off, n);
        ctx.fence(FenceKind::Durability);
        undoRetire(ctx, pr);
        ctx.txEnd(tx);
    }

    void
    tpccTx(pm::PmContext &ctx, unsigned p, Rng &rng,
           const ZipfianGenerator &zipf, std::uint64_t op)
    {
        const PartRef pr = partRef(p);
        const double pick = rng.nextDouble();
        if (pick < 0.6) {
            // New-order: insert an order tuple plus 5..15 order
            // lines, update 5..15 stock rows.
            const TxId tx = ctx.txBegin();
            const Addr undo_seg = acquireUndoSegment(pr);
            const std::uint64_t undo_seq =
                undoActivate(ctx, pr, undo_seg);
            Addr undo_head = undo_seg;
            std::vector<std::pair<Addr, std::uint32_t>> dirty;

            const std::uint64_t lines = rng.range(5, 15);
            insertTuple(ctx, pr, 1'000'000 + op * 16, rng, &undo_head,
                        undo_seq);
            for (std::uint64_t l = 0; l < lines; l++) {
                insertTuple(ctx, pr, 1'000'000 + op * 16 + 1 + l, rng,
                            &undo_head, undo_seq);
                const Addr stock = findTuple(ctx, pr, zipf.next(rng));
                if (stock != kNullAddr) {
                    updateTuple(ctx, pr, stock, rng, undo_head,
                                undo_seq, 8, dirty);
                }
            }
            for (const auto &[off, n] : dirty)
                ctx.flush(off, n);
            ctx.fence(FenceKind::Durability);
            undoRetire(ctx, pr);
            ctx.txEnd(tx);
        } else if (pick < 0.85) {
            // Payment: update three hot rows.
            const TxId tx = ctx.txBegin();
            const Addr undo_seg = acquireUndoSegment(pr);
            const std::uint64_t undo_seq =
                undoActivate(ctx, pr, undo_seg);
            Addr undo_head = undo_seg;
            std::vector<std::pair<Addr, std::uint32_t>> dirty;
            for (int i = 0; i < 3; i++) {
                const Addr off = findTuple(ctx, pr, zipf.next(rng));
                if (off != kNullAddr)
                    updateTuple(ctx, pr, off, rng, undo_head,
                                undo_seq, 6, dirty);
            }
            for (const auto &[off, n] : dirty)
                ctx.flush(off, n);
            ctx.fence(FenceKind::Durability);
            undoRetire(ctx, pr);
            ctx.txEnd(tx);
        } else {
            // Order-status: read-only.
            for (int i = 0; i < 8; i++) {
                const Addr off = findTuple(ctx, pr, zipf.next(rng));
                if (off != kNullAddr) {
                    Tuple t{};
                    ctx.load(off, &t, sizeof(t));
                }
            }
            ctx.compute(200);
        }
    }

    bool
    checkAll(Runtime &rt, std::string *why)
    {
        pm::PmContext &ctx = rt.ctx(0);
        for (unsigned p = 0; p < config_.threads; p++) {
            if (!checkPartitionAt(ctx, partOff(p), why))
                return false;
        }
        return true;
    }

    bool
    checkPartitionAt(pm::PmContext &ctx, Addr part_off,
                     std::string *why)
    {
        Partition *part = ctx.pool().at<Partition>(part_off);
        if (part->magic != Partition::kMagic) {
            if (why)
                *why = "bad partition magic";
            return false;
        }
        std::uint64_t seen = 0;
        for (std::uint64_t b = 0; b < kIndexBuckets; b++) {
            Addr cur = part->index[b];
            std::uint64_t guard = 0;
            while (cur != kNullAddr) {
                if (++guard > 10'000'000) {
                    if (why)
                        *why = "index chain cycle";
                    return false;
                }
                const Tuple *t = ctx.pool().at<Tuple>(cur);
                if (t->checksum != tupleChecksum(*t)) {
                    if (why)
                        *why = "tuple checksum mismatch (torn "
                               "update survived recovery)";
                    return false;
                }
                if (hashKey(t->key) % kIndexBuckets != b) {
                    if (why)
                        *why = "tuple in wrong bucket";
                    return false;
                }
                seen++;
                cur = t->next;
            }
        }
        if (seen > part->tupleCount + 1) {
            if (why)
                *why = "tupleCount below reachable tuples";
            return false;
        }
        return true;
    }

    // ---- Unified workload driver surface ------------------------------
    //
    // N-store is partitioned by design; the workload keeps that shape
    // but gives every thread a fully private shard: partition header,
    // undo log *and* buddy heap over a disjoint pool slice (run()
    // shares one global heap, whose allocation cost depends on cross-
    // thread interleaving and would break digest determinism). Each
    // put/rmw runs as a one-operation OPTWAL transaction: publish an
    // undo segment, journal the old images, update in place, flush,
    // fence, retire the log with one pointer write.

    /** Query parsing / plan caching, matching run()'s per-op shape. */
    void
    wlPad(pm::PmContext &ctx, std::uint64_t key)
    {
        ctx.vBurst(&key, 1 << 16, 1000, 420);
        ctx.compute(2500);
    }

    PartRef
    wlRef(ThreadId tid)
    {
        WlShard &sh = wlShards_[tid];
        return {sh.part, sh.undo, sh.heap.get(), &sh.segCursor,
                &sh.txSeq};
    }

  public:
    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const core::WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlShards_.clear();
        wlShards_.resize(map.threads);
        const Addr region = lineBase(config_.poolBytes / map.threads);
        const Addr part_bytes =
            lineBase(sizeof(Partition) + kCacheLineSize);
        panic_if(region <=
                     part_bytes + kUndoLogBytes + (4u << 20),
                 "nstore workload: pool too small for %u shards",
                 map.threads);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlShard &sh = wlShards_[t];
            sh.part = static_cast<Addr>(t) * region;
            sh.undo = sh.part + part_bytes;
            const Addr heap_off =
                lineBase(sh.undo + kUndoLogBytes + kCacheLineSize);
            sh.heap = std::make_unique<alloc::BuddyAllocator>(
                ctx, heap_off, sh.part + region - heap_off);

            Partition hdr{};
            hdr.magic = Partition::kMagic;
            hdr.activeLog = kNullAddr;
            for (auto &slot : hdr.index)
                slot = kNullAddr;
            ctx.store(sh.part, &hdr, sizeof(hdr), DataClass::User);
            ctx.flush(sh.part, sizeof(hdr));
            UndoRec end{UndoRec::kMagic, 0, 0, 0, 0, 0};
            ctx.store(sh.undo, &end, sizeof(end), DataClass::Log);
            ctx.flush(sh.undo, sizeof(end));
            ctx.fence(FenceKind::Durability);

            const PartRef pr = wlRef(t);
            Rng rng(config_.seed + t);
            for (std::uint64_t i = 0; i < map.perThread(); i++)
                insertTuple(ctx, pr, map.lo(t) + i, rng, nullptr);
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        wlPad(ctx, key);
        const Addr off = findTuple(ctx, wlRef(tid), key);
        if (off == kNullAddr)
            return false;
        Tuple t{};
        ctx.load(off, &t, sizeof(t));
        ctx.compute(40);
        return true;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        wlPad(ctx, key);
        const PartRef pr = wlRef(tid);
        const TxId tx = ctx.txBegin();
        const Addr undo_seg = acquireUndoSegment(pr);
        const std::uint64_t undo_seq = undoActivate(ctx, pr, undo_seg);
        Addr undo_head = undo_seg;
        std::vector<std::pair<Addr, std::uint32_t>> dirty;

        const Addr off = findTuple(ctx, pr, key);
        Rng vrng(value ^ key);
        if (off != kNullAddr)
            updateTuple(ctx, pr, off, vrng, undo_head, undo_seq, 9,
                        dirty);
        else
            insertTuple(ctx, pr, key, vrng, &undo_head, undo_seq);

        for (const auto &[doff, n] : dirty)
            ctx.flush(doff, n);
        ctx.fence(FenceKind::Durability);
        undoRetire(ctx, pr);
        ctx.txEnd(tx);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        wlPad(ctx, key);
        const PartRef pr = wlRef(tid);
        const Addr off = findTuple(ctx, pr, key);
        if (off == kNullAddr) {
            workloadPut(ctx, tid, key, delta);
            return false;
        }
        Tuple t{};
        ctx.load(off, &t, sizeof(t));

        const TxId tx = ctx.txBegin();
        const Addr undo_seg = acquireUndoSegment(pr);
        const std::uint64_t undo_seq = undoActivate(ctx, pr, undo_seg);
        Addr undo_head = undo_seg;
        std::vector<std::pair<Addr, std::uint32_t>> dirty;
        Rng vrng(delta ^ t.seq);
        updateTuple(ctx, pr, off, vrng, undo_head, undo_seq, 3, dirty);
        for (const auto &[doff, n] : dirty)
            ctx.flush(doff, n);
        ctx.fence(FenceKind::Durability);
        undoRetire(ctx, pr);
        ctx.txEnd(tx);
        return true;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        wlPad(ctx, key);
        const PartRef pr = wlRef(tid);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const Addr off =
                findTuple(ctx, pr, wlMap_.scanKey(tid, key, j));
            if (off == kNullAddr)
                continue;
            Tuple t{};
            ctx.load(off, &t, sizeof(t));
            found++;
        }
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlMap_.threads; t++) {
            std::string why;
            rep.check(checkPartitionAt(rt.ctx(t), wlShards_[t].part,
                                       &why),
                      "tables-intact", why);
            rep.check(ctx_activeLogRetired(rt.ctx(t), wlShards_[t].part),
                      "undo-retired", "workload shard " +
                          std::to_string(t) +
                          " still publishes an active undo log");
        }
        return rep;
    }

  private:
    bool
    ctx_activeLogRetired(pm::PmContext &ctx, Addr part_off)
    {
        return ctx.pool().at<Partition>(part_off)->activeLog ==
               kNullAddr;
    }

    struct WlShard
    {
        Addr part = 0;
        Addr undo = 0;
        std::uint32_t segCursor = 0;
        std::uint64_t txSeq = 1;
        std::unique_ptr<alloc::BuddyAllocator> heap;
    };

    NstoreWorkload workload_;
    Addr partitionsOff_ = 0;
    std::size_t partitionBytes_ = 0;
    Addr undoOff_ = 0;
    Addr heapOff_ = 0;
    std::vector<std::uint32_t> segCursor_;
    std::vector<std::uint64_t> txSeq_;
    std::unique_ptr<alloc::BuddyAllocator> heap_;
    core::WorkloadKeymap wlMap_;
    std::vector<WlShard> wlShards_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeYcsbApp(const core::AppConfig &config)
{
    return std::make_unique<NstoreApp>(config, NstoreWorkload::Ycsb);
}

std::unique_ptr<core::WhisperApp>
makeTpccApp(const core::AppConfig &config)
{
    return std::make_unique<NstoreApp>(config, NstoreWorkload::Tpcc);
}

} // namespace whisper::apps

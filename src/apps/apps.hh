/**
 * @file
 * Factories for the ten WHISPER applications.
 *
 * Table 1 of the paper maps each application to its access layer and
 * driving workload; registerSuiteApps() (register.cc) wires these
 * factories into the core registry under the paper's names:
 *
 *   echo, ycsb, tpcc          — native
 *   redis, ctree, hashmap     — Library/NVML
 *   vacation, memcached       — Library/Mnemosyne
 *   nfs, exim, mysql          — FS/PMFS
 *   mod-hashmap, mod-vector   — Library/MOD (post-paper layer)
 *   halo-hashmap              — Hybrid/Halo (post-paper layer)
 */

#ifndef WHISPER_APPS_APPS_HH
#define WHISPER_APPS_APPS_HH

#include <memory>

#include "core/app.hh"

namespace whisper::apps
{

std::unique_ptr<core::WhisperApp> makeEchoApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeYcsbApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeTpccApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeRedisApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeCtreeApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeHashmapApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp>
makeVacationApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp>
makeMemcachedApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeNfsApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeEximApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp> makeMysqlApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp>
makeModHashmapApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp>
makeModVectorApp(const core::AppConfig &);
std::unique_ptr<core::WhisperApp>
makeHaloHashmapApp(const core::AppConfig &);

} // namespace whisper::apps

#endif // WHISPER_APPS_APPS_HH

/**
 * @file
 * Memcached: the in-memory object cache, persisted with Mnemosyne
 * (paper §3.2.2).
 *
 * The hash table and the LRU replacement list live in PM segments;
 * all accesses that used to be guarded by memcached's locks execute
 * as Mnemosyne durable transactions instead (the paper's 17-LOC
 * modification). The driving workload is memslap-like: 5% SET / 95%
 * GET — but *every* GET is also a transaction, because a hit splices
 * the item to the LRU head, which mutates persistent state.
 */

#include <mutex>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "txlib/mnemosyne.hh"

namespace whisper::apps
{

using namespace core;
using pm::DataClass;
using pm::FenceKind;

namespace
{

constexpr std::uint64_t kBuckets = 8192;
constexpr std::size_t kValueBytes = 48;
constexpr std::uint64_t kItemSalt = 0x3E3CAC4Eull;

/** Cache item: hash chain + LRU list node. */
struct CacheItem
{
    std::uint64_t key;
    std::uint8_t value[kValueBytes];
    std::uint64_t checksum;
    Addr hnext;   //!< hash chain
    Addr prev;    //!< LRU towards head
    Addr next;    //!< LRU towards tail
};

std::uint64_t
itemChecksum(const CacheItem &it)
{
    return it.key ^ mne::foldChecksum(it.value, sizeof(it.value)) ^
           kItemSalt;
}

struct CacheRoot
{
    std::uint64_t magic;
    std::uint64_t count;
    std::uint64_t capacity;
    Addr lruHead;
    Addr lruTail;
    Addr buckets[kBuckets];

    static constexpr std::uint64_t kMagic = 0x3E3CACEEull;
};

std::uint64_t
hashKey(std::uint64_t key)
{
    key ^= key >> 31;
    key *= 0x7fb5d329728ea185ull;
    key ^= key >> 27;
    return key;
}

class MemcachedApp : public WhisperApp
{
  public:
    explicit MemcachedApp(const AppConfig &config) : WhisperApp(config)
    {
    }

    std::string name() const override { return "memcached"; }
    AccessLayer
    layer() const override
    {
        return AccessLayer::LibMnemosyne;
    }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        rootOff_ = 0;
        const Addr heap_base =
            lineBase(sizeof(CacheRoot) + kCacheLineSize);
        heap_ = std::make_unique<mne::MnemosyneHeap>(
            ctx, heap_base, config_.poolBytes - heap_base,
            config_.threads);

        CacheRoot root{};
        root.magic = CacheRoot::kMagic;
        root.capacity = std::max<std::uint64_t>(
            1024, config_.opsPerThread / 2);
        root.lruHead = root.lruTail = kNullAddr;
        for (auto &b : root.buckets)
            b = kNullAddr;
        ctx.store(rootOff_, &root, sizeof(root), DataClass::User);
        ctx.flush(rootOff_, sizeof(root));
        ctx.fence(FenceKind::Durability);

        // Warm the cache to ~half capacity.
        Rng rng(config_.seed);
        for (std::uint64_t i = 0; i < root.capacity / 2; i++)
            setOp(ctx, rng.next(keySpace()), rng);
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 89 + tid);
        ZipfianGenerator zipf(keySpace());
        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            const std::uint64_t key = zipf.next(rng);
            // Request parsing / response buffers: DRAM traffic.
            char reqbuf[64];
            std::snprintf(reqbuf, sizeof(reqbuf), "get k%llu",
                          static_cast<unsigned long long>(key));
            ctx.vStore(reqbuf, sizeof(reqbuf));
            ctx.vLoad(reqbuf, 16);
            ctx.vBurst(reqbuf, 1 << 13, 160, 70);
            ctx.compute(5500);
            if (rng.chance(0.05))
                setOp(ctx, key, rng);
            else
                getOp(ctx, key);
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkCache(rt, &why), "cache-intact", why);
        return rep;
    }

    void recover(Runtime &rt) override { heap_->recover(rt.ctx(0)); }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(checkCache(rt, &why), "cache-intact", why);
        return rep;
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        VerifyReport rep = report();
        std::string why;
        rep.check(heap_->logsQuiescent(rt.ctx(0), &why),
                  "logs-quiescent", why);
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        heap_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    std::uint64_t
    keySpace() const
    {
        return std::max<std::uint64_t>(2048, config_.opsPerThread * 2);
    }

    CacheRoot *root(pm::PmContext &ctx) { return ctx.pool()
        .at<CacheRoot>(rootOff_); }

    Addr
    find(pm::PmContext &ctx, std::uint64_t key)
    {
        return findAt(ctx, rootOff_, key);
    }

    Addr
    findAt(pm::PmContext &ctx, Addr root_off, std::uint64_t key)
    {
        Addr cur = ctx.pool().at<CacheRoot>(root_off)
                       ->buckets[hashKey(key) % kBuckets];
        while (cur != kNullAddr) {
            std::uint64_t probe = 0;
            ctx.load(cur + offsetof(CacheItem, key), &probe, 8);
            if (probe == key)
                return cur;
            cur = ctx.pool().at<CacheItem>(cur)->hnext;
        }
        return kNullAddr;
    }

    /** Unlink @p off from the LRU list inside @p tx. */
    void
    lruUnlink(pm::PmContext &ctx, mne::Transaction &tx, Addr root_off,
              Addr off)
    {
        CacheRoot *r = ctx.pool().at<CacheRoot>(root_off);
        const CacheItem *it = ctx.pool().at<CacheItem>(off);
        const Addr prev = tx.get(it->prev);
        const Addr next = tx.get(it->next);
        if (prev != kNullAddr) {
            tx.set(ctx.pool().at<CacheItem>(prev)->next, next,
                   DataClass::User);
        } else {
            tx.set(r->lruHead, next, DataClass::User);
        }
        if (next != kNullAddr) {
            tx.set(ctx.pool().at<CacheItem>(next)->prev, prev,
                   DataClass::User);
        } else {
            tx.set(r->lruTail, prev, DataClass::User);
        }
    }

    /** Push @p off onto the LRU head inside @p tx. */
    void
    lruPushFront(pm::PmContext &ctx, mne::Transaction &tx,
                 Addr root_off, Addr off)
    {
        CacheRoot *r = ctx.pool().at<CacheRoot>(root_off);
        const Addr old_head = tx.get(r->lruHead);
        const Addr links[2] = {kNullAddr, old_head}; // prev, next
        tx.update(off + offsetof(CacheItem, prev), links,
                  sizeof(links), DataClass::User);
        if (old_head != kNullAddr) {
            tx.set(ctx.pool().at<CacheItem>(old_head)->prev, off,
                   DataClass::User);
        } else {
            tx.set(r->lruTail, off, DataClass::User);
        }
        tx.set(r->lruHead, off, DataClass::User);
    }

    void
    getOp(pm::PmContext &ctx, std::uint64_t key)
    {
        std::lock_guard<std::mutex> guard(cacheLock_);
        getOpAt(ctx, *heap_, rootOff_, key);
    }

    bool
    getOpAt(pm::PmContext &ctx, mne::MnemosyneHeap &heap,
            Addr root_off, std::uint64_t key)
    {
        const Addr off = findAt(ctx, root_off, key);
        if (off == kNullAddr) {
            ctx.compute(60); // miss path: reply formatting only
            return false;
        }
        CacheItem copy{};
        ctx.load(off, &copy, sizeof(copy));
        // LRU bump: a persistent mutation, hence a transaction.
        mne::Transaction tx(heap, ctx);
        lruUnlink(ctx, tx, root_off, off);
        lruPushFront(ctx, tx, root_off, off);
        tx.commit();
        return true;
    }

    void
    setOp(pm::PmContext &ctx, std::uint64_t key, Rng &rng)
    {
        std::lock_guard<std::mutex> guard(cacheLock_);
        std::uint8_t value[kValueBytes];
        for (auto &b : value)
            b = static_cast<std::uint8_t>(rng());
        setOpAt(ctx, *heap_, rootOff_, key, value);
    }

    void
    setOpAt(pm::PmContext &ctx, mne::MnemosyneHeap &heap,
            Addr root_off, std::uint64_t key,
            const std::uint8_t value[kValueBytes])
    {
        CacheRoot *r = ctx.pool().at<CacheRoot>(root_off);
        const Addr existing = findAt(ctx, root_off, key);

        if (existing != kNullAddr) {
            mne::Transaction tx(heap, ctx);
            CacheItem *it = ctx.pool().at<CacheItem>(existing);
            tx.update(existing + offsetof(CacheItem, value), value,
                      kValueBytes, DataClass::User);
            CacheItem staged{};
            tx.read(existing, &staged, sizeof(staged));
            const std::uint64_t sum = itemChecksum(staged);
            tx.set(it->checksum, sum, DataClass::User);
            lruUnlink(ctx, tx, root_off, existing);
            lruPushFront(ctx, tx, root_off, existing);
            tx.commit();
            return;
        }

        mne::Transaction tx(heap, ctx);
        // Evict from the tail when full.
        if (tx.get(r->count) >= tx.get(r->capacity)) {
            const Addr victim = tx.get(r->lruTail);
            if (victim != kNullAddr) {
                lruUnlink(ctx, tx, root_off, victim);
                // Remove from its hash chain.
                const CacheItem *v = ctx.pool().at<CacheItem>(victim);
                const std::uint64_t vkey = v->key;
                Addr holder = root_off + offsetof(CacheRoot, buckets) +
                              (hashKey(vkey) % kBuckets) * sizeof(Addr);
                Addr cur = tx.get(*ctx.pool().at<Addr>(holder));
                while (cur != kNullAddr && cur != victim) {
                    holder = cur + offsetof(CacheItem, hnext);
                    cur = tx.get(*ctx.pool().at<Addr>(holder));
                }
                if (cur == victim) {
                    const Addr vnext =
                        tx.get(ctx.pool().at<CacheItem>(victim)->hnext);
                    tx.update(holder, &vnext, 8, DataClass::User);
                }
                tx.pfree(victim);
                const std::uint64_t n = tx.get(r->count) - 1;
                tx.set(r->count, n, DataClass::User);
            }
        }

        const Addr off = tx.pmalloc(sizeof(CacheItem));
        if (off == kNullAddr) {
            tx.abort();
            return;
        }
        Addr &bucket = r->buckets[hashKey(key) % kBuckets];
        CacheItem it{};
        it.key = key;
        std::memcpy(it.value, value, kValueBytes);
        it.checksum = itemChecksum(it);
        it.hnext = tx.get(bucket);
        it.prev = it.next = kNullAddr;
        tx.update(off, &it, sizeof(it), DataClass::User);
        tx.set(bucket, off, DataClass::User);
        lruPushFront(ctx, tx, root_off, off);
        const std::uint64_t n = tx.get(r->count) + 1;
        tx.set(r->count, n, DataClass::User);
        tx.commit();
    }

    bool
    checkCache(Runtime &rt, std::string *why)
    {
        return checkCacheAt(rt, rootOff_, why);
    }

    bool
    checkCacheAt(Runtime &rt, Addr root_off, std::string *why)
    {
        pm::PmContext &ctx = rt.ctx(0);
        CacheRoot *r = ctx.pool().at<CacheRoot>(root_off);
        if (r->magic != CacheRoot::kMagic) {
            if (why)
                *why = "bad root magic";
            return false;
        }

        // Hash side: collect all items, validate checksums.
        std::uint64_t hash_items = 0;
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            Addr cur = r->buckets[b];
            std::uint64_t guard = 0;
            while (cur != kNullAddr) {
                if (++guard > 10'000'000) {
                    if (why)
                        *why = "hash chain cycle";
                    return false;
                }
                const CacheItem *it = ctx.pool().at<CacheItem>(cur);
                if (it->checksum != itemChecksum(*it)) {
                    if (why)
                        *why = "item checksum mismatch";
                    return false;
                }
                if (hashKey(it->key) % kBuckets != b) {
                    if (why)
                        *why = "item in wrong bucket";
                    return false;
                }
                hash_items++;
                cur = it->hnext;
            }
        }

        // LRU side: forward walk must match count and back-links.
        std::uint64_t lru_items = 0;
        Addr prev = kNullAddr;
        Addr cur = r->lruHead;
        std::uint64_t guard = 0;
        while (cur != kNullAddr) {
            if (++guard > 10'000'000) {
                if (why)
                    *why = "LRU cycle";
                return false;
            }
            const CacheItem *it = ctx.pool().at<CacheItem>(cur);
            if (it->prev != prev) {
                if (why)
                    *why = "LRU back-link broken";
                return false;
            }
            lru_items++;
            prev = cur;
            cur = it->next;
        }
        if (r->lruTail != prev) {
            if (why)
                *why = "LRU tail mismatch";
            return false;
        }
        if (hash_items != lru_items || hash_items != r->count) {
            if (why)
                *why = "hash/LRU/count disagree";
            return false;
        }
        return true;
    }

    // ---- Unified workload driver surface ------------------------------
    //
    // Each workload thread gets its own cache shard (root + Mnemosyne
    // heap over a disjoint pool slice), mirroring memcached deployments
    // that run one worker per core with partitioned key ownership. The
    // per-shard capacity exceeds the keymap's slot count so workload-
    // owned keys are never evicted: a GET on a loaded or inserted key
    // must always hit.

    /** Deterministic 48-byte value from a 64-bit seed (splitmix64). */
    static void
    expandValue(std::uint64_t seed, std::uint8_t out[kValueBytes])
    {
        for (std::size_t i = 0; i < kValueBytes; i += 8) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            z ^= z >> 31;
            std::memcpy(out + i, &z, 8);
        }
    }

    /** DRAM-side request handling, matching run()'s per-op shape. */
    void
    wlPad(pm::PmContext &ctx, std::uint64_t key)
    {
        char reqbuf[64];
        std::snprintf(reqbuf, sizeof(reqbuf), "get k%llu",
                      static_cast<unsigned long long>(key));
        ctx.vStore(reqbuf, sizeof(reqbuf));
        ctx.vLoad(reqbuf, 16);
        ctx.vBurst(reqbuf, 1 << 13, 160, 70);
        ctx.compute(5500);
    }

  public:
    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const core::WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlShards_.clear();
        wlShards_.resize(map.threads);
        const Addr region = lineBase(config_.poolBytes / map.threads);
        panic_if(region <= sizeof(CacheRoot) + (2u << 20),
                 "memcached workload: pool too small for %u shards",
                 map.threads);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlShard &sh = wlShards_[t];
            sh.rootOff = static_cast<Addr>(t) * region;
            const Addr heap_base =
                lineBase(sh.rootOff + sizeof(CacheRoot) + kCacheLineSize);
            sh.heap = std::make_unique<mne::MnemosyneHeap>(
                ctx, heap_base, sh.rootOff + region - heap_base, 1);

            CacheRoot root{};
            root.magic = CacheRoot::kMagic;
            root.capacity = map.slotsPerThread() + 64;
            root.lruHead = root.lruTail = kNullAddr;
            for (auto &b : root.buckets)
                b = kNullAddr;
            ctx.store(sh.rootOff, &root, sizeof(root), DataClass::User);
            ctx.flush(sh.rootOff, sizeof(root));
            ctx.fence(FenceKind::Durability);

            for (std::uint64_t i = 0; i < map.perThread(); i++) {
                const std::uint64_t key = map.lo(t) + i;
                std::uint8_t value[kValueBytes];
                expandValue(key * 0x9e3779b97f4a7c15ull, value);
                setOpAt(ctx, *sh.heap, sh.rootOff, key, value);
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        return getOpAt(ctx, *sh.heap, sh.rootOff, key);
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        std::uint8_t bytes[kValueBytes];
        expandValue(value, bytes);
        setOpAt(ctx, *sh.heap, sh.rootOff, key, bytes);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        const Addr off = findAt(ctx, sh.rootOff, key);
        std::uint64_t seed = delta;
        if (off != kNullAddr) {
            std::uint8_t old[kValueBytes];
            ctx.load(off + offsetof(CacheItem, value), old, kValueBytes);
            seed += mne::foldChecksum(old, kValueBytes);
        }
        std::uint8_t bytes[kValueBytes];
        expandValue(seed, bytes);
        setOpAt(ctx, *sh.heap, sh.rootOff, key, bytes);
        return off != kNullAddr;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        // Multi-get: point lookups without LRU bumps, like a batched
        // read-only pipeline.
        WlShard &sh = wlShards_[tid];
        wlPad(ctx, key);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const Addr off = findAt(
                ctx, sh.rootOff, wlMap_.scanKey(tid, key, j));
            if (off == kNullAddr)
                continue;
            CacheItem copy{};
            ctx.load(off, &copy, sizeof(copy));
            found++;
        }
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlMap_.threads; t++) {
            std::string why;
            rep.check(checkCacheAt(rt, wlShards_[t].rootOff, &why),
                      "cache-intact", why);
            rep.check(wlShards_[t].heap->logsQuiescent(rt.ctx(t), &why),
                      "logs-quiescent", why);
        }
        return rep;
    }

  private:
    struct WlShard
    {
        Addr rootOff = 0;
        std::unique_ptr<mne::MnemosyneHeap> heap;
    };

    std::unique_ptr<mne::MnemosyneHeap> heap_;
    Addr rootOff_ = 0;
    std::mutex cacheLock_;
    core::WorkloadKeymap wlMap_;
    std::vector<WlShard> wlShards_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeMemcachedApp(const core::AppConfig &config)
{
    return std::make_unique<MemcachedApp>(config);
}

} // namespace whisper::apps

/**
 * @file
 * Exim: a mail server spooling onto PMFS (paper §3.2.3).
 *
 * Follows the paper's description of Exim's per-connection work: a
 * master accepts a message, a child writes it to a spool file,
 * another appends it to the recipient's mailbox (one of 250
 * mailboxes), and a third appends a delivery-log record; the spool
 * file is then removed. Message bodies are ~100 KB-class payloads
 * scaled down with the run size (postal profile, Table 1).
 */

#include <atomic>
#include <cstring>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "pmfs/pmfs.hh"

namespace whisper::apps
{

using namespace core;

namespace
{

class EximApp : public WhisperApp
{
  public:
    explicit EximApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "exim"; }
    AccessLayer layer() const override { return AccessLayer::Filesystem; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        fs_ = std::make_unique<pmfs::Pmfs>(ctx, 0, config_.poolBytes);
        fs_->mkdir(ctx, "/spool");
        fs_->mkdir(ctx, "/mail");
        logIno_ = fs_->create(ctx, "/mainlog");
        panic_if(logIno_ == pmfs::kInvalidIno, "exim setup failed");
        for (unsigned m = 0; m < kMailboxes; m++) {
            const pmfs::Ino ino = fs_->create(ctx, mailboxPath(m));
            panic_if(ino == pmfs::kInvalidIno, "mailbox create failed");
            mailboxIno_[m] = ino;
        }
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 59 + tid);
        // Message bodies: 8-24 KB (the postal 100 KB profile scaled
        // to the run size; the access pattern — multi-block appends —
        // is what matters).
        std::vector<std::uint8_t> msg(24 << 10);
        for (auto &b : msg)
            b = static_cast<std::uint8_t>(rng());

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            const std::uint64_t id = nextMsg_.fetch_add(1);
            const std::size_t bytes = (8 << 10) + rng.next(16 << 10);
            const unsigned mbox =
                static_cast<unsigned>(rng.next(kMailboxes));

            // SMTP session latency, process spawning (Exim forks
            // three children per delivery), header rewriting. This
            // dominates the wall clock: Table 1 measures only 6250
            // epochs/second for exim.
            ctx.vStore(msg.data(), 128);
            ctx.vBurst(msg.data(), 1 << 14, 400, 200);
            ctx.compute(12'000'000);

            // 1. Receive into the spool.
            const std::string spool =
                "/spool/m" + std::to_string(id);
            const pmfs::Ino sino = fs_->create(ctx, spool);
            if (sino == pmfs::kInvalidIno)
                continue;
            fs_->write(ctx, sino, 0, msg.data(), bytes);

            // 2. Deliver: append to the recipient's mailbox. The
            // counter is charged first so that a crash point inside
            // the append can only lose the delivery, never leave the
            // mailbox ahead of the counter (verifyRecovered's bound).
            delivered_[mbox].fetch_add(bytes);
            fs_->append(ctx, mailboxIno_[mbox], msg.data(), bytes);

            // 3. Log the delivery.
            char line[96];
            const int n = std::snprintf(
                line, sizeof(line),
                "%llu delivered msg %llu to mbox %u (%zu bytes)\n",
                static_cast<unsigned long long>(ctx.now()),
                static_cast<unsigned long long>(id), mbox, bytes);
            fs_->append(ctx, logIno_, line,
                        static_cast<std::size_t>(n));

            // 4. Remove the spool file.
            fs_->unlink(ctx, spool);
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        // Every completed delivery is in its mailbox.
        for (unsigned m = 0; m < kMailboxes; m++) {
            if (!rep.check(fs_->fileSize(ctx, mailboxIno_[m]) ==
                               delivered_[m].load(),
                           "mailbox-sizes",
                           "mailbox " + std::to_string(m) +
                               " size mismatch"))
                break;
        }
        return rep;
    }

    void recover(Runtime &rt) override { fs_->mount(rt.ctx(0)); }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->journalQuiescent(ctx, &why),
                  "journal-quiescent", why);
        why.clear();
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        return rep;
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        // After a crash, a mailbox may have lost the last in-flight
        // delivery but can never exceed what was handed to the FS,
        // and sizes must still be block-map consistent (fsck above).
        for (unsigned m = 0; m < kMailboxes; m++) {
            if (!rep.check(fs_->fileSize(ctx, mailboxIno_[m]) <=
                               delivered_[m].load(),
                           "mailbox-sizes",
                           "mailbox " + std::to_string(m) +
                               " grew beyond deliveries"))
                break;
        }
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        fs_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    static constexpr unsigned kMailboxes = 32;

    static std::string
    mailboxPath(unsigned m)
    {
        return "/mail/user" + std::to_string(m);
    }

    // ---- Unified workload driver surface ------------------------------
    //
    // Each workload thread runs a private Exim instance (spool +
    // mailboxes + delivery log) on its own PMFS volume over a disjoint
    // pool slice. A key is a message slot inside one of the mailbox
    // files (256-byte summaries in place of full bodies); a put is a
    // delivery — rewrite the slot, then append a line to the shared
    // per-volume delivery log, preserving Exim's journaled-append
    // profile at KV-op granularity.

    static constexpr std::size_t kWlRecordBytes = 256;

    struct WlVolume
    {
        std::unique_ptr<pmfs::Pmfs> fs;
        pmfs::Ino log = pmfs::kInvalidIno;
        pmfs::Ino boxes[kMailboxes] = {};
    };

    /** SMTP session + process spawning, matching run()'s shape. */
    void
    wlPad(pm::PmContext &ctx, std::uint64_t key)
    {
        std::uint8_t buf[128] = {};
        std::memcpy(buf, &key, 8);
        ctx.vStore(buf, sizeof(buf));
        ctx.vBurst(buf, 1 << 14, 400, 200);
        ctx.compute(12'000'000);
    }

    static void
    wlFillRecord(std::uint64_t key, std::uint64_t value,
                 std::uint8_t out[kWlRecordBytes])
    {
        std::uint64_t words[kWlRecordBytes / 8];
        words[0] = key;
        words[1] = value;
        words[2] = key ^ value;
        std::uint64_t seed = value;
        for (std::size_t i = 3; i < kWlRecordBytes / 8; i++) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            words[i] = z ^ (z >> 31);
        }
        std::memcpy(out, words, kWlRecordBytes);
    }

    static void
    wlSlot(std::uint64_t local_index, unsigned &box,
           std::uint64_t &slot)
    {
        box = static_cast<unsigned>(local_index % kMailboxes);
        slot = local_index / kMailboxes;
    }

    void
    wlLogDelivery(pm::PmContext &ctx, WlVolume &vol, std::uint64_t key,
                  unsigned box)
    {
        char line[64];
        const int n = std::snprintf(
            line, sizeof(line), "delivered msg %llu to mbox %u\n",
            static_cast<unsigned long long>(key), box);
        vol.fs->append(ctx, vol.log, line,
                       static_cast<std::size_t>(n));
    }

  public:
    bool supportsWorkload() const override { return true; }

    void
    workloadSetup(Runtime &rt, const core::WorkloadKeymap &map) override
    {
        wlMap_ = map;
        wlVols_.clear();
        wlVols_.resize(map.threads);
        const Addr region = lineBase(config_.poolBytes / map.threads);
        panic_if(region <= (8u << 20),
                 "exim workload: pool too small for %u volumes",
                 map.threads);
        for (unsigned t = 0; t < map.threads; t++) {
            pm::PmContext &ctx = rt.ctx(t);
            WlVolume &vol = wlVols_[t];
            vol.fs = std::make_unique<pmfs::Pmfs>(
                ctx, static_cast<Addr>(t) * region, region);
            vol.fs->mkdir(ctx, "/mail");
            vol.log = vol.fs->create(ctx, "/mainlog");
            panic_if(vol.log == pmfs::kInvalidIno,
                     "exim workload setup failed");
            for (unsigned m = 0; m < kMailboxes; m++) {
                vol.boxes[m] = vol.fs->create(ctx, mailboxPath(m));
                panic_if(vol.boxes[m] == pmfs::kInvalidIno,
                         "exim workload mailbox create failed");
            }
            // Preload in bounded syscalls: each write journals
            // per-block metadata in one transaction, so whole-mailbox
            // writes at large key counts would overflow a journal
            // segment. 128 KiB per call stays well inside it.
            constexpr std::uint64_t kPreloadChunkBytes = 128u << 10;
            std::vector<std::uint8_t> buf;
            for (unsigned m = 0; m < kMailboxes; m++) {
                const std::uint64_t recs =
                    map.perThread() / kMailboxes +
                    (m < map.perThread() % kMailboxes ? 1 : 0);
                if (recs == 0)
                    continue;
                buf.resize(recs * kWlRecordBytes);
                for (std::uint64_t s = 0; s < recs; s++) {
                    const std::uint64_t key =
                        map.lo(t) + s * kMailboxes + m;
                    wlFillRecord(key, key * 0x9e3779b97f4a7c15ull,
                                 buf.data() + s * kWlRecordBytes);
                }
                for (std::uint64_t off = 0; off < buf.size();
                     off += kPreloadChunkBytes) {
                    const std::uint64_t n = std::min<std::uint64_t>(
                        kPreloadChunkBytes, buf.size() - off);
                    vol.fs->write(ctx, vol.boxes[m], off,
                                  buf.data() + off, n);
                }
            }
        }
    }

    bool
    workloadGet(pm::PmContext &ctx, ThreadId tid,
                std::uint64_t key) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        unsigned box = 0;
        std::uint64_t slot = 0;
        wlSlot(wlMap_.localIndex(tid, key), box, slot);
        std::uint8_t rec[kWlRecordBytes];
        vol.fs->read(ctx, vol.boxes[box], slot * kWlRecordBytes, rec,
                     sizeof(rec));
        std::uint64_t stored = 0;
        std::memcpy(&stored, rec, 8);
        return stored == key;
    }

    void
    workloadPut(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t value) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        unsigned box = 0;
        std::uint64_t slot = 0;
        wlSlot(wlMap_.localIndex(tid, key), box, slot);
        std::uint8_t rec[kWlRecordBytes];
        wlFillRecord(key, value, rec);
        vol.fs->write(ctx, vol.boxes[box], slot * kWlRecordBytes, rec,
                      sizeof(rec));
        wlLogDelivery(ctx, vol, key, box);
    }

    bool
    workloadRmw(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                std::uint64_t delta) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        unsigned box = 0;
        std::uint64_t slot = 0;
        wlSlot(wlMap_.localIndex(tid, key), box, slot);
        std::uint8_t rec[kWlRecordBytes];
        vol.fs->read(ctx, vol.boxes[box], slot * kWlRecordBytes, rec,
                     sizeof(rec));
        std::uint64_t stored = 0, value = 0;
        std::memcpy(&stored, rec, 8);
        std::memcpy(&value, rec + 8, 8);
        const bool found = stored == key;
        wlFillRecord(key, (found ? value : 0) + delta, rec);
        vol.fs->write(ctx, vol.boxes[box], slot * kWlRecordBytes, rec,
                      sizeof(rec));
        wlLogDelivery(ctx, vol, key, box);
        return found;
    }

    std::uint64_t
    workloadScan(pm::PmContext &ctx, ThreadId tid, std::uint64_t key,
                 std::uint64_t len) override
    {
        WlVolume &vol = wlVols_[tid];
        wlPad(ctx, key);
        std::uint64_t found = 0;
        for (std::uint64_t j = 0; j < len; j++) {
            const std::uint64_t k = wlMap_.scanKey(tid, key, j);
            unsigned box = 0;
            std::uint64_t slot = 0;
            wlSlot(wlMap_.localIndex(tid, k), box, slot);
            std::uint8_t rec[kWlRecordBytes];
            vol.fs->read(ctx, vol.boxes[box], slot * kWlRecordBytes,
                         rec, sizeof(rec));
            std::uint64_t stored = 0;
            std::memcpy(&stored, rec, 8);
            if (stored == k)
                found++;
        }
        return found;
    }

    VerifyReport
    workloadCheck(Runtime &rt) override
    {
        VerifyReport rep = report();
        for (unsigned t = 0; t < wlMap_.threads; t++) {
            // A clean run leaves the descriptor COMMITTED (commit is
            // lazy about the FREE transition); mount-time recovery
            // retires it, exactly like the run path's recover().
            wlVols_[t].fs->mount(rt.ctx(t));
            std::string why;
            rep.check(wlVols_[t].fs->journalQuiescent(rt.ctx(t), &why),
                      "journal-quiescent", why);
            why.clear();
            rep.check(wlVols_[t].fs->fsck(rt.ctx(t), &why), "fsck",
                      why);
        }
        return rep;
    }

  private:
    std::unique_ptr<pmfs::Pmfs> fs_;
    pmfs::Ino logIno_ = pmfs::kInvalidIno;
    pmfs::Ino mailboxIno_[kMailboxes] = {};
    std::atomic<std::uint64_t> nextMsg_{0};
    std::atomic<std::uint64_t> delivered_[kMailboxes] = {};
    core::WorkloadKeymap wlMap_;
    std::vector<WlVolume> wlVols_;
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeEximApp(const core::AppConfig &config)
{
    return std::make_unique<EximApp>(config);
}

} // namespace whisper::apps

/**
 * @file
 * Exim: a mail server spooling onto PMFS (paper §3.2.3).
 *
 * Follows the paper's description of Exim's per-connection work: a
 * master accepts a message, a child writes it to a spool file,
 * another appends it to the recipient's mailbox (one of 250
 * mailboxes), and a third appends a delivery-log record; the spool
 * file is then removed. Message bodies are ~100 KB-class payloads
 * scaled down with the run size (postal profile, Table 1).
 */

#include <atomic>

#include "apps/apps.hh"
#include "common/logging.hh"
#include "pmfs/pmfs.hh"

namespace whisper::apps
{

using namespace core;

namespace
{

class EximApp : public WhisperApp
{
  public:
    explicit EximApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "exim"; }
    AccessLayer layer() const override { return AccessLayer::Filesystem; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        fs_ = std::make_unique<pmfs::Pmfs>(ctx, 0, config_.poolBytes);
        fs_->mkdir(ctx, "/spool");
        fs_->mkdir(ctx, "/mail");
        logIno_ = fs_->create(ctx, "/mainlog");
        panic_if(logIno_ == pmfs::kInvalidIno, "exim setup failed");
        for (unsigned m = 0; m < kMailboxes; m++) {
            const pmfs::Ino ino = fs_->create(ctx, mailboxPath(m));
            panic_if(ino == pmfs::kInvalidIno, "mailbox create failed");
            mailboxIno_[m] = ino;
        }
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        Rng rng(config_.seed * 59 + tid);
        // Message bodies: 8-24 KB (the postal 100 KB profile scaled
        // to the run size; the access pattern — multi-block appends —
        // is what matters).
        std::vector<std::uint8_t> msg(24 << 10);
        for (auto &b : msg)
            b = static_cast<std::uint8_t>(rng());

        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            const std::uint64_t id = nextMsg_.fetch_add(1);
            const std::size_t bytes = (8 << 10) + rng.next(16 << 10);
            const unsigned mbox =
                static_cast<unsigned>(rng.next(kMailboxes));

            // SMTP session latency, process spawning (Exim forks
            // three children per delivery), header rewriting. This
            // dominates the wall clock: Table 1 measures only 6250
            // epochs/second for exim.
            ctx.vStore(msg.data(), 128);
            ctx.vBurst(msg.data(), 1 << 14, 400, 200);
            ctx.compute(12'000'000);

            // 1. Receive into the spool.
            const std::string spool =
                "/spool/m" + std::to_string(id);
            const pmfs::Ino sino = fs_->create(ctx, spool);
            if (sino == pmfs::kInvalidIno)
                continue;
            fs_->write(ctx, sino, 0, msg.data(), bytes);

            // 2. Deliver: append to the recipient's mailbox. The
            // counter is charged first so that a crash point inside
            // the append can only lose the delivery, never leave the
            // mailbox ahead of the counter (verifyRecovered's bound).
            delivered_[mbox].fetch_add(bytes);
            fs_->append(ctx, mailboxIno_[mbox], msg.data(), bytes);

            // 3. Log the delivery.
            char line[96];
            const int n = std::snprintf(
                line, sizeof(line),
                "%llu delivered msg %llu to mbox %u (%zu bytes)\n",
                static_cast<unsigned long long>(ctx.now()),
                static_cast<unsigned long long>(id), mbox, bytes);
            fs_->append(ctx, logIno_, line,
                        static_cast<std::size_t>(n));

            // 4. Remove the spool file.
            fs_->unlink(ctx, spool);
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        // Every completed delivery is in its mailbox.
        for (unsigned m = 0; m < kMailboxes; m++) {
            if (!rep.check(fs_->fileSize(ctx, mailboxIno_[m]) ==
                               delivered_[m].load(),
                           "mailbox-sizes",
                           "mailbox " + std::to_string(m) +
                               " size mismatch"))
                break;
        }
        return rep;
    }

    void recover(Runtime &rt) override { fs_->mount(rt.ctx(0)); }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->journalQuiescent(ctx, &why),
                  "journal-quiescent", why);
        why.clear();
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        return rep;
    }

    VerifyReport
    verifyRecovered(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        VerifyReport rep = report();
        std::string why;
        rep.check(fs_->fsck(ctx, &why), "fsck", why);
        // After a crash, a mailbox may have lost the last in-flight
        // delivery but can never exceed what was handed to the FS,
        // and sizes must still be block-map consistent (fsck above).
        for (unsigned m = 0; m < kMailboxes; m++) {
            if (!rep.check(fs_->fileSize(ctx, mailboxIno_[m]) <=
                               delivered_[m].load(),
                           "mailbox-sizes",
                           "mailbox " + std::to_string(m) +
                               " grew beyond deliveries"))
                break;
        }
        return rep;
    }

  protected:
    void
    scrubLayer(Runtime &rt, std::vector<LineAddr> &lines,
               VerifyReport &rep) override
    {
        fs_->scrub(rt.ctx(0), lines, rep);
    }

  private:
    static constexpr unsigned kMailboxes = 32;

    static std::string
    mailboxPath(unsigned m)
    {
        return "/mail/user" + std::to_string(m);
    }

    std::unique_ptr<pmfs::Pmfs> fs_;
    pmfs::Ino logIno_ = pmfs::kInvalidIno;
    pmfs::Ino mailboxIno_[kMailboxes] = {};
    std::atomic<std::uint64_t> nextMsg_{0};
    std::atomic<std::uint64_t> delivered_[kMailboxes] = {};
};

} // namespace

std::unique_ptr<core::WhisperApp>
makeEximApp(const core::AppConfig &config)
{
    return std::make_unique<EximApp>(config);
}

} // namespace whisper::apps

/**
 * @file
 * The PMFS-like persistent-memory filesystem.
 *
 * Characteristics reproduced from the paper's description of PMFS:
 *
 *  - syscall-style API (create/read/write/append/unlink/readdir)
 *    backed directly by PM — no block layer;
 *  - user data in 4 KB blocks written with *non-temporal* stores
 *    (about 96% of PMFS's PM writes are NTIs; writing one block makes
 *    a 64-line epoch, the paper's Figure 4 ">=64" mode), and page
 *    zeroing also uses NTIs;
 *  - metadata (inodes, bitmaps, per-file block-map B-trees, packed
 *    directory entries) updated with cacheable stores under the undo
 *    journal; the journal descriptor moves UNCOMMITTED -> COMMITTED
 *    and entries are processed one-per-epoch;
 *  - synchronous persistence: every operation is durable when the
 *    call returns;
 *  - crash consistency for metadata only — torn user data is the
 *    application's problem, exactly as in PMFS.
 *
 * Concurrency: a single filesystem lock serializes operations (the
 * in-kernel PMFS serializes per-inode; a coarser lock only lowers the
 * epoch rate, which is already the lowest of the suite for FS apps).
 */

#ifndef WHISPER_PMFS_PMFS_HH
#define WHISPER_PMFS_PMFS_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pmfs/block_tree.hh"

namespace whisper::core
{
class VerifyReport;
}

namespace whisper::pmfs
{

/** Filesystem operation counters. */
struct FsStats
{
    std::uint64_t creates = 0;
    std::uint64_t unlinks = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t blocksAllocated = 0;
    std::uint64_t blocksFreed = 0;
};

/**
 * One mounted filesystem instance over [base, base+size) of a pool.
 */
class Pmfs : public BtNodeAllocator
{
  public:
    /** mkfs + mount: format the region and start clean. */
    Pmfs(pm::PmContext &ctx, Addr base, std::size_t size);

    /** Attach to an existing filesystem; call mount() next. */
    Pmfs(Addr base, std::size_t size);

    /** Mount after a crash: journal recovery + index rebuild. */
    void mount(pm::PmContext &ctx);

    /** @{ \name Syscall-style interface (absolute '/'-paths) */

    /** Create a regular file; parent directory must exist. */
    Ino create(pm::PmContext &ctx, const std::string &path);

    /** Create a directory. */
    Ino mkdir(pm::PmContext &ctx, const std::string &path);

    /** Resolve a path; kInvalidIno when absent. */
    Ino lookup(pm::PmContext &ctx, const std::string &path);

    /** Write @p n bytes at @p offset; extends the file as needed.
     *  Durable on return. Returns bytes written or -1. */
    long write(pm::PmContext &ctx, Ino ino, std::uint64_t offset,
               const void *data, std::size_t n);

    /** Append @p n bytes to the end of the file. */
    long append(pm::PmContext &ctx, Ino ino, const void *data,
                std::size_t n);

    /** Read up to @p n bytes at @p offset; returns bytes read. */
    long read(pm::PmContext &ctx, Ino ino, std::uint64_t offset,
              void *buf, std::size_t n);

    /** Remove a file (directories must be empty). */
    bool unlink(pm::PmContext &ctx, const std::string &path);

    /**
     * Rename within the tree. Atomic: one journal transaction covers
     * the source removal and the destination insertion; the
     * destination must not exist, and a directory cannot be moved
     * into its own subtree.
     */
    bool rename(pm::PmContext &ctx, const std::string &from,
                const std::string &to);

    /**
     * Truncate a regular file to @p new_size (only shrinking is
     * supported; growing happens via write()). Frees whole blocks
     * past the new end.
     */
    bool truncate(pm::PmContext &ctx, Ino ino, std::uint64_t new_size);

    /** File size in bytes (0 for absent). */
    std::uint64_t fileSize(pm::PmContext &ctx, Ino ino);

    /** Names in a directory. */
    std::vector<std::string> readdir(pm::PmContext &ctx,
                                     const std::string &path);

    /** @} */

    /**
     * Full consistency check of the durable-visible state: bitmap vs
     * reachability, dirent validity, size bounds. Returns true when
     * consistent; otherwise fills @p why.
     */
    bool fsck(pm::PmContext &ctx, std::string *why = nullptr);

    /** Post-mount recovery invariant: journal FREE and cleared. */
    bool journalQuiescent(pm::PmContext &ctx,
                          std::string *why = nullptr) const;

    /**
     * Media-fault scrub, run before mount(): forwards the journal
     * region to MetaJournal::scrub (descriptor forced UNCOMMITTED,
     * live entry damage degraded). Other filesystem lines — inode
     * table, bitmaps, dirents, data blocks — carry no redundancy
     * beyond the journal, so they are left for the generic
     * "pm-line-lost" degradation; mount-time rollback and fsck decide
     * what the loss means.
     */
    void scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
               core::VerifyReport &report);

    const FsStats &stats() const { return stats_; }
    std::uint64_t freeBlockCount() const;

    /** BtNodeAllocator (B-tree nodes are ordinary data blocks). */
    Addr allocNode(pm::PmContext &ctx) override;
    void freeNode(pm::PmContext &ctx, Addr node) override;

  private:
    Inode *inode(pm::PmContext &ctx, Ino ino);
    Addr inodeOff(Ino ino) const;
    Ino allocInode(pm::PmContext &ctx, FileType type);
    void freeInode(pm::PmContext &ctx, Ino ino);
    Addr allocBlock(pm::PmContext &ctx, bool zero);
    void freeBlock(pm::PmContext &ctx, Addr block);
    void setBitmapBit(pm::PmContext &ctx, Addr bitmap_off,
                      std::uint64_t bit, bool value,
                      std::vector<std::uint64_t> &shadow);

    /** Split "/a/b/c" into parent-dir ino and leaf name. */
    bool resolveParent(pm::PmContext &ctx, const std::string &path,
                       Ino &parent, std::string &leaf);
    Ino dirLookup(pm::PmContext &ctx, Ino dir, const std::string &name);
    bool dirAdd(pm::PmContext &ctx, Ino dir, const std::string &name,
                Ino target);
    bool dirRemove(pm::PmContext &ctx, Ino dir, const std::string &name);
    bool dirEmpty(pm::PmContext &ctx, Ino dir);
    long writeLocked(pm::PmContext &ctx, Ino ino, std::uint64_t offset,
                     const void *data, std::size_t n);
    Ino createEntry(pm::PmContext &ctx, const std::string &path,
                    FileType type);
    void freeFileContents(pm::PmContext &ctx, Inode *node);

    Addr base_;
    std::size_t size_;
    Superblock sb_;
    std::unique_ptr<MetaJournal> journal_;
    std::unique_ptr<BlockTree> tree_;
    std::vector<std::uint64_t> inodeShadow_;
    std::vector<std::uint64_t> blockShadow_;
    std::uint64_t blockCursor_ = 0;
    FsStats stats_;
    std::mutex fsLock_;
};

} // namespace whisper::pmfs

#endif // WHISPER_PMFS_PMFS_HH

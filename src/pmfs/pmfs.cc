#include "pmfs/pmfs.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace whisper::pmfs
{

using pm::DataClass;
using pm::FenceKind;

namespace
{
/** Zero buffer reused for NTI page zeroing. */
const std::uint8_t kZeroBlock[kBlockSize] = {};

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t i = 0;
    while (i < path.size()) {
        while (i < path.size() && path[i] == '/')
            i++;
        std::size_t j = i;
        while (j < path.size() && path[j] != '/')
            j++;
        if (j > i)
            parts.push_back(path.substr(i, j - i));
        i = j;
    }
    return parts;
}
} // namespace

Pmfs::Pmfs(pm::PmContext &ctx, Addr base, std::size_t size)
    : Pmfs(base, size)
{
    // ---- mkfs ----
    sb_.magic = Superblock::kMagic;
    sb_.fsSize = size;
    sb_.journalOff = base_ + kBlockSize;
    sb_.inodeBitmapOff = sb_.journalOff + MetaJournal::kJournalBytes;

    // Estimate block count, then fix the layout.
    const std::uint64_t approx_blocks =
        (size - (sb_.inodeBitmapOff - base_)) / kBlockSize;
    sb_.inodeCount = std::clamp<std::uint64_t>(approx_blocks, 1024, 65536);
    const std::uint64_t ibm_bytes = (sb_.inodeCount + 63) / 64 * 8;
    sb_.inodeTableOff = sb_.inodeBitmapOff + ibm_bytes;
    const Addr after_itable =
        sb_.inodeTableOff + sb_.inodeCount * sizeof(Inode);
    sb_.blockBitmapOff = after_itable;
    // Solve: bbm_bytes + blocks*4096 <= remaining.
    const std::uint64_t remaining = base_ + size - after_itable;
    std::uint64_t blocks = remaining / (kBlockSize + 1);
    const std::uint64_t bbm_bytes = (blocks + 63) / 64 * 8;
    sb_.dataOff = (after_itable + bbm_bytes + kBlockSize - 1) /
                  kBlockSize * kBlockSize;
    blocks = (base_ + size - sb_.dataOff) / kBlockSize;
    sb_.blockCount = blocks;
    panic_if(blocks < 16, "PMFS region too small");

    ctx.store(base_, &sb_, sizeof(sb_), DataClass::FsMeta);
    ctx.flush(base_, sizeof(sb_));

    // Zero both bitmaps with NTIs (PMFS zeroes pages with NTIs).
    for (Addr off = sb_.inodeBitmapOff; off < sb_.inodeTableOff;
         off += 8) {
        const std::uint64_t zero = 0;
        ctx.ntStore(off, &zero, 8, DataClass::FsMeta);
    }
    const std::uint64_t bbm_words = (blocks + 63) / 64;
    for (std::uint64_t w = 0; w < bbm_words; w++) {
        const std::uint64_t zero = 0;
        ctx.ntStore(sb_.blockBitmapOff + w * 8, &zero, 8,
                    DataClass::FsMeta);
    }
    ctx.fence(FenceKind::Durability);

    journal_ = std::make_unique<MetaJournal>(ctx, sb_.journalOff);
    tree_ = std::make_unique<BlockTree>(*journal_, *this);

    inodeShadow_.assign((sb_.inodeCount + 63) / 64, 0);
    blockShadow_.assign(bbm_words, 0);

    // Root directory: ino 1 (ino 0 stays reserved/invalid).
    journal_->begin(ctx);
    setBitmapBit(ctx, sb_.inodeBitmapOff, 0, true, inodeShadow_); // ino 0
    const Ino root = allocInode(ctx, FileType::Directory);
    panic_if(root != kRootIno, "root inode is not 1");
    journal_->commit(ctx);
}

Pmfs::Pmfs(Addr base, std::size_t size)
    : base_(base), size_(size)
{
}

void
Pmfs::scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
            core::VerifyReport &report)
{
    // Pre-mount: the journal's offset is a pure function of the
    // attach parameters, so no superblock read is needed (the
    // superblock line is only ever dirty during mkfs and cannot be
    // poisoned by a steady-state crash).
    if (!journal_) {
        journal_ = std::make_unique<MetaJournal>(base_ + kBlockSize);
        tree_ = std::make_unique<BlockTree>(*journal_, *this);
    }
    journal_->scrub(ctx, lines, report);
}

void
Pmfs::mount(pm::PmContext &ctx)
{
    ctx.load(base_, &sb_, sizeof(sb_));
    panic_if(sb_.magic != Superblock::kMagic,
             "mount: bad PMFS superblock");
    if (!journal_) {
        journal_ = std::make_unique<MetaJournal>(sb_.journalOff);
        tree_ = std::make_unique<BlockTree>(*journal_, *this);
    }
    journal_->recover(ctx);

    // Rebuild the volatile bitmap shadows.
    inodeShadow_.assign((sb_.inodeCount + 63) / 64, 0);
    blockShadow_.assign((sb_.blockCount + 63) / 64, 0);
    for (std::size_t w = 0; w < inodeShadow_.size(); w++)
        ctx.load(sb_.inodeBitmapOff + w * 8, &inodeShadow_[w], 8);
    for (std::size_t w = 0; w < blockShadow_.size(); w++)
        ctx.load(sb_.blockBitmapOff + w * 8, &blockShadow_[w], 8);
    blockCursor_ = 0;
}

Addr
Pmfs::inodeOff(Ino ino) const
{
    return sb_.inodeTableOff + static_cast<Addr>(ino) * sizeof(Inode);
}

Inode *
Pmfs::inode(pm::PmContext &ctx, Ino ino)
{
    panic_if(ino >= sb_.inodeCount, "inode number out of range");
    return ctx.pool().at<Inode>(inodeOff(ino));
}

void
Pmfs::setBitmapBit(pm::PmContext &ctx, Addr bitmap_off, std::uint64_t bit,
                   bool value, std::vector<std::uint64_t> &shadow)
{
    const std::uint64_t word = bit / 64;
    const std::uint64_t mask = 1ull << (bit % 64);
    std::uint64_t val = shadow[word];
    if (value)
        val |= mask;
    else
        val &= ~mask;
    journal_->logOld(ctx, bitmap_off + word * 8, 8);
    ctx.store(bitmap_off + word * 8, &val, 8, DataClass::FsMeta);
    shadow[word] = val;
    ctx.vStore(&shadow[word], 8);
}

Ino
Pmfs::allocInode(pm::PmContext &ctx, FileType type)
{
    for (std::uint64_t i = 0; i < sb_.inodeCount; i++) {
        if (inodeShadow_[i / 64] & (1ull << (i % 64)))
            continue;
        setBitmapBit(ctx, sb_.inodeBitmapOff, i, true, inodeShadow_);
        // The inode slot may hold stale bytes: journal, then init.
        journal_->logOld(ctx, inodeOff(static_cast<Ino>(i)),
                         sizeof(Inode));
        Inode fresh{};
        fresh.type = static_cast<std::uint32_t>(type);
        fresh.links = 1;
        fresh.btreeRoot = kNullAddr;
        fresh.ctime = fresh.mtime = fresh.atime = ctx.now();
        ctx.store(inodeOff(static_cast<Ino>(i)), &fresh, sizeof(fresh),
                  DataClass::FsMeta);
        return static_cast<Ino>(i);
    }
    return kInvalidIno;
}

void
Pmfs::freeInode(pm::PmContext &ctx, Ino ino)
{
    Inode *node = inode(ctx, ino);
    const std::uint32_t free_type =
        static_cast<std::uint32_t>(FileType::Free);
    journal_->logOld(ctx, ctx.pool().offsetOf(&node->type), 4);
    ctx.storeField(node->type, free_type, DataClass::FsMeta);
    setBitmapBit(ctx, sb_.inodeBitmapOff, ino, false, inodeShadow_);
}

Addr
Pmfs::allocBlock(pm::PmContext &ctx, bool zero)
{
    for (std::uint64_t probe = 0; probe < sb_.blockCount; probe++) {
        const std::uint64_t bit = (blockCursor_ + probe) % sb_.blockCount;
        if (blockShadow_[bit / 64] & (1ull << (bit % 64)))
            continue;
        blockCursor_ = (bit + 1) % sb_.blockCount;
        setBitmapBit(ctx, sb_.blockBitmapOff, bit, true, blockShadow_);
        const Addr block = sb_.dataOff + bit * kBlockSize;
        if (zero)
            ctx.ntStore(block, kZeroBlock, kBlockSize, DataClass::User);
        stats_.blocksAllocated++;
        return block;
    }
    return kNullAddr;
}

void
Pmfs::freeBlock(pm::PmContext &ctx, Addr block)
{
    const std::uint64_t bit = (block - sb_.dataOff) / kBlockSize;
    setBitmapBit(ctx, sb_.blockBitmapOff, bit, false, blockShadow_);
    stats_.blocksFreed++;
}

Addr
Pmfs::allocNode(pm::PmContext &ctx)
{
    // B-tree nodes are data blocks, NTI-zeroed so partial node
    // initialization can rely on zero fill.
    return allocBlock(ctx, true);
}

void
Pmfs::freeNode(pm::PmContext &ctx, Addr node)
{
    freeBlock(ctx, node);
}

bool
Pmfs::resolveParent(pm::PmContext &ctx, const std::string &path,
                    Ino &parent, std::string &leaf)
{
    const auto parts = splitPath(path);
    if (parts.empty() || parts.back().size() > kNameMax)
        return false;
    Ino cur = kRootIno;
    for (std::size_t i = 0; i + 1 < parts.size(); i++) {
        cur = dirLookup(ctx, cur, parts[i]);
        if (cur == kInvalidIno ||
            inode(ctx, cur)->type !=
                static_cast<std::uint32_t>(FileType::Directory)) {
            return false;
        }
    }
    parent = cur;
    leaf = parts.back();
    return true;
}

Ino
Pmfs::dirLookup(pm::PmContext &ctx, Ino dir, const std::string &name)
{
    Inode *dnode = inode(ctx, dir);
    BtRoot root{dnode->btreeRoot, dnode->btreeHeight};
    const std::uint64_t nblocks = dnode->size / kBlockSize;
    for (std::uint64_t b = 0; b < nblocks; b++) {
        const Addr block = tree_->lookup(ctx, root, b);
        if (block == kNullAddr)
            continue;
        for (std::size_t s = 0; s < kBlockSize / sizeof(Dirent); s++) {
            Dirent ent{};
            ctx.load(block + s * sizeof(Dirent), &ent, sizeof(ent));
            if (ent.ino != kInvalidIno && ent.nameLen == name.size() &&
                std::memcmp(ent.name, name.data(), name.size()) == 0) {
                return ent.ino;
            }
        }
    }
    return kInvalidIno;
}

bool
Pmfs::dirAdd(pm::PmContext &ctx, Ino dir, const std::string &name,
             Ino target)
{
    Inode *dnode = inode(ctx, dir);
    BtRoot root{dnode->btreeRoot, dnode->btreeHeight};
    const std::uint64_t nblocks = dnode->size / kBlockSize;

    Dirent ent{};
    ent.ino = target;
    ent.nameLen = static_cast<std::uint16_t>(name.size());
    std::memcpy(ent.name, name.data(), name.size());

    // Find a free slot in the existing dirent blocks.
    for (std::uint64_t b = 0; b < nblocks; b++) {
        const Addr block = tree_->lookup(ctx, root, b);
        if (block == kNullAddr)
            continue;
        for (std::size_t s = 0; s < kBlockSize / sizeof(Dirent); s++) {
            const Addr slot = block + s * sizeof(Dirent);
            Dirent cur{};
            ctx.load(slot, &cur, sizeof(cur));
            if (cur.ino == kInvalidIno) {
                journal_->logOld(ctx, slot, sizeof(Dirent));
                ctx.store(slot, &ent, sizeof(ent), DataClass::FsMeta);
                return true;
            }
        }
    }

    // Grow the directory by one zeroed block.
    const Addr block = allocBlock(ctx, true);
    if (block == kNullAddr)
        return false;
    BtRoot new_root = tree_->insert(ctx, root, nblocks, block);
    if (new_root.root != root.root || new_root.height != root.height) {
        journal_->logOld(ctx, ctx.pool().offsetOf(&dnode->btreeRoot), 12);
        ctx.storeField(dnode->btreeRoot, new_root.root,
                       DataClass::FsMeta);
        ctx.storeField(dnode->btreeHeight, new_root.height,
                       DataClass::FsMeta);
    }
    const std::uint64_t new_size = (nblocks + 1) * kBlockSize;
    journal_->logOld(ctx, ctx.pool().offsetOf(&dnode->size), 8);
    ctx.storeField(dnode->size, new_size, DataClass::FsMeta);
    // Slot 0 of a fresh (zeroed, unreachable-until-commit) block.
    ctx.store(block, &ent, sizeof(ent), DataClass::FsMeta);
    ctx.flush(block, sizeof(ent));
    return true;
}

bool
Pmfs::dirRemove(pm::PmContext &ctx, Ino dir, const std::string &name)
{
    Inode *dnode = inode(ctx, dir);
    BtRoot root{dnode->btreeRoot, dnode->btreeHeight};
    const std::uint64_t nblocks = dnode->size / kBlockSize;
    for (std::uint64_t b = 0; b < nblocks; b++) {
        const Addr block = tree_->lookup(ctx, root, b);
        if (block == kNullAddr)
            continue;
        for (std::size_t s = 0; s < kBlockSize / sizeof(Dirent); s++) {
            const Addr slot = block + s * sizeof(Dirent);
            Dirent cur{};
            ctx.load(slot, &cur, sizeof(cur));
            if (cur.ino != kInvalidIno && cur.nameLen == name.size() &&
                std::memcmp(cur.name, name.data(), name.size()) == 0) {
                const Ino zero = kInvalidIno;
                journal_->logOld(ctx, slot, 8);
                ctx.store(slot, &zero, sizeof(zero), DataClass::FsMeta);
                return true;
            }
        }
    }
    return false;
}

bool
Pmfs::dirEmpty(pm::PmContext &ctx, Ino dir)
{
    Inode *dnode = inode(ctx, dir);
    BtRoot root{dnode->btreeRoot, dnode->btreeHeight};
    const std::uint64_t nblocks = dnode->size / kBlockSize;
    for (std::uint64_t b = 0; b < nblocks; b++) {
        const Addr block = tree_->lookup(ctx, root, b);
        if (block == kNullAddr)
            continue;
        for (std::size_t s = 0; s < kBlockSize / sizeof(Dirent); s++) {
            Dirent cur{};
            ctx.load(block + s * sizeof(Dirent), &cur, sizeof(cur));
            if (cur.ino != kInvalidIno)
                return false;
        }
    }
    return true;
}

Ino
Pmfs::createEntry(pm::PmContext &ctx, const std::string &path,
                  FileType type)
{
    Ino parent = kInvalidIno;
    std::string leaf;
    if (!resolveParent(ctx, path, parent, leaf))
        return kInvalidIno;
    if (dirLookup(ctx, parent, leaf) != kInvalidIno)
        return kInvalidIno; // exists

    const TxId tx = ctx.txBegin();
    journal_->begin(ctx);
    const Ino ino = allocInode(ctx, type);
    bool ok = ino != kInvalidIno;
    if (ok)
        ok = dirAdd(ctx, parent, leaf, ino);
    journal_->commit(ctx);
    ctx.txEnd(tx);
    if (!ok)
        return kInvalidIno;
    stats_.creates++;
    return ino;
}

Ino
Pmfs::create(pm::PmContext &ctx, const std::string &path)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    return createEntry(ctx, path, FileType::Regular);
}

Ino
Pmfs::mkdir(pm::PmContext &ctx, const std::string &path)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    return createEntry(ctx, path, FileType::Directory);
}

Ino
Pmfs::lookup(pm::PmContext &ctx, const std::string &path)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    const auto parts = splitPath(path);
    Ino cur = kRootIno;
    for (const auto &part : parts) {
        if (inode(ctx, cur)->type !=
            static_cast<std::uint32_t>(FileType::Directory)) {
            return kInvalidIno;
        }
        cur = dirLookup(ctx, cur, part);
        if (cur == kInvalidIno)
            return kInvalidIno;
    }
    return cur;
}

long
Pmfs::writeLocked(pm::PmContext &ctx, Ino ino, std::uint64_t offset,
                  const void *data, std::size_t n)
{
    Inode *node = inode(ctx, ino);
    if (node->type != static_cast<std::uint32_t>(FileType::Regular))
        return -1;
    if (n == 0)
        return 0;

    const TxId tx = ctx.txBegin();
    journal_->begin(ctx);

    BtRoot root{node->btreeRoot, node->btreeHeight};
    const BtRoot orig_root = root;
    const auto *src = static_cast<const std::uint8_t *>(data);
    std::uint64_t written = 0;
    bool failed = false;

    const std::uint64_t first_fb = offset / kBlockSize;
    const std::uint64_t last_fb = (offset + n - 1) / kBlockSize;
    for (std::uint64_t fb = first_fb; fb <= last_fb && !failed; fb++) {
        const std::uint64_t lo =
            fb == first_fb ? offset % kBlockSize : 0;
        const std::uint64_t hi =
            fb == last_fb ? (offset + n - 1) % kBlockSize + 1
                          : kBlockSize;
        Addr block = tree_->lookup(ctx, root, fb);
        if (block == kNullAddr) {
            const bool partial = lo != 0 || hi != kBlockSize;
            block = allocBlock(ctx, partial);
            if (block == kNullAddr) {
                failed = true;
                break;
            }
            root = tree_->insert(ctx, root, fb, block);
        }
        // User data: non-temporal, unjournaled (PMFS does not log
        // user data).
        ctx.ntStore(block + lo, src + written, hi - lo,
                    DataClass::User);
        written += hi - lo;
    }

    if (root.root != orig_root.root || root.height != orig_root.height) {
        journal_->logOld(ctx, ctx.pool().offsetOf(&node->btreeRoot), 12);
        ctx.storeField(node->btreeRoot, root.root, DataClass::FsMeta);
        ctx.storeField(node->btreeHeight, root.height, DataClass::FsMeta);
    }
    const std::uint64_t new_end = offset + written;
    if (new_end > node->size) {
        journal_->logOld(ctx, ctx.pool().offsetOf(&node->size), 8);
        ctx.storeField(node->size, new_end, DataClass::FsMeta);
    }
    journal_->logOld(ctx, ctx.pool().offsetOf(&node->mtime), 8);
    const Tick now = ctx.now();
    ctx.storeField(node->mtime, now, DataClass::FsMeta);

    journal_->commit(ctx);
    ctx.txEnd(tx);

    stats_.writes++;
    stats_.bytesWritten += written;
    return failed && written == 0 ? -1 : static_cast<long>(written);
}

long
Pmfs::write(pm::PmContext &ctx, Ino ino, std::uint64_t offset,
            const void *data, std::size_t n)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    return writeLocked(ctx, ino, offset, data, n);
}

long
Pmfs::append(pm::PmContext &ctx, Ino ino, const void *data, std::size_t n)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    Inode *node = inode(ctx, ino);
    return writeLocked(ctx, ino, node->size, data, n);
}

long
Pmfs::read(pm::PmContext &ctx, Ino ino, std::uint64_t offset, void *buf,
           std::size_t n)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    Inode *node = inode(ctx, ino);
    if (node->type != static_cast<std::uint32_t>(FileType::Regular))
        return -1;
    if (offset >= node->size)
        return 0;
    n = std::min<std::uint64_t>(n, node->size - offset);
    BtRoot root{node->btreeRoot, node->btreeHeight};
    auto *dst = static_cast<std::uint8_t *>(buf);
    std::uint64_t done = 0;
    while (done < n) {
        const std::uint64_t fb = (offset + done) / kBlockSize;
        const std::uint64_t lo = (offset + done) % kBlockSize;
        const std::uint64_t len =
            std::min<std::uint64_t>(kBlockSize - lo, n - done);
        const Addr block = tree_->lookup(ctx, root, fb);
        if (block == kNullAddr) {
            std::memset(dst + done, 0, len); // hole
        } else {
            ctx.load(block + lo, dst + done, len);
        }
        done += len;
    }

    // PMFS persists metadata synchronously, including access times:
    // a read is a small journal transaction touching one inode field
    // — the source of the filesystem's tiny-median transaction sizes
    // (paper Figure 3: nfs has a median of 2 epochs). Like Linux
    // relatime, back-to-back reads of the same file skip the update.
    const Tick now = ctx.now();
    if (now - node->atime > 100 * kTicksPerUs) {
        const TxId tx = ctx.txBegin();
        journal_->begin(ctx);
        journal_->logOld(ctx, ctx.pool().offsetOf(&node->atime), 8);
        ctx.storeField(node->atime, now, DataClass::FsMeta);
        journal_->commit(ctx);
        ctx.txEnd(tx);
    }

    stats_.reads++;
    stats_.bytesRead += done;
    return static_cast<long>(done);
}

void
Pmfs::freeFileContents(pm::PmContext &ctx, Inode *node)
{
    BtRoot root{node->btreeRoot, node->btreeHeight};
    tree_->forEach(ctx, root, [&](std::uint64_t, Addr block) {
        freeBlock(ctx, block);
    });
    tree_->freeAll(ctx, root);
    journal_->logOld(ctx, ctx.pool().offsetOf(&node->btreeRoot), 12);
    const Addr null_root = kNullAddr;
    const std::uint32_t zero_height = 0;
    ctx.storeField(node->btreeRoot, null_root, DataClass::FsMeta);
    ctx.storeField(node->btreeHeight, zero_height, DataClass::FsMeta);
}

bool
Pmfs::unlink(pm::PmContext &ctx, const std::string &path)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    Ino parent = kInvalidIno;
    std::string leaf;
    if (!resolveParent(ctx, path, parent, leaf))
        return false;
    const Ino ino = dirLookup(ctx, parent, leaf);
    if (ino == kInvalidIno)
        return false;
    Inode *node = inode(ctx, ino);
    if (node->type == static_cast<std::uint32_t>(FileType::Directory) &&
        !dirEmpty(ctx, ino)) {
        return false;
    }

    const TxId tx = ctx.txBegin();
    journal_->begin(ctx);
    dirRemove(ctx, parent, leaf);
    freeFileContents(ctx, node);
    freeInode(ctx, ino);
    journal_->commit(ctx);
    ctx.txEnd(tx);
    stats_.unlinks++;
    return true;
}

bool
Pmfs::rename(pm::PmContext &ctx, const std::string &from,
             const std::string &to)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    // Reject moving a directory into its own subtree: component-wise
    // prefix check on the normalized paths.
    const auto from_parts = splitPath(from);
    const auto to_parts = splitPath(to);
    if (!from_parts.empty() && to_parts.size() >= from_parts.size()) {
        bool prefix = true;
        for (std::size_t i = 0; i < from_parts.size(); i++) {
            if (from_parts[i] != to_parts[i]) {
                prefix = false;
                break;
            }
        }
        if (prefix)
            return false;
    }

    Ino from_parent = kInvalidIno, to_parent = kInvalidIno;
    std::string from_leaf, to_leaf;
    if (!resolveParent(ctx, from, from_parent, from_leaf) ||
        !resolveParent(ctx, to, to_parent, to_leaf)) {
        return false;
    }
    const Ino ino = dirLookup(ctx, from_parent, from_leaf);
    if (ino == kInvalidIno ||
        dirLookup(ctx, to_parent, to_leaf) != kInvalidIno) {
        return false;
    }

    const TxId tx = ctx.txBegin();
    journal_->begin(ctx);
    dirRemove(ctx, from_parent, from_leaf);
    const bool ok = dirAdd(ctx, to_parent, to_leaf, ino);
    journal_->commit(ctx);
    ctx.txEnd(tx);
    return ok;
}

bool
Pmfs::truncate(pm::PmContext &ctx, Ino ino, std::uint64_t new_size)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    Inode *node = inode(ctx, ino);
    if (node->type != static_cast<std::uint32_t>(FileType::Regular) ||
        new_size > node->size) {
        return false;
    }

    const TxId tx = ctx.txBegin();
    journal_->begin(ctx);

    // Collect the mappings that survive, free the rest, and rebuild
    // the block map (the tree supports no partial erase; files are
    // small enough that a rebuild inside the transaction is cheap).
    const std::uint64_t keep_blocks =
        (new_size + kBlockSize - 1) / kBlockSize;
    BtRoot old_root{node->btreeRoot, node->btreeHeight};
    std::vector<std::pair<std::uint64_t, Addr>> kept;
    tree_->forEach(ctx, old_root, [&](std::uint64_t fb, Addr block) {
        if (fb < keep_blocks)
            kept.emplace_back(fb, block);
        else
            freeBlock(ctx, block);
    });
    tree_->freeAll(ctx, old_root);
    BtRoot root{};
    Addr tail_block = kNullAddr;
    for (const auto &[fb, block] : kept) {
        root = tree_->insert(ctx, root, fb, block);
        if (fb == keep_blocks - 1)
            tail_block = block;
    }

    // Zero the kept tail block past the new EOF: a later extension
    // must read zeros there, not the truncated-away bytes.
    const std::uint64_t tail_off = new_size % kBlockSize;
    if (tail_block != kNullAddr && tail_off != 0) {
        static const std::uint8_t zeros[kBlockSize] = {};
        ctx.ntStore(tail_block + tail_off, zeros,
                    kBlockSize - tail_off, DataClass::User);
    }

    journal_->logOld(ctx, ctx.pool().offsetOf(&node->btreeRoot), 12);
    ctx.storeField(node->btreeRoot, root.root, DataClass::FsMeta);
    ctx.storeField(node->btreeHeight, root.height, DataClass::FsMeta);
    journal_->logOld(ctx, ctx.pool().offsetOf(&node->size), 8);
    ctx.storeField(node->size, new_size, DataClass::FsMeta);

    journal_->commit(ctx);
    ctx.txEnd(tx);
    return true;
}

std::uint64_t
Pmfs::fileSize(pm::PmContext &ctx, Ino ino)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    if (ino == kInvalidIno || ino >= sb_.inodeCount)
        return 0;
    return inode(ctx, ino)->size;
}

std::vector<std::string>
Pmfs::readdir(pm::PmContext &ctx, const std::string &path)
{
    std::vector<std::string> names;
    const Ino dir = lookup(ctx, path);
    std::lock_guard<std::mutex> guard(fsLock_);
    if (dir == kInvalidIno)
        return names;
    Inode *dnode = inode(ctx, dir);
    if (dnode->type != static_cast<std::uint32_t>(FileType::Directory))
        return names;
    BtRoot root{dnode->btreeRoot, dnode->btreeHeight};
    const std::uint64_t nblocks = dnode->size / kBlockSize;
    for (std::uint64_t b = 0; b < nblocks; b++) {
        const Addr block = tree_->lookup(ctx, root, b);
        if (block == kNullAddr)
            continue;
        for (std::size_t s = 0; s < kBlockSize / sizeof(Dirent); s++) {
            Dirent ent{};
            ctx.load(block + s * sizeof(Dirent), &ent, sizeof(ent));
            if (ent.ino != kInvalidIno)
                names.emplace_back(ent.name, ent.nameLen);
        }
    }
    return names;
}

std::uint64_t
Pmfs::freeBlockCount() const
{
    std::uint64_t used = 0;
    for (std::uint64_t bit = 0; bit < sb_.blockCount; bit++) {
        if (blockShadow_[bit / 64] & (1ull << (bit % 64)))
            used++;
    }
    return sb_.blockCount - used;
}

bool
Pmfs::journalQuiescent(pm::PmContext &ctx, std::string *why) const
{
    return journal_->quiescent(ctx, why);
}

bool
Pmfs::fsck(pm::PmContext &ctx, std::string *why)
{
    std::lock_guard<std::mutex> guard(fsLock_);
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    Superblock sb{};
    ctx.load(base_, &sb, sizeof(sb));
    if (sb.magic != Superblock::kMagic)
        return fail("bad superblock magic");

    std::vector<bool> ino_seen(sb.inodeCount, false);
    std::vector<bool> blk_seen(sb.blockCount, false);
    auto mark_block = [&](Addr block, std::string &err) {
        if (block < sb.dataOff ||
            (block - sb.dataOff) % kBlockSize != 0 ||
            (block - sb.dataOff) / kBlockSize >= sb.blockCount) {
            err = "block offset out of range";
            return false;
        }
        const std::uint64_t bit = (block - sb.dataOff) / kBlockSize;
        if (blk_seen[bit]) {
            err = "block doubly referenced";
            return false;
        }
        blk_seen[bit] = true;
        return true;
    };

    // Walk the tree from the root directory.
    std::vector<Ino> work{kRootIno};
    ino_seen[kRootIno] = true;
    std::string err;
    while (!work.empty()) {
        const Ino ino = work.back();
        work.pop_back();
        Inode *node = inode(ctx, ino);
        const bool is_dir =
            node->type == static_cast<std::uint32_t>(FileType::Directory);
        if (!is_dir &&
            node->type != static_cast<std::uint32_t>(FileType::Regular)) {
            return fail("reachable inode with invalid type");
        }
        BtRoot root{node->btreeRoot, node->btreeHeight};

        // Mark B-tree node blocks.
        if (root.height > 0) {
            std::vector<std::pair<Addr, std::uint32_t>> stk{
                {root.root, root.height}};
            while (!stk.empty()) {
                auto [off, level] = stk.back();
                stk.pop_back();
                if (!mark_block(off, err))
                    return fail("btree: " + err);
                if (level > 1) {
                    const BtNode *bt = ctx.pool().at<BtNode>(off);
                    if (bt->count > BtNode::kMaxKeys)
                        return fail("btree node overflow");
                    for (std::uint32_t i = 0; i <= bt->count; i++)
                        stk.push_back({bt->vals[i], level - 1});
                }
            }
        }

        // Mark mapped data blocks and validate sizes.
        std::uint64_t mapped = 0;
        std::uint64_t max_fb = 0;
        bool bad = false;
        tree_->forEach(ctx, root, [&](std::uint64_t fb, Addr block) {
            if (!mark_block(block, err))
                bad = true;
            mapped++;
            max_fb = std::max(max_fb, fb);
        });
        if (bad)
            return fail("data block: " + err);
        if (node->size > 0 &&
            node->size > (max_fb + 1) * kBlockSize && mapped > 0) {
            return fail("inode size beyond mapped extent");
        }
        if (mapped == 0 && node->size != 0 && !is_dir)
            return fail("non-empty file with no blocks");

        // Recurse into directories via their dirents.
        if (is_dir) {
            const std::uint64_t nblocks = node->size / kBlockSize;
            for (std::uint64_t b = 0; b < nblocks; b++) {
                const Addr block = tree_->lookup(ctx, root, b);
                if (block == kNullAddr)
                    return fail("directory hole");
                for (std::size_t s = 0; s < kBlockSize / sizeof(Dirent);
                     s++) {
                    Dirent ent{};
                    ctx.load(block + s * sizeof(Dirent), &ent,
                             sizeof(ent));
                    if (ent.ino == kInvalidIno)
                        continue;
                    if (ent.ino >= sb.inodeCount)
                        return fail("dirent inode out of range");
                    if (ent.nameLen > kNameMax)
                        return fail("dirent name too long");
                    if (ino_seen[ent.ino])
                        return fail("inode doubly referenced");
                    ino_seen[ent.ino] = true;
                    work.push_back(ent.ino);
                }
            }
        }
    }

    // Bitmaps must match reachability exactly (no leaks, no loss).
    for (std::uint64_t i = 1; i < sb.inodeCount; i++) {
        const bool marked =
            (inodeShadow_[i / 64] >> (i % 64)) & 1;
        if (marked != ino_seen[i]) {
            return fail(ino_seen[i] ? "reachable inode not in bitmap"
                                    : "inode leak");
        }
    }
    for (std::uint64_t b = 0; b < sb.blockCount; b++) {
        const bool marked = (blockShadow_[b / 64] >> (b % 64)) & 1;
        if (marked != blk_seen[b]) {
            return fail(blk_seen[b] ? "reachable block not in bitmap"
                                    : "block leak");
        }
    }
    return true;
}

} // namespace whisper::pmfs

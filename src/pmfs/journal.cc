#include "pmfs/journal.hh"

#include "common/crc32.hh"
#include "common/logging.hh"
#include "core/verify_report.hh"

namespace whisper::pmfs
{

using pm::DataClass;
using pm::FenceKind;

namespace
{

/** CRC32 of @p rec (checksum zeroed) extended over the payload. */
std::uint32_t
recordCrc(const JournalRecord &rec, const void *payload, std::size_t n)
{
    JournalRecord r = rec;
    r.checksum = 0;
    std::uint32_t crc = crc32Update(0, &r, sizeof(r));
    if (n)
        crc = crc32Update(crc, payload, n);
    return crc;
}

} // namespace

MetaJournal::MetaJournal(pm::PmContext &ctx, Addr base)
    : base_(base)
{
    const auto free_state = static_cast<std::uint64_t>(JournalState::Free);
    ctx.store(stateOff(), &free_state, 8, DataClass::TxMeta);
    ctx.flush(stateOff(), 8);
    for (unsigned seg = 0; seg < kSegments; seg++) {
        JournalRecord end{JournalRecord::kMagic, 0, 0, 0, 0};
        ctx.store(segBase(seg), &end, sizeof(end), DataClass::Log);
        ctx.flush(segBase(seg), sizeof(end));
    }
    ctx.fence(FenceKind::Durability);
}

MetaJournal::MetaJournal(Addr base)
    : base_(base)
{
}

void
MetaJournal::setState(pm::PmContext &ctx, JournalState st,
                      bool fence_now)
{
    const auto val = static_cast<std::uint64_t>(st);
    ctx.store(stateOff(), &val, 8, DataClass::TxMeta);
    ctx.flush(stateOff(), 8);
    if (fence_now)
        ctx.fence(FenceKind::Ordering);
}

void
MetaJournal::begin(pm::PmContext &ctx)
{
    panic_if(inTx_, "nested journal transaction");
    curSeg_ = segBase(segCursor_++ % kSegments);
    head_ = curSeg_;
    touched_.clear();
    // UNCOMMITTED must be durable before the first metadata mutation;
    // the first logOld()'s fence provides that ordering, so no fence
    // here (descriptor writes piggyback — keeps small syscalls at the
    // few-epoch counts the paper measures for PMFS).
    setState(ctx, JournalState::Uncommitted, false);
    inTx_ = true;
}

void
MetaJournal::logOld(pm::PmContext &ctx, Addr off, std::size_t n)
{
    panic_if(!inTx_, "logOld outside a journal transaction");
    panic_if(head_ + 2 * sizeof(JournalRecord) + n >
                     curSeg_ + segmentBytes(),
             "PMFS journal overflow");
    std::vector<std::uint8_t> old(n);
    ctx.load(off, old.data(), n);
    JournalRecord rec{JournalRecord::kMagic,
                      static_cast<std::uint32_t>(n), off, 0, 0};
    rec.checksum = recordCrc(rec, old.data(), n);
    ctx.store(head_, &rec, sizeof(rec), DataClass::Log);
    ctx.store(head_ + sizeof(rec), old.data(), n, DataClass::Log);
    ctx.flush(head_, sizeof(rec) + n);
    // Line-aligned records (PMFS logs at cache-line granularity);
    // the per-record clears at commit keep retired segments
    // terminated, so no tail sentinel is written here.
    head_ = lineBase(head_ + sizeof(rec) + n + kCacheLineSize - 1);
    ctx.fence(FenceKind::Ordering);
    touched_.emplace_back(off, static_cast<std::uint32_t>(n));
}

void
MetaJournal::commit(pm::PmContext &ctx)
{
    panic_if(!inTx_, "commit outside a journal transaction");

    // Flush the new metadata contents, one ordering point.
    for (const auto &[off, n] : touched_)
        ctx.flush(off, n);
    ctx.fence(FenceKind::Ordering);

    // UNCOMMITTED -> COMMITTED: after this fence, a crash no longer
    // rolls back.
    setState(ctx, JournalState::Committed, true);

    // Process each journal entry in its own epoch (the paper's
    // singleton-epoch source in PMFS).
    Addr cursor = curSeg_;
    while (cursor < head_) {
        JournalRecord rec{};
        ctx.load(cursor, &rec, sizeof(rec));
        JournalRecord cleared{JournalRecord::kMagic, 0, 0, 0, 0};
        ctx.store(cursor, &cleared, sizeof(cleared), DataClass::Log);
        ctx.flush(cursor, sizeof(cleared));
        ctx.fence(FenceKind::Ordering);
        cursor = lineBase(cursor + sizeof(rec) + rec.size +
                          kCacheLineSize - 1);
    }
    head_ = curSeg_;
    // No FREE transition: a COMMITTED descriptor with cleared entries
    // is clean; the next begin() overwrites it with UNCOMMITTED. The
    // paper names exactly the UNCOMMITTED -> COMMITTED write as
    // PMFS's descriptor self-dependency.
    inTx_ = false;
}

void
MetaJournal::recover(pm::PmContext &ctx)
{
    std::uint64_t st = 0;
    ctx.load(stateOff(), &st, 8);

    if (st == static_cast<std::uint64_t>(JournalState::Uncommitted)) {
        // Collect valid records from every segment (only the crashed
        // transaction's segment yields any), restore newest-first.
        struct Rec { Addr addr; std::uint32_t size; Addr payload; };
        std::vector<Rec> recs;
        for (unsigned seg = 0; seg < kSegments; seg++) {
        Addr cursor = segBase(seg);
        const Addr limit = segBase(seg) + segmentBytes();
        while (cursor + sizeof(JournalRecord) <= limit) {
            JournalRecord rec{};
            ctx.load(cursor, &rec, sizeof(rec));
            if (rec.magic != JournalRecord::kMagic || rec.size == 0)
                break;
            const Addr payload = cursor + sizeof(rec);
            if (payload + rec.size > limit ||
                recordCrc(rec, ctx.pool().at<std::uint8_t>(payload),
                          rec.size) != rec.checksum) {
                break; // torn/corrupt tail: its range never mutated
            }
            recs.push_back({rec.addr, rec.size, payload});
            cursor = lineBase(payload + rec.size + kCacheLineSize - 1);
        }
        }
        for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
            std::vector<std::uint8_t> old(it->size);
            ctx.load(it->payload, old.data(), it->size);
            ctx.store(it->addr, old.data(), it->size, DataClass::FsMeta);
            ctx.flush(it->addr, it->size);
            ctx.fence(FenceKind::Ordering);
        }
    }

    // Reset the journal (COMMITTED transactions already have durable
    // metadata; their leftover entries are garbage).
    for (unsigned seg = 0; seg < kSegments; seg++) {
        JournalRecord end{JournalRecord::kMagic, 0, 0, 0, 0};
        ctx.store(segBase(seg), &end, sizeof(end), DataClass::Log);
        ctx.flush(segBase(seg), sizeof(end));
    }
    const auto free_state = static_cast<std::uint64_t>(JournalState::Free);
    ctx.store(stateOff(), &free_state, 8, DataClass::TxMeta);
    ctx.flush(stateOff(), 8);
    ctx.fence(FenceKind::Durability);
    head_ = entriesOff();
    inTx_ = false;
}

void
MetaJournal::scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
                   core::VerifyReport &report)
{
    if (lines.empty())
        return;
    const LineAddr state_line = lineOf(stateOff());
    const Addr entries = entriesOff();
    const Addr entries_end =
        entries + static_cast<Addr>(kSegments) * segmentBytes();

    std::vector<LineAddr> state_lost, record_lost, rest;
    // Descriptor first: a forced-UNCOMMITTED journal makes the entry
    // damage below count as live.
    bool forced = false;
    for (const LineAddr line : lines) {
        if (line != state_line)
            continue;
        // Zero-filled reads as FREE, silently skipping a pending
        // rollback. Force UNCOMMITTED: if the crash was really
        // mid-commit-cleanup the re-rollback restores pre-transaction
        // metadata from surviving records — declared loss, not silent.
        const auto unc =
            static_cast<std::uint64_t>(JournalState::Uncommitted);
        ctx.store(stateOff(), &unc, 8, DataClass::TxMeta);
        ctx.persist(stateOff(), 8);
        state_lost.push_back(line);
        forced = true;
    }
    std::uint64_t st = 0;
    ctx.load(stateOff(), &st, 8);
    const bool live =
        forced ||
        st == static_cast<std::uint64_t>(JournalState::Uncommitted);
    for (const LineAddr line : lines) {
        if (line == state_line)
            continue;
        const Addr off = static_cast<Addr>(line) << kCacheLineBits;
        if (off >= entries && off < entries_end) {
            if (live)
                record_lost.push_back(line);
            // COMMITTED/FREE journals hold only dead entry bytes.
        } else {
            rest.push_back(line);
        }
    }

    if (!state_lost.empty()) {
        report.degrade("pmfs-journal-state-lost",
                       "journal descriptor lost; forced UNCOMMITTED "
                       "for conservative rollback",
                       state_lost);
    }
    if (!record_lost.empty()) {
        report.degrade("pmfs-journal-record-lost",
                       std::to_string(record_lost.size()) +
                           " undo journal line(s) lost while a "
                           "transaction was in flight; rollback stops "
                           "at the hole",
                       record_lost);
    }
    lines = std::move(rest);
}

bool
MetaJournal::quiescent(pm::PmContext &ctx, std::string *why) const
{
    std::uint64_t st = 0;
    ctx.load(stateOff(), &st, 8);
    if (st != static_cast<std::uint64_t>(JournalState::Free)) {
        if (why) {
            *why = "journal descriptor is " + std::to_string(st) +
                   " (want FREE)";
        }
        return false;
    }
    for (unsigned seg = 0; seg < kSegments; seg++) {
        JournalRecord rec{};
        ctx.load(segBase(seg), &rec, sizeof(rec));
        if (rec.magic == JournalRecord::kMagic && rec.size != 0) {
            if (why) {
                *why = "journal segment " + std::to_string(seg) +
                       " still holds a live undo record";
            }
            return false;
        }
    }
    return true;
}

} // namespace whisper::pmfs

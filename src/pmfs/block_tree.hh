/**
 * @file
 * Persistent B-tree mapping file block indices to data blocks.
 *
 * PMFS keeps its metadata "in persistent B-trees"; this is the
 * per-inode block map. Nodes are whole 4 KB blocks. Mutations of
 * reachable nodes are undo-journaled at byte granularity (only the
 * fields actually changing), which keeps metadata amplification near
 * the ~10% the paper measures for 4 KB appends. Freshly allocated
 * nodes are unreachable until the (journaled) parent update, so their
 * initialization needs no journaling.
 */

#ifndef WHISPER_PMFS_BLOCK_TREE_HH
#define WHISPER_PMFS_BLOCK_TREE_HH

#include <functional>

#include "pmfs/journal.hh"
#include "pmfs/layout.hh"

namespace whisper::pmfs
{

/** Node allocation service the filesystem provides to the tree. */
class BtNodeAllocator
{
  public:
    virtual ~BtNodeAllocator() = default;
    /** A zeroed 4 KB block, or kNullAddr when full. */
    virtual Addr allocNode(pm::PmContext &ctx) = 0;
    virtual void freeNode(pm::PmContext &ctx, Addr node) = 0;
};

/** Root reference stored in an inode (root offset + height). */
struct BtRoot
{
    Addr root = kNullAddr;
    std::uint32_t height = 0;
};

/**
 * Block-map operations. Stateless: all persistent state lives in the
 * nodes and the caller-held BtRoot.
 */
class BlockTree
{
  public:
    BlockTree(MetaJournal &journal, BtNodeAllocator &nodes);

    /** Value for @p key, or kNullAddr. Read-only, never journals. */
    Addr lookup(pm::PmContext &ctx, const BtRoot &root,
                std::uint64_t key) const;

    /**
     * Insert or overwrite @p key -> @p val. Must run inside a journal
     * transaction. Returns the (possibly new) root.
     */
    BtRoot insert(pm::PmContext &ctx, BtRoot root, std::uint64_t key,
                  Addr val);

    /** Visit every mapping in key order. */
    void forEach(pm::PmContext &ctx, const BtRoot &root,
                 const std::function<void(std::uint64_t, Addr)> &fn)
        const;

    /** Free every node (values are freed by the caller via forEach). */
    void freeAll(pm::PmContext &ctx, const BtRoot &root);

    /** Number of mappings (test helper). */
    std::uint64_t count(pm::PmContext &ctx, const BtRoot &root) const;

  private:
    struct SplitResult
    {
        bool split = false;
        std::uint64_t sepKey = 0;
        Addr newNode = kNullAddr;
    };

    SplitResult insertRec(pm::PmContext &ctx, Addr node_off,
                          std::uint32_t level, std::uint64_t key,
                          Addr val);
    Addr makeLeaf(pm::PmContext &ctx, std::uint64_t key, Addr val);
    void freeRec(pm::PmContext &ctx, Addr node_off, std::uint32_t level);

    MetaJournal &journal_;
    BtNodeAllocator &nodes_;
};

} // namespace whisper::pmfs

#endif // WHISPER_PMFS_BLOCK_TREE_HH

/**
 * @file
 * On-"disk" structures of the PMFS-like filesystem.
 *
 * Mirrors the design the paper describes for PMFS: user data lives in
 * 4 KB blocks written with non-temporal stores; metadata (superblock,
 * inodes, allocation bitmaps, per-file block-map B-trees) is updated
 * in place with cacheable stores under an undo journal whose
 * descriptor moves UNCOMMITTED -> COMMITTED -> FREE.
 *
 * All references are pool offsets (Addr); a remount after a crash
 * revalidates everything from the superblock.
 */

#ifndef WHISPER_PMFS_LAYOUT_HH
#define WHISPER_PMFS_LAYOUT_HH

#include <cstdint>

#include "common/types.hh"

namespace whisper::pmfs
{

/** Filesystem block size (and B-tree node size). */
constexpr std::size_t kBlockSize = 4096;

/** Inode numbers are indices into the inode table; 0 is invalid. */
using Ino = std::uint32_t;

constexpr Ino kInvalidIno = 0;
constexpr Ino kRootIno = 1;

/** Inode type. */
enum class FileType : std::uint32_t
{
    Free = 0,
    Regular = 1,
    Directory = 2,
};

/** Persistent inode (128 bytes). */
struct Inode
{
    std::uint32_t type;      //!< FileType
    std::uint32_t links;
    std::uint64_t size;      //!< bytes (files) / dirent bytes (dirs)
    Addr btreeRoot;          //!< block-map B-tree root, kNullAddr if none
    std::uint32_t btreeHeight; //!< 0 = empty file
    std::uint32_t pad0;
    std::uint64_t ctime;     //!< logical ticks at creation
    std::uint64_t mtime;
    std::uint64_t atime;     //!< updated synchronously on reads
    std::uint8_t pad[72];
};
static_assert(sizeof(Inode) == 128, "Inode layout drifted");

/** Packed directory entry (64 bytes, one cache line). */
struct Dirent
{
    Ino ino;                 //!< kInvalidIno when the slot is free
    std::uint16_t nameLen;
    std::uint16_t pad;
    char name[56];
};
static_assert(sizeof(Dirent) == 64, "Dirent layout drifted");

/** Maximum path component length. */
constexpr std::size_t kNameMax = 55;

/** Superblock at the base of the FS region. */
struct Superblock
{
    std::uint64_t magic;
    std::uint64_t fsSize;          //!< bytes managed
    std::uint64_t inodeCount;
    std::uint64_t blockCount;      //!< data blocks
    Addr journalOff;
    Addr inodeTableOff;
    Addr inodeBitmapOff;
    Addr blockBitmapOff;
    Addr dataOff;

    static constexpr std::uint64_t kMagic = 0x504D465331000000ull;
};

/** B-tree node stored in one 4 KB block. */
struct BtNode
{
    std::uint32_t isLeaf;
    std::uint32_t count;
    std::uint64_t pad;
    /** Leaf: key[i] -> val[i] (file block -> data block offset).
     *  Inner: child[i] covers keys >= key[i] (key[0] is the lowest). */
    static constexpr std::uint32_t kMaxKeys = 254;
    std::uint64_t keys[kMaxKeys];
    Addr vals[kMaxKeys + 1];
};
static_assert(sizeof(BtNode) <= kBlockSize, "BtNode exceeds a block");

} // namespace whisper::pmfs

#endif // WHISPER_PMFS_LAYOUT_HH

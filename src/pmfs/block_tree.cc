#include "pmfs/block_tree.hh"

#include <cstring>

#include "common/logging.hh"

namespace whisper::pmfs
{

using pm::DataClass;

BlockTree::BlockTree(MetaJournal &journal, BtNodeAllocator &nodes)
    : journal_(journal), nodes_(nodes)
{
}

namespace
{

/** Descend index inside an inner node: first child whose separator
 *  exceeds @p key. */
std::uint32_t
descendIndex(const BtNode *node, std::uint64_t key)
{
    std::uint32_t i = 0;
    while (i < node->count && key >= node->keys[i])
        i++;
    return i;
}

/** Position of @p key in a leaf (first index with keys[i] >= key). */
std::uint32_t
leafPos(const BtNode *node, std::uint64_t key)
{
    std::uint32_t i = 0;
    while (i < node->count && node->keys[i] < key)
        i++;
    return i;
}

} // namespace

Addr
BlockTree::lookup(pm::PmContext &ctx, const BtRoot &root,
                  std::uint64_t key) const
{
    if (root.height == 0)
        return kNullAddr;
    Addr off = root.root;
    for (std::uint32_t level = root.height; level > 1; level--) {
        const BtNode *node = ctx.pool().at<BtNode>(off);
        std::uint64_t hdr_touch = 0;
        ctx.load(off, &hdr_touch, 8); // PM read of the node header
        off = node->vals[descendIndex(node, key)];
    }
    const BtNode *leaf = ctx.pool().at<BtNode>(off);
    const std::uint32_t pos = leafPos(leaf, key);
    if (pos < leaf->count && leaf->keys[pos] == key)
        return leaf->vals[pos];
    return kNullAddr;
}

Addr
BlockTree::makeLeaf(pm::PmContext &ctx, std::uint64_t key, Addr val)
{
    const Addr off = nodes_.allocNode(ctx);
    panic_if(off == kNullAddr, "filesystem out of blocks (btree leaf)");
    // Fresh node: unreachable until the parent/root update commits
    // and NTI-zeroed by the allocator, so partial plain stores
    // suffice (no undo record, no full-node write).
    const std::uint32_t one = 1;
    ctx.store(off + offsetof(BtNode, isLeaf), &one, 4, DataClass::FsMeta);
    ctx.store(off + offsetof(BtNode, count), &one, 4, DataClass::FsMeta);
    ctx.store(off + offsetof(BtNode, keys), &key, 8, DataClass::FsMeta);
    ctx.store(off + offsetof(BtNode, vals), &val, 8, DataClass::FsMeta);
    ctx.flush(off, 16);
    ctx.flush(off + offsetof(BtNode, keys), 8);
    ctx.flush(off + offsetof(BtNode, vals), 8);
    return off;
}

BtRoot
BlockTree::insert(pm::PmContext &ctx, BtRoot root, std::uint64_t key,
                  Addr val)
{
    panic_if(!journal_.inTx(), "BlockTree::insert outside a journal tx");
    if (root.height == 0) {
        root.root = makeLeaf(ctx, key, val);
        root.height = 1;
        return root;
    }
    SplitResult res = insertRec(ctx, root.root, root.height, key, val);
    if (res.split) {
        const Addr new_root = nodes_.allocNode(ctx);
        panic_if(new_root == kNullAddr,
                 "filesystem out of blocks (btree root)");
        const std::uint32_t one = 1;
        ctx.store(new_root + offsetof(BtNode, count), &one, 4,
                  DataClass::FsMeta);
        ctx.store(new_root + offsetof(BtNode, keys), &res.sepKey, 8,
                  DataClass::FsMeta);
        ctx.store(new_root + offsetof(BtNode, vals), &root.root, 8,
                  DataClass::FsMeta);
        ctx.store(new_root + offsetof(BtNode, vals) + 8, &res.newNode,
                  8, DataClass::FsMeta);
        ctx.flush(new_root, 16);
        ctx.flush(new_root + offsetof(BtNode, keys), 8);
        ctx.flush(new_root + offsetof(BtNode, vals), 16);
        root.root = new_root;
        root.height++;
    }
    return root;
}

BlockTree::SplitResult
BlockTree::insertRec(pm::PmContext &ctx, Addr node_off,
                     std::uint32_t level, std::uint64_t key, Addr val)
{
    BtNode *node = ctx.pool().at<BtNode>(node_off);
    const Addr keys_off = node_off + offsetof(BtNode, keys);
    const Addr vals_off = node_off + offsetof(BtNode, vals);
    const Addr count_off = node_off + offsetof(BtNode, count);

    if (level > 1) {
        // Inner node: descend, then absorb a child split if any.
        const std::uint32_t idx = descendIndex(node, key);
        SplitResult child = insertRec(ctx, node->vals[idx], level - 1,
                                      key, val);
        if (!child.split)
            return {};

        if (node->count < BtNode::kMaxKeys) {
            // Shift separators/children right of idx by one.
            const std::uint32_t n = node->count;
            journal_.logOld(ctx, keys_off + idx * 8, (n - idx + 1) * 8);
            journal_.logOld(ctx, vals_off + (idx + 1) * 8,
                            (n - idx + 1) * 8);
            journal_.logOld(ctx, count_off, 4);
            for (std::uint32_t j = n; j > idx; j--) {
                const std::uint64_t k = node->keys[j - 1];
                const Addr v = node->vals[j];
                ctx.store(keys_off + j * 8, &k, 8, DataClass::FsMeta);
                ctx.store(vals_off + (j + 1) * 8, &v, 8,
                          DataClass::FsMeta);
            }
            ctx.store(keys_off + idx * 8, &child.sepKey, 8,
                      DataClass::FsMeta);
            ctx.store(vals_off + (idx + 1) * 8, &child.newNode, 8,
                      DataClass::FsMeta);
            const std::uint32_t nc = n + 1;
            ctx.store(count_off, &nc, 4, DataClass::FsMeta);
            return {};
        }

        // Inner split: push the middle separator up.
        const Addr right_off = nodes_.allocNode(ctx);
        panic_if(right_off == kNullAddr,
                 "filesystem out of blocks (btree inner)");
        const std::uint32_t mid = node->count / 2;
        const std::uint32_t right_count = node->count - mid - 1;
        const std::uint64_t up_key = node->keys[mid];
        ctx.store(right_off + offsetof(BtNode, count), &right_count, 4,
                  DataClass::FsMeta);
        ctx.store(right_off + offsetof(BtNode, keys),
                  node->keys + mid + 1, right_count * 8,
                  DataClass::FsMeta);
        ctx.store(right_off + offsetof(BtNode, vals),
                  node->vals + mid + 1, (right_count + 1) * 8,
                  DataClass::FsMeta);
        ctx.flush(right_off, 16);
        ctx.flush(right_off + offsetof(BtNode, keys), right_count * 8);
        ctx.flush(right_off + offsetof(BtNode, vals),
                  (right_count + 1) * 8);
        journal_.logOld(ctx, count_off, 4);
        ctx.store(count_off, &mid, 4, DataClass::FsMeta);

        // Re-run the absorbed insert on the proper half.
        BtNode *target;
        Addr target_off;
        (void)right_count;
        if (child.sepKey >= up_key) {
            target_off = right_off;
        } else {
            target_off = node_off;
        }
        target = ctx.pool().at<BtNode>(target_off);
        const Addr t_keys = target_off + offsetof(BtNode, keys);
        const Addr t_vals = target_off + offsetof(BtNode, vals);
        const Addr t_count = target_off + offsetof(BtNode, count);
        const std::uint32_t ins = descendIndex(target, child.sepKey);
        const std::uint32_t n = target->count;
        journal_.logOld(ctx, t_keys + ins * 8, (n - ins + 1) * 8);
        journal_.logOld(ctx, t_vals + (ins + 1) * 8, (n - ins + 1) * 8);
        journal_.logOld(ctx, t_count, 4);
        for (std::uint32_t j = n; j > ins; j--) {
            const std::uint64_t k = target->keys[j - 1];
            const Addr v = target->vals[j];
            ctx.store(t_keys + j * 8, &k, 8, DataClass::FsMeta);
            ctx.store(t_vals + (j + 1) * 8, &v, 8, DataClass::FsMeta);
        }
        ctx.store(t_keys + ins * 8, &child.sepKey, 8, DataClass::FsMeta);
        ctx.store(t_vals + (ins + 1) * 8, &child.newNode, 8,
                  DataClass::FsMeta);
        const std::uint32_t nc = n + 1;
        ctx.store(t_count, &nc, 4, DataClass::FsMeta);

        return {true, up_key, right_off};
    }

    // Leaf.
    const std::uint32_t pos = leafPos(node, key);
    if (pos < node->count && node->keys[pos] == key) {
        journal_.logOld(ctx, vals_off + pos * 8, 8);
        ctx.store(vals_off + pos * 8, &val, 8, DataClass::FsMeta);
        return {};
    }

    if (node->count < BtNode::kMaxKeys) {
        const std::uint32_t n = node->count;
        if (pos < n) {
            journal_.logOld(ctx, keys_off + pos * 8, (n - pos) * 8);
            journal_.logOld(ctx, vals_off + pos * 8, (n - pos) * 8);
        }
        journal_.logOld(ctx, keys_off + n * 8, 8);
        journal_.logOld(ctx, vals_off + n * 8, 8);
        journal_.logOld(ctx, count_off, 4);
        for (std::uint32_t j = n; j > pos; j--) {
            const std::uint64_t k = node->keys[j - 1];
            const Addr v = node->vals[j - 1];
            ctx.store(keys_off + j * 8, &k, 8, DataClass::FsMeta);
            ctx.store(vals_off + j * 8, &v, 8, DataClass::FsMeta);
        }
        ctx.store(keys_off + pos * 8, &key, 8, DataClass::FsMeta);
        ctx.store(vals_off + pos * 8, &val, 8, DataClass::FsMeta);
        const std::uint32_t nc = n + 1;
        ctx.store(count_off, &nc, 4, DataClass::FsMeta);
        return {};
    }

    // Leaf split: right node takes the upper half; separator is the
    // right node's first key.
    const Addr right_off = nodes_.allocNode(ctx);
    panic_if(right_off == kNullAddr,
             "filesystem out of blocks (btree leaf split)");
    const std::uint32_t mid = node->count / 2;
    const std::uint32_t one_leaf = 1;
    const std::uint32_t right_count = node->count - mid;
    ctx.store(right_off + offsetof(BtNode, isLeaf), &one_leaf, 4,
              DataClass::FsMeta);
    ctx.store(right_off + offsetof(BtNode, count), &right_count, 4,
              DataClass::FsMeta);
    ctx.store(right_off + offsetof(BtNode, keys), node->keys + mid,
              right_count * 8, DataClass::FsMeta);
    ctx.store(right_off + offsetof(BtNode, vals), node->vals + mid,
              right_count * 8, DataClass::FsMeta);
    ctx.flush(right_off, 16);
    ctx.flush(right_off + offsetof(BtNode, keys), right_count * 8);
    ctx.flush(right_off + offsetof(BtNode, vals), right_count * 8);
    journal_.logOld(ctx, count_off, 4);
    ctx.store(count_off, &mid, 4, DataClass::FsMeta);

    const std::uint64_t sep = node->keys[mid];
    if (key >= sep)
        insertRec(ctx, right_off, 1, key, val);
    else
        insertRec(ctx, node_off, 1, key, val);
    return {true, sep, right_off};
}

void
BlockTree::forEach(pm::PmContext &ctx, const BtRoot &root,
                   const std::function<void(std::uint64_t, Addr)> &fn)
    const
{
    if (root.height == 0)
        return;
    struct Frame { Addr off; std::uint32_t level; };
    std::vector<Frame> stack{{root.root, root.height}};
    while (!stack.empty()) {
        const Frame fr = stack.back();
        stack.pop_back();
        const BtNode *node = ctx.pool().at<BtNode>(fr.off);
        if (fr.level == 1) {
            for (std::uint32_t i = 0; i < node->count; i++)
                fn(node->keys[i], node->vals[i]);
        } else {
            // Push children in reverse so traversal stays in order.
            for (std::uint32_t i = node->count + 1; i > 0; i--)
                stack.push_back({node->vals[i - 1], fr.level - 1});
        }
    }
}

void
BlockTree::freeAll(pm::PmContext &ctx, const BtRoot &root)
{
    if (root.height == 0)
        return;
    freeRec(ctx, root.root, root.height);
}

void
BlockTree::freeRec(pm::PmContext &ctx, Addr node_off, std::uint32_t level)
{
    if (level > 1) {
        const BtNode *node = ctx.pool().at<BtNode>(node_off);
        for (std::uint32_t i = 0; i <= node->count; i++)
            freeRec(ctx, node->vals[i], level - 1);
    }
    nodes_.freeNode(ctx, node_off);
}

std::uint64_t
BlockTree::count(pm::PmContext &ctx, const BtRoot &root) const
{
    std::uint64_t n = 0;
    forEach(ctx, root, [&](std::uint64_t, Addr) { n++; });
    return n;
}

} // namespace whisper::pmfs

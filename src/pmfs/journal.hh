/**
 * @file
 * PMFS metadata undo journal.
 *
 * Every metadata-mutating filesystem operation runs inside a journal
 * transaction: the old contents of each about-to-change range are
 * journaled (store + flush + fence — the undo record must be durable
 * before the metadata changes), the mutation is applied in place, and
 * commit flushes the mutated ranges, flips the descriptor from
 * UNCOMMITTED to COMMITTED (the self-dependency the paper calls out),
 * then clears each journal entry in its own epoch.
 *
 * User data is *not* journaled — PMFS "does not guarantee consistency
 * of user data" — it is written with NTIs and fenced at the end of
 * the syscall.
 */

#ifndef WHISPER_PMFS_JOURNAL_HH
#define WHISPER_PMFS_JOURNAL_HH

#include <cstdint>
#include <vector>

#include "pm/pm_context.hh"

namespace whisper::core
{
class VerifyReport;
}

namespace whisper::pmfs
{

/** Journal descriptor states (paper terminology). */
enum class JournalState : std::uint64_t
{
    Free = 0,
    Uncommitted = 1,
    Committed = 2,
};

/** One undo record header. */
struct JournalRecord
{
    std::uint32_t magic;
    std::uint32_t size;      //!< payload bytes; 0 terminates the walk
    Addr addr;               //!< metadata range start
    std::uint32_t checksum;
    std::uint32_t pad;

    static constexpr std::uint32_t kMagic = 0x4A524E4Cu; // "JRNL"
};

/**
 * The journal. One instance per mounted filesystem; callers serialize
 * operations (the FS holds a lock across each syscall).
 */
class MetaJournal
{
  public:
    /** Bytes of pool space a journal occupies. */
    static constexpr std::size_t kJournalBytes = 1 << 20;

    /** Rotating entry segments (a real journal appends as a ring). */
    static constexpr unsigned kSegments = 16;

    static constexpr std::size_t
    segmentBytes()
    {
        return (kJournalBytes - kCacheLineSize) / kSegments;
    }

    /** Format a journal at [base, base+kJournalBytes). */
    MetaJournal(pm::PmContext &ctx, Addr base);

    /** Attach to an existing journal (mount path). */
    explicit MetaJournal(Addr base);

    /** Roll back an UNCOMMITTED transaction left by a crash. */
    void recover(pm::PmContext &ctx);

    /** Open a transaction (descriptor -> UNCOMMITTED). */
    void begin(pm::PmContext &ctx);

    /**
     * Journal the current contents of [off, off+n) and remember the
     * range so commit() can flush the new contents. Call before
     * mutating the range.
     */
    void logOld(pm::PmContext &ctx, Addr off, std::size_t n);

    /** Commit: flush mutations, COMMITTED, clear entries, FREE. */
    void commit(pm::PmContext &ctx);

    bool inTx() const { return inTx_; }

    /**
     * Recovery invariant: the descriptor must be FREE and every
     * segment cleared once mount-time recovery ran. Fills @p why on
     * violation.
     */
    bool quiescent(pm::PmContext &ctx, std::string *why) const;

    /**
     * Media-fault scrub (runs before recover()): a poisoned
     * descriptor line is rewritten UNCOMMITTED — zero-filled it would
     * read FREE and silently skip a pending rollback, so the scrub
     * forces the conservative path and degrades
     * "pmfs-journal-state-lost" (a transaction that was actually
     * mid-commit-cleanup gets re-rolled-back from already-cleared
     * segments, a no-op). Poisoned entry lines degrade
     * "pmfs-journal-record-lost" when the descriptor is UNCOMMITTED
     * (the CRC walk stops at the hole); otherwise they are claimed
     * silently. Erases every journal-range line from @p lines.
     */
    void scrub(pm::PmContext &ctx, std::vector<LineAddr> &lines,
               core::VerifyReport &report);

  private:
    void setState(pm::PmContext &ctx, JournalState st, bool fence_now);
    Addr stateOff() const { return base_; }
    Addr entriesOff() const { return base_ + kCacheLineSize; }

    Addr segBase(unsigned seg) const
    {
        return entriesOff() + static_cast<Addr>(seg) * segmentBytes();
    }

    Addr base_;
    Addr head_ = 0;
    Addr curSeg_ = 0;
    std::uint32_t segCursor_ = 0;
    bool inTx_ = false;
    std::vector<std::pair<Addr, std::uint32_t>> touched_;
};

} // namespace whisper::pmfs

#endif // WHISPER_PMFS_JOURNAL_HH

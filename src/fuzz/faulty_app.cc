/**
 * @file
 * The "faulty" demo application: a deliberately broken native-layer
 * store the crash fuzzer must catch and shrink.
 *
 * Two persistent counters live in separate cache lines and must stay
 * equal. The workload bumps them in two *separate* epochs — counter A
 * is made durable before counter B is even written — so any crash
 * point between the two durability fences leaves A one step ahead of
 * B in the durable image. There is no log and recover() is a no-op:
 * the divergence survives recovery, and checkRecoveryInvariants()
 * reports it. This is the canonical ordering bug the WHISPER paper's
 * access layers exist to prevent, distilled to six PM ops per
 * iteration.
 */

#include "fuzz/crash_fuzz.hh"

#include "core/app.hh"

namespace whisper::fuzz
{

namespace
{

using namespace core;

constexpr Addr kCounterA = 0;  //!< line 0
constexpr Addr kCounterB = 64; //!< line 1: never persists with A

class FaultyApp : public WhisperApp
{
  public:
    explicit FaultyApp(const AppConfig &config) : WhisperApp(config) {}

    std::string name() const override { return "faulty"; }
    AccessLayer layer() const override { return AccessLayer::Native; }

    void
    setup(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        const std::uint64_t zero = 0;
        ctx.store(kCounterA, &zero, sizeof(zero));
        ctx.store(kCounterB, &zero, sizeof(zero));
        ctx.persist(kCounterA, sizeof(zero));
        ctx.persist(kCounterB, sizeof(zero));
    }

    void
    run(Runtime &rt, pm::PmContext &ctx, ThreadId tid) override
    {
        (void)rt;
        (void)tid;
        for (std::uint64_t op = 0; op < config_.opsPerThread; op++) {
            const std::uint64_t v = op + 1;
            // BUG: A reaches durability in its own epoch; a power cut
            // here leaves A == v, B == v - 1 with nothing to roll it
            // back. The correct protocol would log or order the pair.
            ctx.store(kCounterA, &v, sizeof(v));
            ctx.flush(kCounterA, sizeof(v));
            ctx.fence(trace::FenceKind::Durability);
            ctx.store(kCounterB, &v, sizeof(v));
            ctx.flush(kCounterB, sizeof(v));
            ctx.fence(trace::FenceKind::Durability);
        }
    }

    VerifyReport
    verify(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        ctx.load(kCounterA, &a, sizeof(a));
        ctx.load(kCounterB, &b, sizeof(b));
        VerifyReport rep = report();
        rep.check(a == b && a == config_.opsPerThread,
                  "counters-complete",
                  "a=" + std::to_string(a) +
                      " b=" + std::to_string(b));
        return rep;
    }

    void recover(Runtime &rt) override { (void)rt; }

    /** The post-crash contract itself is vacuous — the divergence is
     *  only visible to the invariant check, as with a real torn
     *  protocol whose application-level reads still "work". */
    VerifyReport verifyRecovered(Runtime &rt) override
    {
        (void)rt;
        return report();
    }

    VerifyReport
    checkRecoveryInvariants(Runtime &rt) override
    {
        pm::PmContext &ctx = rt.ctx(0);
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        ctx.load(kCounterA, &a, sizeof(a));
        ctx.load(kCounterB, &b, sizeof(b));
        VerifyReport rep = report();
        rep.check(a == b, "counters-equal",
                  "a=" + std::to_string(a) +
                      " b=" + std::to_string(b));
        return rep;
    }
};

} // namespace

void
registerFaultyApp()
{
    static const bool once = [] {
        core::registerApp("faulty",
                          [](const core::AppConfig &config) {
                              return std::unique_ptr<
                                  core::WhisperApp>(
                                  new FaultyApp(config));
                          });
        return true;
    }();
    (void)once;
}

} // namespace whisper::fuzz
